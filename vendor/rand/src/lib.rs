//! Offline vendored mini-`rand`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) subset of the `rand 0.8` API the workspace actually uses:
//! `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`
//! and `SliceRandom::{shuffle, choose}`. The generator is SplitMix64 — not
//! cryptographic, but statistically fine for workload generation and tests,
//! and deterministic from its seed (which is all the simulator requires).
//!
//! It is intentionally *not* stream-compatible with the real `rand` crate;
//! every consumer in this workspace derives behaviour from explicit seeds,
//! never from externally-specified expected values.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full bit pattern.
pub trait Standard: Sized {
    /// Produce a value from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn from_bits(bits: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    #[inline]
    fn from_bits(bits: u64) -> Self {
        (bits >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draw one value. Panics on an empty range (as the real crate does).
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is negligible for test workloads.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let f = <f64 as Standard>::from_bits(rng.next_u64());
        self.start + f * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let f = <f32 as Standard>::from_bits(rng.next_u64());
        self.start + f * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// A uniform draw from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`).

    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }

    // `Rng` must be nameable for the blanket methods to resolve on
    // `&mut StdRng` call sites that only import the prelude.
    pub use super::Rng as _;
}

pub mod prelude {
    //! One-stop import mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_and_divergence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: usize = r.gen_range(0..3);
            assert!(y < 3);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let z: u64 = r.gen_range(0..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice fully sorted");
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
