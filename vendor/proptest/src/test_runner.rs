//! Case runner support: configuration, case errors, and the test RNG.

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Config {
    /// A config requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` failed: the case is outside the property's domain.
    Reject(String),
}

/// Result alias matching the real crate's spelling.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-case generator (SplitMix64 over a hashed label).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the test identified by `label`.
    ///
    /// The seed mixes an optional `PROPTEST_SEED` environment variable so a
    /// different universe of cases can be explored without code changes.
    pub fn for_case(label: &str, case: u32) -> Self {
        let universe = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x005E_ED0F_1990);
        // FNV-1a over the label, then mix in the case index.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ universe;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng { state: h }
    }

    /// The next 64 random bits (SplitMix64).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
