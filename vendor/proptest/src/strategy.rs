//! Value-generation strategies.
//!
//! A [`Strategy`] knows how to generate one value from a [`TestRng`]. The
//! implementations below cover the combinators the workspace's tests use:
//! numeric ranges, tuples, [`Just`], [`any`], mapped strategies, vectors
//! (via [`crate::collection::vec`]) and weighted unions ([`crate::prop_oneof!`]).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `f` (regenerating otherwise; gives up
    /// after a bounded number of tries and returns the last value).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// Strategies are generated through shared references inside `proptest!`,
// so `&S` must be a strategy too.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `strategy.prop_filter(..)`.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut last = self.inner.generate(rng);
        for _ in 0..64 {
            if (self.f)(&last) {
                break;
            }
            last = self.inner.generate(rng);
        }
        last
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Object-safe generation, used by [`Union`] and [`BoxedStrategy`].
pub trait DynStrategy<V> {
    /// Generate one value through a trait object.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Weighted union of strategies over one value type (see [`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn DynStrategy<V>>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<V>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof: all weights are zero");
        Union { arms, total }
    }

    /// Box one arm (macro helper).
    pub fn arm<S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn DynStrategy<V>> {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut x = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if x < *w as u64 {
                return s.generate_dyn(rng);
            }
            x -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// `any::<T>()` — the full domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain generator.
pub trait Arbitrary: Sized {
    /// One uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    #[inline]
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    #[inline]
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_strategy_for_tuple {
    ( $( ($($name:ident),+) ),+ $(,)? ) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_for_tuple!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H)
);

/// Strategy returned by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.len.start < self.len.end, "empty vec length range");
        let n = self.len.start + rng.below(self.len.end - self.len.start);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
