//! Offline vendored mini-`proptest`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the `proptest 1.x` surface the workspace's property tests
//! use: the [`proptest!`] macro (with `#![proptest_config(..)]`), the
//! [`strategy::Strategy`] trait over ranges/tuples/`Just`/`any`/vectors,
//! weighted [`prop_oneof!`], and the `prop_assert*` family.
//!
//! Differences from the real crate, deliberate for zero dependencies:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering and the case seed; regressions worth keeping are
//!   promoted to explicit `#[test]`s (this repo already does that).
//! * **No persistence.** `.proptest-regressions` files are not replayed;
//!   the checked-in regression cases are mirrored as permanent tests.
//! * **Deterministic seeding.** Case seeds derive from the test's module
//!   path, name, and case index, so failures reproduce across runs; set
//!   `PROPTEST_SEED` to explore a different universe.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors `proptest::prelude::prop` (e.g. `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Weighted choice among strategies producing the same value type.
///
/// `prop_oneof![3 => a, 1 => b]` picks `a` three times as often as `b`;
/// the unweighted form gives every arm weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Union::arm($strategy)) ),+
        ])
    };
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::prop_oneof![ $( 1 => $strategy ),+ ]
    };
}

/// `assert!` that fails the current case instead of panicking directly,
/// so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`]. Compares by reference, so
/// operands are not moved.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// `assert_ne!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `(left != right)`\n  both: `{:?}`", l);
    }};
}

/// Discard the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Define property tests. Supports the two forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..10, v in prop::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $pat:pat in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut passed: u32 = 0;
                let mut attempt: u32 = 0;
                let max_attempts = config.cases.saturating_mul(8).saturating_add(256);
                while passed < config.cases && attempt < max_attempts {
                    attempt += 1;
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempt,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest {} failed at case {} (attempt {}): {}",
                                stringify!($name),
                                passed + 1,
                                attempt,
                                msg
                            );
                        }
                    }
                }
                assert!(
                    passed > 0 || config.cases == 0,
                    "proptest {}: every generated case was rejected",
                    stringify!($name)
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $pat:pat in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name ( $( $pat in $strategy ),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u8),
        Pop,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => any::<u8>().prop_map(Op::Push),
            1 => Just(Op::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_tuples_vecs(
            x in 1u64..50,
            (a, b) in (0u32..10, 0.0f64..1.0),
            ops in prop::collection::vec(op(), 0..20),
        ) {
            prop_assert!((1..50).contains(&x));
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!(ops.len() < 20);
            let pushes = ops.iter().filter(|o| matches!(o, Op::Push(_))).count();
            prop_assert!(pushes <= ops.len());
        }

        #[test]
        fn assume_rejects_without_failing(m in 0u64..100, n in 0u64..100) {
            prop_assume!(m <= n);
            prop_assert!(n >= m);
        }

        #[test]
        fn eq_macros(v in prop::collection::vec(any::<u8>(), 1..8)) {
            let w = v.clone();
            prop_assert_eq!(&v, &w);
            prop_assert_eq!(v.len(), w.len(), "lengths differ");
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("k", 3);
        let mut b = TestRng::for_case("k", 3);
        let mut c = TestRng::for_case("k", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(b.next_u64(), c.next_u64());
    }

    #[test]
    fn weighted_union_respects_weights() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = TestRng::for_case("weights", 0);
        let trues = (0..1000).filter(|_| Strategy::generate(&s, &mut rng)).count();
        assert!((800..=980).contains(&trues), "trues = {trues}");
    }
}
