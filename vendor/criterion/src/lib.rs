//! Offline vendored mini-`criterion`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a small wall-clock bench harness with the `criterion 0.5` API surface the
//! workspace's benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! It reports the median and minimum per-iteration time of `sample_size`
//! samples. No statistics, plots, or baselines — run it for quick relative
//! numbers, not publication-grade measurements.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub runs one routine call
/// per setup call regardless of the hint, which is exact (if slow) for all
/// variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per batch.
    PerIteration,
    /// Fixed number of batches.
    NumBatches(u64),
    /// Fixed number of iterations per batch.
    NumIterations(u64),
}

/// Timing context passed to the closure of `bench_function`.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration durations.
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, results: Vec::new() }
    }

    /// Time `routine` once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    /// Time `routine` on a fresh input from `setup` per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run and report one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        // One warm-up batch, unrecorded.
        let mut warmup = Bencher::new(1);
        std_black_box(&mut warmup);
        f(&mut bencher);
        let mut times = bencher.results;
        if times.is_empty() {
            println!("{}/{name}: no samples recorded", self.name);
            return self;
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        let min = times[0];
        println!(
            "{}/{name}: median {:>12?}  min {:>12?}  ({} samples)",
            self.name,
            median,
            min,
            times.len()
        );
        self
    }

    /// End the group (reporting already happened per bench).
    pub fn finish(self) {}
}

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: 10, _criterion: self }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
        let mut batched = 0u32;
        g.bench_function("batched", |b| {
            b.iter_batched(|| 2u32, |x| batched += x, BatchSize::SmallInput)
        });
        assert_eq!(batched, 6);
        g.finish();
    }
}
