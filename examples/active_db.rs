//! Active-database situation monitoring — the paper's §1 motivation:
//! "systems that require very efficient query processing ... the system
//! cannot afford to spend a lot of time performing secondary storage
//! accesses, hence caching precomputed queries may be a good strategy."
//!
//! Simulates a monitoring loop: a burst of updates lands on `R` between
//! every evaluation of the monitored join condition. All three strategies
//! answer every round; the simulated 1989 time per round is reported so
//! the caching advantage (and its erosion under heavier churn) is visible.
//!
//! Run with: `cargo run --release --example active_db`

use trijoin::{Database, JoinStrategy, Method, SystemParams, WorkloadSpec};
use trijoin_model::all_costs;

fn main() {
    let params = SystemParams { mem_pages: 80, ..SystemParams::paper_defaults() };

    for &(rate, label) in
        &[(0.01, "calm (1% churn/round)"), (0.10, "busy (10%)"), (0.50, "frantic (50%)")]
    {
        let spec = WorkloadSpec {
            r_tuples: 5_000,
            s_tuples: 5_000,
            tuple_bytes: 200,
            sr: 0.02,
            group_size: 5,
            pra: 0.1,
            update_rate: rate,
            seed: 1989,
        };
        let gen = spec.generate();
        let measured = gen.measured();
        println!("=== situation monitor, {label} ===");
        println!(
            "    ‖R‖=‖S‖={}  SR={:.3}  ‖iR‖={} per round  Pr_A={}",
            gen.r.len(),
            measured.sr,
            gen.updates_per_epoch(),
            measured.pra
        );

        for method in Method::all() {
            let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
            let mut strategy: Box<dyn JoinStrategy> = match method {
                Method::MaterializedView => Box::new(db.materialized_view().unwrap()),
                Method::JoinIndex => Box::new(db.join_index().unwrap()),
                Method::HybridHash => Box::new(db.hybrid_hash()),
            };
            let mut stream = gen.update_stream();
            let mut round_secs = Vec::new();
            for _round in 0..3 {
                db.reset_cost();
                for _ in 0..gen.updates_per_epoch() {
                    let u = stream.next_update();
                    strategy.on_update(&u).unwrap();
                    db.r_mut().apply_update(&u.old, &u.new).unwrap();
                }
                let mut n = 0u64;
                strategy.execute(db.r(), db.s(), &mut |_| n += 1).unwrap();
                round_secs.push((db.cost().elapsed_secs(db.params()), n));
            }
            let avg: f64 = round_secs.iter().map(|(s, _)| s).sum::<f64>() / round_secs.len() as f64;
            println!(
                "  {:<17} avg {:>8.2} simulated s/round  (rounds: {})",
                method.to_string(),
                avg,
                round_secs
                    .iter()
                    .map(|(s, n)| format!("{s:.2}s/{n}t"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        // What the analytical model says for this point, for reference.
        let model = all_costs(&params, &measured);
        let preds: Vec<String> =
            model.iter().map(|c| format!("{}={:.2}s", c.method, c.total())).collect();
        println!("  model predicts: {}\n", preds.join("  "));
    }

    // The actual active-database access pattern: after a round's query has
    // brought the caches current, individual situation checks are *point*
    // lookups — "time-constrained in the order of a few milliseconds",
    // which is exactly what caching buys (§1).
    println!("=== millisecond situation checks (point lookups on clean caches) ===");
    let spec = WorkloadSpec {
        r_tuples: 5_000,
        s_tuples: 5_000,
        tuple_bytes: 200,
        sr: 0.02,
        group_size: 5,
        pra: 0.1,
        update_rate: 0.0,
        seed: 1989,
    };
    let gen = spec.generate();
    let db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
    let mv = db.materialized_view().unwrap();
    let ji = db.join_index().unwrap();
    db.reset_cost();
    let mut mv_ms = Vec::new();
    for key in 0..20u64 {
        let before = db.cost().total();
        let hits = mv.lookup_key(key).unwrap();
        let spent = db.cost().total().delta_since(&before);
        mv_ms.push((spent.time_us(db.params()) / 1000.0, hits.len()));
    }
    let avg_ms: f64 = mv_ms.iter().map(|(ms, _)| ms).sum::<f64>() / mv_ms.len() as f64;
    println!(
        "  view lookup_key:   avg {avg_ms:.1} simulated ms per check ({} checks, e.g. {:?})",
        mv_ms.len(),
        &mv_ms[..3]
    );
    // Probe a few R tuples that actually participate in the join.
    let matched: Vec<u32> =
        gen.r.iter().filter(|t| t.key < (1 << 40)).take(5).map(|t| t.sur.0).collect();
    let mut ji_ms = Vec::new();
    for sur in matched {
        let before = db.cost().total();
        let partners = ji.partners_of_r(trijoin_common::Surrogate(sur)).unwrap();
        let spent = db.cost().total().delta_since(&before);
        ji_ms.push((spent.time_us(db.params()) / 1000.0, partners.len()));
    }
    println!("  index partners_of_r: {ji_ms:?} (simulated ms, partner count)");
    println!(
        "  versus recomputing the join on demand: {:.0} ms even at this 40x-reduced scale",
        1000.0 * {
            let mut hh = db.hybrid_hash();
            db.reset_cost();
            let mut n = 0u64;
            hh.execute(db.r(), db.s(), &mut |_| n += 1).unwrap();
            db.cost().elapsed_secs(db.params())
        }
    );
}
