//! Engine vs model: run all three strategies for real on the simulated
//! storage stack and put the measured simulated seconds next to the §3
//! cost model's predictions, across a grid of (SR, update-rate) points.
//!
//! Absolute agreement is not the point (the engine's B⁺-trees, batching
//! and netting are real code, not closed forms) — the *ranking* and the
//! *response to parameters* are what the paper's conclusions rest on.
//!
//! Run with: `cargo run --release --example engine_vs_model`

use trijoin::{Experiment, SystemParams, WorkloadSpec};

fn main() {
    let params = SystemParams { mem_pages: 80, ..SystemParams::paper_defaults() };
    println!(
        "{:<8} {:<6} | {:>24} | {:>24} | winners (engine/model)",
        "SR", "rate", "engine secs (MV/JI/HH)", "model secs (MV/JI/HH)"
    );
    let mut rank_agreements = 0;
    let mut total = 0;
    for &sr in &[0.002, 0.01, 0.05, 0.25] {
        for &rate in &[0.02, 0.2] {
            let spec = WorkloadSpec {
                r_tuples: 4_000,
                s_tuples: 4_000,
                tuple_bytes: 200,
                sr,
                group_size: 5,
                pra: 0.1,
                update_rate: rate,
                seed: 42,
            };
            let mut exp = Experiment::new(&params, &spec);
            exp.verify = true; // oracle-check every result while we're here
            let report = exp.run_epoch().expect("epoch");
            let engine: Vec<f64> = report.outcomes.iter().map(|o| o.engine_secs).collect();
            let model: Vec<f64> = report.outcomes.iter().map(|o| o.model_secs).collect();
            let ew = report.engine_winner();
            let mw = report.model_winner();
            total += 1;
            if ew == mw {
                rank_agreements += 1;
            }
            println!(
                "{:<8} {:<6} | {:>7.2} {:>7.2} {:>7.2}  | {:>7.2} {:>7.2} {:>7.2}  | {} / {}",
                sr, rate, engine[0], engine[1], engine[2], model[0], model[1], model[2], ew, mw
            );
        }
    }
    println!("\nwinner agreement: {rank_agreements}/{total} grid points");
    println!("(every engine result above was verified tuple-for-tuple against the oracle)");
}
