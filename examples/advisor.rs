//! The Section 5 advisor: describe your environment, get a strategy.
//!
//! Walks a selection of environments (the paper's three motivating ones —
//! procedures in extensible databases, situation monitoring in active
//! databases, object-oriented path queries) plus the Figure 4 corner
//! cases, and prints both the paper's heuristic recommendation and the
//! full cost-model pick, with predicted times.
//!
//! Run with: `cargo run --example advisor`

use trijoin::{Advisor, SystemParams, Workload};
use trijoin_model::all_costs;

struct Scenario {
    name: &'static str,
    description: &'static str,
    workload: Workload,
}

fn main() {
    let params = SystemParams::paper_defaults();
    let advisor = Advisor::new(&params);

    let scenarios = vec![
        Scenario {
            name: "extensible-db procedures",
            description: "cached procedure results; moderate selectivity, \
                          occasional updates (the Postgres use case of §1)",
            workload: Workload::figure4_point(0.02, 0.03),
        },
        Scenario {
            name: "active-db situation monitor",
            description: "millisecond-budget condition checks over a \
                          selective join; heavy base-table churn",
            workload: Workload::figure4_point(0.005, 0.40),
        },
        Scenario {
            name: "OO path query",
            description: "complex-object traversal: very low selectivity, \
                          stable attributes (Valduriez's join-index setting)",
            workload: Workload::figure4_point(0.001, 0.05),
        },
        Scenario {
            name: "reporting cross-product",
            description: "near-cartesian analytical join recomputed rarely",
            workload: Workload::figure4_point(1.0, 0.01),
        },
        Scenario {
            name: "volatile join attribute",
            description: "like the OO case, but every update moves objects \
                          between parents (Pr_A = 1)",
            workload: {
                let mut w = Workload::figure4_point(0.005, 0.40);
                w.pra = 1.0;
                w
            },
        },
    ];

    for s in scenarios {
        println!("=== {} ===", s.name);
        println!("    {}", s.description);
        let (heuristic, model) = advisor.both(&s.workload);
        println!("  paper heuristic : {:<17} — {}", heuristic.method.to_string(), heuristic.reason);
        println!("  cost model pick : {:<17} — {}", model.method.to_string(), model.reason);
        println!("  predicted totals:");
        for report in all_costs(&params, &s.workload) {
            println!(
                "    {:<17} {:>10.1} s  (base file {:>9.1} s, update+internal {:>9.1} s)",
                report.method.to_string(),
                report.total(),
                report.base_file(),
                report.update_and_internal()
            );
        }
        println!();
    }
}
