//! Self-adapting strategy selection under a shifting workload — the
//! paper's closing vision of a system that "could automatically adapt to
//! the appropriate structures and algorithms after a suitable period of
//! time".
//!
//! Three workload phases hit the same database:
//!   1. calm  — 2% update rate (materialized-view country),
//!   2. storm — 40% update rate (join-index country),
//!   3. calm again.
//!
//! The adaptive wrapper starts from the §5 heuristic's pick and re-selects
//! after every query from *measured* statistics. Its per-epoch cost is
//! compared against the three static strategies running the same epochs.
//!
//! Run with: `cargo run --release --example adaptive`

use trijoin::{
    AdaptiveStrategy, CachedStrategy, Database, JoinStrategy, Method, SystemParams, WorkloadSpec,
};

fn main() {
    let params = SystemParams { mem_pages: 80, ..SystemParams::paper_defaults() };
    let spec = WorkloadSpec {
        r_tuples: 4_000,
        s_tuples: 4_000,
        tuple_bytes: 200,
        sr: 0.01,
        group_size: 5,
        pra: 0.1,
        update_rate: 0.02, // overridden per phase below
        seed: 777,
    };
    let gen = spec.generate();
    let phases: Vec<(&str, u64, usize)> = vec![
        ("calm", (0.02 * gen.r.len() as f64) as u64, 3),
        ("storm", (0.40 * gen.r.len() as f64) as u64, 3),
        ("calm again", (0.02 * gen.r.len() as f64) as u64, 3),
    ];

    // One database per contender so ledgers are attributable.
    let contenders: Vec<(&str, Option<Method>)> = vec![
        ("adaptive", None),
        ("static MV", Some(Method::MaterializedView)),
        ("static JI", Some(Method::JoinIndex)),
        ("static HH", Some(Method::HybridHash)),
    ];
    for (label, fixed) in contenders {
        let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
        let mut strategy: Box<dyn JoinStrategy> = match fixed {
            Some(Method::MaterializedView) => Box::new(db.materialized_view().unwrap()),
            Some(Method::JoinIndex) => Box::new(db.join_index().unwrap()),
            Some(Method::HybridHash) => Box::new(db.hybrid_hash()),
            None => {
                let initial = CachedStrategy::Mv(db.materialized_view().unwrap());
                Box::new(AdaptiveStrategy::new(db.disk(), db.params(), db.cost(), initial))
            }
        };
        let mut stream = gen.update_stream();
        println!("== {label} ==");
        let mut grand_total = 0.0;
        // Strategy-attributable cost = the strategies' own cost sections
        // (logging, passes, scans, switches); applying updates to the base
        // relation is identical shared work for every contender. Sum only
        // root spans: cumulative counts already include nested work, so
        // adding child spans on top would double-count it.
        let section_secs = |db: &Database| -> f64 {
            db.cost()
                .span_tree()
                .iter()
                .filter(|s| s.depth == 0)
                .map(|s| s.cum_ops.time_secs(db.params()))
                .sum()
        };
        for (phase, updates, epochs) in &phases {
            for e in 0..*epochs {
                db.reset_cost();
                for _ in 0..*updates {
                    let u = stream.next_update();
                    strategy.on_update(&u).unwrap();
                    db.r_mut().apply_update(&u.old, &u.new).unwrap();
                }
                let mut n = 0u64;
                strategy.execute(db.r(), db.s(), &mut |_| n += 1).unwrap();
                let secs = section_secs(&db);
                grand_total += secs;
                println!("  {phase:<11} epoch {e}: {secs:>8.2} strategy-s ({n} tuples)");
            }
        }
        println!("  TOTAL: {grand_total:.2} strategy-attributable simulated seconds\n");
    }
    println!("reading: the adaptive run should track the best static strategy in each");
    println!("phase (paying a one-off rebuild at each shift), beating every static");
    println!("strategy that is wrong in at least one phase.");
}
