//! Quickstart: the paper's Section 2 worked example, verbatim.
//!
//! Builds the Student and Project relations of Tables 1 and 2, asks the
//! paper's query
//!
//! ```sql
//! SELECT Title, Supervisor, City, Country, Name, Major
//! FROM   Project, Student
//! WHERE  Country = NativeCountry
//! ```
//!
//! through all three strategies, prints the materialized view (Table 3)
//! and the join index (Table 4), then applies an update and shows the
//! deferred maintenance machinery answering correctly.
//!
//! Run with: `cargo run --example quickstart`

use trijoin::{Database, JoinStrategy, SystemParams, Update};
use trijoin_common::codec::{decode_row, encode_row, string_key, Value};
use trijoin_common::{BaseTuple, Surrogate, ViewTuple};
use trijoin_exec::execute_collect;

fn student(sur: u32, name: &str, major: &str, country: &str) -> BaseTuple {
    let payload = encode_row(&[
        Value::Str(name.into()),
        Value::Str(major.into()),
        Value::Str(country.into()),
    ]);
    BaseTuple::with_payload(Surrogate(sur), string_key(country), &payload, 120).unwrap()
}

fn project(sur: u32, title: &str, sup: &str, city: &str, country: &str) -> BaseTuple {
    let payload = encode_row(&[
        Value::Str(title.into()),
        Value::Str(sup.into()),
        Value::Str(city.into()),
        Value::Str(country.into()),
    ]);
    BaseTuple::with_payload(Surrogate(sur), string_key(country), &payload, 120).unwrap()
}

fn print_view_row(v: &ViewTuple) {
    let proj = decode_row(&v.r_payload).unwrap();
    let stud = decode_row(&v.s_payload).unwrap();
    println!(
        "  {:<14} {:<11} {:<7} {:<8} | {:<11} {:<10}",
        proj[0], proj[1], proj[2], proj[3], stud[0], stud[1]
    );
}

fn main() {
    // Table 1 and Table 2.
    let students = vec![
        student(10, "S. Bando", "Music", "USA"),
        student(11, "G. Jetson", "Art", "Great Britain"),
        student(12, "C. Falerno", "History", "Italy"),
        student(13, "L. LaPaz", "Art", "Mexico"),
        student(14, "J. Jones", "English", "USA"),
        student(15, "P. Valens", "Archeology", "Mexico"),
    ];
    let projects = vec![
        project(30, "Deforestation", "N. Smith", "Coba", "Mexico"),
        project(31, "Facade Res.", "E. Ruggeri", "Venice", "Italy"),
        project(33, "Mural Res.", "A. Montez", "Tulum", "Mexico"),
        project(34, "Excavation", "M. Cox", "Lima", "Peru"),
    ];

    let params = SystemParams { page_size: 512, mem_pages: 16, ..SystemParams::paper_defaults() };
    let mut db = Database::new(&params, projects, students).expect("build database");
    let mut mv = db.materialized_view().expect("materialize view");
    let mut ji = db.join_index().expect("build join index");
    let mut hh = db.hybrid_hash();

    println!("== Materialized view for the query (the paper's Table 3) ==");
    println!(
        "  {:<14} {:<11} {:<7} {:<8} | {:<11} {:<10}",
        "Title", "Supervisor", "City", "Country", "Name", "Major"
    );
    let mut view = execute_collect(&mut mv, db.r(), db.s()).unwrap();
    view.sort_by_key(|v| (v.r_sur, v.s_sur));
    for row in &view {
        print_view_row(row);
    }

    println!("\n== Join index relation (the paper's Table 4) ==");
    println!("  Psur | Ssur");
    let mut pairs: Vec<(u32, u32)> = execute_collect(&mut ji, db.r(), db.s())
        .unwrap()
        .iter()
        .map(|v| (v.r_sur.0, v.s_sur.0))
        .collect();
    pairs.sort();
    for (p, s) in &pairs {
        println!("  {p:03}  | {s:03}");
    }

    // Hybrid hash recomputes from scratch and agrees.
    let recompute = execute_collect(&mut hh, db.r(), db.s()).unwrap();
    println!(
        "\nhybrid-hash recomputation: {} tuples (agrees: {})",
        recompute.len(),
        recompute.len() == view.len()
    );

    // Now the archeology department relocates the Excavation dig from Lima
    // to Tulum: Country changes Peru -> Mexico, so two new volunteer
    // matches should appear. The caches only learn of it lazily.
    println!("\n== Update: project 034 'Excavation' moves from Peru to Mexico ==");
    let old = db.r().get(Surrogate(34)).unwrap().unwrap();
    let new_payload = encode_row(&[
        Value::Str("Excavation".into()),
        Value::Str("M. Cox".into()),
        Value::Str("Tulum".into()),
        Value::Str("Mexico".into()),
    ]);
    let new =
        BaseTuple::with_payload(Surrogate(34), string_key("Mexico"), &new_payload, 120).unwrap();
    let upd = Update { old: old.clone(), new: new.clone() };
    mv.on_update(&upd).unwrap();
    ji.on_update(&upd).unwrap();
    db.r_mut().apply_update(&old, &new).unwrap();
    println!(
        "deferred: view has {} pending updates, join index {} (Pr_A filter)",
        mv.pending_updates(),
        ji.pending_updates()
    );

    db.reset_cost();
    let mut after = execute_collect(&mut mv, db.r(), db.s()).unwrap();
    let mv_secs = db.cost().elapsed_secs(db.params());
    after.sort_by_key(|v| (v.r_sur, v.s_sur));
    println!("\n== Query again through the view ({} rows now) ==", after.len());
    println!(
        "  {:<14} {:<11} {:<7} {:<8} | {:<11} {:<10}",
        "Title", "Supervisor", "City", "Country", "Name", "Major"
    );
    for row in &after {
        print_view_row(row);
    }
    db.reset_cost();
    let after_ji = execute_collect(&mut ji, db.r(), db.s()).unwrap();
    let ji_secs = db.cost().elapsed_secs(db.params());
    println!(
        "\njoin index agrees: {} rows; simulated 1989 time: view {:.4}s, index {:.4}s",
        after_ji.len(),
        mv_secs,
        ji_secs
    );
}
