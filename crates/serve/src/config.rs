//! Serving-layer configuration and the deterministic seed tree.
//!
//! Every random decision in the serving subsystem derives from one root
//! seed: shard `i` draws from `derive_indexed(root, "serve/shard", i)` and
//! client `j` from `derive_indexed(root, "serve/client", j)`. There are no
//! ad-hoc seed constants anywhere in the layer, so a serve run (and the
//! `serve_bench` binary built on it) is bit-identical under reruns and its
//! logical outputs are independent of thread scheduling.

use std::path::{Path, PathBuf};

use trijoin_common::{rng, SystemParams, TelemetryConfig};
use trijoin_storage::Durability;

/// Configuration of a [`crate::Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// System parameters every shard instantiates its own engine with
    /// (shard-per-thread is a share-nothing model: each shard owns a full
    /// simulated device and memory budget, like a node in a cluster).
    pub params: SystemParams,
    /// Number of shards (threads). Relations are hash-partitioned on the
    /// join attribute with [`trijoin_common::shard_of_key`].
    pub shards: usize,
    /// Admission batch size: pending updates are coalesced until this many
    /// accumulate (or a query/report forces a flush), then applied to the
    /// shards as per-shard differential batches.
    pub batch: usize,
    /// Capacity of the submission ring clients enqueue requests into. A
    /// full ring applies backpressure: submitters wait for the scheduler
    /// to drain a batch before the next request is admitted.
    pub ring: usize,
    /// Root seed of the deterministic seed tree.
    pub seed: u64,
    /// Windowed telemetry configuration, applied to every shard engine and
    /// to the scheduler's own batch-domain sampler. `None` disables
    /// telemetry entirely (the shard reports then carry no `series`, which
    /// is what the bit-identity goldens of the engine layer pin). The
    /// default is on: serving is where live series matter.
    pub telemetry: Option<TelemetryConfig>,
    /// Root directory for durable shard storage. `None` (the default)
    /// keeps every shard on the in-memory backend. When set, shard `i`
    /// owns `<dir>/shard<i>` — its own data files and its own write-ahead
    /// log — and the server exposes commit barriers
    /// ([`crate::ClientSession::commit`]) plus recover-mode startup
    /// ([`crate::Server::recover`]): each shard replays *its own* WAL,
    /// shard-locally, with no cross-shard coordination needed because
    /// commits only ever happen at server-wide barriers (every shard's
    /// last commit is the same logical barrier).
    pub durable_dir: Option<PathBuf>,
    /// Durability level of commit barriers ([`crate::ClientSession::commit`]).
    /// [`Durability::Barrier`] (the default) fsyncs every shard's WAL
    /// inside the barrier; [`Durability::Deferred`] turns barriers into
    /// group-commit appends — consecutive barriers coalesce into one
    /// fsync per shard, issued when the scheduler goes idle, at the next
    /// report, or at an explicit [`crate::ClientSession::sync`]. A crash
    /// before that seal rolls the deferred barriers back wholesale.
    /// Irrelevant without `durable_dir`.
    pub durability: Durability,
    /// True to serve adaptively: every shard tracks its own observed
    /// update/query mix, `Pr_A`, and key skew, re-prices MV/JI/HH with
    /// the §3 cost model after each query, and *migrates* incrementally
    /// (old structure serves until the new one is caught up) when a
    /// different method wins by the hysteresis margin. The `Method` of
    /// query requests becomes advisory only. Off by default — the fixed
    /// serving path (and its golden ledgers) is byte-identical to a build
    /// without this field.
    pub adaptive: bool,
}

impl ServeConfig {
    /// A serving configuration with the given shard count and defaults for
    /// the rest (batch = 64, ring = 1024, seed = 42, telemetry on).
    pub fn new(params: SystemParams, shards: usize) -> Self {
        ServeConfig {
            params,
            shards,
            batch: 64,
            ring: 1024,
            seed: 42,
            telemetry: Some(TelemetryConfig::default()),
            durable_dir: None,
            durability: Durability::Barrier,
            adaptive: false,
        }
    }

    /// The storage directory of shard `i` (`None` when not durable).
    pub fn shard_dir(&self, i: usize) -> Option<PathBuf> {
        self.durable_dir.as_deref().map(|d: &Path| d.join(format!("shard{i}")))
    }

    /// The derived RNG seed of shard `i`'s stream.
    pub fn shard_seed(&self, i: usize) -> u64 {
        rng::derive_indexed(self.seed, "serve/shard", i as u64)
    }

    /// The derived RNG seed of client `j`'s stream.
    pub fn client_seed(&self, j: usize) -> u64 {
        rng::derive_indexed(self.seed, "serve/client", j as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_tree_is_stable_and_disjoint() {
        let cfg = ServeConfig { seed: 7, ..ServeConfig::new(SystemParams::default(), 4) };
        assert_eq!(cfg.shard_seed(0), cfg.shard_seed(0));
        assert_ne!(cfg.shard_seed(0), cfg.shard_seed(1));
        assert_ne!(cfg.shard_seed(1), cfg.client_seed(1), "shard and client streams differ");
        let other = ServeConfig { seed: 8, ..cfg.clone() };
        assert_ne!(cfg.shard_seed(2), other.shard_seed(2), "root seed feeds every stream");
    }
}
