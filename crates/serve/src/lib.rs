//! `trijoin-serve`: a sharded, multi-threaded query-serving layer over the
//! single-threaded trijoin engine.
//!
//! The engine models one machine of the paper's era — a single device, a
//! single memory budget, `Rc`-based handles. This crate scales it out the
//! way an equi-join shards: both relations are hash-partitioned on the
//! join attribute ([`trijoin_common::shard_of_key`]), so
//! `R ⋈ S = ⋃ᵢ (Rᵢ ⋈ Sᵢ)` exhaustively and disjointly, and each partition
//! pair is owned by one *shard thread* with its own simulated disk,
//! [`trijoin::Database`], and cached per-strategy state (materialized
//! view, join index, hybrid-hash).
//!
//! On top sit four pieces:
//!
//! - **Submission/completion ring** ([`server`]): client sessions enqueue
//!   requests into one fixed-capacity ring (backpressure when full);
//!   updates are fire-and-forget, blocking calls take a completion
//!   ticket, and the scheduler drains whole slices per wakeup and posts
//!   all of a slice's completions with a single notification — no
//!   per-request channel round-trips.
//! - **Admission scheduler** ([`Server`]): updates are coalesced into
//!   per-shard differential batches (the serving analogue of the paper's
//!   deferred maintenance) and flushed when a batch fills or a query
//!   arrives. Channel FIFO ordering per shard makes apply-before-query a
//!   structural guarantee — and is also what lets the scheduler keep
//!   draining and flushing new update batches *while* a query is in
//!   flight on the shards (pipelined differential application).
//! - **Router** ([`router::route`]): mutations follow their join key; an
//!   update that changes the join attribute across shards splits into a
//!   delete and an insert — the paper's own decomposition of an update.
//! - **Rollup observability**: a [`Request::Report`] snapshots every
//!   shard's [`trijoin_common::RunReport`] and merges them into a
//!   [`trijoin_common::ShardedRunReport`] whose rollup metrics are the
//!   exact per-shard sums, with scheduler-only counters overlaid under
//!   the reserved `serve.` prefix (including ring depth/latency stats).
//!
//! Determinism is end-to-end: one root seed ([`ServeConfig::seed`])
//! derives every shard and client RNG stream, multi-client traffic uses
//! disjoint ownership classes ([`ClientTraffic`]), and each shard sorts
//! its answer by the globally-unique surrogate pair so the server's
//! streaming k-way merge yields one total order — any shard count and
//! any client interleaving produce the same answers at batch boundaries.

pub mod adaptive;
pub mod config;
pub mod router;
pub mod server;
pub mod shard;
pub mod traffic;
pub mod validate;

pub use adaptive::{AdaptiveShard, MigrationState};
pub use config::ServeConfig;
pub use server::{ClientSession, Request, Response, Server};
pub use shard::{ShardCommand, ShardSpec};
pub use traffic::{merged_current, ClientTraffic};

#[cfg(test)]
mod tests {
    use super::*;

    /// Everything that crosses a thread boundary must be `Send` even
    /// though the engine underneath is `Rc`-based and is not.
    #[test]
    fn boundary_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Request>();
        assert_send::<Response>();
        assert_send::<ShardCommand>();
        assert_send::<ShardSpec>();
        assert_send::<ClientSession>();
        assert_send::<ServeConfig>();
    }
}
