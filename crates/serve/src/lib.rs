//! `trijoin-serve`: a sharded, multi-threaded query-serving layer over the
//! single-threaded trijoin engine.
//!
//! The engine models one machine of the paper's era — a single device, a
//! single memory budget, `Rc`-based handles. This crate scales it out the
//! way an equi-join shards: both relations are hash-partitioned on the
//! join attribute ([`trijoin_common::shard_of_key`]), so
//! `R ⋈ S = ⋃ᵢ (Rᵢ ⋈ Sᵢ)` exhaustively and disjointly, and each partition
//! pair is owned by one *shard thread* with its own simulated disk,
//! [`trijoin::Database`], and cached per-strategy state (materialized
//! view, join index, hybrid-hash).
//!
//! On top sit three pieces:
//!
//! - **Admission scheduler** ([`Server`]): client sessions submit queries
//!   and updates; updates are coalesced into per-shard differential
//!   batches (the serving analogue of the paper's deferred maintenance)
//!   and flushed when a batch fills or a query arrives. Channel FIFO
//!   ordering makes apply-before-query a structural guarantee.
//! - **Router** ([`router::route`]): mutations follow their join key; an
//!   update that changes the join attribute across shards splits into a
//!   delete and an insert — the paper's own decomposition of an update.
//! - **Rollup observability**: a [`Request::Report`] snapshots every
//!   shard's [`trijoin_common::RunReport`] and merges them into a
//!   [`trijoin_common::ShardedRunReport`] whose rollup metrics are the
//!   exact per-shard sums, with scheduler-only counters overlaid under
//!   the reserved `serve.` prefix.
//!
//! Determinism is end-to-end: one root seed ([`ServeConfig::seed`])
//! derives every shard and client RNG stream, multi-client traffic uses
//! disjoint ownership classes ([`ClientTraffic`]), and merged query
//! results are sorted into a total order by globally-unique surrogate
//! pairs — so any shard count and any client interleaving produce the
//! same answers at batch boundaries.

pub mod config;
pub mod router;
pub mod server;
pub mod shard;
pub mod traffic;
pub mod validate;

pub use config::ServeConfig;
pub use server::{ClientSession, Request, Response, Server};
pub use shard::{ShardCommand, ShardSpec};
pub use traffic::{merged_current, ClientTraffic};

#[cfg(test)]
mod tests {
    use super::*;

    /// Everything that crosses a thread boundary must be `Send` even
    /// though the engine underneath is `Rc`-based and is not.
    #[test]
    fn boundary_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Request>();
        assert_send::<Response>();
        assert_send::<ShardCommand>();
        assert_send::<ShardSpec>();
        assert_send::<ClientSession>();
        assert_send::<ServeConfig>();
    }
}
