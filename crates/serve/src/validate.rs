//! Report-file validation: the library behind `trijoin report-validate`.
//!
//! The CI schema gate feeds every emitted JSON artifact through these
//! functions. The file's shape is *sniffed*: a sharded serve report
//! (`shards` + `rollup`), a bench results file (`figure` + `rows`), or a
//! plain run report — each must deserialize losslessly into its schema,
//! and cross-field invariants (rollup counter sums, the `serve.`
//! namespace reservation, shard-count-invariant checksums) are
//! re-verified from the raw JSON. Every rejection names the file, the
//! offending field, and what was expected, because a CI gate that says
//! "invalid" without saying *where* just moves the debugging to a human.
//!
//! Functions return the success summary as a `String` (the CLI prints
//! it) so every path is unit-testable without capturing stdout.

use trijoin_common::{Json, RunReport, ShardedRunReport};

/// Validate the report file at `path` (reads, parses, sniffs, checks).
pub fn validate_report_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    validate_report_json(path, &json)
}

/// Validate already-parsed JSON, dispatching on its sniffed schema.
pub fn validate_report_json(path: &str, json: &Json) -> Result<String, String> {
    if json.get("shards").is_some() && json.get("rollup").is_some() {
        return validate_sharded_report(path, json);
    }
    if json.get("figure").is_some() && json.get("rows").is_some() {
        return validate_bench_results(path, json);
    }
    validate_run_report(path, json)
}

/// Validate a plain run report (`trijoin run --report`).
pub fn validate_run_report(path: &str, json: &Json) -> Result<String, String> {
    for key in ["params", "spans", "metrics", "events"] {
        if json.get(key).is_none() {
            return Err(format!("{path}: run report is missing top-level key {key:?}"));
        }
    }
    let report = RunReport::from_json(json).map_err(|e| format!("{path}: schema drift: {e}"))?;
    let mut summary = format!(
        "{path}: ok — report {:?} with {} spans, {} metrics counters, {} events, {} deltas",
        report.name,
        report.spans.len(),
        report.metrics.counters.len(),
        report.events.len(),
        report.deltas.len()
    );
    if report.metrics.counter("pool.hits") + report.metrics.counter("pool.misses") > 0 {
        summary.push_str(&format!(
            "\n{path}: pool hit rate {:.1}%, eviction rate {:.1}%",
            report.pool_hit_rate() * 100.0,
            report.pool_eviction_rate() * 100.0
        ));
    }
    Ok(summary)
}

/// Rollup counters a sharded serve report must carry. A scheduler that
/// never went through the ring produces a report without them, and that
/// report is the bug: every serve request is submitted via the ring.
const REQUIRED_ROLLUP_COUNTERS: &[&str] = &["serve.ring.submitted"];

/// Rollup gauges a sharded serve report must carry: the ring geometry
/// and the end-to-end latency percentiles the bench harness graphs.
const REQUIRED_ROLLUP_GAUGES: &[&str] =
    &["serve.ring.capacity", "serve.latency.p50_us", "serve.latency.p99_us"];

/// Validate a sharded serve report: schema round-trip plus the rollup
/// invariant — every counter outside the scheduler-only `serve.`
/// namespace must be the exact sum of the per-shard counters — plus the
/// serve-path instrumentation contract (ring counters and latency
/// gauges must be present in the rollup).
pub fn validate_sharded_report(path: &str, json: &Json) -> Result<String, String> {
    let report =
        ShardedRunReport::from_json(json).map_err(|e| format!("{path}: schema drift: {e}"))?;
    if report.shards.is_empty() {
        return Err(format!("{path}: sharded report carries no shards"));
    }
    for shard in &report.shards {
        for (key, _) in &shard.metrics.counters {
            if key.starts_with("serve.") {
                return Err(format!(
                    "{path}: shard {:?} uses the scheduler-only namespace: {key}",
                    shard.name
                ));
            }
        }
    }
    for (key, value) in &report.rollup.metrics.counters {
        if key.starts_with("serve.") {
            continue;
        }
        let sum: u64 = report.shards.iter().map(|s| s.metrics.counter(key)).sum();
        if *value != sum {
            return Err(format!(
                "{path}: rollup counter {key} = {value} but the shards sum to {sum}"
            ));
        }
    }
    for key in REQUIRED_ROLLUP_COUNTERS {
        if !report.rollup.metrics.counters.iter().any(|(k, _)| k == key) {
            return Err(format!("{path}: rollup is missing required serve counter {key:?}"));
        }
    }
    for key in REQUIRED_ROLLUP_GAUGES {
        if report.rollup.metrics.gauge(key).is_none() {
            return Err(format!("{path}: rollup is missing required serve gauge {key:?}"));
        }
    }
    Ok(format!(
        "{path}: ok — sharded report {:?} with {} shards, {} rollup counters, {} rollup events",
        report.name,
        report.shards.len(),
        report.rollup.metrics.counters.len(),
        report.rollup.events.len()
    ))
}

/// Validate a bench results file (`figure` + non-empty `rows` of objects);
/// `serve` results additionally carry the scaling columns and a result
/// checksum that must be identical on every row (the answer must not
/// depend on the shard count).
pub fn validate_bench_results(path: &str, json: &Json) -> Result<String, String> {
    let figure = json
        .get("figure")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: \"figure\" must be a string"))?
        .to_string();
    let rows = json
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: \"rows\" must be an array"))?;
    if rows.is_empty() {
        return Err(format!("{path}: \"rows\" is empty"));
    }
    if figure == "wallclock" {
        for (i, row) in rows.iter().enumerate() {
            if row.get("bench").and_then(Json::as_str).is_none() {
                return Err(format!("{path}: wallclock row {i} is missing string \"bench\""));
            }
            for key in ["secs", "iters"] {
                match row.get(key).and_then(Json::as_f64) {
                    Some(v) if v > 0.0 => {}
                    _ => {
                        return Err(format!(
                            "{path}: wallclock row {i} needs positive numeric {key:?}"
                        ));
                    }
                }
            }
        }
    }
    if figure == "serve" {
        let mut checksums = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for key in ["shards", "clients", "queries", "updates", "qps", "p50_us", "p99_us"] {
                if row.get(key).and_then(Json::as_f64).is_none() {
                    return Err(format!("{path}: serve row {i} is missing numeric {key:?}"));
                }
            }
            let checksum = row
                .get("checksum")
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| {
                    format!("{path}: serve row {i} is missing a hex \"checksum\" string")
                })?;
            checksums.push(checksum);
        }
        if checksums.windows(2).any(|w| w[0] != w[1]) {
            return Err(format!(
                "{path}: result checksums differ across shard counts: {checksums:?}"
            ));
        }
    }
    Ok(format!("{path}: ok — bench results {figure:?} with {} rows", rows.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal well-formed serve bench row.
    fn serve_row(checksum: &str) -> Json {
        let mut row = Json::obj();
        for key in ["shards", "clients", "queries", "updates", "qps", "p50_us", "p99_us"] {
            row = row.set(key, 1.0);
        }
        row.set("checksum", checksum)
    }

    #[test]
    fn rejects_unparseable_files_with_the_path_in_the_message() {
        let err = validate_report_file("/nonexistent/report.json").unwrap_err();
        assert!(err.starts_with("/nonexistent/report.json:"), "{err}");

        let dir = std::env::temp_dir().join("trijoin-validate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = validate_report_file(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("invalid JSON"), "{err}");
    }

    #[test]
    fn run_report_missing_top_level_keys_is_named() {
        for key in ["params", "spans", "metrics", "events"] {
            let mut json = Json::obj();
            for k in ["params", "spans", "metrics", "events"] {
                if k != key {
                    json = json.set(k, Json::obj());
                }
            }
            let err = validate_report_json("r.json", &json).unwrap_err();
            assert!(err.contains(key), "dropping {key} must be reported: {err}");
            assert!(err.contains("r.json"), "{err}");
        }
    }

    #[test]
    fn run_report_schema_drift_is_rejected() {
        // All keys present, but none hold the right shapes.
        let json = Json::obj()
            .set("params", Json::Arr(vec![]))
            .set("spans", "nope")
            .set("metrics", Json::obj())
            .set("events", Json::obj());
        let err = validate_report_json("r.json", &json).unwrap_err();
        assert!(err.contains("schema drift"), "{err}");
    }

    #[test]
    fn sharded_report_with_no_shards_is_rejected() {
        let json = Json::obj()
            .set("name", "serve")
            .set("shards", Json::Arr(vec![]))
            .set("rollup", Json::obj());
        let err = validate_report_json("s.json", &json).unwrap_err();
        // Either the schema round-trip or the emptiness check fires; both
        // must name the file.
        assert!(err.starts_with("s.json:"), "{err}");
    }

    #[test]
    fn bench_results_error_paths() {
        let base = Json::obj().set("figure", "serve");
        let err = validate_report_json("b.json", &base.clone().set("rows", "x")).unwrap_err();
        assert!(err.contains("\"rows\" must be an array"), "{err}");

        let err = validate_report_json("b.json", &base.clone().set("rows", Json::Arr(vec![])))
            .unwrap_err();
        assert!(err.contains("empty"), "{err}");

        // A serve row missing its checksum.
        let mut row = serve_row("ff");
        if let Json::Obj(members) = &mut row {
            members.retain(|(k, _)| k != "checksum");
        }
        let err = validate_report_json("b.json", &base.clone().set("rows", Json::Arr(vec![row])))
            .unwrap_err();
        assert!(err.contains("checksum"), "{err}");

        // Checksums must be shard-count-invariant.
        let rows = Json::Arr(vec![serve_row("aa"), serve_row("bb")]);
        let err = validate_report_json("b.json", &base.clone().set("rows", rows)).unwrap_err();
        assert!(err.contains("checksums differ"), "{err}");

        // And a well-formed file passes.
        let rows = Json::Arr(vec![serve_row("aa"), serve_row("aa")]);
        let ok = validate_report_json("b.json", &base.set("rows", rows)).unwrap();
        assert!(ok.contains("ok"), "{ok}");
    }

    #[test]
    fn sharded_report_requires_ring_and_latency_instrumentation() {
        use crate::{ServeConfig, Server};
        use trijoin::Method;
        use trijoin_common::{BaseTuple, Surrogate, SystemParams};

        let params = SystemParams { page_size: 512, mem_pages: 24, ..Default::default() };
        let config = ServeConfig { batch: 4, seed: 7, ..ServeConfig::new(params, 2) };
        let tuples: Vec<BaseTuple> =
            (0..24).map(|i| BaseTuple::padded(Surrogate(i), (i as u64) % 5, 48)).collect();
        let server = Server::start(&config, tuples.clone(), tuples).unwrap();
        let session = server.session().unwrap();
        session.query(Method::HybridHash).unwrap();
        let report = session.report().unwrap();

        // A live server's report satisfies the instrumentation contract.
        let ok = validate_report_json("s.json", &report.to_json()).unwrap();
        assert!(ok.contains("2 shards"), "{ok}");

        // Strip the ring counter: the validator must name it.
        let mut broken = report.clone();
        broken.rollup.metrics.counters.retain(|(k, _)| k != "serve.ring.submitted");
        let err = validate_report_json("s.json", &broken.to_json()).unwrap_err();
        assert!(err.contains("serve.ring.submitted"), "{err}");

        // Strip each required gauge in turn.
        for gauge in ["serve.ring.capacity", "serve.latency.p50_us", "serve.latency.p99_us"] {
            let mut broken = report.clone();
            broken.rollup.metrics.gauges.retain(|(k, _)| k != gauge);
            let err = validate_report_json("s.json", &broken.to_json()).unwrap_err();
            assert!(err.contains(gauge), "{err}");
        }
    }

    #[test]
    fn wallclock_rows_need_positive_numbers() {
        let base = Json::obj().set("figure", "wallclock");
        let row = Json::obj().set("bench", "mv_cycle").set("secs", 0.0).set("iters", 3u64);
        let err = validate_report_json("w.json", &base.clone().set("rows", Json::Arr(vec![row])))
            .unwrap_err();
        assert!(err.contains("secs"), "{err}");

        let row = Json::obj().set("bench", "mv_cycle").set("secs", 0.5).set("iters", 3u64);
        let ok = validate_report_json("w.json", &base.set("rows", Json::Arr(vec![row]))).unwrap();
        assert!(ok.contains("ok"), "{ok}");
    }
}
