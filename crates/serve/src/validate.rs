//! Report-file validation: the library behind `trijoin report-validate`.
//!
//! The CI schema gate feeds every emitted JSON artifact through these
//! functions. The file's shape is *sniffed*: a sharded serve report
//! (`shards` + `rollup`), a bench results file (`figure` + `rows`), or a
//! plain run report — each must deserialize losslessly into its schema,
//! and cross-field invariants (rollup counter sums, the `serve.`
//! namespace reservation, shard-count-invariant checksums) are
//! re-verified from the raw JSON. Every rejection names the file, the
//! offending field, and what was expected, because a CI gate that says
//! "invalid" without saying *where* just moves the debugging to a human.
//!
//! Functions return the success summary as a `String` (the CLI prints
//! it) so every path is unit-testable without capturing stdout.

use trijoin_common::{Json, RunReport, SeriesSnapshot, ShardedRunReport};

/// Validate the report file at `path` (reads, parses, sniffs, checks).
pub fn validate_report_file(path: &str) -> Result<String, String> {
    validate_report_file_with(path, 0)
}

/// Like [`validate_report_file`], additionally requiring every telemetry
/// series carried by (per-shard) run reports to hold at least
/// `min_series_windows` closed windows. `0` keeps series optional —
/// structural checks still run on any series that is present.
pub fn validate_report_file_with(path: &str, min_series_windows: usize) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    validate_report_json_with(path, &json, min_series_windows)
}

/// Validate already-parsed JSON, dispatching on its sniffed schema.
pub fn validate_report_json(path: &str, json: &Json) -> Result<String, String> {
    validate_report_json_with(path, json, 0)
}

/// [`validate_report_json`] with a minimum-series-windows requirement.
pub fn validate_report_json_with(
    path: &str,
    json: &Json,
    min_series_windows: usize,
) -> Result<String, String> {
    if json.get("shards").is_some() && json.get("rollup").is_some() {
        return validate_sharded_report_with(path, json, min_series_windows);
    }
    if json.get("figure").is_some() && json.get("rows").is_some() {
        return validate_bench_results(path, json);
    }
    validate_run_report_with(path, json, min_series_windows)
}

/// Structural invariants of one report's telemetry series: non-empty
/// identity, monotone window indices, ordered tick ranges, ordered
/// quantiles, finite audit ratios — plus the minimum-window floor when
/// the caller gates on sustained sampling.
fn check_series(
    path: &str,
    owner: &str,
    series: &[SeriesSnapshot],
    min_windows: usize,
) -> Result<(), String> {
    if min_windows > 0 && series.is_empty() {
        return Err(format!("{path}: {owner} carries no telemetry series"));
    }
    for snap in series {
        let tag = format!("{path}: {owner} series {:?}", snap.name);
        if snap.name.is_empty() || snap.domain.is_empty() {
            return Err(format!("{tag}: empty name or domain"));
        }
        if snap.window_ticks == 0 {
            return Err(format!("{tag}: window_ticks must be positive"));
        }
        if snap.windows.len() < min_windows {
            return Err(format!(
                "{tag}: {} windows, need at least {min_windows}",
                snap.windows.len()
            ));
        }
        for pair in snap.windows.windows(2) {
            if pair[1].index <= pair[0].index {
                return Err(format!(
                    "{tag}: window indices must increase ({} then {})",
                    pair[0].index, pair[1].index
                ));
            }
        }
        for w in &snap.windows {
            if w.end_tick < w.start_tick {
                return Err(format!(
                    "{tag}: window {} closes before it opens ({} < {})",
                    w.index, w.end_tick, w.start_tick
                ));
            }
            for (name, q) in &w.quantiles {
                if q.p99 < q.p50 {
                    return Err(format!(
                        "{tag}: window {} quantile {name:?} has p99 {} < p50 {}",
                        w.index, q.p99, q.p50
                    ));
                }
            }
            for a in &w.audit {
                if !a.log2_ratio.is_finite() {
                    return Err(format!(
                        "{tag}: window {} audit {:?} has non-finite log2_ratio",
                        w.index, a.section
                    ));
                }
            }
        }
        for a in &snap.audit {
            if a.samples == 0 {
                return Err(format!("{tag}: lifetime audit {:?} has zero samples", a.section));
            }
            if !a.log2_ratio.is_finite() {
                return Err(format!("{tag}: lifetime audit {:?} non-finite ratio", a.section));
            }
        }
    }
    Ok(())
}

/// When a report advertises the durable backend (the `wal.enabled`
/// gauge), the WAL instrumentation contract applies: commit accounting
/// and the live log-length gauge must be present. A durable run whose
/// report carries no `wal.*` counters is a report-capture bug — the
/// commit path stamps them unconditionally.
fn check_wal_marker(
    path: &str,
    owner: &str,
    metrics: &trijoin_common::MetricsSnapshot,
) -> Result<(), String> {
    if metrics.gauge("wal.enabled").unwrap_or(0.0) < 1.0 {
        return Ok(());
    }
    for counter in ["wal.commits", "wal.fsyncs", "wal.frames_skipped"] {
        if !metrics.counters.iter().any(|(k, _)| k == counter) {
            return Err(format!(
                "{path}: {owner} sets wal.enabled but carries no {counter} counter"
            ));
        }
    }
    if metrics.gauge("wal.len_bytes").is_none() {
        return Err(format!("{path}: {owner} sets wal.enabled but carries no wal.len_bytes gauge"));
    }
    Ok(())
}

/// When a sharded report advertises adaptive serving (the
/// `serve.adaptive` rollup gauge), the migration instrumentation
/// contract applies: the rollup must carry the migration count and the
/// incremental-rebuild page accounting. Adaptive shards register both
/// counters at construction, so even a run that never migrates reports
/// them — their absence means the report was captured from a build
/// without the migration machinery.
fn check_adaptive_marker(
    path: &str,
    metrics: &trijoin_common::MetricsSnapshot,
) -> Result<(), String> {
    if metrics.gauge("serve.adaptive").unwrap_or(0.0) < 1.0 {
        return Ok(());
    }
    for counter in ["migrate.count", "migrate.rebuild_pages"] {
        if !metrics.counters.iter().any(|(k, _)| k == counter) {
            return Err(format!(
                "{path}: rollup sets serve.adaptive but carries no {counter} counter"
            ));
        }
    }
    Ok(())
}

/// Validate a plain run report (`trijoin run --report`).
pub fn validate_run_report(path: &str, json: &Json) -> Result<String, String> {
    validate_run_report_with(path, json, 0)
}

/// [`validate_run_report`] with a minimum-series-windows requirement.
pub fn validate_run_report_with(
    path: &str,
    json: &Json,
    min_series_windows: usize,
) -> Result<String, String> {
    for key in ["params", "spans", "metrics", "events"] {
        if json.get(key).is_none() {
            return Err(format!("{path}: run report is missing top-level key {key:?}"));
        }
    }
    let report = RunReport::from_json(json).map_err(|e| format!("{path}: schema drift: {e}"))?;
    check_series(path, "run report", &report.series, min_series_windows)?;
    check_wal_marker(path, "run report", &report.metrics)?;
    let mut summary = format!(
        "{path}: ok — report {:?} with {} spans, {} metrics counters, {} events, {} deltas",
        report.name,
        report.spans.len(),
        report.metrics.counters.len(),
        report.events.len(),
        report.deltas.len()
    );
    if !report.series.is_empty() {
        let windows: usize = report.series.iter().map(|s| s.windows.len()).sum();
        summary.push_str(&format!(
            "\n{path}: {} telemetry series, {windows} closed windows",
            report.series.len()
        ));
    }
    let dropped = report.metrics.counter("events.dropped");
    if dropped > 0 {
        summary.push_str(&format!(
            "\n{path}: warning — event ring overflowed, {dropped} events dropped"
        ));
    }
    if report.metrics.counter("pool.hits") + report.metrics.counter("pool.misses") > 0 {
        summary.push_str(&format!(
            "\n{path}: pool hit rate {:.1}%, eviction rate {:.1}%",
            report.pool_hit_rate() * 100.0,
            report.pool_eviction_rate() * 100.0
        ));
    }
    Ok(summary)
}

/// Rollup counters a sharded serve report must carry. A scheduler that
/// never went through the ring produces a report without them, and that
/// report is the bug: every serve request is submitted via the ring.
const REQUIRED_ROLLUP_COUNTERS: &[&str] = &["serve.ring.submitted"];

/// Rollup gauges a sharded serve report must carry: the ring geometry
/// and the end-to-end latency percentiles the bench harness graphs.
const REQUIRED_ROLLUP_GAUGES: &[&str] =
    &["serve.ring.capacity", "serve.latency.p50_us", "serve.latency.p99_us"];

/// Validate a sharded serve report: schema round-trip plus the rollup
/// invariant — every counter outside the scheduler-only `serve.`
/// namespace must be the exact sum of the per-shard counters — plus the
/// serve-path instrumentation contract (ring counters and latency
/// gauges must be present in the rollup).
pub fn validate_sharded_report(path: &str, json: &Json) -> Result<String, String> {
    validate_sharded_report_with(path, json, 0)
}

/// [`validate_sharded_report`] with a minimum-series-windows requirement
/// applied to every shard's engine series (the scheduler's batch-domain
/// `serve` series in the rollup only needs to exist and be well-formed —
/// its window count scales with batches, not engine work).
pub fn validate_sharded_report_with(
    path: &str,
    json: &Json,
    min_series_windows: usize,
) -> Result<String, String> {
    let report =
        ShardedRunReport::from_json(json).map_err(|e| format!("{path}: schema drift: {e}"))?;
    if report.shards.is_empty() {
        return Err(format!("{path}: sharded report carries no shards"));
    }
    for shard in &report.shards {
        check_series(path, &shard.name, &shard.series, min_series_windows)?;
    }
    check_series(path, "rollup", &report.rollup.series, 0)?;
    if min_series_windows > 0 && !report.rollup.series.iter().any(|s| s.name == "serve") {
        return Err(format!("{path}: rollup is missing the scheduler's \"serve\" series"));
    }
    for shard in &report.shards {
        check_wal_marker(path, &shard.name, &shard.metrics)?;
        for (key, _) in &shard.metrics.counters {
            if key.starts_with("serve.") {
                return Err(format!(
                    "{path}: shard {:?} uses the scheduler-only namespace: {key}",
                    shard.name
                ));
            }
        }
    }
    for (key, value) in &report.rollup.metrics.counters {
        if key.starts_with("serve.") {
            continue;
        }
        let sum: u64 = report.shards.iter().map(|s| s.metrics.counter(key)).sum();
        if *value != sum {
            return Err(format!(
                "{path}: rollup counter {key} = {value} but the shards sum to {sum}"
            ));
        }
    }
    for key in REQUIRED_ROLLUP_COUNTERS {
        if !report.rollup.metrics.counters.iter().any(|(k, _)| k == key) {
            return Err(format!("{path}: rollup is missing required serve counter {key:?}"));
        }
    }
    for key in REQUIRED_ROLLUP_GAUGES {
        if report.rollup.metrics.gauge(key).is_none() {
            return Err(format!("{path}: rollup is missing required serve gauge {key:?}"));
        }
    }
    check_adaptive_marker(path, &report.rollup.metrics)?;
    Ok(format!(
        "{path}: ok — sharded report {:?} with {} shards, {} rollup counters, {} rollup events",
        report.name,
        report.shards.len(),
        report.rollup.metrics.counters.len(),
        report.rollup.events.len()
    ))
}

/// Validate a bench results file (`figure` + non-empty `rows` of objects);
/// `serve` results additionally carry the scaling columns and a result
/// checksum that must be identical on every row (the answer must not
/// depend on the shard count).
pub fn validate_bench_results(path: &str, json: &Json) -> Result<String, String> {
    let figure = json
        .get("figure")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: \"figure\" must be a string"))?
        .to_string();
    let rows = json
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: \"rows\" must be an array"))?;
    if rows.is_empty() {
        return Err(format!("{path}: \"rows\" is empty"));
    }
    if figure == "wallclock" {
        for (i, row) in rows.iter().enumerate() {
            if row.get("bench").and_then(Json::as_str).is_none() {
                return Err(format!("{path}: wallclock row {i} is missing string \"bench\""));
            }
            for key in ["secs", "iters"] {
                match row.get(key).and_then(Json::as_f64) {
                    Some(v) if v > 0.0 => {}
                    _ => {
                        return Err(format!(
                            "{path}: wallclock row {i} needs positive numeric {key:?}"
                        ));
                    }
                }
            }
        }
    }
    if figure == "serve" {
        let mut checksums = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for key in ["shards", "clients", "queries", "updates", "qps", "p50_us", "p99_us"] {
                if row.get(key).and_then(Json::as_f64).is_none() {
                    return Err(format!("{path}: serve row {i} is missing numeric {key:?}"));
                }
            }
            let checksum = row
                .get("checksum")
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| {
                    format!("{path}: serve row {i} is missing a hex \"checksum\" string")
                })?;
            checksums.push(checksum);
        }
        if checksums.windows(2).any(|w| w[0] != w[1]) {
            return Err(format!(
                "{path}: result checksums differ across shard counts: {checksums:?}"
            ));
        }
    }
    Ok(format!("{path}: ok — bench results {figure:?} with {} rows", rows.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal well-formed serve bench row.
    fn serve_row(checksum: &str) -> Json {
        let mut row = Json::obj();
        for key in ["shards", "clients", "queries", "updates", "qps", "p50_us", "p99_us"] {
            row = row.set(key, 1.0);
        }
        row.set("checksum", checksum)
    }

    #[test]
    fn rejects_unparseable_files_with_the_path_in_the_message() {
        let err = validate_report_file("/nonexistent/report.json").unwrap_err();
        assert!(err.starts_with("/nonexistent/report.json:"), "{err}");

        let dir = std::env::temp_dir().join("trijoin-validate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = validate_report_file(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("invalid JSON"), "{err}");
    }

    #[test]
    fn run_report_missing_top_level_keys_is_named() {
        for key in ["params", "spans", "metrics", "events"] {
            let mut json = Json::obj();
            for k in ["params", "spans", "metrics", "events"] {
                if k != key {
                    json = json.set(k, Json::obj());
                }
            }
            let err = validate_report_json("r.json", &json).unwrap_err();
            assert!(err.contains(key), "dropping {key} must be reported: {err}");
            assert!(err.contains("r.json"), "{err}");
        }
    }

    #[test]
    fn run_report_schema_drift_is_rejected() {
        // All keys present, but none hold the right shapes.
        let json = Json::obj()
            .set("params", Json::Arr(vec![]))
            .set("spans", "nope")
            .set("metrics", Json::obj())
            .set("events", Json::obj());
        let err = validate_report_json("r.json", &json).unwrap_err();
        assert!(err.contains("schema drift"), "{err}");
    }

    #[test]
    fn sharded_report_with_no_shards_is_rejected() {
        let json = Json::obj()
            .set("name", "serve")
            .set("shards", Json::Arr(vec![]))
            .set("rollup", Json::obj());
        let err = validate_report_json("s.json", &json).unwrap_err();
        // Either the schema round-trip or the emptiness check fires; both
        // must name the file.
        assert!(err.starts_with("s.json:"), "{err}");
    }

    #[test]
    fn durable_reports_must_carry_wal_accounting() {
        use trijoin_common::MetricsSnapshot;

        let mut metrics = MetricsSnapshot {
            counters: vec![],
            gauges: vec![("wal.enabled".into(), 1.0)],
            histograms: vec![],
        };
        let err = check_wal_marker("d.json", "run report", &metrics).unwrap_err();
        assert!(err.contains("wal.commits"), "{err}");
        assert!(err.contains("d.json"), "{err}");

        // The group-commit counters are part of the contract too: a
        // durable report must say how many fsyncs its commits cost and
        // how many clean frames the skip-clean encoder dropped.
        metrics.counters.push(("wal.commits".into(), 3));
        let err = check_wal_marker("d.json", "run report", &metrics).unwrap_err();
        assert!(err.contains("wal.fsyncs"), "{err}");
        metrics.counters.push(("wal.fsyncs".into(), 2));
        let err = check_wal_marker("d.json", "run report", &metrics).unwrap_err();
        assert!(err.contains("wal.frames_skipped"), "{err}");
        metrics.counters.push(("wal.frames_skipped".into(), 0));

        let err = check_wal_marker("d.json", "run report", &metrics).unwrap_err();
        assert!(err.contains("wal.len_bytes"), "{err}");

        metrics.gauges.push(("wal.len_bytes".into(), 0.0));
        check_wal_marker("d.json", "run report", &metrics).unwrap();

        // Reports that never enabled the WAL owe nothing.
        let inert = MetricsSnapshot { counters: vec![], gauges: vec![], histograms: vec![] };
        check_wal_marker("m.json", "run report", &inert).unwrap();
    }

    #[test]
    fn bench_results_error_paths() {
        let base = Json::obj().set("figure", "serve");
        let err = validate_report_json("b.json", &base.clone().set("rows", "x")).unwrap_err();
        assert!(err.contains("\"rows\" must be an array"), "{err}");

        let err = validate_report_json("b.json", &base.clone().set("rows", Json::Arr(vec![])))
            .unwrap_err();
        assert!(err.contains("empty"), "{err}");

        // A serve row missing its checksum.
        let mut row = serve_row("ff");
        if let Json::Obj(members) = &mut row {
            members.retain(|(k, _)| k != "checksum");
        }
        let err = validate_report_json("b.json", &base.clone().set("rows", Json::Arr(vec![row])))
            .unwrap_err();
        assert!(err.contains("checksum"), "{err}");

        // Checksums must be shard-count-invariant.
        let rows = Json::Arr(vec![serve_row("aa"), serve_row("bb")]);
        let err = validate_report_json("b.json", &base.clone().set("rows", rows)).unwrap_err();
        assert!(err.contains("checksums differ"), "{err}");

        // And a well-formed file passes.
        let rows = Json::Arr(vec![serve_row("aa"), serve_row("aa")]);
        let ok = validate_report_json("b.json", &base.set("rows", rows)).unwrap();
        assert!(ok.contains("ok"), "{ok}");
    }

    #[test]
    fn sharded_report_requires_ring_and_latency_instrumentation() {
        use crate::{ServeConfig, Server};
        use trijoin::Method;
        use trijoin_common::{BaseTuple, Surrogate, SystemParams};

        let params = SystemParams { page_size: 512, mem_pages: 24, ..Default::default() };
        let config = ServeConfig { batch: 4, seed: 7, ..ServeConfig::new(params, 2) };
        let tuples: Vec<BaseTuple> =
            (0..24).map(|i| BaseTuple::padded(Surrogate(i), (i as u64) % 5, 48)).collect();
        let server = Server::start(&config, tuples.clone(), tuples).unwrap();
        let session = server.session().unwrap();
        session.query(Method::HybridHash).unwrap();
        let report = session.report().unwrap();

        // A live server's report satisfies the instrumentation contract.
        let ok = validate_report_json("s.json", &report.to_json()).unwrap();
        assert!(ok.contains("2 shards"), "{ok}");

        // Strip the ring counter: the validator must name it.
        let mut broken = report.clone();
        broken.rollup.metrics.counters.retain(|(k, _)| k != "serve.ring.submitted");
        let err = validate_report_json("s.json", &broken.to_json()).unwrap_err();
        assert!(err.contains("serve.ring.submitted"), "{err}");

        // Strip each required gauge in turn.
        for gauge in ["serve.ring.capacity", "serve.latency.p50_us", "serve.latency.p99_us"] {
            let mut broken = report.clone();
            broken.rollup.metrics.gauges.retain(|(k, _)| k != gauge);
            let err = validate_report_json("s.json", &broken.to_json()).unwrap_err();
            assert!(err.contains(gauge), "{err}");
        }
    }

    #[test]
    fn series_floor_gates_sustained_sampling() {
        use crate::{ServeConfig, Server};
        use trijoin::Method;
        use trijoin_common::{BaseTuple, Surrogate, SystemParams};

        let params = SystemParams { page_size: 512, mem_pages: 24, ..Default::default() };
        let config = ServeConfig { batch: 4, seed: 7, ..ServeConfig::new(params.clone(), 2) };
        let tuples: Vec<BaseTuple> =
            (0..24).map(|i| BaseTuple::padded(Surrogate(i), (i as u64) % 5, 48)).collect();
        let server = Server::start(&config, tuples.clone(), tuples.clone()).unwrap();
        let session = server.session().unwrap();
        session.query(Method::HybridHash).unwrap();
        let report = session.report().unwrap();

        // Telemetry defaults on: each shard closed at least the forced
        // final window, and the rollup carries the scheduler series.
        validate_report_json_with("s.json", &report.to_json(), 1).unwrap();
        let err = validate_report_json_with("s.json", &report.to_json(), 10_000).unwrap_err();
        assert!(err.contains("windows, need at least 10000"), "{err}");

        // With telemetry off, any positive floor is a named rejection.
        let quiet_cfg = ServeConfig { telemetry: None, ..config };
        let tuples: Vec<BaseTuple> =
            (0..24).map(|i| BaseTuple::padded(Surrogate(i), (i as u64) % 5, 48)).collect();
        let server = Server::start(&quiet_cfg, tuples.clone(), tuples).unwrap();
        let session = server.session().unwrap();
        session.query(Method::HybridHash).unwrap();
        let quiet = session.report().unwrap();
        validate_report_json("q.json", &quiet.to_json()).unwrap();
        let err = validate_report_json_with("q.json", &quiet.to_json(), 1).unwrap_err();
        assert!(err.contains("no telemetry series"), "{err}");
    }

    #[test]
    fn wallclock_rows_need_positive_numbers() {
        let base = Json::obj().set("figure", "wallclock");
        let row = Json::obj().set("bench", "mv_cycle").set("secs", 0.0).set("iters", 3u64);
        let err = validate_report_json("w.json", &base.clone().set("rows", Json::Arr(vec![row])))
            .unwrap_err();
        assert!(err.contains("secs"), "{err}");

        let row = Json::obj().set("bench", "mv_cycle").set("secs", 0.5).set("iters", 3u64);
        let ok = validate_report_json("w.json", &base.set("rows", Json::Arr(vec![row]))).unwrap();
        assert!(ok.contains("ok"), "{ok}");
    }
}
