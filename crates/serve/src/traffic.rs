//! Deterministic multi-client update traffic.
//!
//! Concurrent clients make a serving run nondeterministic in general —
//! unless their write sets are disjoint. [`ClientTraffic::split`] carves
//! the generated relation `R` into per-client ownership classes by
//! surrogate residue (`sur % clients == index`): each client produces the
//! paper's update traffic (delete + insert, same surrogate, `Pr_A` chance
//! of a join-attribute change) over *its own* tuples only, minting
//! unmatched keys from a client-scoped range. Updates never move a tuple
//! between owners, so the final database state — and therefore every
//! query answer at a batch boundary — is independent of how the clients'
//! submissions interleave. Each client draws from its own derived RNG
//! stream ([`crate::ServeConfig::client_seed`]), making whole serving
//! runs bit-identical across reruns.

use rand::prelude::*;

use trijoin::GeneratedWorkload;
use trijoin_common::{rng, BaseTuple, JoinKey};
use trijoin_exec::{Mutation, Update};

use crate::config::ServeConfig;

/// Base of the client-scoped unmatched-key ranges: above the workload
/// generator's own unmatched range (which starts at `1 << 40`), and each
/// client gets a `2^24`-key slice of it.
const CLIENT_UNMATCHED_BASE: JoinKey = 1 << 41;

/// One client's deterministic update stream over its owned slice of `R`.
pub struct ClientTraffic {
    index: usize,
    owned: Vec<BaseTuple>,
    groups: u32,
    matched_fraction: f64,
    pra: f64,
    tuple_bytes: usize,
    next_unmatched: JoinKey,
    rng: StdRng,
    counter: u64,
}

impl ClientTraffic {
    /// Split the workload's `R` into `clients` disjoint ownership classes
    /// and open one seeded traffic stream per client.
    pub fn split(
        workload: &GeneratedWorkload,
        config: &ServeConfig,
        clients: usize,
    ) -> Vec<ClientTraffic> {
        assert!(clients > 0, "traffic: client count must be positive");
        let mut streams: Vec<ClientTraffic> = (0..clients)
            .map(|index| ClientTraffic {
                index,
                owned: Vec::new(),
                groups: workload.groups,
                matched_fraction: workload.spec.sr.clamp(0.0, 1.0),
                pra: workload.spec.pra,
                tuple_bytes: workload.spec.tuple_bytes,
                next_unmatched: CLIENT_UNMATCHED_BASE + ((index as JoinKey) << 24),
                rng: rng::seeded(config.client_seed(index)),
                counter: 0,
            })
            .collect();
        for t in &workload.r {
            streams[t.sur.0 as usize % clients].owned.push(t.clone());
        }
        for s in &streams {
            assert!(
                !s.owned.is_empty(),
                "traffic: client {} owns no tuples ({} clients over {} R-tuples)",
                s.index,
                clients,
                workload.r.len()
            );
        }
        streams
    }

    /// This client's index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Produce the next update of an owned tuple (and advance the mirror).
    pub fn next_update(&mut self) -> Update {
        let idx = self.rng.gen_range(0..self.owned.len());
        let old = self.owned[idx].clone();
        let new_key = if self.rng.gen_bool(self.pra) {
            if self.groups > 0 && self.rng.gen_bool(self.matched_fraction) {
                self.rng.gen_range(0..self.groups) as JoinKey
            } else {
                self.next_unmatched += 1;
                self.next_unmatched
            }
        } else {
            old.key
        };
        self.counter += 1;
        // Payload encodes (client, counter), so every write is unique.
        let stamp = ((self.index as u64) << 32) | self.counter;
        let new = BaseTuple::with_payload(old.sur, new_key, &stamp.to_le_bytes(), self.tuple_bytes)
            .expect("tuple size fits");
        self.owned[idx] = new.clone();
        Update { old, new }
    }

    /// The next update as a general [`Mutation`].
    pub fn next_mutation(&mut self) -> Mutation {
        Mutation::Update(self.next_update())
    }

    /// This client's owned tuples in their current (post-update) state.
    pub fn current(&self) -> &[BaseTuple] {
        &self.owned
    }
}

/// Reassemble the ground-truth `R` from every client's mirror (ownership
/// classes partition the relation, so this is exact whatever order the
/// clients' updates reached the server in).
pub fn merged_current(streams: &[ClientTraffic]) -> Vec<BaseTuple> {
    let mut all: Vec<BaseTuple> = streams.iter().flat_map(|s| s.owned.iter().cloned()).collect();
    all.sort_by_key(|t| t.sur);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin::WorkloadSpec;
    use trijoin_common::SystemParams;

    fn workload() -> GeneratedWorkload {
        WorkloadSpec {
            r_tuples: 600,
            s_tuples: 500,
            tuple_bytes: 48,
            sr: 0.1,
            group_size: 5,
            pra: 0.3,
            update_rate: 0.1,
            seed: 17,
        }
        .generate()
    }

    fn config() -> ServeConfig {
        ServeConfig { seed: 99, ..ServeConfig::new(SystemParams::default(), 2) }
    }

    #[test]
    fn ownership_partitions_r_disjointly() {
        let w = workload();
        let streams = ClientTraffic::split(&w, &config(), 3);
        let total: usize = streams.iter().map(|s| s.current().len()).sum();
        assert_eq!(total, w.r.len());
        for s in &streams {
            for t in s.current() {
                assert_eq!(t.sur.0 as usize % 3, s.index());
            }
        }
        // Before any updates, the merged mirror is exactly R.
        let mut want = w.r.clone();
        want.sort_by_key(|t| t.sur);
        assert_eq!(merged_current(&streams), want);
    }

    #[test]
    fn updates_stay_within_ownership_and_mint_disjoint_keys() {
        let w = workload();
        let mut streams = ClientTraffic::split(&w, &config(), 4);
        for s in streams.iter_mut() {
            let index = s.index();
            for _ in 0..50 {
                let u = s.next_update();
                assert_eq!(u.old.sur, u.new.sur, "updates keep the surrogate");
                assert_eq!(u.new.sur.0 as usize % 4, index, "never leaves the owner");
                if u.new.key >= CLIENT_UNMATCHED_BASE {
                    let slice = (u.new.key - CLIENT_UNMATCHED_BASE) >> 24;
                    assert_eq!(slice as usize, index, "unmatched keys are client-scoped");
                }
            }
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let w = workload();
        let mut a = ClientTraffic::split(&w, &config(), 2);
        let mut b = ClientTraffic::split(&w, &config(), 2);
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            for _ in 0..30 {
                assert_eq!(x.next_update(), y.next_update());
            }
        }
        // A different root seed shifts every client's stream.
        let other = ServeConfig { seed: 100, ..config() };
        let mut c = ClientTraffic::split(&w, &other, 2);
        let diverged = (0..30).any(|_| a[0].next_update() != c[0].next_update());
        assert!(diverged);
    }
}
