//! The serving front-end: client sessions, the admission scheduler, and
//! cross-shard result merging.
//!
//! Clients talk to a single scheduler thread over a channel; the scheduler
//! owns the per-shard command channels. Updates are *admitted* immediately
//! (acknowledged to the client) but only *applied* when a batch fills or a
//! query/report arrives — the serving-layer analogue of the paper's
//! deferred maintenance: differential work is coalesced and folded in
//! right before the next query needs a consistent answer. Because each
//! shard channel is FIFO, an `Apply` enqueued before a `Query` is always
//! folded first; no acknowledgement protocol is needed.
//!
//! Query results are merged deterministically: surrogate pairs are
//! globally unique across shards (partitioning is disjoint), so sorting
//! the concatenated rows by `(r_sur, s_sur)` yields a total order that is
//! independent of shard count and thread timing.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use trijoin::Method;
use trijoin_common::{
    shard_of_key, BaseTuple, Error, Metrics, Result, RunReport, ShardedRunReport, SystemParams,
    ViewTuple,
};
use trijoin_exec::Mutation;
use trijoin_storage::FaultPlan;

use crate::config::ServeConfig;
use crate::router;
use crate::shard::{self, ShardCommand, ShardSpec};

/// A client request.
pub enum Request {
    /// Answer `R ⋈ S` with the given method (forces a flush of pending
    /// updates first, so the answer reflects every admitted update).
    Query(Method),
    /// Admit one mutation of `R` (batched; applied at the next flush).
    UpdateR(Mutation),
    /// Admit one mutation of `S` (batched; applied at the next flush).
    UpdateS(Mutation),
    /// Force pending updates out to the shards now.
    Flush,
    /// Flush, then snapshot every shard and roll the reports up.
    Report,
    /// Install a device-fault plan on one shard's simulated disk
    /// (takes effect immediately, not batched).
    InstallFaultPlan {
        /// Target shard index.
        shard: usize,
        /// The plan to install.
        plan: FaultPlan,
    },
    /// Poison the next read of one shard's cached view file (the shard
    /// resolves its own file id), deterministically forcing that shard
    /// through the materialized view's recovery path on its next query.
    PoisonCachedView {
        /// Target shard index.
        shard: usize,
    },
    /// Clear faults and heal damaged pages on one shard.
    ClearFaults {
        /// Target shard index.
        shard: usize,
    },
}

/// A server response.
pub enum Response {
    /// Merged query rows in the deterministic `(r_sur, s_sur)` order.
    Rows(Vec<ViewTuple>),
    /// The request was admitted/applied.
    Ack,
    /// Per-shard reports plus their rollup.
    Report(Box<ShardedRunReport>),
}

/// One in-flight call: the request plus where to send its response.
struct Envelope {
    request: Request,
    reply: Sender<Result<Response>>,
}

enum ToScheduler {
    Call(Envelope),
    Shutdown,
}

/// A handle for submitting requests. Cheap to clone; clones can live on
/// other threads (sessions are `Send`), and every call blocks until the
/// scheduler responds.
#[derive(Clone)]
pub struct ClientSession {
    tx: Sender<ToScheduler>,
}

fn server_down() -> Error {
    Error::Invariant("serve: server is shut down".into())
}

fn protocol_error(what: &str) -> Error {
    Error::Invariant(format!("serve: unexpected response to {what}"))
}

impl ClientSession {
    /// Submit one request and wait for its response.
    pub fn call(&self, request: Request) -> Result<Response> {
        let (reply, rx) = channel();
        self.tx.send(ToScheduler::Call(Envelope { request, reply })).map_err(|_| server_down())?;
        rx.recv().map_err(|_| server_down())?
    }

    /// Query the current join (flushing pending updates first).
    pub fn query(&self, method: Method) -> Result<Vec<ViewTuple>> {
        match self.call(Request::Query(method))? {
            Response::Rows(rows) => Ok(rows),
            _ => Err(protocol_error("query")),
        }
    }

    /// Admit one `R` mutation.
    pub fn update_r(&self, m: Mutation) -> Result<()> {
        self.call(Request::UpdateR(m)).map(|_| ())
    }

    /// Admit one `S` mutation.
    pub fn update_s(&self, m: Mutation) -> Result<()> {
        self.call(Request::UpdateS(m)).map(|_| ())
    }

    /// Force pending updates out to the shards.
    pub fn flush(&self) -> Result<()> {
        self.call(Request::Flush).map(|_| ())
    }

    /// Collect per-shard reports and their rollup.
    pub fn report(&self) -> Result<ShardedRunReport> {
        match self.call(Request::Report)? {
            Response::Report(r) => Ok(*r),
            _ => Err(protocol_error("report")),
        }
    }

    /// Install a fault plan on one shard.
    pub fn install_fault_plan(&self, shard: usize, plan: FaultPlan) -> Result<()> {
        self.call(Request::InstallFaultPlan { shard, plan }).map(|_| ())
    }

    /// Poison one shard's cached view (drives its recovery path).
    pub fn poison_cached_view(&self, shard: usize) -> Result<()> {
        self.call(Request::PoisonCachedView { shard }).map(|_| ())
    }

    /// Heal one shard.
    pub fn clear_faults(&self, shard: usize) -> Result<()> {
        self.call(Request::ClearFaults { shard }).map(|_| ())
    }
}

/// The sharded serving instance: N shard threads plus one scheduler.
pub struct Server {
    tx: Option<Sender<ToScheduler>>,
    scheduler: Option<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<()>>,
    shards: usize,
}

impl Server {
    /// Hash-partition `r` and `s` on the join attribute, spawn one engine
    /// thread per shard, and start the admission scheduler. Blocks until
    /// every shard has built its engine (construction errors surface here).
    pub fn start(config: &ServeConfig, r: Vec<BaseTuple>, s: Vec<BaseTuple>) -> Result<Server> {
        if config.shards == 0 {
            return Err(Error::Invariant("serve: shard count must be positive".into()));
        }
        let n = config.shards;
        let mut parts: Vec<(Vec<BaseTuple>, Vec<BaseTuple>)> = vec![Default::default(); n];
        for t in r {
            parts[shard_of_key(t.key, n)].0.push(t);
        }
        for t in s {
            parts[shard_of_key(t.key, n)].1.push(t);
        }

        let mut shard_txs = Vec::with_capacity(n);
        let mut shard_handles = Vec::with_capacity(n);
        for (index, (r_i, s_i)) in parts.into_iter().enumerate() {
            let spec = ShardSpec { index, params: config.params.clone(), r: r_i, s: s_i };
            match shard::spawn(spec) {
                Ok((tx, handle)) => {
                    shard_txs.push(tx);
                    shard_handles.push(handle);
                }
                Err(e) => {
                    // Tear down the shards that did start.
                    drop(shard_txs);
                    for handle in shard_handles {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }

        let (tx, rx) = channel::<ToScheduler>();
        let batch = config.batch.max(1);
        let params = config.params.clone();
        let scheduler = std::thread::Builder::new()
            .name("trijoin-serve-scheduler".into())
            .spawn(move || {
                // The metrics registry is single-threaded (Rc-based), so it
                // is created here, inside the thread that owns it.
                let mut sched = Scheduler {
                    shard_txs,
                    pending_r: vec![Vec::new(); n],
                    pending_s: vec![Vec::new(); n],
                    pending: 0,
                    batch,
                    params,
                    metrics: Metrics::new(),
                };
                sched.run(rx);
            })
            .map_err(|e| Error::Invariant(format!("serve: spawn scheduler: {e}")))?;

        Ok(Server { tx: Some(tx), scheduler: Some(scheduler), shard_handles, shards: n })
    }

    /// Convenience: generate + start from a [`ServeConfig`] and a prepared
    /// workload pair is just `Server::start`; this accessor reports the
    /// shard count in force.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Open a client session. Sessions are independent and cloneable; all
    /// of them feed the single admission scheduler.
    pub fn session(&self) -> ClientSession {
        ClientSession { tx: self.tx.as_ref().expect("server is live").clone() }
    }

    /// Stop the scheduler and every shard thread, waiting for them to
    /// exit. Idempotent; also runs on drop. Outstanding sessions receive
    /// errors for calls made after shutdown.
    pub fn shutdown(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(ToScheduler::Shutdown);
        }
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        for handle in self.shard_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The single-threaded admission scheduler: owns the shard channels and
/// the pending differential batches.
struct Scheduler {
    shard_txs: Vec<Sender<ShardCommand>>,
    pending_r: Vec<Vec<Mutation>>,
    pending_s: Vec<Vec<Mutation>>,
    /// Logical updates admitted since the last flush.
    pending: usize,
    batch: usize,
    params: SystemParams,
    /// Scheduler-only counters under the reserved `serve.` prefix; shards
    /// never write that namespace, so in a rollup every non-`serve.`
    /// metric remains the exact sum of the per-shard metrics.
    metrics: Metrics,
}

impl Scheduler {
    fn run(&mut self, rx: Receiver<ToScheduler>) {
        while let Ok(ToScheduler::Call(Envelope { request, reply })) = rx.recv() {
            let result = self.handle(request);
            let _ = reply.send(result);
        }
        // Dropping `shard_txs` (with `self`) closes every shard channel;
        // the shard threads drain what was sent and exit.
    }

    fn handle(&mut self, request: Request) -> Result<Response> {
        match request {
            Request::UpdateR(m) => {
                self.admit_r(m);
                Ok(Response::Ack)
            }
            Request::UpdateS(m) => {
                self.admit_s(m);
                Ok(Response::Ack)
            }
            Request::Flush => {
                self.flush()?;
                Ok(Response::Ack)
            }
            Request::Query(method) => {
                self.flush()?;
                self.query(method).map(Response::Rows)
            }
            Request::Report => {
                self.flush()?;
                self.report().map(|r| Response::Report(Box::new(r)))
            }
            Request::InstallFaultPlan { shard, plan } => {
                self.send_to(shard, ShardCommand::InstallFaultPlan(plan))?;
                Ok(Response::Ack)
            }
            Request::PoisonCachedView { shard } => {
                self.send_to(shard, ShardCommand::PoisonCachedView)?;
                Ok(Response::Ack)
            }
            Request::ClearFaults { shard } => {
                self.send_to(shard, ShardCommand::ClearFaults)?;
                Ok(Response::Ack)
            }
        }
    }

    fn send_to(&self, shard: usize, cmd: ShardCommand) -> Result<()> {
        let tx = self
            .shard_txs
            .get(shard)
            .ok_or_else(|| Error::Invariant(format!("serve: no shard {shard}")))?;
        tx.send(cmd).map_err(|_| Error::Invariant(format!("serve: shard {shard} is down")))
    }

    fn admit_r(&mut self, m: Mutation) {
        self.metrics.incr("serve.updates.r");
        let n = self.shard_txs.len();
        if router::is_cross_shard(&m, n) {
            self.metrics.incr("serve.updates.cross_shard");
        }
        for (shard, part) in router::route(m, n) {
            self.pending_r[shard].push(part);
        }
        self.admitted();
    }

    fn admit_s(&mut self, m: Mutation) {
        self.metrics.incr("serve.updates.s");
        let n = self.shard_txs.len();
        if router::is_cross_shard(&m, n) {
            self.metrics.incr("serve.updates.cross_shard");
        }
        for (shard, part) in router::route(m, n) {
            self.pending_s[shard].push(part);
        }
        self.admitted();
    }

    fn admitted(&mut self) {
        self.pending += 1;
        if self.pending >= self.batch {
            // A full batch flushes immediately; a dead shard is recorded
            // and resurfaces as an error on the next query or report.
            let _ = self.flush();
        }
    }

    /// Dispatch every pending per-shard batch. A no-op when nothing is
    /// pending, so query-time flushes of an already-drained queue do not
    /// inflate the batch statistics.
    fn flush(&mut self) -> Result<()> {
        if self.pending == 0 {
            return Ok(());
        }
        let total: usize = self.pending_r.iter().chain(self.pending_s.iter()).map(Vec::len).sum();
        self.metrics.incr("serve.batches");
        self.metrics.observe("serve.batch.len", total as u64);
        let mut result = Ok(());
        for i in 0..self.shard_txs.len() {
            let r = std::mem::take(&mut self.pending_r[i]);
            let s = std::mem::take(&mut self.pending_s[i]);
            if r.is_empty() && s.is_empty() {
                continue;
            }
            if self.shard_txs[i].send(ShardCommand::Apply { r, s }).is_err() {
                self.metrics.incr("serve.shard_send_errors");
                result = Err(Error::Invariant(format!("serve: shard {i} is down")));
            }
        }
        self.pending = 0;
        result
    }

    /// Fan a query out to every shard and merge the answers. One shard's
    /// failure fails this query (the merged answer would be incomplete)
    /// but not the server; strategies recover from planned device faults
    /// internally, so this surfaces only truly unrecoverable damage.
    fn query(&mut self, method: Method) -> Result<Vec<ViewTuple>> {
        self.metrics.incr("serve.queries");
        let (reply, rx) = channel();
        for (i, tx) in self.shard_txs.iter().enumerate() {
            tx.send(ShardCommand::Query { method, reply: reply.clone() })
                .map_err(|_| Error::Invariant(format!("serve: shard {i} is down")))?;
        }
        drop(reply);
        let expected = self.shard_txs.len();
        let mut rows = Vec::new();
        let mut first_err: Option<(usize, Error)> = None;
        let mut answered = 0usize;
        for (shard, result) in rx {
            answered += 1;
            match result {
                Ok(mut shard_rows) => rows.append(&mut shard_rows),
                Err(e) => {
                    self.metrics.incr("serve.query_errors");
                    if first_err.is_none() {
                        first_err = Some((shard, e));
                    }
                }
            }
        }
        if let Some((shard, e)) = first_err {
            return Err(Error::Invariant(format!("serve: shard {shard} failed: {e}")));
        }
        if answered != expected {
            return Err(Error::Invariant(format!("serve: {answered}/{expected} shards answered")));
        }
        // Surrogate pairs are globally unique (partitions are disjoint),
        // so this is a deterministic total order regardless of shard count
        // or completion timing.
        rows.sort_by_key(|t| (t.r_sur, t.s_sur));
        Ok(rows)
    }

    /// Gather per-shard reports and roll them up, overlaying the
    /// scheduler's own `serve.*` counters on the rollup afterwards (a pure
    /// overlay: shard metrics are never touched, so their sums stay exact).
    fn report(&mut self) -> Result<ShardedRunReport> {
        let (reply, rx) = channel();
        for (i, tx) in self.shard_txs.iter().enumerate() {
            tx.send(ShardCommand::Report { reply: reply.clone() })
                .map_err(|_| Error::Invariant(format!("serve: shard {i} is down")))?;
        }
        drop(reply);
        let mut replies: Vec<(usize, Box<RunReport>)> = rx.iter().collect();
        if replies.len() != self.shard_txs.len() {
            return Err(Error::Invariant(format!(
                "serve: {}/{} shards reported",
                replies.len(),
                self.shard_txs.len()
            )));
        }
        replies.sort_by_key(|(shard, _)| *shard);
        let shards: Vec<RunReport> = replies.into_iter().map(|(_, boxed)| *boxed).collect();
        let mut sharded = ShardedRunReport::rollup_of("serve", &self.params, shards);
        sharded.rollup.metrics.merge(&self.metrics.snapshot());
        Ok(sharded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_common::Surrogate;

    fn params() -> SystemParams {
        SystemParams { page_size: 512, mem_pages: 24, ..Default::default() }
    }

    fn config(shards: usize, batch: usize) -> ServeConfig {
        ServeConfig { batch, seed: 11, ..ServeConfig::new(params(), shards) }
    }

    fn tuples(n: u32, stride: u64) -> Vec<BaseTuple> {
        (0..n).map(|i| BaseTuple::padded(Surrogate(i), (i as u64) % stride, 48)).collect()
    }

    #[test]
    fn serves_queries_across_shards() {
        let r = tuples(120, 11);
        let s = tuples(90, 11);
        let want = trijoin_exec::oracle::canonicalize(trijoin_exec::oracle::join_tuples(&r, &s));
        let mut server = Server::start(&config(4, 8), r, s).unwrap();
        let session = server.session();
        for method in Method::all() {
            let got = session.query(method).unwrap();
            assert_eq!(got, want, "{method} diverged from oracle");
        }
        server.shutdown();
        // Calls after shutdown error rather than hang.
        assert!(session.query(Method::HybridHash).is_err());
    }

    #[test]
    fn updates_are_batched_until_query() {
        let r = tuples(60, 7);
        let s = tuples(60, 7);
        let server = Server::start(&config(2, 1000), r.clone(), s).unwrap();
        let session = server.session();
        // Admit three payload-only updates (no cross-shard splits): under
        // the huge batch size they stay pending until the report flushes.
        let mut current = r;
        for (i, slot) in current.iter_mut().enumerate().take(3) {
            let old = slot.clone();
            let new = BaseTuple::with_payload(old.sur, old.key, &[i as u8 + 1], 48).unwrap();
            *slot = new.clone();
            session.update_r(Mutation::Update(trijoin_exec::Update { old, new })).unwrap();
        }
        let report = session.report().unwrap();
        // The flush forced by the report coalesced all three into one batch.
        assert_eq!(report.rollup.metrics.counter("serve.updates.r"), 3);
        assert_eq!(report.rollup.metrics.counter("serve.batches"), 1);
        let batch = report.rollup.metrics.histogram("serve.batch.len").unwrap();
        assert_eq!(batch.count, 1);
        assert_eq!(batch.sum, 3);
    }

    #[test]
    fn report_rollup_covers_every_shard() {
        let server = Server::start(&config(3, 4), tuples(80, 9), tuples(80, 9)).unwrap();
        let session = server.session();
        session.query(Method::JoinIndex).unwrap();
        let report = session.report().unwrap();
        assert_eq!(report.shards.len(), 3);
        for (i, shard) in report.shards.iter().enumerate() {
            assert_eq!(shard.name, format!("shard{i}"));
            assert_eq!(shard.metrics.counter("db.queries"), 1);
        }
        assert_eq!(report.rollup.metrics.counter("db.queries"), 3);
        assert_eq!(report.rollup.metrics.counter("serve.queries"), 1);
    }

    #[test]
    fn bad_shard_index_is_rejected() {
        let server = Server::start(&config(2, 4), tuples(20, 3), tuples(20, 3)).unwrap();
        let session = server.session();
        assert!(session.clear_faults(5).is_err());
        assert!(session.clear_faults(1).is_ok());
    }
}
