//! The serving front-end: client sessions, the submission/completion
//! ring, the admission scheduler, and cross-shard streaming merge.
//!
//! Clients talk to a single scheduler thread through a fixed-capacity
//! **submission ring** guarded by one mutex and two condvars. Updates are
//! enqueued fire-and-forget (no per-request reply channel, no round-trip:
//! the enqueue *is* the admission, and a full ring applies backpressure
//! by making the submitter wait for the next drain). Blocking requests —
//! queries, flushes, reports, fault control — take a completion ticket;
//! the scheduler drains whole slices of the ring per wakeup, completes
//! every ticketed request of the slice in place, and wakes all waiters
//! once per drained batch.
//!
//! Updates are *admitted* in ring order but only *applied* when a batch
//! fills or a query/report arrives — the serving-layer analogue of the
//! paper's deferred maintenance: differential work is coalesced and
//! folded in right before the next query needs a consistent answer.
//! Because each shard channel is FIFO, an `Apply` enqueued before a
//! `Query` is always folded first; no acknowledgement protocol is needed.
//! The same per-shard FIFO invariant is what lets the scheduler
//! **pipeline** differential application with query execution: while the
//! shards compute a fanned-out query, the scheduler keeps draining the
//! ring and flushing freshly admitted update batches to the shards —
//! those `Apply` commands land *behind* the in-flight `Query` in every
//! shard's queue, so the answer still reflects exactly the updates
//! admitted before the query. The invariant is per shard, not global:
//! no cross-shard barrier exists or is needed, because a query is a
//! point in each shard's own command order.
//!
//! Query results are merged deterministically and *streamingly*: each
//! shard sorts its own answer by `(r_sur, s_sur)` (surrogate pairs are
//! globally unique across shards — partitioning is disjoint), and the
//! scheduler runs a k-way merge over the per-shard sorted runs instead
//! of concatenating and re-sorting, so the total order is independent of
//! shard count and thread timing at a fraction of the merge cost.

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use trijoin::Method;
use trijoin_common::{
    shard_of_key, BaseTuple, Cost, Error, Metrics, Result, RunReport, ShardedRunReport,
    SystemParams, Telemetry, ViewTuple,
};
use trijoin_exec::sort::KWayMerge;
use trijoin_exec::Mutation;
use trijoin_storage::{Durability, FaultPlan};

use crate::config::ServeConfig;
use crate::router;
use crate::shard::{self, ShardCommand, ShardSpec};

/// A client request.
pub enum Request {
    /// Answer `R ⋈ S` with the given method (forces a flush of pending
    /// updates first, so the answer reflects every admitted update).
    Query(Method),
    /// Admit one mutation of `R` (batched; applied at the next flush).
    UpdateR(Mutation),
    /// Admit one mutation of `S` (batched; applied at the next flush).
    UpdateS(Mutation),
    /// Force pending updates out to the shards now.
    Flush,
    /// Flush, then snapshot every shard and roll the reports up.
    Report,
    /// Install a device-fault plan on one shard's simulated disk
    /// (takes effect immediately, not batched).
    InstallFaultPlan {
        /// Target shard index.
        shard: usize,
        /// The plan to install.
        plan: FaultPlan,
    },
    /// Poison the next read of one shard's cached view file (the shard
    /// resolves its own file id), deterministically forcing that shard
    /// through the materialized view's recovery path on its next query.
    PoisonCachedView {
        /// Target shard index.
        shard: usize,
    },
    /// Clear faults and heal damaged pages on one shard.
    ClearFaults {
        /// Target shard index.
        shard: usize,
    },
    /// Flush pending updates, then commit every shard (a server-wide
    /// durability barrier: each shard seals its applied state into its own
    /// WAL, and the call returns only when all shards have acknowledged).
    /// Because shards *only* commit here, every shard's last sealed commit
    /// is the same logical barrier — which is what makes shard-local
    /// recovery globally consistent.
    ///
    /// Under [`Durability::Deferred`] (see [`ServeConfig::durability`])
    /// the barrier appends each shard's commit group to its WAL buffer
    /// without fsyncing; consecutive barriers coalesce until a *seal* —
    /// an explicit [`Request::Sync`], the next [`Request::Report`], or
    /// the scheduler going idle — pays one fsync per shard for all of
    /// them. A crash before the seal rolls the deferred barriers back.
    Commit,
    /// Seal every deferred commit barrier now: one `Durability::Barrier`
    /// round fsyncs each shard's buffered commit groups. A no-op ack when
    /// nothing is pending (including on non-durable or always-`Barrier`
    /// servers).
    Sync,
}

/// A server response.
pub enum Response {
    /// Merged query rows in the deterministic `(r_sur, s_sur)` order.
    Rows(Vec<ViewTuple>),
    /// The request was admitted/applied.
    Ack,
    /// Per-shard reports plus their rollup.
    Report(Box<ShardedRunReport>),
}

fn server_down() -> Error {
    Error::Invariant("serve: server is shut down".into())
}

fn protocol_error(what: &str) -> Error {
    Error::Invariant(format!("serve: unexpected response to {what}"))
}

/// One submitted request: a completion ticket for blocking calls (`None`
/// for fire-and-forget updates) plus the submission instant feeding the
/// serve-latency percentiles.
struct Slot {
    ticket: Option<u64>,
    at: Instant,
    request: Request,
}

/// Shared state of the submission/completion ring.
struct RingState {
    /// Submission queue, bounded at [`Ring::capacity`].
    queue: VecDeque<Slot>,
    /// Completions posted by the scheduler, keyed by ticket. Stays tiny:
    /// at most one entry per concurrently blocked client.
    done: Vec<(u64, Result<Response>)>,
    next_ticket: u64,
    /// False once the server shuts down: new submissions are refused and
    /// blocked clients error out instead of hanging.
    open: bool,
    /// Times a submitter had to wait for ring space (wall-clock shaped).
    full_waits: u64,
}

/// How many times a waiter polls-and-yields before parking on a condvar
/// (or blocking in `recv`). Yielding hands the CPU to whichever peer is
/// producing the awaited result, so on shared cores the result usually
/// arrives syscall-free within the budget; parking stays the fallback so
/// nothing ever busy-loops indefinitely.
const YIELD_BUDGET: u32 = 256;

/// The submission/completion ring: one mutex, two condvars.
///
/// `submitted` wakes the scheduler when the queue becomes non-empty;
/// `completed` wakes clients when results are posted or space frees up.
/// The scheduler signals `completed` **once per drained batch**, not per
/// request — that single wakeup is what replaces the per-request
/// channel/reply round-trip of the old design.
struct Ring {
    capacity: usize,
    state: Mutex<RingState>,
    submitted: Condvar,
    completed: Condvar,
}

impl Ring {
    fn new(capacity: usize) -> Arc<Ring> {
        Arc::new(Ring {
            capacity: capacity.max(1),
            state: Mutex::new(RingState {
                queue: VecDeque::new(),
                done: Vec::new(),
                next_ticket: 0,
                open: true,
                full_waits: 0,
            }),
            submitted: Condvar::new(),
            completed: Condvar::new(),
        })
    }

    /// Lock the ring state, recovering from a poisoned mutex (a panicking
    /// peer must not cascade into every other thread).
    fn lock(&self) -> MutexGuard<'_, RingState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn wait<'a>(
        &self,
        cv: &Condvar,
        guard: MutexGuard<'a, RingState>,
    ) -> MutexGuard<'a, RingState> {
        cv.wait(guard).unwrap_or_else(|p| p.into_inner())
    }

    /// Block until the ring has space (backpressure), then enqueue; the
    /// guard flows back out so `call` can keep waiting under the same lock.
    fn enqueue<'a>(
        &'a self,
        ticket: Option<u64>,
        request: Request,
    ) -> Result<MutexGuard<'a, RingState>> {
        let mut st = self.lock();
        loop {
            if !st.open {
                return Err(server_down());
            }
            if st.queue.len() < self.capacity {
                break;
            }
            st.full_waits += 1;
            st = self.wait(&self.completed, st);
        }
        st.queue.push_back(Slot { ticket, at: Instant::now(), request });
        // Wake the scheduler only on the empty→non-empty edge: it sleeps
        // on `submitted` only when the queue is empty, so deeper pushes
        // are always observed by the drain that follows its current batch.
        if st.queue.len() == 1 {
            self.submitted.notify_one();
        }
        Ok(st)
    }

    /// Fire-and-forget submission (updates): enqueue and return. The
    /// request is admitted by the scheduler in ring order; errors that
    /// surface while applying it are deferred to the next blocking call.
    fn submit(&self, request: Request) -> Result<()> {
        self.enqueue(None, request).map(drop)
    }

    /// Blocking submission: enqueue with a ticket and wait until the
    /// scheduler posts this call's completion. The ticket is drawn under
    /// the same lock hold that enqueues, so it is unique even when many
    /// clients race, and the guard never drops between enqueue and wait —
    /// a completion posted immediately is found on the first loop pass.
    fn call(&self, request: Request) -> Result<Response> {
        let mut st = self.lock();
        loop {
            if !st.open {
                return Err(server_down());
            }
            if st.queue.len() < self.capacity {
                break;
            }
            st.full_waits += 1;
            st = self.wait(&self.completed, st);
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(Slot { ticket: Some(ticket), at: Instant::now(), request });
        if st.queue.len() == 1 {
            self.submitted.notify_one();
        }
        // Park directly: a blocking call waits out a whole fan-out/merge
        // round, far past any useful poll window, and a spinning client
        // would only steal CPU from the shards computing its answer. (The
        // scheduler-side waits poll-then-park instead — their results
        // arrive quickly; see `drain_wait` and `recv_yielding`.)
        loop {
            if let Some(i) = st.done.iter().position(|(t, _)| *t == ticket) {
                return st.done.swap_remove(i).1;
            }
            if !st.open {
                return Err(server_down());
            }
            st = self.wait(&self.completed, st);
        }
    }

    /// Scheduler: take every queued submission, blocking until at least
    /// one arrives. Returns `false` once the ring is closed and drained.
    ///
    /// `on_idle` fires at most once per call, outside the lock, right
    /// before the scheduler would park on the condvar — i.e. when the
    /// yield-spin budget expired without any client producing work. This
    /// is the hook the scheduler uses to seal deferred commit barriers:
    /// an idle ring means no further barrier is imminent to coalesce
    /// with, so the fsync is paid now rather than holding client data
    /// volatile across an unbounded quiet period.
    fn drain_wait(&self, out: &mut Vec<Slot>, mut on_idle: impl FnMut()) -> bool {
        // Same poll-then-park shape as `call`: a client that just received
        // a completion typically submits its next round immediately, so a
        // short yield-spin catches it without a park/wake pair.
        let mut spins = 0u32;
        let mut idled = false;
        let mut st = self.lock();
        loop {
            if !st.queue.is_empty() {
                let was_full = st.queue.len() >= self.capacity;
                out.extend(st.queue.drain(..));
                drop(st);
                if was_full {
                    self.completed.notify_all();
                }
                return true;
            }
            if !st.open {
                return false;
            }
            if spins < YIELD_BUDGET {
                spins += 1;
                drop(st);
                std::thread::yield_now();
                st = self.lock();
            } else if !idled {
                idled = true;
                drop(st);
                on_idle();
                st = self.lock();
            } else {
                st = self.wait(&self.submitted, st);
            }
        }
    }

    /// Scheduler: non-blocking drain — the pipelining path, polled while
    /// a fanned-out query is in flight on the shards.
    fn drain_now(&self, out: &mut Vec<Slot>) {
        let mut st = self.lock();
        if st.queue.is_empty() {
            return;
        }
        let was_full = st.queue.len() >= self.capacity;
        out.extend(st.queue.drain(..));
        drop(st);
        if was_full {
            self.completed.notify_all();
        }
    }

    /// Scheduler: post a batch of completions — one wakeup for all of
    /// them, however many clients are blocked.
    fn complete(&self, results: Vec<(u64, Result<Response>)>) {
        if results.is_empty() {
            return;
        }
        let mut st = self.lock();
        st.done.extend(results);
        drop(st);
        self.completed.notify_all();
    }

    /// Refuse new submissions and wake every blocked thread. Idempotent.
    fn close(&self) {
        let mut st = self.lock();
        st.open = false;
        drop(st);
        self.submitted.notify_all();
        self.completed.notify_all();
    }

    fn full_waits(&self) -> u64 {
        self.lock().full_waits
    }
}

/// A handle for submitting requests. Cheap to clone; clones can live on
/// other threads (sessions are `Send`). Updates return as soon as they
/// are enqueued; queries, flushes and reports block until the scheduler
/// posts their completion.
#[derive(Clone)]
pub struct ClientSession {
    ring: Arc<Ring>,
}

impl ClientSession {
    /// Submit one request and wait for its response.
    pub fn call(&self, request: Request) -> Result<Response> {
        self.ring.call(request)
    }

    /// Query the current join (flushing pending updates first).
    pub fn query(&self, method: Method) -> Result<Vec<ViewTuple>> {
        match self.call(Request::Query(method))? {
            Response::Rows(rows) => Ok(rows),
            _ => Err(protocol_error("query")),
        }
    }

    /// Admit one `R` mutation. Fire-and-forget: returns once the request
    /// is in the ring (backpressure applies when the ring is full); an
    /// error applying it surfaces on the next blocking call.
    pub fn update_r(&self, m: Mutation) -> Result<()> {
        self.ring.submit(Request::UpdateR(m))
    }

    /// Admit one `S` mutation (fire-and-forget, like [`Self::update_r`]).
    pub fn update_s(&self, m: Mutation) -> Result<()> {
        self.ring.submit(Request::UpdateS(m))
    }

    /// Force pending updates out to the shards.
    pub fn flush(&self) -> Result<()> {
        self.call(Request::Flush).map(|_| ())
    }

    /// Collect per-shard reports and their rollup.
    pub fn report(&self) -> Result<ShardedRunReport> {
        match self.call(Request::Report)? {
            Response::Report(r) => Ok(*r),
            _ => Err(protocol_error("report")),
        }
    }

    /// Install a fault plan on one shard.
    pub fn install_fault_plan(&self, shard: usize, plan: FaultPlan) -> Result<()> {
        self.call(Request::InstallFaultPlan { shard, plan }).map(|_| ())
    }

    /// Poison one shard's cached view (drives its recovery path).
    pub fn poison_cached_view(&self, shard: usize) -> Result<()> {
        self.call(Request::PoisonCachedView { shard }).map(|_| ())
    }

    /// Heal one shard.
    pub fn clear_faults(&self, shard: usize) -> Result<()> {
        self.call(Request::ClearFaults { shard }).map(|_| ())
    }

    /// Flush, then drive the server-wide commit barrier: every shard
    /// seals its state into its own WAL before this returns. A no-op ack
    /// on non-durable servers.
    pub fn commit(&self) -> Result<()> {
        self.call(Request::Commit).map(|_| ())
    }

    /// Seal every deferred commit barrier: one fsync per shard covers all
    /// commit groups buffered since the last seal. A no-op ack when
    /// nothing is pending (non-durable servers, `Durability::Barrier`
    /// servers, or simply no deferred barrier since the last seal).
    pub fn sync(&self) -> Result<()> {
        self.call(Request::Sync).map(|_| ())
    }
}

/// The sharded serving instance: N shard threads plus one scheduler.
pub struct Server {
    ring: Arc<Ring>,
    scheduler: Option<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<()>>,
    shards: usize,
}

impl Server {
    /// Hash-partition `r` and `s` on the join attribute, spawn one engine
    /// thread per shard, and start the admission scheduler. Blocks until
    /// every shard has built its engine (construction errors surface here).
    pub fn start(config: &ServeConfig, r: Vec<BaseTuple>, s: Vec<BaseTuple>) -> Result<Server> {
        if config.shards == 0 {
            return Err(Error::Invariant("serve: shard count must be positive".into()));
        }
        let n = config.shards;
        let mut parts: Vec<(Vec<BaseTuple>, Vec<BaseTuple>)> = vec![Default::default(); n];
        for t in r {
            parts[shard_of_key(t.key, n)].0.push(t);
        }
        for t in s {
            parts[shard_of_key(t.key, n)].1.push(t);
        }

        Self::launch(config, parts, false)
    }

    /// Reopen a durable server from `config.durable_dir`: each shard runs
    /// WAL recovery on its own directory (replaying frames sealed by the
    /// last commit barrier, truncating any torn tail) and reattaches its
    /// relations from its shard-local catalog. No tuples are passed in —
    /// the data is already on disk. Derived caches rebuild exactly as at
    /// first start.
    pub fn recover(config: &ServeConfig) -> Result<Server> {
        if config.shards == 0 {
            return Err(Error::Invariant("serve: shard count must be positive".into()));
        }
        if config.durable_dir.is_none() {
            return Err(Error::Invariant("serve: recover needs a durable_dir".into()));
        }
        let parts: Vec<(Vec<BaseTuple>, Vec<BaseTuple>)> = vec![Default::default(); config.shards];
        Self::launch(config, parts, true)
    }

    fn launch(
        config: &ServeConfig,
        parts: Vec<(Vec<BaseTuple>, Vec<BaseTuple>)>,
        recover: bool,
    ) -> Result<Server> {
        let n = config.shards;
        let mut shard_txs = Vec::with_capacity(n);
        let mut shard_handles = Vec::with_capacity(n);
        for (index, (r_i, s_i)) in parts.into_iter().enumerate() {
            let spec = ShardSpec {
                index,
                params: config.params.clone(),
                r: r_i,
                s: s_i,
                telemetry: config.telemetry,
                durable_dir: config.shard_dir(index),
                recover,
                adaptive: config.adaptive,
            };
            match shard::spawn(spec) {
                Ok((tx, handle)) => {
                    shard_txs.push(tx);
                    shard_handles.push(handle);
                }
                Err(e) => {
                    // Tear down the shards that did start.
                    drop(shard_txs);
                    for handle in shard_handles {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }

        let ring = Ring::new(config.ring);
        let sched_ring = Arc::clone(&ring);
        let batch = config.batch.max(1);
        let params = config.params.clone();
        let tel_cfg = config.telemetry;
        let durability = config.durability;
        let adaptive = config.adaptive;
        let scheduler = std::thread::Builder::new()
            .name("trijoin-serve-scheduler".into())
            .spawn(move || {
                // The metrics registry and telemetry sampler are
                // single-threaded (Rc-based), so they are created here,
                // inside the thread that owns them. The scheduler samples
                // in the batch domain: its logical clock is the number of
                // dispatched differential batches, not engine ops.
                let metrics = Metrics::new();
                let telemetry = tel_cfg.map(|c| {
                    let t = Telemetry::new(c.serve(), "serve", "batches");
                    t.tick(0, &metrics);
                    t
                });
                let mut sched = Scheduler {
                    ring: sched_ring,
                    shard_txs,
                    work: VecDeque::new(),
                    pending_r: vec![Vec::new(); n],
                    pending_s: vec![Vec::new(); n],
                    pending: 0,
                    batch,
                    batches: 0,
                    params,
                    metrics,
                    telemetry,
                    deferred: None,
                    latencies_us: Vec::new(),
                    durability,
                    sync_pending: false,
                    adaptive,
                };
                sched.run();
            })
            .map_err(|e| Error::Invariant(format!("serve: spawn scheduler: {e}")))?;

        Ok(Server { ring, scheduler: Some(scheduler), shard_handles, shards: n })
    }

    /// The shard count in force.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Open a client session. Sessions are independent and cloneable; all
    /// of them feed the single submission ring. After [`Self::shutdown`]
    /// this returns a typed error instead of panicking.
    pub fn session(&self) -> Result<ClientSession> {
        if self.scheduler.is_none() {
            return Err(server_down());
        }
        Ok(ClientSession { ring: Arc::clone(&self.ring) })
    }

    /// Stop the scheduler and every shard thread, waiting for them to
    /// exit. Idempotent; also runs on drop. Outstanding sessions receive
    /// errors for calls made after shutdown.
    pub fn shutdown(&mut self) {
        self.ring.close();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        for handle in self.shard_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Scheduler-side metric names that depend on wall-clock timing (drain
/// chunking, backpressure, latency percentiles). Everything else the
/// scheduler emits is a pure function of the submission order and stays
/// bit-identical across reruns; consumers that pin reports byte-for-byte
/// scrub exactly this set.
pub const VOLATILE_METRICS: [&str; 6] = [
    "serve.ring.drains",
    "serve.ring.drain.len",
    "serve.ring.full_waits",
    "serve.latency.p50_us",
    "serve.latency.p99_us",
    // Idle-triggered seals of deferred commit barriers depend on when the
    // scheduler's poll budget ran out relative to client submissions.
    "serve.seals",
];

/// The single-threaded admission scheduler: owns the shard channels, the
/// pending differential batches, and the drained-but-unprocessed slice
/// of the ring.
struct Scheduler {
    ring: Arc<Ring>,
    shard_txs: Vec<Sender<ShardCommand>>,
    /// Drained submissions not yet processed, in ring order. Non-empty
    /// only transiently: the pipelining drains during an in-flight query
    /// carry ticketed requests (and everything after them) over here.
    work: VecDeque<Slot>,
    pending_r: Vec<Vec<Mutation>>,
    pending_s: Vec<Vec<Mutation>>,
    /// Logical updates admitted since the last flush.
    pending: usize,
    batch: usize,
    /// Lifetime count of dispatched differential batches — the logical
    /// clock of the scheduler's telemetry sampler (mirrors the
    /// `serve.batches` counter without a registry read per tick).
    batches: u64,
    params: SystemParams,
    /// Scheduler-only counters under the reserved `serve.` prefix; shards
    /// never write that namespace, so in a rollup every non-`serve.`
    /// metric remains the exact sum of the per-shard metrics.
    metrics: Metrics,
    /// Batch-domain series sampler (`None` when `ServeConfig.telemetry`
    /// is off). Its snapshot lands in the report rollup as the series
    /// named `serve`, alongside the merged per-shard `engine` series.
    telemetry: Option<Telemetry>,
    /// First error hit while applying fire-and-forget updates (e.g. a
    /// dead shard at a full-batch flush); surfaced to the next blocking
    /// call instead of being lost.
    deferred: Option<Error>,
    /// Submission-to-completion latency of every blocking call, in µs;
    /// powers the `serve.latency.p50_us`/`p99_us` gauges.
    latencies_us: Vec<u64>,
    /// Durability level of commit barriers (from [`ServeConfig`]).
    durability: Durability,
    /// True when deferred commit barriers are buffered but not yet
    /// fsynced on the shards; cleared by the next seal (explicit
    /// [`Request::Sync`], a report, scheduler idle, or exit).
    sync_pending: bool,
    /// True when the shards serve adaptively (from [`ServeConfig`]);
    /// stamped into reports as the `serve.adaptive` gauge so downstream
    /// validation knows to require the `migrate.*` counters.
    adaptive: bool,
}

/// Receive a shard reply, yielding the CPU to the computing shards before
/// parking. Blocking straight into `recv` is pathological when shards and
/// scheduler share cores: the scheduler parks (one syscall), the shard's
/// reply `send` has to wake it (another), and the wakeup preempts the
/// shard mid-batch — two syscalls and two context switches per reply.
/// `yield_now` hands the CPU directly to a runnable shard instead, and
/// the reply `send` then finds the scheduler unparked, making the common
/// case syscall-free. The spin is bounded so a genuinely slow shard falls
/// back to a blocking `recv` rather than busy-looping a core.
fn recv_yielding<T>(rx: &Receiver<T>) -> Option<T> {
    for _ in 0..YIELD_BUDGET {
        match rx.try_recv() {
            Ok(v) => return Some(v),
            Err(TryRecvError::Empty) => std::thread::yield_now(),
            Err(TryRecvError::Disconnected) => return None,
        }
    }
    rx.recv().ok()
}

impl Scheduler {
    fn run(&mut self) {
        // Register the seal counter up front (a zero-delta add pins the
        // name into the registry): consumers that scrub the volatile set
        // assert presence first, and a `Barrier`-mode run never seals.
        self.metrics.counter_add("serve.seals", 0);
        loop {
            if self.work.is_empty() {
                let mut fresh = Vec::new();
                // The ring handle is cloned out so the idle hook can
                // borrow `self` mutably (it fans a Barrier commit out to
                // the shards).
                let ring = Arc::clone(&self.ring);
                if !ring.drain_wait(&mut fresh, || self.idle_seal()) {
                    break;
                }
                self.drained(&fresh);
                self.work.extend(fresh);
            }
            let mut done: Vec<(u64, Result<Response>)> = Vec::new();
            while let Some(slot) = self.work.pop_front() {
                match slot.ticket {
                    None => self.admit(slot.request),
                    Some(ticket) => {
                        let result = self.handle(slot.request);
                        self.latencies_us.push(slot.at.elapsed().as_micros() as u64);
                        done.push((ticket, result));
                    }
                }
            }
            // One wakeup for the whole drained batch.
            self.ring.complete(done);
        }
        // Normal exit only happens after `close`, but make it
        // unconditional so no client can ever be left blocked.
        self.ring.close();
        // Seal any still-deferred commit barriers before the shard
        // channels close: an orderly shutdown must not roll back commits
        // the client was promised would reach a seal point. (A *crash*
        // before this line is exactly the case deferred durability
        // documents as rolling back.) Best-effort — there is no client
        // left to report an error to.
        let _ = self.seal_pending();
        // Dropping `shard_txs` (with `self`) closes every shard channel;
        // the shard threads drain what was sent and exit.
    }

    /// Ring-drain accounting. `serve.ring.submitted` counts every request
    /// that entered the ring (deterministic: FIFO processing means the
    /// count at any blocking call is a pure function of the submission
    /// order); the drain shape metrics are wall-clock shaped and listed
    /// in [`VOLATILE_METRICS`].
    fn drained(&mut self, slots: &[Slot]) {
        self.metrics.counter_add("serve.ring.submitted", slots.len() as u64);
        self.metrics.incr("serve.ring.drains");
        self.metrics.observe("serve.ring.drain.len", slots.len() as u64);
    }

    /// Pipelining pump: while a query is in flight on the shards, fold in
    /// whatever arrived meanwhile. Fire-and-forget updates are admitted
    /// (and may flush to the shards — FIFO puts those `Apply`s safely
    /// behind the in-flight `Query`); ticketed requests, and everything
    /// submitted after them, are carried over so global submission order
    /// is preserved exactly.
    fn pump(&mut self) {
        let mut fresh = Vec::new();
        self.ring.drain_now(&mut fresh);
        if fresh.is_empty() {
            return;
        }
        self.drained(&fresh);
        for slot in fresh {
            if slot.ticket.is_none() && self.work.is_empty() {
                self.admit(slot.request);
            } else {
                self.work.push_back(slot);
            }
        }
    }

    /// Process a fire-and-forget submission (ring order, no completion).
    fn admit(&mut self, request: Request) {
        match request {
            Request::UpdateR(m) => self.admit_r(m),
            Request::UpdateS(m) => self.admit_s(m),
            // Only updates are submitted without a ticket; anything else
            // here would be a client-side bug — treat it as a no-op
            // rather than poisoning the scheduler.
            _ => {}
        }
    }

    fn handle(&mut self, request: Request) -> Result<Response> {
        // An error from applying earlier fire-and-forget updates owns the
        // next blocking call: the client that would otherwise observe an
        // inconsistent server gets the root cause instead.
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        match request {
            Request::UpdateR(m) => {
                self.admit_r(m);
                Ok(Response::Ack)
            }
            Request::UpdateS(m) => {
                self.admit_s(m);
                Ok(Response::Ack)
            }
            Request::Flush => {
                self.flush()?;
                Ok(Response::Ack)
            }
            Request::Query(method) => self.query(method).map(Response::Rows),
            Request::Report => {
                self.flush()?;
                // A report is a durability point: seal deferred barriers
                // first so the shard snapshots carry settled `wal.*`
                // accounting (fsyncs ≤ commits, but never an unsealed
                // tail the report's reader could mistake for durable).
                self.seal_pending()?;
                self.report().map(|r| Response::Report(Box::new(r)))
            }
            Request::InstallFaultPlan { shard, plan } => {
                self.send_to(shard, ShardCommand::InstallFaultPlan(plan))?;
                Ok(Response::Ack)
            }
            Request::PoisonCachedView { shard } => {
                self.send_to(shard, ShardCommand::PoisonCachedView)?;
                Ok(Response::Ack)
            }
            Request::ClearFaults { shard } => {
                self.send_to(shard, ShardCommand::ClearFaults)?;
                Ok(Response::Ack)
            }
            Request::Commit => {
                self.flush()?;
                self.commit_barrier(self.durability)?;
                if self.durability == Durability::Deferred {
                    self.sync_pending = true;
                }
                Ok(Response::Ack)
            }
            Request::Sync => {
                self.flush()?;
                self.seal_pending()?;
                Ok(Response::Ack)
            }
        }
    }

    /// Seal deferred commit barriers, if any are pending: one
    /// `Durability::Barrier` round fsyncs every shard's buffered commit
    /// groups at once. The coalescing win of deferred durability lives
    /// here — N barriers since the last seal cost N appends and exactly
    /// one fsync per shard.
    fn seal_pending(&mut self) -> Result<()> {
        if !self.sync_pending {
            return Ok(());
        }
        self.metrics.incr("serve.seals");
        self.commit_barrier(Durability::Barrier)?;
        self.sync_pending = false;
        Ok(())
    }

    /// Idle hook (see [`Ring::drain_wait`]): the ring went quiet with
    /// deferred barriers still buffered, so pay the fsync now. There is
    /// no requester to report to — an error defers to the next blocking
    /// call, like a failed batch flush.
    fn idle_seal(&mut self) {
        if let Err(e) = self.seal_pending() {
            self.deferred.get_or_insert(e);
        }
    }

    /// The server-wide durability barrier: every shard seals its applied
    /// state into its own WAL; this returns only when all have
    /// acknowledged. Shard channels are FIFO, so each shard's commit
    /// covers exactly the batches flushed before the barrier — all WALs
    /// agree on which barrier was last sealed, which is the invariant
    /// shard-local recovery relies on.
    ///
    /// The barrier is *pipelined*: the command fans out to every shard
    /// before any acknowledgement is collected, so the per-shard WAL
    /// appends (and fsyncs, under `Durability::Barrier`) overlap across
    /// shard threads instead of running one after another.
    fn commit_barrier(&mut self, durability: Durability) -> Result<()> {
        self.metrics.incr("serve.commits");
        let (reply, rx) = channel();
        for (i, tx) in self.shard_txs.iter().enumerate() {
            tx.send(ShardCommand::Commit { durability, reply: reply.clone() })
                .map_err(|_| Error::Invariant(format!("serve: shard {i} is down")))?;
        }
        drop(reply);
        let expected = self.shard_txs.len();
        let mut acks = 0usize;
        let mut first_err: Option<(usize, Error)> = None;
        while acks < expected {
            let Some((shard, result)) = recv_yielding(&rx) else { break };
            acks += 1;
            if let Err(e) = result {
                self.metrics.incr("serve.commit_errors");
                if first_err.is_none() {
                    first_err = Some((shard, e));
                }
            }
        }
        if let Some((shard, e)) = first_err {
            return Err(Error::Invariant(format!("serve: shard {shard} commit failed: {e}")));
        }
        if acks != expected {
            return Err(Error::Invariant(format!("serve: {acks}/{expected} shards committed")));
        }
        Ok(())
    }

    fn send_to(&self, shard: usize, cmd: ShardCommand) -> Result<()> {
        let tx = self
            .shard_txs
            .get(shard)
            .ok_or_else(|| Error::Invariant(format!("serve: no shard {shard}")))?;
        tx.send(cmd).map_err(|_| Error::Invariant(format!("serve: shard {shard} is down")))
    }

    fn admit_r(&mut self, m: Mutation) {
        self.metrics.incr("serve.updates.r");
        let n = self.shard_txs.len();
        if router::is_cross_shard(&m, n) {
            self.metrics.incr("serve.updates.cross_shard");
        }
        for (shard, part) in router::route(m, n) {
            self.pending_r[shard].push(part);
        }
        self.admitted();
    }

    fn admit_s(&mut self, m: Mutation) {
        self.metrics.incr("serve.updates.s");
        let n = self.shard_txs.len();
        if router::is_cross_shard(&m, n) {
            self.metrics.incr("serve.updates.cross_shard");
        }
        for (shard, part) in router::route(m, n) {
            self.pending_s[shard].push(part);
        }
        self.admitted();
    }

    fn admitted(&mut self) {
        self.pending += 1;
        if self.pending >= self.batch {
            // A full batch flushes immediately; a dead shard is deferred
            // and owns the next blocking call.
            if let Err(e) = self.flush() {
                self.deferred.get_or_insert(e);
            }
        }
    }

    /// Dispatch every pending per-shard batch. A no-op when nothing is
    /// pending, so query-time flushes of an already-drained queue do not
    /// inflate the batch statistics.
    fn flush(&mut self) -> Result<()> {
        if self.pending == 0 {
            return Ok(());
        }
        let total: usize = self.pending_r.iter().chain(self.pending_s.iter()).map(Vec::len).sum();
        self.metrics.incr("serve.batches");
        self.metrics.observe("serve.batch.len", total as u64);
        self.batches += 1;
        self.telemetry_tick();
        let mut result = Ok(());
        for i in 0..self.shard_txs.len() {
            let r = std::mem::take(&mut self.pending_r[i]);
            let s = std::mem::take(&mut self.pending_s[i]);
            if r.is_empty() && s.is_empty() {
                continue;
            }
            if self.shard_txs[i].send(ShardCommand::Apply { r, s }).is_err() {
                self.metrics.incr("serve.shard_send_errors");
                result = Err(Error::Invariant(format!("serve: shard {i} is down")));
            }
        }
        self.pending = 0;
        result
    }

    /// Flush any pending batch and fan a query out to every shard, then
    /// stream-merge the answers. The flush rides inside the same message
    /// as the query ([`ShardCommand::ApplyThenQuery`]) — identical apply
    /// and batch bookkeeping to a standalone flush, but each shard wakes
    /// once per round instead of twice. While the shards compute, the
    /// ring keeps draining ([`Self::pump`]) so differential application
    /// is pipelined with query execution. One shard's failure fails this
    /// query (the merged answer would be incomplete) but not the server;
    /// strategies recover from planned device faults internally, so this
    /// surfaces only truly unrecoverable damage.
    fn query(&mut self, method: Method) -> Result<Vec<ViewTuple>> {
        self.metrics.incr("serve.queries");
        let flushing = self.pending > 0;
        if flushing {
            let total: usize =
                self.pending_r.iter().chain(self.pending_s.iter()).map(Vec::len).sum();
            self.metrics.incr("serve.batches");
            self.metrics.observe("serve.batch.len", total as u64);
            self.batches += 1;
            self.telemetry_tick();
            self.pending = 0;
        }
        let (reply, rx) = channel();
        let mut send_err: Option<Error> = None;
        for (i, tx) in self.shard_txs.iter().enumerate() {
            let r = if flushing { std::mem::take(&mut self.pending_r[i]) } else { Vec::new() };
            let s = if flushing { std::mem::take(&mut self.pending_s[i]) } else { Vec::new() };
            let cmd = if r.is_empty() && s.is_empty() {
                ShardCommand::Query { method, reply: reply.clone() }
            } else {
                ShardCommand::ApplyThenQuery { r, s, method, reply: reply.clone() }
            };
            if tx.send(cmd).is_err() {
                // Keep dispatching to the remaining live shards (their
                // batches must not be dropped on the floor), then fail
                // the query.
                self.metrics.incr("serve.shard_send_errors");
                send_err
                    .get_or_insert_with(|| Error::Invariant(format!("serve: shard {i} is down")));
            }
        }
        drop(reply);
        if let Some(e) = send_err {
            return Err(e);
        }
        let expected = self.shard_txs.len();
        let mut parts: Vec<Vec<ViewTuple>> = (0..expected).map(|_| Vec::new()).collect();
        let mut first_err: Option<(usize, Error)> = None;
        let mut answered = 0usize;
        while answered < expected {
            // Differential work admitted while the shards compute lands
            // behind the in-flight Query in each shard's FIFO queue.
            self.pump();
            let Some((shard, result)) = recv_yielding(&rx) else { break };
            answered += 1;
            match result {
                Ok(shard_rows) => parts[shard] = shard_rows,
                Err(e) => {
                    self.metrics.incr("serve.query_errors");
                    if first_err.is_none() {
                        first_err = Some((shard, e));
                    }
                }
            }
        }
        if let Some((shard, e)) = first_err {
            return Err(Error::Invariant(format!("serve: shard {shard} failed: {e}")));
        }
        if answered != expected {
            return Err(Error::Invariant(format!("serve: {answered}/{expected} shards answered")));
        }
        // Each shard's answer arrives sorted by (r_sur, s_sur), and
        // surrogate pairs are globally unique (partitions are disjoint):
        // the k-way merge of the per-shard runs is the same deterministic
        // total order the old concat + full re-sort produced, without
        // re-sorting rows that are already ordered. The merge is wall-
        // clock work only — it runs on a throwaway cost ledger.
        let total: usize = parts.iter().map(Vec::len).sum();
        let sources: Vec<_> = parts.into_iter().map(Vec::into_iter).collect();
        let merge = KWayMerge::new(sources, |t: &ViewTuple| (t.r_sur, t.s_sur), Cost::new());
        let mut rows = Vec::with_capacity(total);
        rows.extend(merge);
        Ok(rows)
    }

    /// Gather per-shard reports and roll them up, overlaying the
    /// scheduler's own `serve.*` counters on the rollup afterwards (a pure
    /// overlay: shard metrics are never touched, so their sums stay exact).
    fn report(&mut self) -> Result<ShardedRunReport> {
        let (reply, rx) = channel();
        for (i, tx) in self.shard_txs.iter().enumerate() {
            tx.send(ShardCommand::Report { reply: reply.clone() })
                .map_err(|_| Error::Invariant(format!("serve: shard {i} is down")))?;
        }
        drop(reply);
        let mut replies: Vec<(usize, Box<RunReport>)> = rx.iter().collect();
        if replies.len() != self.shard_txs.len() {
            return Err(Error::Invariant(format!(
                "serve: {}/{} shards reported",
                replies.len(),
                self.shard_txs.len()
            )));
        }
        replies.sort_by_key(|(shard, _)| *shard);
        let shards: Vec<RunReport> = replies.into_iter().map(|(_, boxed)| *boxed).collect();
        self.stamp_gauges();
        if let Some(tel) = &self.telemetry {
            // Close the open batch window so even a short run serializes a
            // scheduler series. No audit runs here, so alerts are empty.
            let _ = tel.force_close(self.batches, &self.metrics);
        }
        let mut sharded = ShardedRunReport::rollup_of("serve", &self.params, shards);
        sharded.rollup.metrics.merge(&self.metrics.snapshot());
        if let Some(tel) = &self.telemetry {
            sharded.rollup.series.push(tel.series());
        }
        Ok(sharded)
    }

    /// Advance the batch-domain telemetry clock. When the tick is about to
    /// close a window, the volatile ring/latency gauges are stamped first
    /// so the closing window captures their current values.
    fn telemetry_tick(&mut self) {
        let Some(tel) = self.telemetry.clone() else { return };
        if tel.due(self.batches) {
            self.stamp_gauges();
        }
        let _ = tel.tick(self.batches, &self.metrics);
    }

    /// Stamp the ring/latency gauges the report validator requires:
    /// capacity (deterministic), backpressure waits and the blocking-call
    /// latency percentiles (wall-clock shaped, see [`VOLATILE_METRICS`]).
    fn stamp_gauges(&mut self) {
        self.metrics.gauge_set("serve.ring.capacity", self.ring.capacity as f64);
        self.metrics.gauge_set("serve.ring.full_waits", self.ring.full_waits() as f64);
        let (p50, p99) = percentiles(&mut self.latencies_us);
        self.metrics.gauge_set("serve.latency.p50_us", p50 as f64);
        self.metrics.gauge_set("serve.latency.p99_us", p99 as f64);
        // Only stamped when on: a non-adaptive run's report (and the
        // golden ledgers pinning it) carries no trace of the feature.
        if self.adaptive {
            self.metrics.gauge_set("serve.adaptive", 1.0);
        }
    }
}

/// `(p50, p99)` of the recorded latencies (`(0, 0)` before any blocking
/// call completes). Sorts in place; completion order is irrelevant.
fn percentiles(latencies_us: &mut [u64]) -> (u64, u64) {
    if latencies_us.is_empty() {
        return (0, 0);
    }
    latencies_us.sort_unstable();
    let pct = |p: usize| latencies_us[(latencies_us.len() - 1) * p / 100];
    (pct(50), pct(99))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_common::Surrogate;

    fn params() -> SystemParams {
        SystemParams { page_size: 512, mem_pages: 24, ..Default::default() }
    }

    fn config(shards: usize, batch: usize) -> ServeConfig {
        ServeConfig { batch, seed: 11, ..ServeConfig::new(params(), shards) }
    }

    fn tuples(n: u32, stride: u64) -> Vec<BaseTuple> {
        (0..n).map(|i| BaseTuple::padded(Surrogate(i), (i as u64) % stride, 48)).collect()
    }

    #[test]
    fn serves_queries_across_shards() {
        let r = tuples(120, 11);
        let s = tuples(90, 11);
        let want = trijoin_exec::oracle::canonicalize(trijoin_exec::oracle::join_tuples(&r, &s));
        let mut server = Server::start(&config(4, 8), r, s).unwrap();
        let session = server.session().unwrap();
        for method in Method::all() {
            let got = session.query(method).unwrap();
            assert_eq!(got, want, "{method} diverged from oracle");
        }
        server.shutdown();
        // Calls after shutdown error rather than hang.
        assert!(session.query(Method::HybridHash).is_err());
        assert!(session.update_r(Mutation::Delete(tuples(1, 1).remove(0))).is_err());
    }

    #[test]
    fn session_after_shutdown_is_a_typed_error() {
        let mut server = Server::start(&config(2, 8), tuples(30, 5), tuples(30, 5)).unwrap();
        assert!(server.session().is_ok(), "live server hands out sessions");
        server.shutdown();
        let err = match server.session() {
            Ok(_) => panic!("session after shutdown must fail, not panic"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("shut down"), "typed server-down error, got: {err}");
        // Idempotent shutdown keeps the same behavior.
        server.shutdown();
        assert!(server.session().is_err());
    }

    #[test]
    fn updates_are_batched_until_query() {
        let r = tuples(60, 7);
        let s = tuples(60, 7);
        let server = Server::start(&config(2, 1000), r.clone(), s).unwrap();
        let session = server.session().unwrap();
        // Admit three payload-only updates (no cross-shard splits): under
        // the huge batch size they stay pending until the report flushes.
        let mut current = r;
        for (i, slot) in current.iter_mut().enumerate().take(3) {
            let old = slot.clone();
            let new = BaseTuple::with_payload(old.sur, old.key, &[i as u8 + 1], 48).unwrap();
            *slot = new.clone();
            session.update_r(Mutation::Update(trijoin_exec::Update { old, new })).unwrap();
        }
        let report = session.report().unwrap();
        // The flush forced by the report coalesced all three into one batch.
        assert_eq!(report.rollup.metrics.counter("serve.updates.r"), 3);
        assert_eq!(report.rollup.metrics.counter("serve.batches"), 1);
        let batch = report.rollup.metrics.histogram("serve.batch.len").unwrap();
        assert_eq!(batch.count, 1);
        assert_eq!(batch.sum, 3);
        // Ring accounting: 3 updates + the report itself went through.
        assert_eq!(report.rollup.metrics.counter("serve.ring.submitted"), 4);
        assert_eq!(report.rollup.metrics.gauge("serve.ring.capacity"), Some(1024.0));
    }

    #[test]
    fn tiny_ring_applies_backpressure_without_loss() {
        let r = tuples(60, 7);
        let s = tuples(60, 7);
        let want = trijoin_exec::oracle::canonicalize(trijoin_exec::oracle::join_tuples(&r, &s));
        let cfg = ServeConfig { ring: 1, ..config(2, 4) };
        let server = Server::start(&cfg, r.clone(), s.clone()).unwrap();
        let session = server.session().unwrap();
        // Far more submissions than the ring holds: every one must wait
        // its turn and none may be dropped.
        for slot in r.iter().take(20) {
            let old = slot.clone();
            let new = BaseTuple::with_payload(old.sur, old.key, b"bp", 48).unwrap();
            session.update_r(Mutation::Update(trijoin_exec::Update { old, new })).unwrap();
            let back = Mutation::Update(trijoin_exec::Update {
                old: BaseTuple::with_payload(slot.sur, slot.key, b"bp", 48).unwrap(),
                new: slot.clone(),
            });
            session.update_r(back).unwrap();
        }
        assert_eq!(session.query(Method::HybridHash).unwrap(), want);
        let report = session.report().unwrap();
        assert_eq!(report.rollup.metrics.counter("serve.updates.r"), 40);
        assert_eq!(report.rollup.metrics.gauge("serve.ring.capacity"), Some(1.0));
    }

    #[test]
    fn concurrent_updates_pipeline_with_queries() {
        // One thread hammers fire-and-forget updates while another runs
        // queries: the pipelined scheduler must keep every answer equal
        // to the oracle over the updates admitted before that query —
        // which the final flushed state verifies exactly.
        let r = tuples(120, 11);
        let s = tuples(90, 11);
        let server = Server::start(&config(4, 8), r.clone(), s.clone()).unwrap();
        let session = server.session().unwrap();
        let writer = server.session().unwrap();
        let r_writer = r.clone();
        let handle = std::thread::spawn(move || {
            // Flip every tuple's payload once; join keys never change, so
            // the final relation is r with every payload retagged.
            for t in &r_writer {
                let new = BaseTuple::with_payload(t.sur, t.key, b"pipelined", 48).unwrap();
                writer
                    .update_r(Mutation::Update(trijoin_exec::Update { old: t.clone(), new }))
                    .unwrap();
            }
        });
        // Queries interleave with the writer; answers must never error.
        for _ in 0..6 {
            session.query(Method::HybridHash).unwrap();
        }
        handle.join().unwrap();
        session.flush().unwrap();
        let r_final: Vec<BaseTuple> = r
            .iter()
            .map(|t| BaseTuple::with_payload(t.sur, t.key, b"pipelined", 48).unwrap())
            .collect();
        let want =
            trijoin_exec::oracle::canonicalize(trijoin_exec::oracle::join_tuples(&r_final, &s));
        for method in Method::all() {
            assert_eq!(session.query(method).unwrap(), want, "{method} lost a pipelined update");
        }
        let report = session.report().unwrap();
        assert_eq!(report.rollup.metrics.counter("serve.updates.r"), 120);
    }

    #[test]
    fn report_rollup_covers_every_shard() {
        let server = Server::start(&config(3, 4), tuples(80, 9), tuples(80, 9)).unwrap();
        let session = server.session().unwrap();
        session.query(Method::JoinIndex).unwrap();
        let report = session.report().unwrap();
        assert_eq!(report.shards.len(), 3);
        for (i, shard) in report.shards.iter().enumerate() {
            assert_eq!(shard.name, format!("shard{i}"));
            assert_eq!(shard.metrics.counter("db.queries"), 1);
        }
        assert_eq!(report.rollup.metrics.counter("db.queries"), 3);
        assert_eq!(report.rollup.metrics.counter("serve.queries"), 1);
        // The latency gauges are stamped on every report (the validator
        // requires them); with one completed query they are non-zero.
        let p50 = report.rollup.metrics.gauge("serve.latency.p50_us").unwrap();
        let p99 = report.rollup.metrics.gauge("serve.latency.p99_us").unwrap();
        assert!(p50 > 0.0 && p99 >= p50, "p50 {p50} / p99 {p99}");
    }

    #[test]
    fn bad_shard_index_is_rejected() {
        let server = Server::start(&config(2, 4), tuples(20, 3), tuples(20, 3)).unwrap();
        let session = server.session().unwrap();
        assert!(session.clear_faults(5).is_err());
        assert!(session.clear_faults(1).is_ok());
    }
}
