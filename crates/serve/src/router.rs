//! Routing mutations to shards.
//!
//! Both relations are hash-partitioned on the join attribute, so a
//! mutation's destination is determined by its tuple's key. The one subtle
//! case is an update that *changes* the join attribute (probability `Pr_A`
//! in the paper): old and new key may hash to different shards, in which
//! case the update is split into a `Delete(old)` routed to the old key's
//! shard and an `Insert(new)` routed to the new key's shard — exactly the
//! paper's reading of an update as "a deleted tuple followed by an
//! inserted tuple", here applied across partitions.

use trijoin_common::shard_of_key;
use trijoin_exec::Mutation;

/// Where a routed mutation (or half of a split update) must be applied.
pub type RoutedMutation = (usize, Mutation);

/// Route one logical mutation of a hash-partitioned relation to its
/// shard(s) out of `shards`. Returns one entry for shard-local mutations,
/// two (delete then insert) for cross-shard attribute-changing updates.
pub fn route(m: Mutation, shards: usize) -> Vec<RoutedMutation> {
    match m {
        Mutation::Insert(t) => {
            let shard = shard_of_key(t.key, shards);
            vec![(shard, Mutation::Insert(t))]
        }
        Mutation::Delete(t) => {
            let shard = shard_of_key(t.key, shards);
            vec![(shard, Mutation::Delete(t))]
        }
        Mutation::Update(u) => {
            let old_shard = shard_of_key(u.old.key, shards);
            let new_shard = shard_of_key(u.new.key, shards);
            if old_shard == new_shard {
                vec![(old_shard, Mutation::Update(u))]
            } else {
                vec![(old_shard, Mutation::Delete(u.old)), (new_shard, Mutation::Insert(u.new))]
            }
        }
    }
}

/// Whether routing this mutation would split it across two shards.
pub fn is_cross_shard(m: &Mutation, shards: usize) -> bool {
    match m {
        Mutation::Update(u) => shard_of_key(u.old.key, shards) != shard_of_key(u.new.key, shards),
        Mutation::Insert(_) | Mutation::Delete(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_common::{BaseTuple, Surrogate};
    use trijoin_exec::Update;

    fn t(sur: u32, key: u64) -> BaseTuple {
        BaseTuple::padded(Surrogate(sur), key, 48)
    }

    #[test]
    fn inserts_and_deletes_follow_their_key() {
        for key in 0..200u64 {
            let routed = route(Mutation::Insert(t(1, key)), 4);
            assert_eq!(routed.len(), 1);
            assert_eq!(routed[0].0, shard_of_key(key, 4));
            let routed = route(Mutation::Delete(t(1, key)), 4);
            assert_eq!(routed[0].0, shard_of_key(key, 4));
        }
    }

    #[test]
    fn same_shard_update_stays_whole() {
        // A payload-only update never changes shard.
        let u = Update { old: t(3, 17), new: t(3, 17) };
        let routed = route(Mutation::Update(u.clone()), 8);
        assert_eq!(routed, vec![(shard_of_key(17, 8), Mutation::Update(u))]);
    }

    #[test]
    fn cross_shard_update_splits_into_delete_then_insert() {
        // Find a key pair hashing to different shards.
        let (a, b) = (0..)
            .flat_map(|x| (0..100u64).map(move |y| (x, y)))
            .find(|&(x, y)| shard_of_key(x, 4) != shard_of_key(y, 4))
            .unwrap();
        let u = Update { old: t(9, a), new: t(9, b) };
        assert!(is_cross_shard(&Mutation::Update(u.clone()), 4));
        let routed = route(Mutation::Update(u.clone()), 4);
        assert_eq!(
            routed,
            vec![
                (shard_of_key(a, 4), Mutation::Delete(u.old)),
                (shard_of_key(b, 4), Mutation::Insert(u.new)),
            ]
        );
    }

    #[test]
    fn single_shard_never_splits() {
        let u = Update { old: t(2, 5), new: t(2, 1 << 41) };
        assert!(!is_cross_shard(&Mutation::Update(u.clone()), 1));
        assert_eq!(route(Mutation::Update(u.clone()), 1), vec![(0, Mutation::Update(u))]);
    }
}
