//! Per-shard online strategy selection with incremental migration.
//!
//! Each adaptive shard tracks its observed update/query mix, the measured
//! `Pr_A` fraction, and key skew (a top-k frequency sketch, decayed on the
//! shard engine's telemetry windows) and re-prices MV/JI/HH with the §3
//! cost model after every query. When the predicted winner beats the
//! incumbent by the hysteresis margin, the shard *migrates* instead of
//! rebuilding: the new cached structure is staged from the rows the
//! incumbent just produced (the old structure's contents with every
//! pending differential folded in — never a base-relation rescan), built
//! in bounded steps that advance one per shard command, and caught up
//! from the differential log of mutations that arrived while it was
//! building. Queries are served by the old structure until the hand-off
//! completes.
//!
//! The state machine per shard:
//!
//! ```text
//! Stable ──(cost crossover at a query)──▶ Building ──(staged + built)──▶
//! Draining ──(pending log replayed, swap)──▶ Stable
//! ```
//!
//! Any device fault while building or draining rolls back: the partial
//! target is destroyed, the incumbent (never touched by the migration)
//! keeps serving, and `migrate.rollbacks` counts the abort. A mutation of
//! `S` aborts the same way — it invalidates both cached structures, so
//! the ordinary `S`-rebuild path supersedes the migration.

use trijoin::{CachedStrategy, Database, Method};
use trijoin_common::{EventKind, JiEntry, Result, TopKSketch, ViewTuple};
use trijoin_exec::{HybridHash, JoinIndexStrategy, JoinStrategy, MaterializedView, Mutation};
use trijoin_model::{all_costs, Workload};

/// Rows staged per migration step. Small enough that several shard
/// commands (and thus several checkpoints, in the harness) pass while a
/// migration is in flight; large enough that migrations finish within a
/// regime of adversarial traffic.
const MIGRATION_CHUNK: usize = 96;

/// Queries a shard must serve after a completed migration before it may
/// start another — the flap guard on top of the hysteresis margin.
const MIGRATION_COOLDOWN: u64 = 2;

/// Hot keys tracked per shard (the space-saving sketch's capacity).
const SKEW_CAPACITY: usize = 16;

/// The migration state machine of one adaptive shard.
pub enum MigrationState {
    /// No migration in flight.
    Stable,
    /// Staging the target structure from the incumbent's rows, a bounded
    /// chunk per shard command.
    Building {
        /// Method being migrated to.
        target: Method,
        /// The incumbent's full answer at decision time (its structure
        /// plus every differential entry, folded by the decision query).
        rows: Vec<ViewTuple>,
        /// Rows staged so far.
        cursor: usize,
        /// Staged join-index entries (target = JI).
        entries: Vec<JiEntry>,
        /// Mutations that arrived while building; replayed in Draining.
        pending: Vec<Mutation>,
    },
    /// Target built; catching it up from the pending differential log.
    Draining {
        /// The built target structure, not yet serving. Boxed: a cached
        /// strategy is an order of magnitude wider than the other
        /// variants, and `Stable` is the state every shard idles in.
        built: Box<CachedStrategy>,
        /// Mutations to replay into it before the swap.
        pending: Vec<Mutation>,
    },
}

impl MigrationState {
    /// Short wire name for events and gauges.
    pub fn name(&self) -> &'static str {
        match self {
            MigrationState::Stable => "stable",
            MigrationState::Building { .. } => "building",
            MigrationState::Draining { .. } => "draining",
        }
    }

    /// Gauge encoding: 0 = stable, 1 = building, 2 = draining.
    pub fn gauge(&self) -> f64 {
        match self {
            MigrationState::Stable => 0.0,
            MigrationState::Building { .. } => 1.0,
            MigrationState::Draining { .. } => 2.0,
        }
    }
}

/// Gauge encoding of the serving method: the index in [`Method::all`]
/// (0 = MV, 1 = JI, 2 = HH). `trijoin top` renders it back to a name.
pub fn method_gauge(method: Method) -> f64 {
    Method::all().iter().position(|m| *m == method).unwrap_or(0) as f64
}

/// The adaptive controller of one shard: the incumbent structure, the
/// rolling workload statistics, and the migration in flight (if any).
pub struct AdaptiveShard {
    current: CachedStrategy,
    migration: MigrationState,
    /// Predicted-cost advantage required before migrating (1.3 = 30%).
    hysteresis: f64,
    /// Queries left before another migration may start.
    cooldown: u64,
    // Observed since the last query:
    mutations: u64,
    a_changes: u64,
    // Rolling estimates:
    pra_estimate: f64,
    sketch: TopKSketch,
    /// Telemetry windows seen at the last decay (engine-tick domain).
    seen_windows: u64,
    queries: u64,
    migrations: u64,
}

impl AdaptiveShard {
    /// Start serving with `initial`.
    pub fn new(initial: CachedStrategy) -> AdaptiveShard {
        AdaptiveShard {
            current: initial,
            migration: MigrationState::Stable,
            hysteresis: 1.3,
            cooldown: 0,
            mutations: 0,
            a_changes: 0,
            pra_estimate: 0.5,
            sketch: TopKSketch::new(SKEW_CAPACITY),
            seen_windows: 0,
            queries: 0,
            migrations: 0,
        }
    }

    /// Register the `migrate.*` counters at zero so an adaptive run that
    /// never migrates still reports them (the report validator requires
    /// their presence whenever `serve.adaptive` is set). Called after the
    /// shard's post-construction observability reset.
    pub fn register_metrics(&self, db: &Database) {
        let metrics = db.metrics();
        for name in ["migrate.count", "migrate.steps", "migrate.rebuild_pages", "migrate.rollbacks"]
        {
            metrics.counter_add(name, 0);
        }
    }

    /// The method currently serving queries.
    pub fn current_method(&self) -> Method {
        self.current.method()
    }

    /// The migration state (for gauges and tests).
    pub fn state(&self) -> &MigrationState {
        &self.migration
    }

    /// Completed migrations.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// The incumbent as a strategy (for `PoisonCachedView` resolution and
    /// query execution).
    pub fn strategy(&mut self) -> &mut dyn JoinStrategy {
        self.current.as_dyn()
    }

    /// The incumbent's cached file, if it has one (MV view / JI index).
    pub fn cached_file(&self) -> Option<trijoin_storage::FileId> {
        match &self.current {
            CachedStrategy::Mv(mv) => Some(mv.view_file()),
            CachedStrategy::Ji(ji) => Some(ji.index_file()),
            CachedStrategy::Hh(_) => None,
        }
    }

    /// Observe one `R` mutation: feed the rolling statistics, log it into
    /// the incumbent (which keeps serving), and — when a migration is in
    /// flight — append it to the pending differential log so the target
    /// catches up before the swap.
    pub fn on_mutation(&mut self, db: &Database, m: &Mutation) -> Result<()> {
        self.mutations += 1;
        if m.affects_join_index() {
            self.a_changes += 1;
        }
        match m {
            Mutation::Insert(t) | Mutation::Delete(t) => self.sketch.observe(t.key),
            Mutation::Update(u) => {
                self.sketch.observe(u.old.key);
                if u.new.key != u.old.key {
                    self.sketch.observe(u.new.key);
                }
            }
        }
        self.current.as_dyn().on_mutation(m)?;
        // Log into the migration's differential only after the incumbent
        // accepted the mutation: a rejected mutation is skipped by the
        // shard (never applied to the base relation), and replaying it
        // into the target would make the two structures disagree.
        match &mut self.migration {
            MigrationState::Stable => {}
            MigrationState::Building { pending, .. } | MigrationState::Draining { pending, .. } => {
                pending.push(m.clone());
                db.metrics().incr("migrate.pending_logged");
            }
        }
        Ok(())
    }

    /// A mutation of `S` invalidates every cached structure: abort any
    /// migration (the ordinary rebuild path supersedes it).
    pub fn on_s_mutation(&mut self, db: &Database) {
        if !matches!(self.migration, MigrationState::Stable) {
            self.rollback(db, "S mutated during migration");
        }
    }

    /// Replace the incumbent after an `S`-driven rebuild.
    pub fn replace_current(&mut self, next: CachedStrategy) {
        let old = std::mem::replace(&mut self.current, next);
        old.destroy();
    }

    /// Advance an in-flight migration by one bounded step. Called once
    /// per shard command, so a migration spans several commands (and, in
    /// the harness, checkpoints land with migrations genuinely in
    /// flight). Any error rolls the migration back; the incumbent is
    /// untouched and keeps serving.
    pub fn advance(&mut self, db: &Database) {
        if matches!(self.migration, MigrationState::Stable) {
            return;
        }
        if let Err(e) = self.try_advance(db) {
            self.rollback(db, &format!("device fault: {e}"));
        }
    }

    fn try_advance(&mut self, db: &Database) -> Result<()> {
        let metrics = db.metrics();
        match &mut self.migration {
            MigrationState::Stable => Ok(()),
            MigrationState::Building { target, rows, cursor, entries, pending } => {
                let end = (*cursor + MIGRATION_CHUNK).min(rows.len());
                let staged = end - *cursor;
                {
                    // Staging is in-memory differential work: charge the
                    // tuple moves, not I/O.
                    let _g = db.cost().section("migrate.build");
                    db.cost().mov(staged as u64);
                    if *target == Method::JoinIndex {
                        entries.extend(rows[*cursor..end].iter().map(ViewTuple::ji_entry));
                    }
                }
                *cursor = end;
                metrics.incr("migrate.steps");
                db.disk().events().emit(
                    EventKind::MigrationStep,
                    format!("build chunk {staged} rows ({end}/{} staged)", rows.len()),
                    db.cost().total(),
                );
                if *cursor < rows.len() {
                    return Ok(());
                }
                // Fully staged: write the target structure. The only I/O
                // of the whole migration is these writes — strictly fewer
                // pages than any base-relation rebuild would read.
                let built = {
                    let _g = db.cost().section("migrate.build");
                    let (rb, sb) = (db.r().tuple_bytes(), db.s().tuple_bytes());
                    match *target {
                        Method::MaterializedView => {
                            CachedStrategy::Mv(MaterializedView::build_from_tuples(
                                db.disk(),
                                db.params(),
                                db.cost(),
                                rows,
                                rb,
                                sb,
                            )?)
                        }
                        Method::JoinIndex => {
                            CachedStrategy::Ji(JoinIndexStrategy::build_from_entries(
                                db.disk(),
                                db.params(),
                                db.cost(),
                                std::mem::take(entries),
                                rb,
                                sb,
                            )?)
                        }
                        Method::HybridHash => {
                            CachedStrategy::Hh(HybridHash::new(db.disk(), db.params(), db.cost()))
                        }
                    }
                };
                metrics.counter_add("migrate.rebuild_pages", built.cached_pages());
                db.disk().events().emit(
                    EventKind::MigrationStep,
                    format!("built {:?} ({} pages), draining", target, built.cached_pages()),
                    db.cost().total(),
                );
                self.migration = MigrationState::Draining {
                    built: Box::new(built),
                    pending: std::mem::take(pending),
                };
                Ok(())
            }
            MigrationState::Draining { built, pending } => {
                let drained = pending.len();
                {
                    let _g = db.cost().section("migrate.drain");
                    for m in pending.iter() {
                        built.as_dyn().on_mutation(m)?;
                    }
                }
                pending.clear();
                metrics.incr("migrate.steps");
                // Swap: the caught-up target takes over; the old structure
                // is destroyed. From here every mutation and query goes to
                // the new incumbent.
                let built = std::mem::replace(
                    &mut **built,
                    CachedStrategy::Hh(HybridHash::new(db.disk(), db.params(), db.cost())),
                );
                let from = self.current.method();
                let to = built.method();
                self.replace_current(built);
                self.migration = MigrationState::Stable;
                self.migrations += 1;
                self.cooldown = MIGRATION_COOLDOWN;
                metrics.incr("migrate.count");
                db.disk().events().emit(
                    EventKind::MigrationStep,
                    format!("drained {drained} pending, swapped"),
                    db.cost().total(),
                );
                db.disk().events().emit(
                    EventKind::StrategySwitch,
                    format!("{from:?} -> {to:?} (migration complete)"),
                    db.cost().total(),
                );
                Ok(())
            }
        }
    }

    /// Abort the migration: destroy any partial target, keep the
    /// incumbent, count the rollback.
    fn rollback(&mut self, db: &Database, why: &str) {
        let state = std::mem::replace(&mut self.migration, MigrationState::Stable);
        if let MigrationState::Draining { built, .. } = state {
            (*built).destroy();
        }
        db.metrics().incr("migrate.rollbacks");
        db.disk().events().emit(
            EventKind::MigrationStep,
            format!("rollback: {why}"),
            db.cost().total(),
        );
    }

    /// Post-query bookkeeping and the migration decision. `rows` is the
    /// answer the incumbent just produced — when a migration starts, it
    /// is the staging source for the target structure.
    pub fn after_query(&mut self, db: &Database, rows: &[ViewTuple]) {
        self.queries += 1;
        self.decay_on_window(db);
        if self.mutations > 0 {
            let observed = self.a_changes as f64 / self.mutations as f64;
            self.pra_estimate = 0.5 * self.pra_estimate + 0.5 * observed;
        }
        let updates = self.mutations;
        self.mutations = 0;
        self.a_changes = 0;
        if !matches!(self.migration, MigrationState::Stable) {
            return;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return;
        }
        let w = self.estimate(db, rows, updates);
        let costs = all_costs(db.params(), &w);
        let kind = self.current.method();
        let current_pred =
            costs.iter().find(|c| c.method == kind).map(|c| c.total()).unwrap_or(f64::INFINITY);
        let Some((best, best_pred)) =
            costs.iter().map(|c| (c.method, c.total())).min_by(|a, b| a.1.total_cmp(&b.1))
        else {
            return;
        };
        if best != kind && current_pred > self.hysteresis * best_pred {
            db.disk().events().emit(
                EventKind::MigrationStep,
                format!(
                    "start {kind:?} -> {best:?} (predicted {current_pred:.2}s vs {best_pred:.2}s, \
                     {} rows to stage)",
                    rows.len()
                ),
                db.cost().total(),
            );
            db.metrics().incr("migrate.started");
            self.migration = MigrationState::Building {
                target: best,
                rows: rows.to_vec(),
                cursor: 0,
                entries: Vec::new(),
                pending: Vec::new(),
            };
        }
    }

    /// Workload estimate from the rows just observed (exact semijoin
    /// selectivities off the stream, like the core adaptive wrapper).
    fn estimate(&self, db: &Database, rows: &[ViewTuple], updates: u64) -> Workload {
        let mut distinct_r: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut distinct_s: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for v in rows {
            distinct_r.insert(v.r_sur.0);
            distinct_s.insert(v.s_sur.0);
        }
        let nr = (db.r().len() as f64).max(1.0);
        let ns = (db.s().len() as f64).max(1.0);
        Workload {
            r_tuples: nr,
            s_tuples: ns,
            tr: db.r().tuple_bytes() as f64,
            ts: db.s().tuple_bytes() as f64,
            sr: distinct_r.len() as f64 / nr,
            ss: distinct_s.len() as f64 / ns,
            js: rows.len() as f64 / (nr * ns),
            pra: self.pra_estimate,
            updates: updates as f64,
        }
    }

    /// Rolling-window decay, keyed to the shard engine's telemetry ticks:
    /// every time the engine closes a new telemetry window, the skew
    /// sketch halves, so hot keys of a past regime fade instead of
    /// pinning the statistics forever. Falls back to a query-count window
    /// when telemetry is off.
    fn decay_on_window(&mut self, db: &Database) {
        let windows = match db.telemetry_series() {
            Some(series) => series.dropped + series.windows.len() as u64,
            None => self.queries / 8,
        };
        if windows > self.seen_windows {
            self.seen_windows = windows;
            self.sketch.decay();
        }
    }

    /// Stamp the adaptive gauges into the shard's metrics (called on
    /// every report snapshot).
    pub fn stamp_gauges(&self, db: &Database) {
        let metrics = db.metrics();
        metrics.gauge_set("shard.strategy", method_gauge(self.current.method()));
        metrics.gauge_set("shard.migration_state", self.migration.gauge());
        metrics.gauge_set("shard.skew.top_mass", self.sketch.top_mass(4));
        metrics.gauge_set("shard.skew.observed", self.sketch.observed() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin::{SystemParams, WorkloadSpec};
    use trijoin_exec::oracle;

    fn spec(sr: f64, rate: f64, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            r_tuples: 1_500,
            s_tuples: 1_500,
            tuple_bytes: 96,
            sr,
            group_size: 4,
            pra: 0.1,
            update_rate: rate,
            seed,
        }
    }

    /// Drive the controller exactly like a shard does: mutations arrive in
    /// batches of 64 with one migration step per batch, queries run the
    /// incumbent and feed the decision.
    struct Harness {
        db: Database,
        shard: AdaptiveShard,
    }

    impl Harness {
        fn new(spec: &WorkloadSpec) -> (Harness, trijoin::GeneratedWorkload) {
            let params = SystemParams { mem_pages: 64, ..SystemParams::paper_defaults() };
            let gen = spec.generate();
            let db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
            let shard = AdaptiveShard::new(CachedStrategy::Mv(db.materialized_view().unwrap()));
            db.reset_observability();
            shard.register_metrics(&db);
            (Harness { db, shard }, gen)
        }

        fn apply_batch(&mut self, batch: &[Mutation]) {
            for m in batch {
                self.shard.on_mutation(&self.db, m).unwrap();
                self.db.apply_r_mutation(m).unwrap();
            }
            self.shard.advance(&self.db);
        }

        fn query(&mut self) -> Vec<ViewTuple> {
            let mut rows = self.db.query(self.shard.strategy()).unwrap();
            rows.sort_by_key(|t| (t.r_sur, t.s_sur));
            self.shard.after_query(&self.db, &rows);
            self.shard.advance(&self.db);
            rows
        }
    }

    #[test]
    fn migrates_incrementally_and_every_answer_matches_the_oracle() {
        // Start on the materialized view under a heavy update stream: the
        // cost model must move the shard off it, and the hand-off must be
        // invisible in the answers.
        let s = spec(0.01, 0.3, 403);
        let (mut h, gen) = Harness::new(&s);
        let mut stream = gen.update_stream();
        for epoch in 0..6 {
            let batch: Vec<Mutation> = (0..gen.updates_per_epoch())
                .map(|_| Mutation::Update(stream.next_update()))
                .collect();
            for chunk in batch.chunks(64) {
                h.apply_batch(chunk);
            }
            let got = h.query();
            let want = oracle::join_tuples(stream.current(), &gen.s);
            oracle::assert_same_join(&format!("epoch {epoch}"), got, want);
        }
        assert!(h.shard.migrations() >= 1, "no migration under an update storm");
        assert_ne!(h.shard.current_method(), Method::MaterializedView);
        let m = h.db.metrics();
        assert!(m.counter("migrate.count") >= 1);
        assert!(
            m.counter("migrate.steps") > m.counter("migrate.count"),
            "migration was not stepped"
        );
        assert!(h.db.disk().events().count_of(EventKind::MigrationStep) > 0);
        assert!(h.db.disk().events().count_of(EventKind::StrategySwitch) >= 1);
    }

    #[test]
    fn migration_is_cheaper_than_a_base_relation_rebuild() {
        let s = spec(0.01, 0.3, 404);
        let (mut h, gen) = Harness::new(&s);
        let mut stream = gen.update_stream();
        for _ in 0..6 {
            let batch: Vec<Mutation> = (0..gen.updates_per_epoch())
                .map(|_| Mutation::Update(stream.next_update()))
                .collect();
            for chunk in batch.chunks(64) {
                h.apply_batch(chunk);
            }
            h.query();
        }
        assert!(h.shard.migrations() >= 1);
        // The incremental contract, pinned two ways. The pages written for
        // the target structure are fewer than one pass over the base
        // relations; and the I/O charged to the build sections stays under
        // a base rescan too (staging is in-memory, the only I/O is writing
        // the target).
        let full_rebuild = h.db.r().data_pages() + h.db.s().data_pages();
        let rebuilt = h.db.metrics().counter("migrate.rebuild_pages");
        assert!(rebuilt > 0, "a cached structure was built");
        assert!(rebuilt < full_rebuild, "{rebuilt} pages vs {full_rebuild} for a full rebuild");
        let build_ios = h.db.cost().section_counts("migrate.build").ios;
        assert!(build_ios < full_rebuild, "{build_ios} I/Os vs {full_rebuild} page reads");
    }

    #[test]
    fn s_mutation_aborts_the_inflight_migration() {
        let s = spec(0.01, 0.3, 405);
        let (mut h, gen) = Harness::new(&s);
        let mut stream = gen.update_stream();
        // Walk to the first migration start without letting it finish:
        // apply whole epochs but advance only via the query step.
        let mut started = false;
        'outer: for _ in 0..6 {
            for _ in 0..gen.updates_per_epoch() {
                let m = Mutation::Update(stream.next_update());
                h.shard.on_mutation(&h.db, &m).unwrap();
                h.db.apply_r_mutation(&m).unwrap();
            }
            h.query();
            if !matches!(h.shard.state(), MigrationState::Stable) {
                started = true;
                break 'outer;
            }
        }
        assert!(started, "workload never triggered a migration");
        let before = h.shard.current_method();
        h.shard.on_s_mutation(&h.db);
        assert!(matches!(h.shard.state(), MigrationState::Stable), "migration not aborted");
        assert_eq!(h.shard.current_method(), before, "incumbent must survive the abort");
        assert_eq!(h.db.metrics().counter("migrate.rollbacks"), 1);
        assert_eq!(h.db.metrics().counter("migrate.count"), 0);
    }
}
