//! One shard: a thread owning its own simulated engine.
//!
//! The engine's handles (`Rc<SimDisk>`, `Rc<RefCell<..>>` cost ledger) are
//! deliberately single-threaded, so a shard never shares engine state: the
//! thread receives plain `Send` data (parameters and tuple sets), builds a
//! private [`Database`] plus one cached strategy instance per method, and
//! then serves commands off an `mpsc` channel. Channel FIFO order is the
//! only synchronization needed — an `Apply` enqueued before a `Query` is
//! guaranteed to be folded in first, which is what makes the scheduler's
//! batched differential application correct without acknowledgements.

use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use trijoin::{CachedStrategy, Database, Method};
use trijoin_common::{
    BaseTuple, Error, Result, RunReport, SystemParams, TelemetryConfig, ViewTuple,
};
use trijoin_exec::{HybridHash, JoinIndexStrategy, JoinStrategy, MaterializedView, Mutation};
use trijoin_storage::{Durability, FaultPlan};

use crate::adaptive::AdaptiveShard;

/// A command processed by a shard thread, in arrival order.
pub enum ShardCommand {
    /// Fold one differential batch into the shard: mutations of the local
    /// partitions of `R` and `S` (already routed here by key).
    Apply {
        /// Mutations of the shard's `R` partition.
        r: Vec<Mutation>,
        /// Mutations of the shard's `S` partition.
        s: Vec<Mutation>,
    },
    /// Answer the shard-local join with the given method. The reply rows
    /// are sorted by `(r_sur, s_sur)` — the server's streaming cross-shard
    /// merge relies on every per-shard run already being ordered.
    Query {
        /// Strategy to execute.
        method: Method,
        /// Where to send `(shard_index, result)`.
        reply: Sender<(usize, Result<Vec<ViewTuple>>)>,
    },
    /// Fold one differential batch, then answer a query — exactly
    /// [`ShardCommand::Apply`] followed by [`ShardCommand::Query`], fused
    /// into one message. The scheduler uses this when a query flushes a
    /// pending batch: delivering both in one send means one wakeup per
    /// shard per round instead of two, which halves the scheduler↔shard
    /// context switches when they contend for the same cores.
    ApplyThenQuery {
        /// Mutations of the shard's `R` partition.
        r: Vec<Mutation>,
        /// Mutations of the shard's `S` partition.
        s: Vec<Mutation>,
        /// Strategy to execute after the batch is folded in.
        method: Method,
        /// Where to send `(shard_index, result)`.
        reply: Sender<(usize, Result<Vec<ViewTuple>>)>,
    },
    /// Snapshot the shard's observability state.
    Report {
        /// Where to send `(shard_index, report)`.
        reply: Sender<(usize, Box<RunReport>)>,
    },
    /// Install a device-fault plan on this shard's simulated disk.
    InstallFaultPlan(FaultPlan),
    /// Poison the next read of this shard's cached view file. The shard
    /// resolves the file id itself (clients cannot know it), making this a
    /// deterministic way to drive the materialized view's documented
    /// recovery path (`mv.recover`) on one shard.
    PoisonCachedView,
    /// Clear pending faults and heal damaged pages on this shard.
    ClearFaults,
    /// Make everything applied so far durable: serialize the shard's
    /// catalog and group-flush through its write-ahead log. The server
    /// issues this to every shard at once (a commit *barrier*) and waits
    /// for all acknowledgements, so the set of WALs always agrees on which
    /// barrier was last sealed. A no-op ack on non-durable shards.
    ///
    /// Under [`Durability::Deferred`] the shard appends the commit group to
    /// its WAL buffer but skips the fsync — the scheduler later seals all
    /// pending groups at once with a [`Durability::Barrier`] commit (one
    /// fsync per shard regardless of how many barriers it covers).
    Commit {
        /// Whether this barrier must fsync or may defer to a later seal.
        durability: Durability,
        /// Where to send `(shard_index, result)`.
        reply: Sender<(usize, Result<()>)>,
    },
}

/// Everything a shard thread needs to build its engine — plain data, so it
/// crosses the thread boundary even though the engine itself cannot.
pub struct ShardSpec {
    /// Shard index (position in the server's shard vector).
    pub index: usize,
    /// Engine parameters (each shard owns a full device and memory budget).
    pub params: SystemParams,
    /// This shard's partition of `R`.
    pub r: Vec<BaseTuple>,
    /// This shard's partition of `S`.
    pub s: Vec<BaseTuple>,
    /// Windowed telemetry for the shard engine (`None` = off). When set,
    /// the shard also arms the predicted-vs-actual cost audit against the
    /// measured statistics of its own partitions.
    pub telemetry: Option<TelemetryConfig>,
    /// Durable storage directory for this shard (`None` = in-memory).
    pub durable_dir: Option<PathBuf>,
    /// True to *reopen* `durable_dir` instead of creating it: the shard
    /// runs WAL recovery and reattaches its relations from its catalog.
    /// `r`/`s` must be empty — the tuples live on disk already.
    pub recover: bool,
    /// True to serve adaptively: the shard holds *one* cached structure,
    /// re-prices the three methods from observed traffic after every
    /// query, and migrates incrementally when a different method wins by
    /// the hysteresis margin. The `method` of query commands is ignored —
    /// the shard serves with whatever it currently holds.
    pub adaptive: bool,
}

/// Spawn a shard thread. Blocks until the shard has built its engine and
/// cached strategies; construction failure is returned here rather than
/// poisoning later commands.
pub fn spawn(spec: ShardSpec) -> Result<(Sender<ShardCommand>, JoinHandle<()>)> {
    let (tx, rx) = channel::<ShardCommand>();
    let (ready_tx, ready_rx) = channel::<Result<()>>();
    let index = spec.index;
    let handle = std::thread::Builder::new()
        .name(format!("trijoin-shard-{index}"))
        .spawn(move || match ShardWorker::build(spec) {
            Ok(mut worker) => {
                let _ = ready_tx.send(Ok(()));
                worker.serve(rx);
            }
            Err(e) => {
                let _ = ready_tx.send(Err(e));
            }
        })
        .map_err(|e| Error::Invariant(format!("spawn shard {index}: {e}")))?;
    match ready_rx.recv() {
        Ok(Ok(())) => Ok((tx, handle)),
        Ok(Err(e)) => {
            // The thread exits right after reporting the failure; reap it
            // here so an error return never leaks a dangling JoinHandle
            // (the old code dropped `handle` un-joined on this path).
            let _ = handle.join();
            Err(e)
        }
        Err(_) => {
            let _ = handle.join();
            Err(Error::Invariant(format!("shard {index} died during construction")))
        }
    }
}

/// How a shard serves queries.
// One instance per shard thread, held for the thread's lifetime — the
// variant size gap buys nothing to box away.
#[allow(clippy::large_enum_variant)]
enum Mode {
    /// One cached strategy instance per method; the scheduler picks which
    /// answers each query. This is the original serving path and stays
    /// byte-identical when `adaptive` is off.
    Fixed { mv: MaterializedView, ji: JoinIndexStrategy, hh: HybridHash },
    /// One *current* structure plus the online selection and migration
    /// machinery of [`AdaptiveShard`].
    Adaptive(AdaptiveShard),
}

/// The per-thread state: one engine plus its serving mode.
struct ShardWorker {
    index: usize,
    db: Database,
    mode: Mode,
    /// Set when `S` has been mutated since the cached view and join index
    /// were (re)built; they are rebuilt lazily before the next query that
    /// uses them.
    s_dirty: bool,
}

impl ShardWorker {
    fn build(spec: ShardSpec) -> Result<ShardWorker> {
        if spec.recover {
            return Self::build_recovered(spec);
        }
        // Measure the partition statistics before the relations move into
        // the engine; the audit prices the analytical model against them.
        let workload =
            spec.telemetry.map(|_| trijoin::measure_workload(&spec.r, &spec.s, 0.1, 0.0));
        let db = match &spec.durable_dir {
            Some(dir) => Database::create_durable(&spec.params, spec.r, spec.s, dir)?,
            None => Database::new(&spec.params, spec.r, spec.s)?,
        };
        let mode = Self::build_mode(&db, spec.adaptive)?;
        // Loading and cache construction are setup, not serving work: start
        // the shard's observable life from a clean slate.
        db.reset_observability();
        if let Mode::Adaptive(a) = &mode {
            a.register_metrics(&db);
        }
        if let (Some(cfg), Some(workload)) = (spec.telemetry, workload) {
            db.enable_telemetry(cfg);
            db.enable_cost_audit(workload, 1.0);
        }
        Ok(ShardWorker { index: spec.index, db, mode, s_dirty: false })
    }

    /// Build the serving mode. Adaptive shards start from the cached view
    /// — the paper's favourite at low update rates — and migrate away as
    /// soon as observed traffic says otherwise.
    fn build_mode(db: &Database, adaptive: bool) -> Result<Mode> {
        Ok(if adaptive {
            let initial = CachedStrategy::Mv(db.materialized_view()?);
            Mode::Adaptive(AdaptiveShard::new(initial))
        } else {
            Mode::Fixed { mv: db.materialized_view()?, ji: db.join_index()?, hh: db.hybrid_hash() }
        })
    }

    /// Recover-mode construction: reopen this shard's durable directory
    /// (replaying its own WAL — shard-local, no cross-shard coordination)
    /// and rebuild the derived caches from the recovered relations. The
    /// recovery counters and event charged by the reopen are deliberately
    /// *kept* across the observability reset: `wal.recovered.*` is exactly
    /// what a post-crash report needs to show.
    fn build_recovered(spec: ShardSpec) -> Result<ShardWorker> {
        debug_assert!(spec.r.is_empty() && spec.s.is_empty(), "recovery reads tuples from disk");
        let dir = spec
            .durable_dir
            .as_deref()
            .ok_or_else(|| Error::Invariant("shard recovery needs a durable dir".into()))?;
        let db = Database::open_durable(&spec.params, dir)?;
        let recovered = (
            db.metrics().counter("wal.recovered.frames"),
            db.metrics().counter("wal.recovered.commits"),
            db.metrics().counter("wal.recovered.torn_bytes"),
        );
        let mode = Self::build_mode(&db, spec.adaptive)?;
        db.reset_observability();
        if let Mode::Adaptive(a) = &mode {
            a.register_metrics(&db);
        }
        let metrics = db.metrics();
        metrics.counter_add("wal.recovered.frames", recovered.0);
        metrics.counter_add("wal.recovered.commits", recovered.1);
        metrics.counter_add("wal.recovered.torn_bytes", recovered.2);
        if let Some(cfg) = spec.telemetry {
            // The audit needs partition statistics; measure them from the
            // recovered relations (uncharged oracle scans, ledger is reset
            // by enable_telemetry's baseline anyway).
            let mut r = Vec::new();
            let mut s = Vec::new();
            db.r().scan(|t| r.push(t))?;
            db.s().scan(|t| s.push(t))?;
            db.reset_cost();
            let workload = trijoin::measure_workload(&r, &s, 0.1, 0.0);
            db.enable_telemetry(cfg);
            db.enable_cost_audit(workload, 1.0);
        }
        Ok(ShardWorker { index: spec.index, db, mode, s_dirty: false })
    }

    /// Process commands until every sender is gone. Errors degrade (they
    /// are reported to the requester and counted) — the thread itself only
    /// exits when the server drops the channel.
    fn serve(&mut self, rx: Receiver<ShardCommand>) {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                ShardCommand::Apply { r, s } => self.apply(r, s),
                ShardCommand::Query { method, reply } => {
                    let result = self.query(method);
                    let _ = reply.send((self.index, result));
                }
                ShardCommand::ApplyThenQuery { r, s, method, reply } => {
                    self.apply(r, s);
                    let result = self.query(method);
                    let _ = reply.send((self.index, result));
                }
                ShardCommand::Report { reply } => {
                    let _ = reply.send((self.index, Box::new(self.report())));
                }
                ShardCommand::InstallFaultPlan(plan) => self.db.install_fault_plan(plan),
                ShardCommand::PoisonCachedView => {
                    // The poisoned file is whatever cached structure would
                    // serve the next read: the fixed-mode view, or the
                    // adaptive incumbent's cache (a no-op for hybrid-hash,
                    // which caches nothing).
                    let file = match &self.mode {
                        Mode::Fixed { mv, .. } => Some(mv.view_file()),
                        Mode::Adaptive(a) => a.cached_file(),
                    };
                    if let Some(file) = file {
                        let plan = FaultPlan::new().poison_nth_read(Some(file), 0);
                        self.db.install_fault_plan(plan);
                    }
                }
                ShardCommand::ClearFaults => self.db.clear_faults(),
                ShardCommand::Commit { durability, reply } => {
                    let result = self.db.commit_with(durability).map(|_| ());
                    let _ = reply.send((self.index, result));
                }
            }
        }
    }

    /// Fold one differential batch. Each mutation that fails is counted in
    /// `shard.apply_errors` and skipped; the shard keeps serving. An
    /// adaptive shard also advances any in-flight migration by one step —
    /// migrations make progress on every command, not just queries.
    fn apply(&mut self, r: Vec<Mutation>, s: Vec<Mutation>) {
        for m in &s {
            if self.apply_s(m).is_err() {
                self.count_apply_error("S");
            }
        }
        for m in &r {
            if self.apply_r(m).is_err() {
                self.count_apply_error("R");
            }
        }
        if let Mode::Adaptive(a) = &mut self.mode {
            a.advance(&self.db);
        }
    }

    /// The paper's deferred-maintenance contract: caching strategies log
    /// the mutation first, then the stored relation changes.
    fn apply_r(&mut self, m: &Mutation) -> Result<()> {
        match &mut self.mode {
            Mode::Fixed { mv, ji, hh } => {
                mv.on_mutation(m)?;
                ji.on_mutation(m)?;
                hh.on_mutation(m)?;
            }
            Mode::Adaptive(a) => a.on_mutation(&self.db, m)?,
        }
        self.db.apply_r_mutation(m)
    }

    /// `S` mutations invalidate the cached view and join index (they cache
    /// joins against the old `S`); the stored relation and its join-key
    /// index are updated in place and the caches marked for rebuild. On an
    /// adaptive shard this also aborts any in-flight migration — the
    /// structure it was staging is stale the moment `S` changes.
    fn apply_s(&mut self, m: &Mutation) -> Result<()> {
        self.db.metrics().incr("shard.s_mutations");
        self.db.s_mut()?.apply_mutation(m)?;
        self.s_dirty = true;
        if let Mode::Adaptive(a) = &mut self.mode {
            a.on_s_mutation(&self.db);
        }
        Ok(())
    }

    fn count_apply_error(&self, relation: &str) {
        let metrics = self.db.metrics();
        metrics.incr("shard.apply_errors");
        metrics.incr(&format!("shard.apply_errors.{relation}"));
    }

    fn query(&mut self, method: Method) -> Result<Vec<ViewTuple>> {
        match &self.mode {
            Mode::Fixed { .. } => {
                if self.s_dirty && method != Method::HybridHash {
                    self.rebuild_caches()?;
                }
            }
            Mode::Adaptive(a) => {
                if self.s_dirty && a.current_method() != Method::HybridHash {
                    self.rebuild_caches()?;
                }
                // A hybrid-hash incumbent caches nothing, so an `S`
                // mutation leaves nothing stale; should the shard later
                // migrate, the target is staged from a fresh answer.
                self.s_dirty = false;
            }
        }
        let mut rows = match &mut self.mode {
            Mode::Fixed { mv, ji, hh } => {
                let strategy: &mut dyn JoinStrategy = match method {
                    Method::MaterializedView => mv,
                    Method::JoinIndex => ji,
                    Method::HybridHash => hh,
                };
                self.db.query(strategy)?
            }
            // Adaptive shards ignore the requested method: the incumbent
            // serves, and the freshly produced answer feeds the selection
            // statistics (and, if a migration starts, the staging source).
            Mode::Adaptive(a) => self.db.query(a.strategy())?,
        };
        // Sort the shard-local answer so the server can k-way merge the
        // per-shard runs instead of re-sorting the concatenation. This is
        // presentation work on the serving path, not simulated strategy
        // work, so it is deliberately uncharged (the strategy's own ledger
        // stays identical to a non-sharded run of the same query).
        rows.sort_by_key(|t| (t.r_sur, t.s_sur));
        if let Mode::Adaptive(a) = &mut self.mode {
            a.after_query(&self.db, &rows);
            a.advance(&self.db);
        }
        Ok(rows)
    }

    /// Rebuild the cached structures from the current stored relations
    /// (all applied `R` mutations are already reflected there, so any
    /// not-yet-folded differential entries in the old caches are subsumed
    /// by the rebuild). Old cache files are released.
    fn rebuild_caches(&mut self) -> Result<()> {
        match &mut self.mode {
            Mode::Fixed { mv, ji, .. } => {
                let old_view = mv.view_file();
                let old_index = ji.index_file();
                {
                    let _section = self.db.cost().section("shard.s_rebuild");
                    *mv = self.db.materialized_view()?;
                    *ji = self.db.join_index()?;
                }
                self.db.disk().delete_file(old_view);
                self.db.disk().delete_file(old_index);
            }
            // Adaptive shards rebuild only the incumbent (never called
            // with a hybrid-hash incumbent — it caches nothing).
            Mode::Adaptive(a) => {
                let next = {
                    let _section = self.db.cost().section("shard.s_rebuild");
                    match a.current_method() {
                        Method::MaterializedView => {
                            CachedStrategy::Mv(self.db.materialized_view()?)
                        }
                        Method::JoinIndex => CachedStrategy::Ji(self.db.join_index()?),
                        Method::HybridHash => CachedStrategy::Hh(self.db.hybrid_hash()),
                    }
                };
                a.replace_current(next);
            }
        }
        self.db.metrics().incr("shard.s_rebuilds");
        self.s_dirty = false;
        Ok(())
    }

    /// Snapshot the shard's observability state, stamping health gauges
    /// (live tuple counts, damaged pages, fired faults) so the server
    /// rollup can aggregate shard health without extra round-trips.
    fn report(&self) -> RunReport {
        let metrics = self.db.metrics();
        metrics.gauge_set("shard.r_tuples", self.db.r().len() as f64);
        metrics.gauge_set("shard.s_tuples", self.db.s().len() as f64);
        metrics.gauge_set("shard.damaged_pages", self.db.disk().damaged_pages() as f64);
        metrics.gauge_set("shard.faults_fired", self.db.faults_fired() as f64);
        if let Mode::Adaptive(a) = &self.mode {
            a.stamp_gauges(&self.db);
        }
        self.db.run_report(format!("shard{}", self.index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_common::Surrogate;

    fn params() -> SystemParams {
        SystemParams { page_size: 512, mem_pages: 24, ..Default::default() }
    }

    fn tuples(n: u32, stride: u64) -> Vec<BaseTuple> {
        (0..n).map(|i| BaseTuple::padded(Surrogate(i), (i as u64) % stride, 48)).collect()
    }

    #[test]
    fn shard_answers_queries_and_reports() {
        let (tx, handle) = spawn(ShardSpec {
            index: 3,
            params: params(),
            r: tuples(80, 7),
            s: tuples(60, 7),
            telemetry: Some(TelemetryConfig::default()),
            durable_dir: None,
            recover: false,
            adaptive: false,
        })
        .unwrap();
        let (reply, rx) = channel();
        tx.send(ShardCommand::Query { method: Method::HybridHash, reply }).unwrap();
        let (idx, rows) = rx.recv().unwrap();
        assert_eq!(idx, 3);
        let rows = rows.unwrap();
        let want = trijoin_exec::oracle::join_tuples(&tuples(80, 7), &tuples(60, 7));
        assert_eq!(rows.len(), want.len());

        let (reply, rx) = channel();
        tx.send(ShardCommand::Report { reply }).unwrap();
        let (_, report) = rx.recv().unwrap();
        assert_eq!(report.name, "shard3");
        assert_eq!(report.metrics.counter("db.queries"), 1);
        assert_eq!(report.metrics.gauge("shard.r_tuples"), Some(80.0));
        drop(tx);
        handle.join().unwrap();
    }

    #[test]
    fn s_mutation_marks_caches_dirty_and_rebuild_heals() {
        let r = tuples(50, 5);
        let s = tuples(40, 5);
        let (tx, handle) = spawn(ShardSpec {
            index: 0,
            params: params(),
            r: r.clone(),
            s: s.clone(),
            telemetry: None,
            durable_dir: None,
            recover: false,
            adaptive: false,
        })
        .unwrap();
        // Delete one S tuple, then ask the cached MV for the join.
        let victim = s[7].clone();
        tx.send(ShardCommand::Apply { r: vec![], s: vec![Mutation::Delete(victim.clone())] })
            .unwrap();
        let (reply, rx) = channel();
        tx.send(ShardCommand::Query { method: Method::MaterializedView, reply }).unwrap();
        let (_, rows) = rx.recv().unwrap();
        let s_after: Vec<BaseTuple> = s.iter().filter(|t| t.sur != victim.sur).cloned().collect();
        let want = trijoin_exec::oracle::join_tuples(&r, &s_after);
        trijoin_exec::oracle::assert_same_join("mv after S delete", rows.unwrap(), want);

        let (reply, rx) = channel();
        tx.send(ShardCommand::Report { reply }).unwrap();
        let (_, report) = rx.recv().unwrap();
        assert_eq!(report.metrics.counter("shard.s_rebuilds"), 1);
        assert_eq!(report.metrics.counter("shard.s_mutations"), 1);
        drop(tx);
        handle.join().unwrap();
    }

    #[test]
    fn construction_failure_surfaces_in_spawn() {
        // A tuple wider than a page cannot be stored at all.
        let oversized = vec![BaseTuple::padded(Surrogate(0), 1, 4096)];
        let result = spawn(ShardSpec {
            index: 0,
            params: params(),
            r: oversized,
            s: tuples(10, 3),
            telemetry: None,
            durable_dir: None,
            recover: false,
            adaptive: false,
        });
        assert!(result.is_err());
    }
}
