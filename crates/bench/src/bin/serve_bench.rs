//! Serving-layer scaling benchmark: queries per second and latency
//! percentiles of the sharded server as the shard count grows.
//!
//! Every shard count replays the *same* deterministic mixed workload —
//! per round, one epoch's worth of `R` updates fans out across the client
//! sessions, then one hybrid-hash query runs — so the result checksum
//! column must be identical on every row: the answer is a pure function of
//! the workload, never of the parallelism. Wall-clock throughput is the
//! only column allowed to change, and the text table reports the speedup
//! over the single-shard row.
//!
//! Run with: `cargo run --release -p trijoin-bench --bin serve_bench`
//! (optionally `-- --quick` for a smaller workload in smoke tests).

use std::time::Instant;

use trijoin::{Method, SystemParams, WorkloadSpec};
use trijoin_bench::{emit_json, paper_params};
use trijoin_common::Json;
use trijoin_serve::{ClientTraffic, ServeConfig, Server};

/// One measured row of the scaling table.
struct Row {
    shards: usize,
    qps: f64,
    p50_us: u64,
    p99_us: u64,
    checksum: u64,
}

const CLIENTS: usize = 4;
const BATCH: usize = 32;
const SEED: u64 = 42;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, queries) = if quick { (500u32, 8u64) } else { (6_000, 16) };
    // Wide tuples make the workload I/O-bound: the interesting cost is the
    // bytes a spilling hybrid-hash join moves through the device, not the
    // per-tuple CPU work (which no amount of sharding can reduce on one
    // engine's worth of data).
    let spec = WorkloadSpec {
        r_tuples: n,
        s_tuples: n,
        tuple_bytes: 1900,
        sr: 0.01,
        group_size: 4,
        pra: 0.1,
        update_rate: 0.005,
        seed: trijoin_common::rng::derive(SEED, "workload"),
    };
    // |M| sized so the full relation spills hard (q ~ 0.27) while a
    // four-way partition of it is fully memory-resident: the scaling the
    // table shows is "sharding makes the per-shard join one-pass".
    let params = SystemParams { mem_pages: 1850, ..paper_params() };
    let gen = spec.generate();
    let updates_per_query = gen.updates_per_epoch();

    println!("== Serving-layer scaling: qps and latency vs shard count ==");
    println!(
        "   ‖R‖ = ‖S‖ = {}, {CLIENTS} clients, batch = {BATCH}, \
         {queries} hybrid-hash queries, ‖iR‖ = {updates_per_query}/query\n",
        gen.r.len()
    );
    println!(
        "{:>7}  {:>9}  {:>9}  {:>9}  {:>8}  {:>18}",
        "shards", "qps", "p50 (us)", "p99 (us)", "speedup", "checksum"
    );

    let mut rows: Vec<Row> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let config =
            ServeConfig { batch: BATCH, seed: SEED, ..ServeConfig::new(params.clone(), shards) };
        let server = Server::start(&config, gen.r.clone(), gen.s.clone())
            .unwrap_or_else(|e| panic!("start {shards}-shard server: {e}"));
        let session = server.session().expect("live server");
        let mut traffic = ClientTraffic::split(&gen, &config, CLIENTS);

        let mut latencies_us: Vec<u64> = Vec::with_capacity(queries as usize);
        let mut checksum = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        let started = Instant::now();
        for q in 0..queries {
            for u in 0..updates_per_query {
                let c = ((q * updates_per_query + u) % CLIENTS as u64) as usize;
                session.update_r(traffic[c].next_mutation()).expect("update");
            }
            let at = Instant::now();
            let answer = session.query(Method::HybridHash).expect("query");
            latencies_us.push(at.elapsed().as_micros() as u64);
            for t in &answer {
                for word in [t.r_sur.0 as u64, t.s_sur.0 as u64] {
                    checksum = (checksum ^ word).wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        let wall = started.elapsed().as_secs_f64();
        drop(session);
        drop(server);

        latencies_us.sort_unstable();
        let pct = |p: usize| latencies_us[(latencies_us.len() - 1) * p / 100];
        let row = Row {
            shards,
            qps: queries as f64 / wall.max(1e-9),
            p50_us: pct(50),
            p99_us: pct(99),
            checksum,
        };
        let speedup = row.qps / rows.first().map_or(row.qps, |r| r.qps);
        println!(
            "{:>7}  {:>9.1}  {:>9}  {:>9}  {:>7.2}x  {:>18}",
            row.shards,
            row.qps,
            row.p50_us,
            row.p99_us,
            speedup,
            format!("{:016x}", row.checksum),
        );
        rows.push(row);
    }

    let reference = rows[0].checksum;
    let consistent = rows.iter().all(|r| r.checksum == reference);
    println!(
        "\n  [{}] result checksum is independent of the shard count",
        if consistent { "PASS" } else { "FAIL" }
    );

    let json = Json::obj().set("figure", "serve").set(
        "rows",
        rows.iter()
            .map(|r| {
                Json::obj()
                    .set("shards", r.shards as u64)
                    .set("clients", CLIENTS as u64)
                    .set("queries", queries)
                    .set("updates", queries * updates_per_query)
                    .set("qps", r.qps)
                    .set("p50_us", r.p50_us)
                    .set("p99_us", r.p99_us)
                    // Hex string: the checksum uses all 64 bits, which JSON
                    // numbers (f64) cannot carry exactly.
                    .set("checksum", format!("{:016x}", r.checksum).as_str())
            })
            .collect::<Vec<_>>(),
    );
    emit_json("serve", &json);
    assert!(consistent, "sharding changed the join answer");
}
