//! Ablation: memory sensitivity — a vertical cut through Figure 6.
//!
//! §5's bullets: hash join barely benefits from memory "until the memory
//! is made extremely large"; the join index "is favorably effected by an
//! increase in memory" (single-pass processing arrives soonest); the view
//! "does not appear to utilize additional main memory as well as the
//! other two approaches".
//!
//! Run with: `cargo run -p trijoin-bench --bin ablation_memory`

use trijoin_bench::{emit_json, paper_params};
use trijoin_common::{Json, SystemParams};
use trijoin_model::{all_costs, ji, mv, Workload};

fn main() {
    let base = paper_params();
    let w = Workload::figure6_point(0.02);
    println!("== |M| sweep at SR = 0.02, ‖iR‖ = 6000, Pr_A = 0.1 (model) ==");
    println!(
        "{:>8} {:>10} {:>10} {:>10}   {:>8} {:>8}",
        "|M|", "MV secs", "JI secs", "HH secs", "JI |JIk|", "MV |W_R|"
    );
    let mut rows = Vec::new();
    for &mem in &[500usize, 1_000, 2_000, 4_000, 8_000, 16_000, 24_000] {
        let p = SystemParams { mem_pages: mem, ..base.clone() };
        let costs = all_costs(&p, &w);
        let t = [costs[0].total(), costs[1].total(), costs[2].total()];
        let d = w.derived(&p);
        let jik = ji::jik_pages(&p, &w, &d, 1.0);
        let wr = mv::wr_pages(&p, &w, &d, 1.0);
        println!(
            "{:>8} {:>10.1} {:>10.1} {:>10.1}   {:>8.0} {:>8.0}",
            mem, t[0], t[1], t[2], jik, wr
        );
        rows.push(
            Json::obj()
                .set("mem_pages", mem)
                .set("mv_secs", t[0])
                .set("ji_secs", t[1])
                .set("hh_secs", t[2])
                .set("jik_pages", jik)
                .set("wr_pages", wr),
        );
    }
    emit_json("ablation_memory", &Json::obj().set("figure", "ablation_memory").set("rows", rows));
    println!("\nreading: JI's per-pass budget |JI_k| grows linearly with memory, so its");
    println!("pass count (and its dominant per-pass S traffic) collapses first. MV's W_R");
    println!("batches grow too but its cost floor is reading V, which memory cannot");
    println!("shrink. HH stays flat until |M| approaches F*|R| ~ 17K pages, then drops");
    println!("to its one-pass floor — the paper's 'extremely large' threshold.");
}
