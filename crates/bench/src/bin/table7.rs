//! Regenerates Table 7 (parameter settings) and the derived quantities
//! (Table 6's database-dependent values at the default point), validating
//! that the workspace's configuration matches the paper's exactly.
//!
//! Run with: `cargo run -p trijoin-bench --bin table7`

use trijoin_bench::{emit_json, paper_params};
use trijoin_common::Json;
use trijoin_model::Workload;

fn main() {
    let p = paper_params();
    println!("== Table 7: parameter settings ==");
    println!("  ‖R‖, ‖S‖      200,000 tuples      ssur, sptr   {} bytes", p.ssur);
    println!(
        "  |M|           {:>7} pages        IO           {} msec",
        p.mem_pages,
        p.io_us / 1000.0
    );
    println!("  T_R, T_S          200 bytes        comp         {} µsec", p.comp_us);
    println!(
        "  PO            {:>7}              hash         {} µsec",
        p.page_occupancy, p.hash_us
    );
    println!("  FO            {:>7} entries      move         {} µsec", p.fan_out, p.move_us);
    println!("  P             {:>7} bytes        F            {}", p.page_size, p.hash_overhead);

    println!("\n== Derived quantities at SR = 0.01 (‖V‖ = ‖R‖ — the paper's example) ==");
    let w = Workload::paper_point(0.01, 12_000.0, 0.1);
    let d = w.derived(&p);
    let rows: Vec<(&str, f64, &str)> = vec![
        ("n_R = n_S (tuples/page)", d.n_r, "⌊4000·0.7/200⌋ = 14"),
        ("n_V (view tuples/page)", d.n_v, "⌊4000·0.7/400⌋ = 7"),
        ("n_JI (JI entries/page)", d.n_ji, "⌊4000·0.7/8⌋ = 350"),
        ("|R| = |S| (pages)", d.r_pages, "⌈200000/14⌉ = 14286"),
        ("‖V‖ = ‖JI‖ (tuples)", d.join_tuples, "JS·‖R‖·‖S‖ = 200000"),
        ("|V| (pages)", d.v_pages, "⌈200000/7⌉ = 28572"),
        ("|JI| (pages)", d.ji_pages, "⌈200000/350⌉ = 572"),
        ("|iR| at 6% activity (pages)", d.ir_pages, "⌈12000/20⌉ = 600"),
    ];
    let mut ok = true;
    let mut derived = Json::obj();
    for (name, got, formula) in &rows {
        println!("  {name:<30} = {got:>9.0}   ({formula})");
        let expect: f64 = formula.rsplit('=').next().unwrap().trim().parse().unwrap();
        if (got - expect).abs() > 1e-9 {
            println!("    !! MISMATCH: expected {expect}");
            ok = false;
        }
        derived = derived.set(name, *got);
    }
    println!(
        "\nvalidation: {}",
        if ok { "all derived quantities match the paper" } else { "MISMATCHES FOUND" }
    );
    let json = Json::obj()
        .set("figure", "table7")
        .set(
            "params",
            Json::obj()
                .set("mem_pages", p.mem_pages)
                .set("page_size", p.page_size)
                .set("page_occupancy", p.page_occupancy)
                .set("fan_out", p.fan_out)
                .set("hash_overhead", p.hash_overhead)
                .set("ssur", p.ssur)
                .set("io_us", p.io_us)
                .set("comp_us", p.comp_us)
                .set("hash_us", p.hash_us)
                .set("move_us", p.move_us),
        )
        .set("derived", derived)
        .set("ok", ok);
    emit_json("table7", &json);
    std::process::exit(i32::from(!ok));
}
