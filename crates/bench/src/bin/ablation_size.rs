//! Ablation: relation-size effects (§4's closing observations).
//!
//! "Varying the relation size has an inverse effect on whatever method is
//! doing the most file process at a given selectivity. The materialized
//! view cost is most effected at low selectivities, the join index method
//! is effected at moderate selectivities, and the hash join method is
//! effected at high selectivities."
//!
//! Sweeps ‖R‖ = ‖S‖ at three selectivities and reports each method's
//! relative growth.
//!
//! Run with: `cargo run -p trijoin-bench --bin ablation_size`

use trijoin_bench::{emit_json, paper_params};
use trijoin_common::Json;
use trijoin_model::{all_costs, Workload};

fn main() {
    let params = paper_params();
    let mut sweeps = Vec::new();
    for &sr in &[0.001, 0.02, 0.5] {
        println!("== SR = {sr}: total seconds as ‖R‖ = ‖S‖ scales ==");
        println!("{:>10} {:>12} {:>12} {:>12}", "tuples", "MV", "JI", "HH");
        let mut base: Option<[f64; 3]> = None;
        let mut rows = Vec::new();
        for &scale in &[0.5f64, 1.0, 2.0, 4.0] {
            let mut w = Workload::figure4_point(sr, 0.06);
            w.r_tuples *= scale;
            w.s_tuples *= scale;
            // Keep JS on the paper's family: JS = 100·SR/‖R‖ re-derived so
            // partner counts stay at 100.
            w.js = 100.0 * sr / w.r_tuples;
            w.updates = 0.06 * w.r_tuples;
            let costs = all_costs(&params, &w);
            let t = [costs[0].total(), costs[1].total(), costs[2].total()];
            println!("{:>10.0} {:>12.1} {:>12.1} {:>12.1}", w.r_tuples, t[0], t[1], t[2]);
            rows.push(
                Json::obj()
                    .set("tuples", w.r_tuples)
                    .set("mv_secs", t[0])
                    .set("ji_secs", t[1])
                    .set("hh_secs", t[2]),
            );
            if scale == 1.0 {
                base = Some(t);
            }
        }
        sweeps.push(Json::obj().set("sr", sr).set("rows", rows));
        if let Some(b) = base {
            let mut w = Workload::figure4_point(sr, 0.06);
            w.r_tuples *= 4.0;
            w.s_tuples *= 4.0;
            w.js = 100.0 * sr / w.r_tuples;
            w.updates = 0.06 * w.r_tuples;
            let costs = all_costs(&params, &w);
            println!(
                "   growth 1x -> 4x:  MV {:.1}x   JI {:.1}x   HH {:.1}x\n",
                costs[0].total() / b[0],
                costs[1].total() / b[1],
                costs[2].total() / b[2]
            );
        }
    }
    emit_json("ablation_size", &Json::obj().set("figure", "ablation_size").set("sweeps", sweeps));
    println!("reading: whichever method moves the most pages at a given selectivity");
    println!("absorbs the size increase: MV at low SR (it reads V), JI at moderate SR");
    println!("(its R/S random access saturates), HH at high SR (it always moves R+S).");
}
