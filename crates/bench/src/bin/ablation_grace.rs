//! Ablation: hybrid-hash vs Grace-hash — what the pass-0 in-memory join
//! buys (§3.4's `q` fraction).
//!
//! Runs both variants of the engine on the same workload and compares
//! measured I/O against the model's prediction: Grace writes and re-reads
//! everything (`q = 0`), hybrid skips the fraction `q = |R0|/|R|`.
//!
//! Run with: `cargo run --release -p trijoin-bench --bin ablation_grace`

use trijoin::{Database, JoinStrategy, SystemParams, WorkloadSpec};
use trijoin_bench::emit_json;
use trijoin_common::Json;
use trijoin_exec::hybridhash::first_pass_fraction;

fn main() {
    println!("== Hybrid vs Grace hash join (engine, measured) ==");
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>10} {:>10}",
        "‖R‖=‖S‖", "|M|", "hybrid IOs", "grace IOs", "saved", "model q"
    );
    let mut rows = Vec::new();
    for &(n, mem) in &[(4_000u32, 40usize), (8_000, 60), (8_000, 120), (8_000, 400)] {
        let params = SystemParams { mem_pages: mem, ..SystemParams::paper_defaults() };
        let spec = WorkloadSpec {
            r_tuples: n,
            s_tuples: n,
            tuple_bytes: 200,
            sr: 0.02,
            group_size: 5,
            pra: 0.1,
            update_rate: 0.0,
            seed: 17,
        };
        let gen = spec.generate();
        let mut measured = Vec::new();
        for grace in [false, true] {
            let db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
            let mut strategy = if grace { db.grace_hash() } else { db.hybrid_hash() };
            db.reset_cost();
            let mut out = 0u64;
            strategy.execute(db.r(), db.s(), &mut |_| out += 1).unwrap();
            measured.push(db.cost().total().ios);
        }
        let r_pages = (n as u64).div_ceil(14); // 200-byte tuples, n_R = 14
        let q = first_pass_fraction(r_pages, &params);
        let saved = 1.0 - measured[0] as f64 / measured[1] as f64;
        println!(
            "{:>10} {:>8} {:>12} {:>12} {:>9.1}% {:>10.3}",
            n,
            mem,
            measured[0],
            measured[1],
            100.0 * saved,
            q
        );
        rows.push(
            Json::obj()
                .set("tuples", n as u64)
                .set("mem_pages", mem)
                .set("hybrid_ios", measured[0])
                .set("grace_ios", measured[1])
                .set("saved_pct", 100.0 * saved)
                .set("model_q", q),
        );
    }
    emit_json("ablation_grace", &Json::obj().set("figure", "ablation_grace").set("rows", rows));
    println!("\nreading: the hybrid savings track q = (|M|-B)/(F*|R|); with memory close");
    println!("to F*|R| the second pass nearly vanishes — DeWitt et al.'s core result,");
    println!("which the paper adopts wholesale for its re-evaluation baseline.");
}
