//! Ablation: the on-the-fly merge (§3.2's step (3) folded into step (4)).
//!
//! The paper performs the view update *while* reading the view for the
//! answer, "thus saving the cost of reading V once". The naive variant
//! updates V in one pass and then re-reads it to answer. The saving is
//! exactly one full view scan — `F·|V|·IO` — which this bin quantifies
//! across selectivities, in the model and in the engine.
//!
//! Run with: `cargo run --release -p trijoin-bench --bin ablation_onthefly`

use trijoin::{Database, JoinStrategy, SystemParams, WorkloadSpec};
use trijoin_bench::{emit_json, paper_params};
use trijoin_common::Json;
use trijoin_model::{mv, Workload};

fn main() {
    let params = paper_params();
    println!("== Model: cost of a second view scan (naive two-pass maintenance) ==");
    println!("{:>8} {:>14} {:>14} {:>10}", "SR", "on-the-fly", "naive 2-pass", "overhead");
    let mut rows = Vec::new();
    for &sr in &[0.001, 0.01, 0.05, 0.1] {
        let w = Workload::figure4_point(sr, 0.06);
        let fused = mv::cost(&params, &w).total();
        let extra_scan = mv::cost(&params, &w).term("C3.1"); // one more F·|V|·IO
        let naive = fused + extra_scan;
        println!("{:>8} {:>14.1} {:>14.1} {:>9.1}%", sr, fused, naive, 100.0 * extra_scan / fused);
        rows.push(
            Json::obj()
                .set("sr", sr)
                .set("fused_secs", fused)
                .set("naive_secs", naive)
                .set("overhead_pct", 100.0 * extra_scan / fused),
        );
    }

    println!("\n== Engine: measured (4000-tuple scale, 6% activity) ==");
    let engine_params = SystemParams { mem_pages: 80, ..params };
    let spec = WorkloadSpec {
        r_tuples: 4_000,
        s_tuples: 4_000,
        tuple_bytes: 200,
        sr: 0.02,
        group_size: 5,
        pra: 0.1,
        update_rate: 0.06,
        seed: 23,
    };
    let gen = spec.generate();
    let mut db = Database::new(&engine_params, gen.r.clone(), gen.s.clone()).unwrap();
    let mut mv_strategy = db.materialized_view().unwrap();
    let mut stream = gen.update_stream();
    for _ in 0..gen.updates_per_epoch() {
        let u = stream.next_update();
        mv_strategy.on_update(&u).unwrap();
        db.r_mut().apply_update(&u.old, &u.new).unwrap();
    }
    db.reset_cost();
    let mut n = 0u64;
    mv_strategy.execute(db.r(), db.s(), &mut |_| n += 1).unwrap();
    let fused_ios = db.cost().total().ios;
    let scan_ios = mv_strategy.view_pages(); // one extra full read of V
    println!("  fused query: {fused_ios} IOs for {n} tuples");
    println!(
        "  naive 2-pass would add {} IOs (+{:.1}%) — the read of V the paper saves",
        scan_ios,
        100.0 * scan_ios as f64 / fused_ios as f64
    );
    let json = Json::obj().set("figure", "ablation_onthefly").set("model_rows", rows).set(
        "engine",
        Json::obj()
            .set("fused_ios", fused_ios)
            .set("extra_scan_ios", scan_ios)
            .set("result_tuples", n),
    );
    emit_json("ablation_onthefly", &json);
}
