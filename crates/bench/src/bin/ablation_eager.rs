//! Ablation: deferred vs eager view maintenance.
//!
//! The paper *defers* view maintenance to query time (§3.2). The obvious
//! alternative maintains `V` on every update: probe `S` for the tuple's
//! partners and read-modify-write the affected view pages immediately.
//! This bin prices both (model formulas) across update activity and shows
//! where deferral wins — the motivation for the paper's whole pipeline.
//!
//! Eager per-update cost (same primitives as §3.2, batch size 1):
//! - probe S through the inverted index for old+new key (IO_ii(1, ..) each)
//! - read-modify-write the view pages holding the old and new groups
//!   (hash-file point access: ~SR·(1 read + 1 write) each side).
//!
//! Run with: `cargo run -p trijoin-bench --bin ablation_eager`

use trijoin_bench::{emit_json, paper_params};
use trijoin_common::Json;
use trijoin_model::{formulas, mv, Workload};

fn main() {
    let params = paper_params();
    println!("== Deferred (paper) vs eager view maintenance, SR = 0.01 ==");
    println!("{:>10} {:>16} {:>16} {:>10}", "activity", "deferred secs", "eager secs", "ratio");
    let mut rows = Vec::new();
    for &activity in &[0.001, 0.01, 0.06, 0.2, 0.5, 1.0] {
        let w = Workload::figure4_point(0.01, activity);
        let deferred = mv::cost(&params, &w).total();

        // Eager: every update pays point maintenance immediately; the
        // query then just reads the clean view (C3.1).
        let d = w.derived(&params);
        let per_update = {
            // Probe S's inverted index for the deleted tuple's key and the
            // inserted tuple's key. The descent happens whether or not
            // partners exist — that is the eager tax (k = 1 per probe).
            let probe = 2.0 * formulas::io_inverted(1.0, d.s_pages, w.s_tuples, &params);
            // When the tuple actually joins (probability SR per side), its
            // partner group's view bucket is read, modified and rewritten.
            let touch = 2.0 * w.sr * 2.0 * params.io_us / 1e6;
            probe + touch
        };
        let eager = w.updates * per_update + params.hash_overhead * d.v_pages * params.io_us / 1e6;
        println!("{:>10} {:>16.1} {:>16.1} {:>9.2}x", activity, deferred, eager, eager / deferred);
        rows.push(
            Json::obj()
                .set("activity", activity)
                .set("deferred_secs", deferred)
                .set("eager_secs", eager)
                .set("ratio", eager / deferred),
        );
    }
    emit_json("ablation_eager", &Json::obj().set("figure", "ablation_eager").set("rows", rows));
    println!("\nreading: batching updates and merging them in one sorted pass over V is");
    println!("cheaper than eager point maintenance as soon as updates are plentiful;");
    println!("at very low activity the two converge (both degenerate to reading V).");
}
