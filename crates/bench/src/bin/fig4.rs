//! Regenerates Figure 4: "Cheapest method as selectivity and update
//! activity vary" — the region map over SR ∈ [0.001, 1.0] (x, log) and
//! update activity ‖iR‖/‖R‖ ∈ [1%, 100%] (y, log) at |M| = 1000 pages,
//! Pr_A = 0.1, ‖R‖ = ‖S‖ = 200 000.
//!
//! Run with: `cargo run -p trijoin-bench --bin fig4`

use trijoin_bench::{axis, emit_json, legend, paper_params, row_boundaries};
use trijoin_common::Json;
use trijoin_model::{figure4_grid, regions::ascii_map};

fn main() {
    let params = paper_params();
    let sr_steps = 46;
    let act_steps = 15;
    let cells = figure4_grid(&params, sr_steps, act_steps);

    println!("== Figure 4: cheapest method over (SR, update activity) ==");
    println!("   |M| = 1000 pages, Pr_A = 0.1, JS = 100·SR/‖R‖, ‖R‖ = ‖S‖ = 200 000");
    println!("   y = update activity (fraction of R updated), x = SR from 0.001 to 1.0 (log)\n");
    print!("{}", ascii_map(&cells, sr_steps));
    println!("            {}", "-".repeat(sr_steps));
    println!("             SR: 0.001 {:>width$}", "1.0", width = sr_steps - 7);
    println!("\n{}", legend());

    println!("\n== Region boundaries per activity row ==");
    println!("{:>10}  {:>12}  {:>12}", "activity", "JI->MV at SR", "->HH at SR");
    let mut boundaries = Vec::new();
    for row in cells.chunks(sr_steps) {
        let (mv, hh) = row_boundaries(row);
        println!(
            "{:>10}  {:>12}  {:>12}",
            axis(row[0].y),
            mv.map(axis).unwrap_or_else(|| "(no MV)".into()),
            hh.map(axis).unwrap_or_else(|| "-".into()),
        );
        boundaries.push(
            Json::obj()
                .set("activity", row[0].y)
                .set("mv_from_sr", mv.map(Json::from).unwrap_or(Json::Null))
                .set("hh_from_sr", hh.map(Json::from).unwrap_or(Json::Null)),
        );
    }

    println!("\n== Paper-shape checks ==");
    let checks = [
        ("MV wins a middle band at low activity", {
            let row = &cells[0..sr_steps];
            let (mv, hh) = row_boundaries(row);
            matches!((mv, hh), (Some(m), Some(h)) if m < h)
        }),
        ("JI wins the entire low-SR edge", {
            cells.chunks(sr_steps).all(|row| row[0].winner == trijoin_model::Method::JoinIndex)
        }),
        ("HH wins the entire high-SR edge", {
            cells
                .chunks(sr_steps)
                .all(|row| row[sr_steps - 1].winner == trijoin_model::Method::HybridHash)
        }),
        ("MV band closes at extreme activity (figure's top)", {
            let top = &cells[(act_steps - 1) * sr_steps..];
            !top.iter().any(|c| c.winner == trijoin_model::Method::MaterializedView)
        }),
    ];
    let mut ok = true;
    for (name, pass) in checks {
        println!("  [{}] {}", if pass { "PASS" } else { "FAIL" }, name);
        ok &= pass;
    }
    let json = Json::obj()
        .set("figure", "fig4")
        .set("sr_steps", sr_steps)
        .set("act_steps", act_steps)
        .set("boundaries", boundaries)
        .set(
            "checks",
            checks
                .iter()
                .map(|(name, pass)| Json::obj().set("name", *name).set("pass", *pass))
                .collect::<Vec<_>>(),
        );
    emit_json("fig4", &json);
    std::process::exit(i32::from(!ok));
}
