//! Ablation: join-key skew (beyond the paper — its analysis assumes
//! uniform hashing and uniform partner counts).
//!
//! The matched mass is redistributed over the same group count by Zipf
//! weights (θ = 0 is the paper's uniform family). Skew concentrates join
//! pairs in hot groups, which stresses each method differently: the view
//! grows quadratically in the hot group (|V| ∝ Σ zᵢ²), hot hash-join
//! partitions overflow memory and recurse, and the join index's pass
//! extension keeps hot r-groups page-aligned.
//!
//! Run with: `cargo run --release -p trijoin-bench --bin ablation_skew`

use trijoin::{Database, JoinStrategy, Method, SystemParams, WorkloadSpec};
use trijoin_bench::emit_json;
use trijoin_common::Json;
use trijoin_exec::{execute_collect, oracle};

fn main() {
    let params = SystemParams { mem_pages: 60, ..SystemParams::paper_defaults() };
    let spec = WorkloadSpec {
        r_tuples: 4_000,
        s_tuples: 4_000,
        tuple_bytes: 200,
        sr: 0.05,
        group_size: 10,
        pra: 0.1,
        update_rate: 0.06,
        seed: 1234,
    };
    println!("== Key skew: engine cost and correctness per strategy ==");
    println!(
        "{:>6} {:>10} {:>10} | {:>10} {:>10} {:>10}",
        "theta", "‖V‖", "hot group", "MV secs", "JI secs", "HH secs"
    );
    let mut rows = Vec::new();
    for &theta in &[0.0, 0.5, 1.0, 1.5] {
        let gen = spec.generate_skewed(theta);
        let m = gen.measured();
        let join_tuples = (m.js * m.r_tuples * m.s_tuples).round();
        // Hot group size = partners of the most frequent key.
        let hot = {
            let mut counts = std::collections::HashMap::new();
            for t in &gen.r {
                *counts.entry(t.key).or_insert(0u32) += 1;
            }
            counts.into_iter().filter(|&(k, _)| k < 1 << 40).map(|(_, c)| c).max().unwrap_or(0)
        };
        let mut secs = Vec::new();
        for method in Method::all() {
            let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
            let mut strategy: Box<dyn JoinStrategy> = match method {
                Method::MaterializedView => Box::new(db.materialized_view().unwrap()),
                Method::JoinIndex => Box::new(db.join_index().unwrap()),
                Method::HybridHash => Box::new(db.hybrid_hash()),
            };
            let mut stream = gen.update_stream();
            db.reset_cost();
            for _ in 0..gen.updates_per_epoch() {
                let u = stream.next_update();
                strategy.on_update(&u).unwrap();
                db.r_mut().apply_update(&u.old, &u.new).unwrap();
            }
            let got = execute_collect(strategy.as_mut(), db.r(), db.s()).unwrap();
            // Correctness under skew is part of the ablation.
            let want = oracle::join_tuples(stream.current(), &gen.s);
            oracle::assert_same_join(&format!("theta={theta} {method}"), got, want);
            secs.push(db.cost().elapsed_secs(db.params()));
        }
        println!(
            "{:>6} {:>10} {:>10} | {:>10.2} {:>10.2} {:>10.2}",
            theta, join_tuples, hot, secs[0], secs[1], secs[2]
        );
        rows.push(
            Json::obj()
                .set("theta", theta)
                .set("join_tuples", join_tuples)
                .set("hot_group", hot as u64)
                .set("mv_secs", secs[0])
                .set("ji_secs", secs[1])
                .set("hh_secs", secs[2]),
        );
    }
    emit_json("ablation_skew", &Json::obj().set("figure", "ablation_skew").set("rows", rows));
    println!("\nreading: with SR fixed, skew grows the join result (Σ z² effect), so the");
    println!("caches pay for the bigger V/JI while hash join only pays for the extra");
    println!("output; every result above was verified against the oracle.");
}
