//! Ablation: the `Pr_A` filter — the join index's structural advantage.
//!
//! §4: "The join index method gains a competitive advantage from only
//! having to process a percentage of the updates. Therefore ... its area
//! of superiority varies inversely with the probability of an update
//! altering the join attribute."
//!
//! Sweeps Pr_A at a fixed (SR, activity) point and reports each method's
//! total plus where the JI→MV boundary sits, in both the model and the
//! engine.
//!
//! Run with: `cargo run --release -p trijoin-bench --bin ablation_pra`

use trijoin::{Experiment, SystemParams, WorkloadSpec};
use trijoin_bench::{emit_json, paper_params};
use trijoin_common::Json;
use trijoin_model::{all_costs, Workload};

fn main() {
    let params = paper_params();
    println!("== Model: Pr_A sweep at SR = 0.01, activity = 20% (paper scale) ==");
    println!("{:>6} {:>12} {:>12} {:>12}  winner", "Pr_A", "MV secs", "JI secs", "HH secs");
    let mut model_rows = Vec::new();
    for &pra in &[0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let mut w = Workload::figure4_point(0.01, 0.2);
        w.pra = pra;
        let costs = all_costs(&params, &w);
        let t: Vec<f64> = costs.iter().map(|c| c.total()).collect();
        let winner = costs.iter().min_by(|a, b| a.total().total_cmp(&b.total())).unwrap().method;
        println!("{pra:>6} {:>12.1} {:>12.1} {:>12.1}  {winner}", t[0], t[1], t[2]);
        model_rows.push(
            Json::obj()
                .set("pra", pra)
                .set("mv_secs", t[0])
                .set("ji_secs", t[1])
                .set("hh_secs", t[2])
                .set("winner", winner.label()),
        );
    }

    println!("\n== Engine: same sweep, scaled down 50x (measured simulated seconds) ==");
    println!("{:>6} {:>12} {:>12} {:>12}  winner", "Pr_A", "MV secs", "JI secs", "HH secs");
    let engine_params = SystemParams { mem_pages: 80, ..params };
    let mut engine_rows = Vec::new();
    for &pra in &[0.0, 0.1, 0.5, 1.0] {
        let spec = WorkloadSpec {
            r_tuples: 4_000,
            s_tuples: 4_000,
            tuple_bytes: 200,
            sr: 0.01,
            group_size: 5,
            pra,
            update_rate: 0.2,
            seed: 31,
        };
        let mut exp = Experiment::new(&engine_params, &spec);
        exp.verify = false;
        let report = exp.run_epoch().expect("epoch");
        let t: Vec<f64> = report.outcomes.iter().map(|o| o.engine_secs).collect();
        println!(
            "{pra:>6} {:>12.2} {:>12.2} {:>12.2}  {}",
            t[0],
            t[1],
            t[2],
            report.engine_winner()
        );
        engine_rows.push(
            Json::obj()
                .set("pra", pra)
                .set("mv_secs", t[0])
                .set("ji_secs", t[1])
                .set("hh_secs", t[2])
                .set("winner", report.engine_winner().label()),
        );
    }
    let json = Json::obj()
        .set("figure", "ablation_pra")
        .set("model_rows", model_rows)
        .set("engine_rows", engine_rows);
    emit_json("ablation_pra", &json);
    println!("\nreading: MV is Pr_A-invariant; JI's cost rises with Pr_A toward MV-like");
    println!("update processing, which is exactly why its region shrinks as Pr_A grows.");
}
