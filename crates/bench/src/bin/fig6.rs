//! Regenerates Figure 6: "Cheapest method as selectivity and memory size
//! vary" — the region map over SR ∈ [0.001, 1.0] (x, log) and |M| ∈
//! [1K, 16K] pages (y, log-2), at ‖iR‖ = 6000, Pr_A = 0.1.
//!
//! Run with: `cargo run -p trijoin-bench --bin fig6`

use trijoin_bench::{axis, emit_json, legend, paper_params, row_boundaries};
use trijoin_common::{Json, SystemParams};
use trijoin_model::{figure6_grid, regions::ascii_map, Method, Workload};

fn main() {
    let params = paper_params();
    let sr_steps = 46;
    let mem_steps = 9;
    let cells = figure6_grid(&params, sr_steps, mem_steps);

    println!("== Figure 6: cheapest method over (SR, |M|) ==");
    println!("   ‖iR‖ = 6000, Pr_A = 0.1, JS = 100·SR/‖R‖, ‖R‖ = ‖S‖ = 200 000");
    println!("   y = |M| in pages (1K..16K, log), x = SR from 0.001 to 1.0 (log)\n");
    print!("{}", ascii_map(&cells, sr_steps));
    println!("            {}", "-".repeat(sr_steps));
    println!("             SR: 0.001 {:>width$}", "1.0", width = sr_steps - 7);
    println!("\n{}", legend());

    println!("\n== Region boundaries per memory row ==");
    println!("{:>10}  {:>12}  {:>12}", "|M| pages", "JI->MV at SR", "->HH at SR");
    let mut boundaries = Vec::new();
    for row in cells.chunks(sr_steps) {
        let (mv, hh) = row_boundaries(row);
        println!(
            "{:>10.0}  {:>12}  {:>12}",
            row[0].y,
            mv.map(axis).unwrap_or_else(|| "(no MV)".into()),
            hh.map(axis).unwrap_or_else(|| "-".into()),
        );
        boundaries.push(
            Json::obj()
                .set("mem_pages", row[0].y)
                .set("mv_from_sr", mv.map(Json::from).unwrap_or(Json::Null))
                .set("hh_from_sr", hh.map(Json::from).unwrap_or(Json::Null)),
        );
    }

    println!("\n== Paper-shape checks ==");
    let ji_cells = |row: &[trijoin_model::RegionCell]| {
        row.iter().filter(|c| c.winner == Method::JoinIndex).count()
    };
    let bottom = &cells[0..sr_steps];
    let top = &cells[(mem_steps - 1) * sr_steps..];
    // Beyond the plotted range: |M| ≈ 20K+ pages makes hash join one-pass
    // (B = 0, q = 1) — the paper's "increased by approximately 20K pages".
    let w = Workload::figure6_point(0.05);
    let hh_21k =
        trijoin_model::hh::cost(&SystemParams { mem_pages: 21_000, ..params.clone() }, &w).total();
    let hh_1k =
        trijoin_model::hh::cost(&SystemParams { mem_pages: 1_000, ..params.clone() }, &w).total();
    let checks = [
        (
            "join index exploits added memory best: its region grows 1K -> 16K",
            ji_cells(top) > ji_cells(bottom),
        ),
        ("all three regions present at |M| = 1000 (the Figure 4 baseline row)", {
            let m: Vec<Method> = bottom.iter().map(|c| c.winner).collect();
            m.contains(&Method::JoinIndex)
                && m.contains(&Method::MaterializedView)
                && m.contains(&Method::HybridHash)
        }),
        (
            "one-pass hash join (|M| ~ 21K >= |R|*F) runs ~3x faster than at 1K \
             ('increased by approximately 20K pages' enlarges its area)",
            hh_21k < 0.4 * hh_1k,
        ),
    ];
    let mut ok = true;
    for (name, pass) in checks {
        println!("  [{}] {}", if pass { "PASS" } else { "FAIL" }, name);
        ok &= pass;
    }
    let json = Json::obj()
        .set("figure", "fig6")
        .set("sr_steps", sr_steps)
        .set("mem_steps", mem_steps)
        .set("boundaries", boundaries)
        .set("hh_secs_at_1k_pages", hh_1k)
        .set("hh_secs_at_21k_pages", hh_21k)
        .set(
            "checks",
            checks
                .iter()
                .map(|(name, pass)| Json::obj().set("name", *name).set("pass", *pass))
                .collect::<Vec<_>>(),
        );
    emit_json("fig6", &json);
    std::process::exit(i32::from(!ok));
}
