//! Regenerates Figure 5: "Cost of each method broken down into non-update
//! file processing and other costs" — per-method totals split into the
//! white area (non-update-related file cost of the basic algorithm) and
//! the dark area (update costs + non-update internal processing), at 6%
//! update activity over SR ∈ [0.001, 0.1].
//!
//! Run with: `cargo run -p trijoin-bench --bin fig5`

use trijoin_bench::{emit_json, paper_params};
use trijoin_common::Json;
use trijoin_model::{all_costs, regions::log_space, Method, Workload};

fn main() {
    let params = paper_params();
    println!("== Figure 5: cost decomposition at 6% update activity ==");
    println!("   (seconds of simulated 1989 time; white = non-update file cost of the");
    println!("    basic algorithm, dark = update + internal costs)\n");
    println!(
        "{:>8} | {:>10} {:>10} {:>7} | {:>10} {:>10} {:>7} | {:>10} {:>10} {:>7}",
        "",
        "MV total",
        "white",
        "dark%",
        "JI total",
        "white",
        "dark%",
        "HH total",
        "white",
        "dark%"
    );
    println!("{:>8} |", "SR");
    let mut rows = Vec::new();
    for &sr in &log_space(0.001, 0.1, 13) {
        let w = Workload::figure5_point(sr);
        let costs = all_costs(&params, &w);
        let mut cols = Vec::new();
        for c in &costs {
            let dark_pct = 100.0 * c.update_and_internal() / c.total();
            cols.push((c.total(), c.base_file(), dark_pct));
        }
        println!(
            "{:>8.4} | {:>10.1} {:>10.1} {:>6.1}% | {:>10.1} {:>10.1} {:>6.1}% | {:>10.1} {:>10.1} {:>6.1}%",
            sr,
            cols[0].0, cols[0].1, cols[0].2,
            cols[1].0, cols[1].1, cols[1].2,
            cols[2].0, cols[2].1, cols[2].2,
        );
        rows.push((sr, cols));
    }

    println!("\n== Paper-shape checks ==");
    let hh_first = rows.first().unwrap().1[2].0;
    let hh_last = rows.last().unwrap().1[2].0;
    let hh_dark_max = rows.iter().map(|(_, c)| c[2].2).fold(0.0f64, f64::max);
    let ji_dark_at_06: Vec<f64> = rows.iter().skip(4).map(|(_, c)| c[1].2).collect();
    let checks = [
        (
            "hash-join cost is flat across SR (its curve is constant)",
            (hh_first - hh_last).abs() / hh_first < 0.01,
        ),
        ("hash-join dark area ≈ 1% of total (paper: 'approximately 1 percent')", hh_dark_max < 2.5),
        (
            "MV white area (reading V) grows ~linearly with SR",
            rows.last().unwrap().1[0].1 / rows.first().unwrap().1[0].1 > 50.0,
        ),
        (
            "MV's advantage is its small white area at low SR (vs both others)",
            rows.iter().take(5).all(|(_, c)| c[0].1 < c[2].1),
        ),
        (
            "JI dark share stays a minor fraction once I/O dominates",
            ji_dark_at_06.iter().all(|&d| d < 25.0),
        ),
    ];
    let mut ok = true;
    for (name, pass) in checks {
        println!("  [{}] {}", if pass { "PASS" } else { "FAIL" }, name);
        ok &= pass;
    }

    // The crossing structure the paper narrates: MV cheapest in the middle
    // of this range, JI cheapest at the far left, HH by the right edge.
    let winner = |c: &[(f64, f64, f64)]| -> Method {
        let t: Vec<f64> = c.iter().map(|x| x.0).collect();
        if t[0] <= t[1] && t[0] <= t[2] {
            Method::MaterializedView
        } else if t[1] <= t[2] {
            Method::JoinIndex
        } else {
            Method::HybridHash
        }
    };
    println!("\n  winner at SR=0.001: {}", winner(&rows.first().unwrap().1));
    println!("  winner at SR=0.022: {}", winner(&rows[7].1));
    println!("  winner at SR=0.1:   {}", winner(&rows.last().unwrap().1));
    let methods = ["materialized-view", "join-index", "hybrid-hash"];
    let json = Json::obj().set("figure", "fig5").set(
        "rows",
        rows.iter()
            .map(|(sr, cols)| {
                let mut row = Json::obj().set("sr", *sr);
                for (label, (total, white, dark_pct)) in methods.iter().zip(cols) {
                    row = row.set(
                        label,
                        Json::obj()
                            .set("total_secs", *total)
                            .set("white_secs", *white)
                            .set("dark_pct", *dark_pct),
                    );
                }
                row
            })
            .collect::<Vec<_>>(),
    );
    emit_json("fig5", &json);
    std::process::exit(i32::from(!ok));
}
