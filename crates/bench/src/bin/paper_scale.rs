//! Full Table 7 scale, on the real engine: ‖R‖ = ‖S‖ = 200 000 tuples of
//! 200 bytes, |M| = 1000 pages, SR = 0.01 (the paper's canonical "join is
//! as big as an operand" point), 6% update activity, Pr_A = 0.1 — the
//! exact configuration of Figure 5's middle column.
//!
//! Every strategy runs for real against the simulated disk (the base data
//! alone is ~80 MB of pages); measured simulated seconds are printed next
//! to the §3 cost model's predictions.
//!
//! Run with: `cargo run --release -p trijoin-bench --bin paper_scale`
//! (takes a couple of minutes of wall-clock; the *simulated* times are
//! what's being measured).

use trijoin::{Database, JoinStrategy, Method, WorkloadSpec};
use trijoin_bench::{emit_json, paper_params};
use trijoin_common::Json;
use trijoin_model::all_costs;

fn main() {
    let params = paper_params();
    let spec = WorkloadSpec {
        r_tuples: 200_000,
        s_tuples: 200_000,
        tuple_bytes: 200,
        sr: 0.01,
        group_size: 100, // the paper's JS = 100·SR/‖R‖ family
        pra: 0.1,
        update_rate: 0.06,
        seed: 1990,
    };
    eprintln!("generating the Table 7 workload (‖R‖ = ‖S‖ = 200 000)...");
    let gen = spec.generate();
    let measured = gen.measured();
    eprintln!(
        "achieved: SR = {:.4}, SS = {:.4}, ‖V‖ = {:.0}, ‖iR‖ = {}",
        measured.sr,
        measured.ss,
        measured.js * measured.r_tuples * measured.s_tuples,
        gen.updates_per_epoch()
    );
    let model = all_costs(&params, &measured);

    println!("== Paper scale (Figure 5 @ SR = 0.01, 6% activity): engine vs model ==");
    println!(
        "{:<18} {:>14} {:>14} {:>8}   {:>12} {:>12}",
        "method", "engine secs", "model secs", "ratio", "engine IOs", "result"
    );
    let mut rows = Vec::new();
    for method in Method::all() {
        eprintln!("building database + {} cache...", method);
        let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
        let mut strategy: Box<dyn JoinStrategy> = match method {
            Method::MaterializedView => Box::new(db.materialized_view().unwrap()),
            Method::JoinIndex => Box::new(db.join_index().unwrap()),
            Method::HybridHash => Box::new(db.hybrid_hash()),
        };
        let mut stream = gen.update_stream();
        eprintln!("applying {} updates...", gen.updates_per_epoch());
        // Measure strategy-attributable cost: the strategies' own sections
        // plus the query; base-relation maintenance is shared work.
        db.reset_cost();
        for _ in 0..gen.updates_per_epoch() {
            let u = stream.next_update();
            strategy.on_update(&u).unwrap();
            db.r_mut().apply_update(&u.old, &u.new).unwrap();
        }
        // Sum only *root* spans: cumulative counts already include any
        // nested work (retries, diff merging), so adding child spans on top
        // would double-count it.
        let log_sections: f64 = db
            .cost()
            .span_tree()
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.cum_ops.time_secs(db.params()))
            .sum();
        let before_query = db.cost().total();
        eprintln!("querying...");
        let mut n = 0u64;
        strategy.execute(db.r(), db.s(), &mut |_| n += 1).unwrap();
        let query = db.cost().total().delta_since(&before_query);
        let engine_secs = log_sections + query.time_secs(db.params());
        let engine_ios = query.ios; // query-phase I/O (dominant term)
        let model_secs = model.iter().find(|c| c.method == method).unwrap().total();
        println!(
            "{:<18} {:>14.1} {:>14.1} {:>8.2}   {:>12} {:>12}",
            method.to_string(),
            engine_secs,
            model_secs,
            engine_secs / model_secs,
            engine_ios,
            n
        );
        rows.push(
            Json::obj()
                .set("method", method.label())
                .set("engine_secs", engine_secs)
                .set("model_secs", model_secs)
                .set("ratio", engine_secs / model_secs)
                .set("query_ios", engine_ios)
                .set("result_tuples", n),
        );
    }
    emit_json("paper_scale", &Json::obj().set("figure", "paper_scale").set("rows", rows));
    println!("\n(ratios near 1.0 mean the closed-form model prices the real pipeline well;");
    println!(" the engine's B-tree heights, batching and group-aligned packing are real");
    println!(" implementations, not the paper's idealized two/three-level formulas.)");
}
