//! Wall-clock bench harness: real elapsed time of the engine's hot paths.
//!
//! Everything else in `results/` reports *simulated* cost (the paper's
//! Table 6/7 ledger). This binary is the one place that measures what the
//! host actually spends: MV/JI query cycles (one epoch of updates + one
//! query), the HH recompute, and sharded-serve throughput at 1 and 4
//! shards. It exists so the zero-copy / interned-metrics / batched-I/O
//! work has a before/after record — the simulated ledgers are pinned
//! bit-identical by `tests/golden_ledger.rs`, and this harness shows the
//! wall-clock side actually moved.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p trijoin-bench --bin wallclock            # full run
//! cargo run --release -p trijoin-bench --bin wallclock -- --smoke # CI gate
//! cargo run --release -p trijoin-bench --bin wallclock -- \
//!     --baseline /tmp/wallclock_before.json                       # + BENCH_wallclock.json
//! cargo run --release -p trijoin-bench --bin wallclock -- \
//!     --baseline BENCH_wallclock.json --gate 20                   # CI regression gate
//! ```
//!
//! Emits `results/wallclock.json` (`figure: "wallclock"`). With
//! `--baseline <path>` (a previous `wallclock.json`, or a committed
//! `BENCH_wallclock.json` whose `after_*` fields are read as the
//! baseline), also writes the repo-root `BENCH_wallclock.json` comparing
//! before/after per bench. `--gate <pct>` turns the comparison into a CI
//! gate: exit non-zero if any serve bench's qps fell more than `<pct>`
//! percent below the baseline.
//!
//! The serve rows also measure telemetry overhead: `serve_qps_4shard`
//! runs with the default-on telemetry sampler while
//! `serve_qps_4shard_notel` disables it, and the printed overhead is the
//! acceptance check that sampling costs <5% of 4-shard throughput.
//!
//! Durability is priced the same way: `mv_query_cycle_wal` re-runs the MV
//! query cycle on the WAL-guarded file backend with a *deferred* commit
//! per cycle plus one barrier seal amortized over the loop (the
//! group-commit fast path), and `serve_qps_4shard_wal` backs every shard
//! with its own WAL, issues a deferred commit barrier per round, and
//! seals once at the end — each against its in-memory twin row.
//! `serve_qps_4shard_barrier` runs the same per-round commit cadence on a
//! *non-durable* server: its qps pins "commit barriers cost nothing when
//! there is nothing to make durable".

use std::path::PathBuf;
use std::time::Instant;

use trijoin::{Database, Durability, JoinStrategy, Method, SystemParams, WorkloadSpec};
use trijoin_bench::{emit_json, paper_params};
use trijoin_common::Json;
use trijoin_serve::{ClientTraffic, ServeConfig, Server};

/// One measured bench: mean seconds per iteration, plus qps for the
/// serve rows (where one "iteration" is the whole query loop).
struct Row {
    bench: &'static str,
    secs: f64,
    iters: u64,
    qps: Option<f64>,
}

impl Row {
    fn to_json(&self) -> Json {
        let j =
            Json::obj().set("bench", self.bench).set("secs", self.secs).set("iters", self.iters);
        match self.qps {
            Some(qps) => j.set("qps", qps),
            None => j,
        }
    }
}

/// Scale knobs: `--smoke` shrinks everything so the CI gate runs in
/// seconds and exercises the same code paths without meaningful timings.
struct Scale {
    cycle_tuples: u32,
    cycle_iters: u64,
    serve_tuples: u32,
    serve_queries: u64,
    /// Minimum timed duration of each serve loop: the loop keeps cycling
    /// (in whole update-epoch + query rounds) until at least this much
    /// wall time has elapsed, so one OS scheduling hiccup cannot dominate
    /// the reported qps. Zero in smoke runs — their timings are not read.
    serve_min_secs: f64,
}

const FULL: Scale = Scale {
    cycle_tuples: 4_000,
    cycle_iters: 20,
    serve_tuples: 3_000,
    serve_queries: 24,
    serve_min_secs: 2.0,
};
const SMOKE: Scale = Scale {
    cycle_tuples: 600,
    cycle_iters: 1,
    serve_tuples: 300,
    serve_queries: 2,
    serve_min_secs: 0.0,
};

/// The Figure-5 workload shape (6% activity, SR = 1%, seed 55).
fn cycle_spec(n: u32) -> WorkloadSpec {
    WorkloadSpec {
        r_tuples: n,
        s_tuples: n,
        tuple_bytes: 200,
        sr: 0.01,
        group_size: 5,
        pra: 0.1,
        update_rate: 0.06,
        seed: 55,
    }
}

/// Mean wall seconds of (one epoch of updates + one query) for `method`,
/// after one untimed warmup cycle. Setup (load + cache build) is untimed.
/// With `wal`, the store is the WAL-guarded file backend and every timed
/// cycle ends in a **deferred** commit (append, no fsync); one barrier
/// seal inside the timed region closes the loop, so its fsync is
/// amortized across the iterations exactly as group commit amortizes it
/// in production. The `_wal` row prices durability against its in-memory
/// twin.
fn query_cycle(method: Method, scale: &Scale, wal: bool) -> Row {
    let bench = match (method, wal) {
        (Method::MaterializedView, false) => "mv_query_cycle",
        (Method::MaterializedView, true) => "mv_query_cycle_wal",
        (Method::JoinIndex, _) => "ji_query_cycle",
        (Method::HybridHash, _) => "hh_recompute",
    };
    let params = SystemParams { mem_pages: 80, ..paper_params() };
    let gen = cycle_spec(scale.cycle_tuples).generate();
    let mut db = if wal {
        let dir =
            std::env::temp_dir().join(format!("trijoin-wallclock-{}-{bench}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Database::create_durable(&params, gen.r.clone(), gen.s.clone(), &dir)
            .expect("build durable database")
    } else {
        Database::new(&params, gen.r.clone(), gen.s.clone()).expect("build database")
    };
    let mut strategy: Box<dyn JoinStrategy> = match method {
        Method::MaterializedView => Box::new(db.materialized_view().expect("build mv")),
        Method::JoinIndex => Box::new(db.join_index().expect("build ji")),
        Method::HybridHash => Box::new(db.hybrid_hash()),
    };
    let mut stream = gen.update_stream();
    db.reset_observability();

    let mut cycle = |timed: bool| -> f64 {
        let at = Instant::now();
        for _ in 0..gen.updates_per_epoch() {
            let u = stream.next_update();
            strategy.on_update(&u).expect("log update");
            db.apply_r_update(&u).expect("apply update");
        }
        db.query(strategy.as_mut()).expect("query");
        if wal {
            db.commit_with(Durability::Deferred).expect("commit cycle");
        }
        if timed {
            at.elapsed().as_secs_f64()
        } else {
            0.0
        }
    };
    cycle(false); // warmup: touches every path once, faults in lazy state

    // The durable row's final seal is one device fsync amortized into
    // the mean; at 20 iters a single ~100 ms device stall would swing
    // the row 2×, so run it 3× longer to keep the stall inside the
    // regression gate's margin.
    let iters = if wal { scale.cycle_iters * 3 } else { scale.cycle_iters };
    let mut total = 0.0;
    for _ in 0..iters {
        total += cycle(true);
    }
    if wal {
        // Seal the deferred groups: one fsync for the whole timed loop,
        // charged into the mean so the row never reports throughput the
        // durability contract hasn't paid for.
        let at = Instant::now();
        db.commit().expect("seal deferred commits");
        total += at.elapsed().as_secs_f64();
    }
    Row { bench, secs: total / iters as f64, iters, qps: None }
}

/// The serve_bench inner loop (wide tuples, spilling HH) at `shards`
/// shards: wall seconds of the whole query loop plus derived qps.
/// `telemetry` toggles the default-on windowed sampler so the 4-shard
/// pair of rows exposes its overhead; `wal` backs every shard with the
/// WAL-guarded file backend, issues a **deferred** commit barrier per
/// round, and seals once inside the timed region — pricing the
/// group-committed durable serving path against the in-memory row.
/// `barrier` keeps the server non-durable but still commits every round:
/// that row pins the no-op cost of the barrier machinery itself, i.e.
/// "turning durability off really pays zero durability overhead".
/// `adaptive` turns on the per-shard strategy controller (§17): its row
/// prices the steady-state monitoring — signal windows, skew sketch,
/// per-epoch re-pricing — against the pinned-strategy row.
fn serve_qps(
    shards: usize,
    scale: &Scale,
    telemetry: bool,
    wal: bool,
    barrier: bool,
    adaptive: bool,
) -> Row {
    const CLIENTS: usize = 4;
    let spec = WorkloadSpec {
        r_tuples: scale.serve_tuples,
        s_tuples: scale.serve_tuples,
        tuple_bytes: 1900,
        sr: 0.01,
        group_size: 4,
        pra: 0.1,
        update_rate: 0.005,
        seed: trijoin_common::rng::derive(42, "workload"),
    };
    let params = SystemParams { mem_pages: 1850, ..paper_params() };
    let gen = spec.generate();
    let updates_per_query = gen.updates_per_epoch();

    let mut config =
        ServeConfig { batch: 32, seed: 42, adaptive, ..ServeConfig::new(params, shards) };
    if !telemetry {
        config.telemetry = None;
    }
    if wal {
        let dir = std::env::temp_dir()
            .join(format!("trijoin-wallclock-{}-serve{shards}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        config.durable_dir = Some(dir);
        config.durability = Durability::Deferred;
    }
    let server = Server::start(&config, gen.r.clone(), gen.s.clone())
        .unwrap_or_else(|e| panic!("start {shards}-shard server: {e}"));
    let session = server.session().expect("live server");
    let mut traffic = ClientTraffic::split(&gen, &config, CLIENTS);

    // One round is an epoch of updates round-robined across the clients
    // followed by one query — the serve_bench inner loop.
    let mut round = |q: u64| {
        for u in 0..updates_per_query {
            let c = ((q * updates_per_query + u) % CLIENTS as u64) as usize;
            session.update_r(traffic[c].next_mutation()).expect("update");
        }
        session.query(Method::HybridHash).expect("query");
        if wal || barrier {
            session.commit().expect("commit round");
        }
    };

    // Untimed warmup: faults in lazy engine state (allocator, page cache,
    // spill files) so the timed loop measures steady state, not startup.
    round(0);

    let started = Instant::now();
    let mut done = 0u64;
    while done < scale.serve_queries || started.elapsed().as_secs_f64() < scale.serve_min_secs {
        round(done + 1);
        done += 1;
    }
    if wal {
        // Seal every deferred barrier — one fsync per shard for the whole
        // loop, inside the timed region so the qps includes it.
        session.sync().expect("seal deferred barriers");
    }
    let wall = started.elapsed().as_secs_f64();
    let bench = match (shards, telemetry, wal, barrier, adaptive) {
        (_, _, true, _, _) => "serve_qps_4shard_wal",
        (_, _, _, true, _) => "serve_qps_4shard_barrier",
        (_, _, _, _, true) => "serve_qps_4shard_adaptive",
        (1, _, _, _, _) => "serve_qps_1shard",
        (_, true, _, _, _) => "serve_qps_4shard",
        (_, false, _, _, _) => "serve_qps_4shard_notel",
    };
    Row { bench, secs: wall, iters: done, qps: Some(done as f64 / wall.max(1e-9)) }
}

/// Compare fresh rows against a previous `wallclock.json` and write the
/// repo-root `BENCH_wallclock.json`. Speedup is before/after seconds for
/// cycle benches and after/before qps for serve benches — both read as
/// "how many times faster the optimized build is". Baselines in the
/// `wallclock_cmp` format (a committed `BENCH_wallclock.json`) are
/// accepted too: their `after_*` fields are the baseline numbers.
///
/// With `gate_pct`, a serve bench whose fresh qps fell more than that
/// many percent below the baseline — or a cycle bench whose seconds rose
/// more than that many percent above it — fails the run: the CI
/// regression gate covers throughput and latency rows alike (so the
/// durable `mv_query_cycle_wal` path is gated, not just the serve qps).
/// Returns the names of the benches that failed it.
fn write_comparison(rows: &[Row], baseline_path: &str, gate_pct: Option<f64>) -> Vec<String> {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = Json::parse(&text).expect("parse baseline json");
    let base_rows = baseline.get("rows").and_then(Json::as_arr).expect("baseline rows");
    let find = |bench: &str| -> Option<&Json> {
        base_rows.iter().find(|r| r.get("bench").and_then(Json::as_str) == Some(bench))
    };
    // "secs"/"qps" in a results file, "after_secs"/"after_qps" in a
    // comparison file.
    let base_secs = |r: &Json| r.get("secs").or_else(|| r.get("after_secs")).and_then(Json::as_f64);
    let base_qps = |r: &Json| r.get("qps").or_else(|| r.get("after_qps")).and_then(Json::as_f64);

    let mut out_rows: Vec<Json> = Vec::new();
    let mut regressed: Vec<String> = Vec::new();
    println!("\n== before/after (baseline: {baseline_path}) ==");
    println!("{:>18}  {:>12}  {:>12}  {:>8}", "bench", "before", "after", "speedup");
    for row in rows {
        // A bench absent from the baseline (first run after it was added)
        // enters the comparison as its own baseline — speedup 1.0, never
        // gated — so the committed file picks it up for future gates.
        let (before_secs, before_qps) = match find(row.bench) {
            Some(before) => (base_secs(before).expect("baseline secs"), base_qps(before)),
            None => (row.secs, row.qps),
        };
        let speedup = match (row.qps, before_qps) {
            (Some(after_qps), Some(before_qps)) => after_qps / before_qps.max(1e-12),
            _ => before_secs / row.secs.max(1e-12),
        };
        println!(
            "{:>18}  {:>11.4}s  {:>11.4}s  {:>7.2}x",
            row.bench, before_secs, row.secs, speedup
        );
        if let Some(pct) = gate_pct {
            match (row.qps, before_qps) {
                (Some(after_qps), Some(before_qps)) => {
                    if after_qps < before_qps * (1.0 - pct / 100.0) {
                        println!(
                            "  GATE: {} qps {after_qps:.1} is more than {pct:.0}% below \
                             baseline {before_qps:.1}",
                            row.bench
                        );
                        regressed.push(row.bench.to_string());
                    }
                }
                _ => {
                    if row.secs > before_secs * (1.0 + pct / 100.0) {
                        println!(
                            "  GATE: {} {:.4}s is more than {pct:.0}% above baseline \
                             {before_secs:.4}s",
                            row.bench, row.secs
                        );
                        regressed.push(row.bench.to_string());
                    }
                }
            }
        }
        let mut j = Json::obj()
            .set("bench", row.bench)
            .set("before_secs", before_secs)
            .set("after_secs", row.secs)
            .set("speedup", speedup);
        if let (Some(after_qps), Some(before_qps)) = (row.qps, before_qps) {
            j = j.set("before_qps", before_qps).set("after_qps", after_qps);
        }
        out_rows.push(j);
    }
    // Gate runs are read-only checks: don't clobber the committed
    // comparison file from CI.
    if gate_pct.is_none() {
        let json = Json::obj().set("figure", "wallclock_cmp").set("rows", out_rows);
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_wallclock.json");
        std::fs::write(&path, json.pretty())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("\njson: BENCH_wallclock.json");
    }
    regressed
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| args.get(i + 1).expect("--baseline needs a path").clone());
    let gate_pct = args.iter().position(|a| a == "--gate").map(|i| {
        let pct = args.get(i + 1).expect("--gate needs a percent");
        pct.parse::<f64>().unwrap_or_else(|_| panic!("--gate: bad percent {pct:?}"))
    });
    if gate_pct.is_some() && baseline.is_none() {
        panic!("--gate requires --baseline");
    }
    let scale = if smoke { SMOKE } else { FULL };

    println!("== Wall-clock hot-path benchmarks ({}) ==", if smoke { "smoke" } else { "full" });
    println!(
        "   cycles: {} tuples x {} iters; serve: {} tuples x {} queries\n",
        scale.cycle_tuples, scale.cycle_iters, scale.serve_tuples, scale.serve_queries
    );
    println!("{:>18}  {:>12}  {:>6}  {:>10}", "bench", "secs/iter", "iters", "qps");

    // Durable rows fsync against a real device, whose occasional
    // ~100 ms stalls would swamp one 20-iter (or one 2 s) measurement
    // and trip the 20% regression gate on pure device noise: take the
    // median of three runs so a single hiccup cannot decide the row.
    let median3 = |mut runs: Vec<Row>| -> Row {
        runs.sort_by(|a, b| match (a.qps, b.qps) {
            (Some(x), Some(y)) => y.total_cmp(&x),
            _ => a.secs.total_cmp(&b.secs),
        });
        runs.swap_remove(1)
    };

    let mut rows: Vec<Row> = Vec::new();
    for (method, wal) in [
        (Method::MaterializedView, false),
        (Method::MaterializedView, true),
        (Method::JoinIndex, false),
        (Method::HybridHash, false),
    ] {
        let row = if wal {
            median3((0..3).map(|_| query_cycle(method, &scale, wal)).collect())
        } else {
            query_cycle(method, &scale, wal)
        };
        println!("{:>20}  {:>11.4}s  {:>6}  {:>10}", row.bench, row.secs, row.iters, "-");
        rows.push(row);
    }
    for (shards, telemetry, wal, barrier, adaptive) in [
        (1usize, true, false, false, false),
        (4, true, false, false, false),
        (4, false, false, false, false),
        (4, true, false, true, false),
        (4, true, false, false, true),
        (4, true, true, false, false),
    ] {
        let row = if wal {
            median3(
                (0..3)
                    .map(|_| serve_qps(shards, &scale, telemetry, wal, barrier, adaptive))
                    .collect(),
            )
        } else {
            serve_qps(shards, &scale, telemetry, wal, barrier, adaptive)
        };
        println!(
            "{:>20}  {:>11.4}s  {:>6}  {:>10.1}",
            row.bench,
            row.secs,
            row.iters,
            row.qps.unwrap_or(0.0)
        );
        rows.push(row);
    }
    // Telemetry overhead: the acceptance bar is <5% qps regression at 4
    // shards with the default-on sampler (meaningless under --smoke,
    // whose timings are noise by design).
    let qps_of =
        |bench: &str| rows.iter().find(|r| r.bench == bench).and_then(|r| r.qps).unwrap_or(0.0);
    let (with_tel, without_tel) = (qps_of("serve_qps_4shard"), qps_of("serve_qps_4shard_notel"));
    if without_tel > 0.0 {
        println!(
            "\ntelemetry overhead at 4 shards: {:+.2}% qps ({with_tel:.1} on vs \
             {without_tel:.1} off)",
            (with_tel / without_tel - 1.0) * 100.0
        );
    }
    // Adaptive monitoring overhead: the §17 acceptance bar is that the
    // per-shard controller (signal windows, skew sketch, re-pricing)
    // costs <20% of pinned-strategy throughput in steady state. Gated
    // alongside the baseline comparison so CI fails if it slides.
    let adaptive_qps = qps_of("serve_qps_4shard_adaptive");
    if with_tel > 0.0 && adaptive_qps > 0.0 {
        println!(
            "adaptive overhead at 4 shards: {:+.2}% qps ({adaptive_qps:.1} adaptive vs \
             {with_tel:.1} pinned)",
            (adaptive_qps / with_tel - 1.0) * 100.0
        );
        if gate_pct.is_some() && !smoke && adaptive_qps < with_tel * 0.8 {
            eprintln!("bench-regression gate FAILED: serve_qps_4shard_adaptive vs pinned");
            std::process::exit(1);
        }
    }

    let json = Json::obj()
        .set("figure", "wallclock")
        .set("smoke", if smoke { 1u64 } else { 0u64 })
        .set("rows", rows.iter().map(Row::to_json).collect::<Vec<_>>());
    // Smoke and gate runs get their own files so the CI gates never
    // clobber the committed full-scale results.
    let figure = if smoke {
        "wallclock_smoke"
    } else if gate_pct.is_some() {
        "wallclock_gate"
    } else {
        "wallclock"
    };
    emit_json(figure, &json);

    if let Some(path) = baseline {
        let regressed = write_comparison(&rows, &path, gate_pct);
        if !regressed.is_empty() {
            eprintln!("bench-regression gate FAILED: {}", regressed.join(", "));
            std::process::exit(1);
        }
        if gate_pct.is_some() {
            println!("bench-regression gate: ok");
        }
    }
}
