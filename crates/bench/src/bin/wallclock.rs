//! Wall-clock bench harness: real elapsed time of the engine's hot paths.
//!
//! Everything else in `results/` reports *simulated* cost (the paper's
//! Table 6/7 ledger). This binary is the one place that measures what the
//! host actually spends: MV/JI query cycles (one epoch of updates + one
//! query), the HH recompute, and sharded-serve throughput at 1 and 4
//! shards. It exists so the zero-copy / interned-metrics / batched-I/O
//! work has a before/after record — the simulated ledgers are pinned
//! bit-identical by `tests/golden_ledger.rs`, and this harness shows the
//! wall-clock side actually moved.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p trijoin-bench --bin wallclock            # full run
//! cargo run --release -p trijoin-bench --bin wallclock -- --smoke # CI gate
//! cargo run --release -p trijoin-bench --bin wallclock -- \
//!     --baseline /tmp/wallclock_before.json                       # + BENCH_wallclock.json
//! ```
//!
//! Emits `results/wallclock.json` (`figure: "wallclock"`). With
//! `--baseline <path>` (a previous `wallclock.json`), also writes the
//! repo-root `BENCH_wallclock.json` comparing before/after per bench.

use std::path::PathBuf;
use std::time::Instant;

use trijoin::{Database, JoinStrategy, Method, SystemParams, WorkloadSpec};
use trijoin_bench::{emit_json, paper_params};
use trijoin_common::Json;
use trijoin_serve::{ClientTraffic, ServeConfig, Server};

/// One measured bench: mean seconds per iteration, plus qps for the
/// serve rows (where one "iteration" is the whole query loop).
struct Row {
    bench: &'static str,
    secs: f64,
    iters: u64,
    qps: Option<f64>,
}

impl Row {
    fn to_json(&self) -> Json {
        let j =
            Json::obj().set("bench", self.bench).set("secs", self.secs).set("iters", self.iters);
        match self.qps {
            Some(qps) => j.set("qps", qps),
            None => j,
        }
    }
}

/// Scale knobs: `--smoke` shrinks everything so the CI gate runs in
/// seconds and exercises the same code paths without meaningful timings.
struct Scale {
    cycle_tuples: u32,
    cycle_iters: u64,
    serve_tuples: u32,
    serve_queries: u64,
    /// Minimum timed duration of each serve loop: the loop keeps cycling
    /// (in whole update-epoch + query rounds) until at least this much
    /// wall time has elapsed, so one OS scheduling hiccup cannot dominate
    /// the reported qps. Zero in smoke runs — their timings are not read.
    serve_min_secs: f64,
}

const FULL: Scale = Scale {
    cycle_tuples: 4_000,
    cycle_iters: 20,
    serve_tuples: 3_000,
    serve_queries: 24,
    serve_min_secs: 1.0,
};
const SMOKE: Scale = Scale {
    cycle_tuples: 600,
    cycle_iters: 1,
    serve_tuples: 300,
    serve_queries: 2,
    serve_min_secs: 0.0,
};

/// The Figure-5 workload shape (6% activity, SR = 1%, seed 55).
fn cycle_spec(n: u32) -> WorkloadSpec {
    WorkloadSpec {
        r_tuples: n,
        s_tuples: n,
        tuple_bytes: 200,
        sr: 0.01,
        group_size: 5,
        pra: 0.1,
        update_rate: 0.06,
        seed: 55,
    }
}

/// Mean wall seconds of (one epoch of updates + one query) for `method`,
/// after one untimed warmup cycle. Setup (load + cache build) is untimed.
fn query_cycle(method: Method, scale: &Scale) -> Row {
    let bench = match method {
        Method::MaterializedView => "mv_query_cycle",
        Method::JoinIndex => "ji_query_cycle",
        Method::HybridHash => "hh_recompute",
    };
    let params = SystemParams { mem_pages: 80, ..paper_params() };
    let gen = cycle_spec(scale.cycle_tuples).generate();
    let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).expect("build database");
    let mut strategy: Box<dyn JoinStrategy> = match method {
        Method::MaterializedView => Box::new(db.materialized_view().expect("build mv")),
        Method::JoinIndex => Box::new(db.join_index().expect("build ji")),
        Method::HybridHash => Box::new(db.hybrid_hash()),
    };
    let mut stream = gen.update_stream();
    db.reset_observability();

    let mut cycle = |timed: bool| -> f64 {
        let at = Instant::now();
        for _ in 0..gen.updates_per_epoch() {
            let u = stream.next_update();
            strategy.on_update(&u).expect("log update");
            db.apply_r_update(&u).expect("apply update");
        }
        db.query(strategy.as_mut()).expect("query");
        if timed {
            at.elapsed().as_secs_f64()
        } else {
            0.0
        }
    };
    cycle(false); // warmup: touches every path once, faults in lazy state
    let mut total = 0.0;
    for _ in 0..scale.cycle_iters {
        total += cycle(true);
    }
    Row { bench, secs: total / scale.cycle_iters as f64, iters: scale.cycle_iters, qps: None }
}

/// The serve_bench inner loop (wide tuples, spilling HH) at `shards`
/// shards: wall seconds of the whole query loop plus derived qps.
fn serve_qps(shards: usize, scale: &Scale) -> Row {
    const CLIENTS: usize = 4;
    let spec = WorkloadSpec {
        r_tuples: scale.serve_tuples,
        s_tuples: scale.serve_tuples,
        tuple_bytes: 1900,
        sr: 0.01,
        group_size: 4,
        pra: 0.1,
        update_rate: 0.005,
        seed: trijoin_common::rng::derive(42, "workload"),
    };
    let params = SystemParams { mem_pages: 1850, ..paper_params() };
    let gen = spec.generate();
    let updates_per_query = gen.updates_per_epoch();

    let config = ServeConfig { batch: 32, seed: 42, ..ServeConfig::new(params, shards) };
    let server = Server::start(&config, gen.r.clone(), gen.s.clone())
        .unwrap_or_else(|e| panic!("start {shards}-shard server: {e}"));
    let session = server.session().expect("live server");
    let mut traffic = ClientTraffic::split(&gen, &config, CLIENTS);

    // One round is an epoch of updates round-robined across the clients
    // followed by one query — the serve_bench inner loop.
    let mut round = |q: u64| {
        for u in 0..updates_per_query {
            let c = ((q * updates_per_query + u) % CLIENTS as u64) as usize;
            session.update_r(traffic[c].next_mutation()).expect("update");
        }
        session.query(Method::HybridHash).expect("query");
    };

    // Untimed warmup: faults in lazy engine state (allocator, page cache,
    // spill files) so the timed loop measures steady state, not startup.
    round(0);

    let started = Instant::now();
    let mut done = 0u64;
    while done < scale.serve_queries || started.elapsed().as_secs_f64() < scale.serve_min_secs {
        round(done + 1);
        done += 1;
    }
    let wall = started.elapsed().as_secs_f64();
    let bench = if shards == 1 { "serve_qps_1shard" } else { "serve_qps_4shard" };
    Row { bench, secs: wall, iters: done, qps: Some(done as f64 / wall.max(1e-9)) }
}

/// Compare fresh rows against a previous `wallclock.json` and write the
/// repo-root `BENCH_wallclock.json`. Speedup is before/after seconds for
/// cycle benches and after/before qps for serve benches — both read as
/// "how many times faster the optimized build is".
fn write_comparison(rows: &[Row], baseline_path: &str) {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let baseline = Json::parse(&text).expect("parse baseline json");
    let base_rows = baseline.get("rows").and_then(Json::as_arr).expect("baseline rows");
    let find = |bench: &str| -> Option<&Json> {
        base_rows.iter().find(|r| r.get("bench").and_then(Json::as_str) == Some(bench))
    };

    let mut out_rows: Vec<Json> = Vec::new();
    println!("\n== before/after (baseline: {baseline_path}) ==");
    println!("{:>18}  {:>12}  {:>12}  {:>8}", "bench", "before", "after", "speedup");
    for row in rows {
        let Some(before) = find(row.bench) else { continue };
        let before_secs = before.get("secs").and_then(Json::as_f64).expect("baseline secs");
        let speedup = match (row.qps, before.get("qps").and_then(Json::as_f64)) {
            (Some(after_qps), Some(before_qps)) => after_qps / before_qps.max(1e-12),
            _ => before_secs / row.secs.max(1e-12),
        };
        println!(
            "{:>18}  {:>11.4}s  {:>11.4}s  {:>7.2}x",
            row.bench, before_secs, row.secs, speedup
        );
        let mut j = Json::obj()
            .set("bench", row.bench)
            .set("before_secs", before_secs)
            .set("after_secs", row.secs)
            .set("speedup", speedup);
        if let (Some(after_qps), Some(before_qps)) =
            (row.qps, before.get("qps").and_then(Json::as_f64))
        {
            j = j.set("before_qps", before_qps).set("after_qps", after_qps);
        }
        out_rows.push(j);
    }
    let json = Json::obj().set("figure", "wallclock_cmp").set("rows", out_rows);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_wallclock.json");
    std::fs::write(&path, json.pretty())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("\njson: BENCH_wallclock.json");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .map(|i| args.get(i + 1).expect("--baseline needs a path").clone());
    let scale = if smoke { SMOKE } else { FULL };

    println!("== Wall-clock hot-path benchmarks ({}) ==", if smoke { "smoke" } else { "full" });
    println!(
        "   cycles: {} tuples x {} iters; serve: {} tuples x {} queries\n",
        scale.cycle_tuples, scale.cycle_iters, scale.serve_tuples, scale.serve_queries
    );
    println!("{:>18}  {:>12}  {:>6}  {:>10}", "bench", "secs/iter", "iters", "qps");

    let mut rows: Vec<Row> = Vec::new();
    for method in [Method::MaterializedView, Method::JoinIndex, Method::HybridHash] {
        let row = query_cycle(method, &scale);
        println!("{:>18}  {:>11.4}s  {:>6}  {:>10}", row.bench, row.secs, row.iters, "-");
        rows.push(row);
    }
    for shards in [1usize, 4] {
        let row = serve_qps(shards, &scale);
        println!(
            "{:>18}  {:>11.4}s  {:>6}  {:>10.1}",
            row.bench,
            row.secs,
            row.iters,
            row.qps.unwrap_or(0.0)
        );
        rows.push(row);
    }

    let json = Json::obj()
        .set("figure", "wallclock")
        .set("smoke", if smoke { 1u64 } else { 0u64 })
        .set("rows", rows.iter().map(Row::to_json).collect::<Vec<_>>());
    // Smoke runs get their own file so the CI gate never clobbers the
    // committed full-scale results.
    emit_json(if smoke { "wallclock_smoke" } else { "wallclock" }, &json);

    if let Some(path) = baseline {
        write_comparison(&rows, &path);
    }
}
