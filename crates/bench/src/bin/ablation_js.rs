//! Ablation: the join-selectivity multiplier.
//!
//! The paper chose `JS = 100·SR/‖R‖` — "a join selectivity whose proportion
//! to the semijoin is 10 times larger than the proportion used by
//! Valduriez" — and observes that "the size of the area where the
//! materialized view algorithm performs best varies inversely with the
//! value of JS". This bin sweeps the multiplier (10 = Valduriez's setting,
//! 100 = the paper's) and reports the MV band's boundaries at 2% activity.
//!
//! Run with: `cargo run -p trijoin-bench --bin ablation_js`

use trijoin_bench::{axis, emit_json, paper_params, row_boundaries};
use trijoin_common::Json;
use trijoin_model::{all_costs, regions::log_space, Method, RegionCell, Workload};

fn main() {
    let params = paper_params();
    println!("== MV region vs the JS multiplier (activity 2%, Pr_A 0.1) ==");
    println!(
        "{:>10} {:>14} {:>14} {:>12}",
        "multiplier", "JI->MV at SR", "MV->HH at SR", "MV cells/46"
    );
    let mut rows = Vec::new();
    for &mult in &[10.0, 30.0, 100.0, 300.0, 1000.0] {
        let row: Vec<RegionCell> = log_space(0.001, 1.0, 46)
            .into_iter()
            .map(|sr| {
                let mut w = Workload::figure4_point(sr, 0.02);
                w.js = mult * sr / w.r_tuples;
                let costs = all_costs(&params, &w);
                let totals = [costs[0].total(), costs[1].total(), costs[2].total()];
                let winner =
                    costs.iter().min_by(|a, b| a.total().total_cmp(&b.total())).unwrap().method;
                RegionCell { sr, y: mult, winner, totals }
            })
            .collect();
        let (mv, hh) = row_boundaries(&row);
        let mv_cells = row.iter().filter(|c| c.winner == Method::MaterializedView).count();
        println!(
            "{:>10} {:>14} {:>14} {:>12}",
            mult,
            mv.map(axis).unwrap_or_else(|| "(no MV)".into()),
            hh.map(axis).unwrap_or_else(|| "-".into()),
            mv_cells
        );
        rows.push(
            Json::obj()
                .set("multiplier", mult)
                .set("mv_from_sr", mv.map(Json::from).unwrap_or(Json::Null))
                .set("hh_from_sr", hh.map(Json::from).unwrap_or(Json::Null))
                .set("mv_cells", mv_cells),
        );
    }
    emit_json("ablation_js", &Json::obj().set("figure", "ablation_js").set("rows", rows));
    println!("\nreading: more partners per matching tuple inflate ‖V‖ (and ‖JI‖), so the");
    println!("caches lose ground to recomputation as the multiplier grows — the MV band");
    println!("shrinks and vanishes, exactly the inverse-in-JS behaviour the paper notes.");
    println!("At Valduriez's multiplier (10) the caches dominate recomputation almost");
    println!("everywhere, which is why the paper raised it to highlight the contrasts.");
}
