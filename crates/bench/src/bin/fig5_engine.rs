//! Engine-side Figure 5: the white/dark decomposition *measured* from the
//! engine's cost sections, next to the model's analytical split.
//!
//! White = non-update-related file cost of the basic algorithm. Engine
//! mapping: MV's `mv.scan_view` (+`mv.write_view` is update-driven →
//! dark); JI's `ji.read_index` + `ji.fetch_r` + `ji.fetch_s` I/O; HH's
//! entire query I/O. Dark = everything else the strategy charges (logging,
//! diff merging, insert joining, write-back, CPU).
//!
//! Run at a 50×-scaled workload; the model is priced at the *measured*
//! workload so the comparison is apples-to-apples.
//!
//! Run with: `cargo run --release -p trijoin-bench --bin fig5_engine`

use trijoin::{Database, JoinStrategy, Method, SystemParams, WorkloadSpec};
use trijoin_common::OpCounts;
use trijoin_model::all_costs;

fn main() {
    let params = SystemParams { mem_pages: 80, ..SystemParams::paper_defaults() };
    println!("== Engine-measured cost decomposition (6% activity, 4000-tuple scale) ==");
    println!(
        "{:>7} {:<18} {:>10} {:>10} {:>7}   {:>10} {:>7}",
        "SR", "method", "total s", "white s", "dark%", "model tot", "dark%"
    );
    for &sr in &[0.002, 0.01, 0.05] {
        let spec = WorkloadSpec {
            r_tuples: 4_000,
            s_tuples: 4_000,
            tuple_bytes: 200,
            sr,
            group_size: 5,
            pra: 0.1,
            update_rate: 0.06,
            seed: 55,
        };
        let gen = spec.generate();
        let measured = gen.measured();
        let model = all_costs(&params, &measured);
        for method in Method::all() {
            let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
            let mut strategy: Box<dyn JoinStrategy> = match method {
                Method::MaterializedView => Box::new(db.materialized_view().unwrap()),
                Method::JoinIndex => Box::new(db.join_index().unwrap()),
                Method::HybridHash => Box::new(db.hybrid_hash()),
            };
            let mut stream = gen.update_stream();
            db.reset_cost();
            for _ in 0..gen.updates_per_epoch() {
                let u = stream.next_update();
                strategy.on_update(&u).unwrap();
                db.r_mut().apply_update(&u.old, &u.new).unwrap();
            }
            strategy.execute(db.r(), db.s(), &mut |_| {}).unwrap();
            let sections = db.cost().sections();
            let secs = |ops: &OpCounts| ops.time_secs(db.params());
            let total: f64 = sections.iter().map(|(_, ops)| secs(ops)).sum();
            let white: f64 = sections
                .iter()
                .filter(|(name, _)| {
                    matches!(
                        name.as_str(),
                        "mv.scan_view" | "ji.read_index" | "ji.fetch_r" | "ji.fetch_s"
                    )
                })
                .map(|(_, ops)| OpCounts { ios: ops.ios, ..OpCounts::default() })
                .map(|ops| secs(&ops))
                .sum::<f64>()
                + sections
                    .iter()
                    .filter(|(name, _)| name.as_str() == "hh.execute")
                    .map(|(_, ops)| OpCounts { ios: ops.ios, ..OpCounts::default() })
                    .map(|ops| secs(&ops))
                    .sum::<f64>();
            let dark_pct = 100.0 * (total - white) / total.max(1e-9);
            let m = model.iter().find(|c| c.method == method).unwrap();
            let model_dark = 100.0 * m.update_and_internal() / m.total();
            println!(
                "{:>7} {:<18} {:>10.2} {:>10.2} {:>6.1}%   {:>10.1} {:>6.1}%",
                sr,
                method.to_string(),
                total,
                white,
                dark_pct,
                m.total(),
                model_dark
            );
        }
    }
    println!("\nreading: the engine's measured dark share tracks the model's ordering —");
    println!("hash join is almost pure base file I/O; the caches' dark share shrinks as");
    println!("selectivity (and with it the base file work) grows.");
}
