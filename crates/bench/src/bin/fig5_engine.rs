//! Engine-side Figure 5: the white/dark decomposition *measured* from the
//! engine's span tree, next to the model's analytical split.
//!
//! White = non-update-related file cost of the basic algorithm. Engine
//! mapping (see [`trijoin::breakdown`]): MV's `mv.scan_view`
//! (+`mv.write_view` is update-driven → dark); JI's `ji.read_index` +
//! `ji.fetch_r` + `ji.fetch_s` I/O; HH's entire query I/O. Dark =
//! everything else the strategy charges (logging, diff merging, insert
//! joining, write-back, CPU). The split is exact on integer op counts:
//! white + dark == the ledger's grand total.
//!
//! Run at a 50×-scaled workload; the model is priced at the *measured*
//! workload so the comparison is apples-to-apples. Emits
//! `results/fig5_breakdown.json` next to the text table.
//!
//! Run with: `cargo run --release -p trijoin-bench --bin fig5_engine`

use trijoin::{Database, Fig5Breakdown, JoinStrategy, Method, SystemParams, WorkloadSpec};
use trijoin_bench::emit_json;
use trijoin_common::Json;
use trijoin_model::all_costs;

fn main() {
    let params = SystemParams { mem_pages: 80, ..SystemParams::paper_defaults() };
    println!("== Engine-measured cost decomposition (6% activity, 4000-tuple scale) ==");
    println!(
        "{:>7} {:<18} {:>10} {:>10} {:>7}   {:>10} {:>7}",
        "SR", "method", "total s", "white s", "dark%", "model tot", "dark%"
    );
    let mut rows = Vec::new();
    for &sr in &[0.002, 0.01, 0.05] {
        let spec = WorkloadSpec {
            r_tuples: 4_000,
            s_tuples: 4_000,
            tuple_bytes: 200,
            sr,
            group_size: 5,
            pra: 0.1,
            update_rate: 0.06,
            seed: 55,
        };
        let gen = spec.generate();
        let measured = gen.measured();
        let model = all_costs(&params, &measured);
        for method in Method::all() {
            let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
            let mut strategy: Box<dyn JoinStrategy> = match method {
                Method::MaterializedView => Box::new(db.materialized_view().unwrap()),
                Method::JoinIndex => Box::new(db.join_index().unwrap()),
                Method::HybridHash => Box::new(db.hybrid_hash()),
            };
            let mut stream = gen.update_stream();
            db.reset_cost();
            for _ in 0..gen.updates_per_epoch() {
                let u = stream.next_update();
                strategy.on_update(&u).unwrap();
                db.r_mut().apply_update(&u.old, &u.new).unwrap();
            }
            strategy.execute(db.r(), db.s(), &mut |_| {}).unwrap();
            let b = Fig5Breakdown::measure(method, db.cost());
            let m = model.iter().find(|c| c.method == method).unwrap();
            let model_dark = 100.0 * m.update_and_internal() / m.total();
            println!(
                "{:>7} {:<18} {:>10.2} {:>10.2} {:>6.1}%   {:>10.1} {:>6.1}%",
                sr,
                method.to_string(),
                b.total.time_secs(db.params()),
                b.white_secs(db.params()),
                b.dark_pct(db.params()),
                m.total(),
                model_dark
            );
            rows.push(
                b.to_json(db.params())
                    .set("sr", sr)
                    .set("model_total_secs", m.total())
                    .set("model_dark_pct", model_dark),
            );
        }
    }
    emit_json("fig5_breakdown", &Json::obj().set("figure", "fig5_engine").set("rows", rows));
    println!("\nreading: the engine's measured dark share tracks the model's ordering —");
    println!("hash join is almost pure base file I/O; the caches' dark share shrinks as");
    println!("selectivity (and with it the base file work) grows.");
}
