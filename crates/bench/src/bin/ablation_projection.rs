//! Ablation: projectivity of the join (§5 future work, implemented).
//!
//! The paper: "the cost equations described in the paper need to be
//! augmented to account for the projectivity of a join" — because the
//! materialized view's dominant cost is reading `F·|V|` pages, and
//! projection shrinks `T_V` directly. This bin measures the engine: the
//! same view maintained and queried with progressively narrower
//! projections, plus a selective view demonstrating the irrelevant-update
//! optimization.
//!
//! Run with: `cargo run --release -p trijoin-bench --bin ablation_projection`

use trijoin::{Database, JoinStrategy, SystemParams, WorkloadSpec};
use trijoin_bench::emit_json;
use trijoin_common::Json;
use trijoin_exec::{MaterializedView, Predicate, ViewDef};

fn main() {
    let params = SystemParams { mem_pages: 80, ..SystemParams::paper_defaults() };
    let spec = WorkloadSpec {
        r_tuples: 4_000,
        s_tuples: 4_000,
        tuple_bytes: 200,
        sr: 0.02,
        group_size: 5,
        pra: 0.1,
        update_rate: 0.06,
        seed: 91,
    };
    let gen = spec.generate();

    println!("== Projection: query cost vs view width (engine, measured) ==");
    println!("{:>22} {:>10} {:>12} {:>14}", "projection", "T_V bytes", "view pages", "query secs");
    let mut projection_rows = Vec::new();
    for (label, def) in [
        ("full view", ViewDef::full()),
        ("keep 64+64 B", ViewDef { r_project: Some(64), s_project: Some(64), ..ViewDef::full() }),
        ("keep 16+16 B", ViewDef { r_project: Some(16), s_project: Some(16), ..ViewDef::full() }),
        (
            "pairs only (0+0 B)",
            ViewDef { r_project: Some(0), s_project: Some(0), ..ViewDef::full() },
        ),
    ] {
        let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
        let mut view = MaterializedView::build_with(
            db.disk(),
            db.params(),
            db.cost(),
            db.r(),
            db.s(),
            def.clone(),
        )
        .unwrap();
        let mut stream = gen.update_stream();
        for _ in 0..gen.updates_per_epoch() {
            let u = stream.next_update();
            view.on_update(&u).unwrap();
            db.r_mut().apply_update(&u.old, &u.new).unwrap();
        }
        db.reset_cost();
        let mut n = 0u64;
        view.execute(db.r(), db.s(), &mut |_| n += 1).unwrap();
        println!(
            "{:>22} {:>10} {:>12} {:>14.2}",
            label,
            def.view_tuple_bytes(200, 200),
            view.view_pages(),
            db.cost().elapsed_secs(db.params())
        );
        projection_rows.push(
            Json::obj()
                .set("projection", label)
                .set("view_tuple_bytes", def.view_tuple_bytes(200, 200))
                .set("view_pages", view.view_pages())
                .set("query_secs", db.cost().elapsed_secs(db.params())),
        );
    }

    println!("\n== Selection: irrelevant updates cost the view nothing ==");
    // View over only a quarter of the key groups; updates that never touch
    // it are filtered at log time.
    let groups = gen.groups as u64;
    let def = ViewDef { r_pred: Predicate::KeyRange { lo: 0, hi: groups / 4 }, ..ViewDef::full() };
    let mut selection_rows = Vec::new();
    for (label, use_selection) in [("full view", false), ("quarter-selection view", true)] {
        let mut db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
        let d = if use_selection { def.clone() } else { ViewDef::full() };
        let mut view =
            MaterializedView::build_with(db.disk(), db.params(), db.cost(), db.r(), db.s(), d)
                .unwrap();
        let mut stream = gen.update_stream();
        db.reset_cost();
        for _ in 0..gen.updates_per_epoch() {
            let u = stream.next_update();
            view.on_update(&u).unwrap();
            db.r_mut().apply_update(&u.old, &u.new).unwrap();
        }
        let logged = view.pending_updates();
        let mut n = 0u64;
        let before = db.cost().total();
        view.execute(db.r(), db.s(), &mut |_| n += 1).unwrap();
        let query = db.cost().total().delta_since(&before);
        println!(
            "  {:<24} logged {:>5} of {} updates; query {:>8.2} s; {} tuples",
            label,
            logged,
            gen.updates_per_epoch(),
            query.time_secs(db.params()),
            n
        );
        selection_rows.push(
            Json::obj()
                .set("view", label)
                .set("logged_updates", logged)
                .set("total_updates", gen.updates_per_epoch())
                .set("query_secs", query.time_secs(db.params()))
                .set("result_tuples", n),
        );
    }
    let json = Json::obj()
        .set("figure", "ablation_projection")
        .set("projection_rows", projection_rows)
        .set("selection_rows", selection_rows);
    emit_json("ablation_projection", &json);
}
