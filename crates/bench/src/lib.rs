//! Shared helpers for the figure-regeneration binaries and benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index); the criterion benches under
//! `benches/` measure the wall-clock performance of the engine itself.

use std::path::PathBuf;

use trijoin_common::{Json, SystemParams};
use trijoin_model::{Method, RegionCell};

/// Format a region-map row legend.
pub fn legend() -> &'static str {
    "legend: J = join index, M = materialized view, H = hybrid-hash join"
}

/// Where `results/<name>.json` lives (workspace root, independent of the
/// invocation directory).
pub fn results_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results").join(format!("{name}.json"))
}

/// Write `json` next to the binary's text output as
/// `results/<name>.json`. Every figure binary calls this so each run
/// leaves a machine-readable artifact beside the human-readable table.
pub fn emit_json(name: &str, json: &Json) {
    let path = results_path(name);
    match std::fs::write(&path, json.pretty()) {
        Ok(()) => println!("\njson: results/{name}.json"),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Extract the boundary columns (first MV column, first HH column) of one
/// region-map row; `None` when a band is absent.
pub fn row_boundaries(row: &[RegionCell]) -> (Option<f64>, Option<f64>) {
    let first_mv = row.iter().find(|c| c.winner == Method::MaterializedView).map(|c| c.sr);
    let first_hh = row.iter().find(|c| c.winner == Method::HybridHash).map(|c| c.sr);
    (first_mv, first_hh)
}

/// The paper's Table 7 configuration.
pub fn paper_params() -> SystemParams {
    SystemParams::paper_defaults()
}

/// A compact `x.xx` / `x.xxe-n` formatter for axis values.
pub fn axis(v: f64) -> String {
    if v >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_model::figure4_grid;

    #[test]
    fn boundaries_extracted_in_order() {
        let cells = figure4_grid(&paper_params(), 15, 3);
        let row = &cells[0..15]; // lowest activity
        let (mv, hh) = row_boundaries(row);
        let (mv_b, hh_b) = (mv.unwrap(), hh.unwrap());
        assert!(mv_b < hh_b, "MV band must start left of HH: {mv_b} vs {hh_b}");
    }

    #[test]
    fn axis_formatting() {
        assert_eq!(axis(0.5), "0.500");
        assert_eq!(axis(0.001), "0.0010");
    }
}
