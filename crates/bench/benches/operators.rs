//! Criterion micro-benchmarks of the storage/index substrate: wall-clock
//! performance of the engine's own data structures (B⁺-tree, linear hash
//! file, counted sort, slotted page). These measure *our code's* speed —
//! the simulated 1989 costs are a separate, deterministic ledger.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use trijoin_btree::{BTree, BTreeConfig};
use trijoin_common::{types::hash_key, Cost, SystemParams};
use trijoin_exec::sort::counted_sort_by;
use trijoin_linearhash::LinearHash;
use trijoin_storage::{SimDisk, SlottedPage};

fn bench_btree(c: &mut Criterion) {
    let params = SystemParams::paper_defaults();
    let mut g = c.benchmark_group("btree");
    g.sample_size(20);

    g.bench_function("bulk_load_10k", |b| {
        b.iter_batched(
            || {
                let disk = SimDisk::new(&params, Cost::new());
                let entries: Vec<(u64, Vec<u8>)> =
                    (0..10_000u64).map(|k| (k, vec![0u8; 64])).collect();
                (disk, entries)
            },
            |(disk, entries)| {
                black_box(
                    BTree::bulk_load(&disk, BTreeConfig::clustered(&params, 64), entries).unwrap(),
                )
            },
            BatchSize::SmallInput,
        )
    });

    let disk = SimDisk::new(&params, Cost::new());
    let entries: Vec<(u64, Vec<u8>)> = (0..50_000u64).map(|k| (k, vec![0u8; 64])).collect();
    let tree = BTree::bulk_load(&disk, BTreeConfig::clustered(&params, 64), entries).unwrap();
    g.bench_function("point_lookup_50k", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 50_000;
            black_box(tree.lookup(k).unwrap())
        })
    });

    g.bench_function("fetch_many_1k_of_50k", |b| {
        let keys: Vec<u64> = (0..50_000u64).step_by(50).collect();
        b.iter(|| {
            let mut n = 0u64;
            tree.fetch_many(&keys, |_, _| n += 1).unwrap();
            black_box(n)
        })
    });

    g.bench_function("insert_1k", |b| {
        b.iter_batched(
            || {
                let disk = SimDisk::new(&params, Cost::new());
                BTree::new(&disk, BTreeConfig::clustered(&params, 64)).unwrap()
            },
            |mut t| {
                for k in 0..1_000u64 {
                    t.insert((k * 37) % 1000, vec![0u8; 64]).unwrap();
                }
                black_box(t.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_linear_hash(c: &mut Criterion) {
    let params = SystemParams::paper_defaults();
    let mut g = c.benchmark_group("linear_hash");
    g.sample_size(20);

    g.bench_function("build_10k", |b| {
        b.iter_batched(
            || {
                let disk = SimDisk::new(&params, Cost::new());
                let records: Vec<(u64, Vec<u8>)> =
                    (0..10_000u64).map(|k| (hash_key(k), vec![0u8; 48])).collect();
                (disk, records)
            },
            |(disk, records)| {
                black_box(LinearHash::build(&disk, &params, records, 10_000, 48).unwrap())
            },
            BatchSize::SmallInput,
        )
    });

    let disk = SimDisk::new(&params, Cost::new());
    let records: Vec<(u64, Vec<u8>)> =
        (0..20_000u64).map(|k| (hash_key(k), vec![0u8; 48])).collect();
    let lh = LinearHash::build(&disk, &params, records, 20_000, 48).unwrap();
    g.bench_function("lookup_20k", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 20_000;
            black_box(lh.lookup(hash_key(k)).unwrap())
        })
    });
    g.finish();
}

fn bench_sort_and_pages(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    g.sample_size(20);

    g.bench_function("counted_sort_100k_u64", |b| {
        b.iter_batched(
            || (0..100_000u64).map(|i| (i * 2654435761) % 100_000).collect::<Vec<u64>>(),
            |mut v| {
                counted_sort_by(&mut v, |x| *x, &Cost::new());
                black_box(v)
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("slotted_page_fill_drain", |b| {
        b.iter(|| {
            let mut p = SlottedPage::new(4000);
            let mut slots = Vec::new();
            while p.fits(100) {
                slots.push(p.insert(&[0xAB; 100]).unwrap());
            }
            for s in slots {
                p.delete(s).unwrap();
            }
            black_box(p.live_count())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_btree, bench_linear_hash, bench_sort_and_pages);
criterion_main!(benches);
