//! Criterion benchmarks of the three strategies end to end: wall-clock
//! time to run one update/query epoch at a scaled-down paper workload.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use trijoin::{Database, JoinStrategy, SystemParams, WorkloadSpec};
use trijoin_common::Surrogate;

fn epoch_bench(c: &mut Criterion) {
    let params = SystemParams { mem_pages: 80, ..SystemParams::paper_defaults() };
    let spec = WorkloadSpec {
        r_tuples: 5_000,
        s_tuples: 5_000,
        tuple_bytes: 200,
        sr: 0.02,
        group_size: 5,
        pra: 0.1,
        update_rate: 0.05,
        seed: 7,
    };
    let gen = spec.generate();

    let mut g = c.benchmark_group("epoch_5k_tuples");
    g.sample_size(10);

    type MakeStrategy = fn(&Database) -> Box<dyn JoinStrategy>;
    let cases: Vec<(&str, MakeStrategy)> = vec![
        ("materialized_view", |db| Box::new(db.materialized_view().unwrap())),
        ("join_index", |db| Box::new(db.join_index().unwrap())),
        ("hybrid_hash", |db| Box::new(db.hybrid_hash())),
    ];
    for (name, make) in cases {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
                    let strategy = make(&db);
                    (db, strategy, gen.update_stream())
                },
                |(mut db, mut strategy, mut stream)| {
                    for _ in 0..gen.updates_per_epoch() {
                        let u = stream.next_update();
                        strategy.on_update(&u).unwrap();
                        db.r_mut().apply_update(&u.old, &u.new).unwrap();
                    }
                    let mut n = 0u64;
                    strategy.execute(db.r(), db.s(), &mut |_| n += 1).unwrap();
                    black_box(n)
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn point_lookup_bench(c: &mut Criterion) {
    let params = SystemParams { mem_pages: 80, ..SystemParams::paper_defaults() };
    let spec = WorkloadSpec {
        r_tuples: 5_000,
        s_tuples: 5_000,
        tuple_bytes: 200,
        sr: 0.02,
        group_size: 5,
        pra: 0.1,
        update_rate: 0.0,
        seed: 7,
    };
    let gen = spec.generate();
    let db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
    let mv = db.materialized_view().unwrap();
    let ji = db.join_index().unwrap();
    let mut g = c.benchmark_group("point_lookup_5k");
    g.sample_size(30);
    g.bench_function("mv_lookup_key", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 20;
            black_box(mv.lookup_key(k).unwrap())
        })
    });
    g.bench_function("ji_partners_of_r", |b| {
        let mut sur = 0u32;
        b.iter(|| {
            sur = (sur + 37) % 5_000;
            black_box(ji.partners_of_r(Surrogate(sur)).unwrap())
        })
    });
    g.finish();
}

fn eager_bench(c: &mut Criterion) {
    let params = SystemParams { mem_pages: 80, ..SystemParams::paper_defaults() };
    let spec = WorkloadSpec {
        r_tuples: 2_000,
        s_tuples: 2_000,
        tuple_bytes: 200,
        sr: 0.02,
        group_size: 5,
        pra: 0.1,
        update_rate: 0.05,
        seed: 7,
    };
    let gen = spec.generate();
    let mut g = c.benchmark_group("eager_epoch_2k");
    g.sample_size(10);
    g.bench_function("eager_view", |b| {
        b.iter_batched(
            || {
                let db = Database::new(&params, gen.r.clone(), gen.s.clone()).unwrap();
                let eager = db.eager_view().unwrap();
                (db, eager, gen.update_stream())
            },
            |(mut db, mut eager, mut stream)| {
                for _ in 0..gen.updates_per_epoch() {
                    let u = stream.next_update();
                    eager.on_update(&u).unwrap();
                    db.r_mut().apply_update(&u.old, &u.new).unwrap();
                }
                let mut n = 0u64;
                eager.execute(db.r(), db.s(), &mut |_| n += 1).unwrap();
                black_box(n)
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, epoch_bench, point_lookup_bench, eager_bench);
criterion_main!(benches);
