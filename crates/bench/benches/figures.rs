//! Criterion benchmarks of the analytical model itself: evaluating all
//! three cost functions at one point, and solving a whole Figure 4 grid.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use trijoin_common::SystemParams;
use trijoin_model::{all_costs, figure4_grid, formulas, Workload};

fn model_bench(c: &mut Criterion) {
    let params = SystemParams::paper_defaults();
    let mut g = c.benchmark_group("model");
    g.sample_size(30);

    g.bench_function("all_costs_one_point", |b| {
        let w = Workload::figure4_point(0.01, 0.06);
        b.iter(|| black_box(all_costs(&params, &w)))
    });

    g.bench_function("figure4_grid_46x15", |b| b.iter(|| black_box(figure4_grid(&params, 46, 15))));

    g.bench_function("yao_formula", |b| {
        let mut k = 1.0;
        b.iter(|| {
            k = if k > 150_000.0 { 1.0 } else { k + 13.0 };
            black_box(formulas::yao(k, 14_286.0, 200_000.0))
        })
    });
    g.finish();
}

criterion_group!(benches, model_bench);
criterion_main!(benches);
