//! Workload parameters (the database-dependent half of Table 6) and
//! derived sizes.

use trijoin_common::{JiEntry, SystemParams};

/// Database-dependent parameters of one analyzed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// `‖R‖` — tuples in R.
    pub r_tuples: f64,
    /// `‖S‖` — tuples in S.
    pub s_tuples: f64,
    /// `T_R` — bytes per R tuple.
    pub tr: f64,
    /// `T_S` — bytes per S tuple.
    pub ts: f64,
    /// `SR` — semijoin selectivity `‖R ⋉ S‖/‖R‖`.
    pub sr: f64,
    /// `SS` — semijoin selectivity `‖S ⋉ R‖/‖S‖`.
    pub ss: f64,
    /// `JS` — join selectivity `‖R ⋈ S‖/(‖R‖·‖S‖)`.
    pub js: f64,
    /// `Pr_A` — probability an update modifies the join attribute.
    pub pra: f64,
    /// `‖iR‖ = ‖dR‖` — updates to R deferred since the last query.
    pub updates: f64,
}

impl Workload {
    /// A point of the Figure 4/5/6 parameter family: `‖R‖ = ‖S‖ = 200 000`,
    /// `T_R = T_S = 200`, `SS = SR`, `JS = 100·SR/‖R‖`, with the given
    /// semijoin selectivity and update count.
    pub fn paper_point(sr: f64, updates: f64, pra: f64) -> Self {
        let r_tuples = 200_000.0;
        Workload {
            r_tuples,
            s_tuples: 200_000.0,
            tr: 200.0,
            ts: 200.0,
            sr,
            ss: sr,
            js: 100.0 * sr / r_tuples,
            pra,
            updates,
        }
    }

    /// Figure 4 axes: update *activity* is `‖iR‖/‖R‖` (1% – 100%), `Pr_A`
    /// fixed at 0.1.
    pub fn figure4_point(sr: f64, activity: f64) -> Self {
        let mut w = Self::paper_point(sr, 0.0, 0.1);
        w.updates = activity * w.r_tuples;
        w
    }

    /// Figure 5 points: update activity fixed at 6%.
    pub fn figure5_point(sr: f64) -> Self {
        Self::figure4_point(sr, 0.06)
    }

    /// Figure 6 points: `‖iR‖ = 6000` fixed, memory is swept externally.
    pub fn figure6_point(sr: f64) -> Self {
        Self::paper_point(sr, 6_000.0, 0.1)
    }

    /// Derived sizes under `params`.
    pub fn derived(&self, params: &SystemParams) -> Derived {
        let n_r = params.tuples_per_page(self.tr as usize) as f64;
        let n_s = params.tuples_per_page(self.ts as usize) as f64;
        let tv = self.tr + self.ts;
        let n_v = params.tuples_per_page(tv as usize) as f64;
        let n_ji = params.tuples_per_page(JiEntry::BYTES) as f64;
        // Differential files are working files, packed fully.
        let n_ir = params.tuples_per_full_page(self.tr as usize) as f64;
        let join_tuples = self.js * self.r_tuples * self.s_tuples;
        Derived {
            n_r,
            n_s,
            n_v,
            n_ji,
            n_ir,
            r_pages: (self.r_tuples / n_r).ceil(),
            s_pages: (self.s_tuples / n_s).ceil(),
            join_tuples,
            v_pages: (join_tuples / n_v).ceil(),
            ji_pages: (join_tuples / n_ji).ceil().max(1.0),
            ir_pages: (self.updates / n_ir).ceil(),
            tv,
        }
    }
}

/// Page-level quantities derived from a [`Workload`] and [`SystemParams`].
#[derive(Debug, Clone, PartialEq)]
pub struct Derived {
    /// Tuples per page of R (`n_R`).
    pub n_r: f64,
    /// Tuples per page of S (`n_S`).
    pub n_s: f64,
    /// Tuples per page of the view (`n_V`).
    pub n_v: f64,
    /// Entries per page of the join index (`n_JI`).
    pub n_ji: f64,
    /// Tuples per page of the differential files (`n_iR`, full packing).
    pub n_ir: f64,
    /// `|R|` pages.
    pub r_pages: f64,
    /// `|S|` pages.
    pub s_pages: f64,
    /// `‖R ⋈ S‖ = ‖V‖ = ‖JI‖` tuples.
    pub join_tuples: f64,
    /// `|V|` pages (before the `F` hashing overhead).
    pub v_pages: f64,
    /// `|JI|` pages.
    pub ji_pages: f64,
    /// `|iR| = |dR|` pages.
    pub ir_pages: f64,
    /// `T_V = T_R + T_S` bytes.
    pub tv: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_relationships() {
        let w = Workload::figure4_point(0.01, 0.06);
        assert_eq!(w.r_tuples, 200_000.0);
        assert_eq!(w.ss, w.sr);
        // "when SR = 0.01 the resulting join relation has the same
        // cardinality as an operand relation"
        let d = w.derived(&SystemParams::paper_defaults());
        assert!((d.join_tuples - 200_000.0).abs() < 1e-6);
        assert!((w.updates - 12_000.0).abs() < 1e-9);
        assert!((w.pra - 0.1).abs() < 1e-12);
    }

    #[test]
    fn derived_table7_sizes() {
        let p = SystemParams::paper_defaults();
        let d = Workload::paper_point(0.01, 12_000.0, 0.1).derived(&p);
        assert_eq!(d.n_r, 14.0);
        assert_eq!(d.n_s, 14.0);
        assert_eq!(d.n_v, 7.0);
        assert_eq!(d.n_ji, 350.0);
        assert_eq!(d.n_ir, 20.0);
        assert_eq!(d.r_pages, 14_286.0);
        assert_eq!(d.s_pages, 14_286.0);
        // ‖V‖ = 200k -> |V| = ceil(200000/7) = 28572, |JI| = 572.
        assert_eq!(d.v_pages, 28_572.0);
        assert_eq!(d.ji_pages, 572.0);
        assert_eq!(d.ir_pages, 600.0);
        assert_eq!(d.tv, 400.0);
    }

    #[test]
    fn selectivity_scales_join_sizes() {
        let p = SystemParams::paper_defaults();
        let lo = Workload::figure5_point(0.001).derived(&p);
        let hi = Workload::figure5_point(0.1).derived(&p);
        assert!((hi.join_tuples / lo.join_tuples - 100.0).abs() < 1e-6);
        assert!(hi.v_pages > 99.0 * lo.v_pages && hi.v_pages < 101.0 * lo.v_pages);
    }

    #[test]
    fn zero_updates_zero_ir_pages() {
        let p = SystemParams::paper_defaults();
        let d = Workload::paper_point(0.01, 0.0, 0.1).derived(&p);
        assert_eq!(d.ir_pages, 0.0);
    }
}
