//! Cost reports: named terms with the Figure 5 classification.

/// Which method a report prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// §3.2 — materialized view with deferred updates.
    MaterializedView,
    /// §3.3 — join index with deferred updates.
    JoinIndex,
    /// §3.4 — hybrid-hash join.
    HybridHash,
}

impl Method {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Method::MaterializedView => "materialized-view",
            Method::JoinIndex => "join-index",
            Method::HybridHash => "hybrid-hash",
        }
    }

    /// All three methods, in the paper's presentation order.
    pub fn all() -> [Method; 3] {
        [Method::MaterializedView, Method::JoinIndex, Method::HybridHash]
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Figure 5's two-way split: the *white* area is the non-update-related
/// file cost of the basic algorithm; the *dark* area is update processing
/// plus non-update internal processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermKind {
    /// Non-update-related file (I/O) cost of the basic algorithm.
    BaseFile,
    /// Non-update-related internal (CPU) cost of the basic algorithm.
    BaseInternal,
    /// Cost attributable to supporting updates.
    Update,
}

/// One named cost term (e.g. `"C3.1 read view"`).
#[derive(Debug, Clone)]
pub struct Term {
    /// Equation label + description.
    pub name: &'static str,
    /// Seconds of simulated time.
    pub secs: f64,
    /// Figure 5 classification.
    pub kind: TermKind,
}

/// A full cost report for one method at one parameter point.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// The method priced.
    pub method: Method,
    /// Every cost term, in equation order.
    pub terms: Vec<Term>,
}

impl CostReport {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.terms.iter().map(|t| t.secs).sum()
    }

    /// Figure 5's white area: non-update file cost of the basic algorithm.
    pub fn base_file(&self) -> f64 {
        self.terms.iter().filter(|t| t.kind == TermKind::BaseFile).map(|t| t.secs).sum()
    }

    /// Figure 5's dark area: update costs + non-update internal costs.
    pub fn update_and_internal(&self) -> f64 {
        self.total() - self.base_file()
    }

    /// Look up one term by its equation label prefix (e.g. `"C3.1"`).
    pub fn term(&self, prefix: &str) -> f64 {
        self.terms.iter().filter(|t| t.name.starts_with(prefix)).map(|t| t.secs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accounting() {
        let r = CostReport {
            method: Method::MaterializedView,
            terms: vec![
                Term { name: "C1 log", secs: 2.0, kind: TermKind::Update },
                Term { name: "C3.1 read view", secs: 10.0, kind: TermKind::BaseFile },
                Term { name: "C3.3 merge", secs: 1.0, kind: TermKind::BaseInternal },
            ],
        };
        assert!((r.total() - 13.0).abs() < 1e-12);
        assert!((r.base_file() - 10.0).abs() < 1e-12);
        assert!((r.update_and_internal() - 3.0).abs() < 1e-12);
        assert!((r.term("C3") - 11.0).abs() < 1e-12);
        assert_eq!(Method::all().len(), 3);
        assert_eq!(Method::HybridHash.to_string(), "hybrid-hash");
    }
}
