//! §3.3 — cost of the join index with deferred incremental maintenance.

use trijoin_common::SystemParams;

use crate::formulas::{
    cpu_merge, cpu_sort, io_clustered, io_inverted, space_merge, space_quicksort, yao,
};
use crate::inputs::{Derived, Workload};
use crate::mv::{n1_runs, z_pages};
use crate::report::{CostReport, Method, Term, TermKind};

/// Memory-layout solution for the join passes (Figure 3): the largest `k`
/// (pages of `JI` memory-resident per pass) satisfying
///
/// `1.5·k + k·n_JI·T_R/P + k·|iR|·Pr_A/|JI|
///   + k·|iR|·Pr_A·n_iR·‖S‖·JS·(T_S+T_R)/(|JI|·P)
///   + 2·SPACE_mrg(N1_J, T_R) + max(SPACE_q(…)) ≤ |M| − 2·N1_J − 5`.
///
/// Interpretation note (the technical report's figure-3 inequality is
/// partially garbled in the only surviving scan): the `R ⋈ JI_k` working
/// area is budgeted *per entry* (`n_JI` R-tuple slots per JI page — the
/// pass materializes the join fragment aligned with its entries, which is
/// what the per-entry "pointer stored with the JI" points into). Budgeting
/// only distinct `R ⋉ JI_k` tuples instead would make `JI_k` cover the
/// whole index in one pass at Table 7 defaults, which contradicts both
/// Figure 6's "join index reaches one iteration sooner [as memory grows]"
/// narrative and Figure 4's materialized-view region. See DESIGN.md.
pub fn jik_pages(params: &SystemParams, w: &Workload, d: &Derived, n1: f64) -> f64 {
    let m = params.mem_pages as f64;
    let avail = m - 2.0 * n1 - 5.0;
    if avail < 3.0 {
        return 1.0;
    }
    let p = params.page_size as f64;
    let ji = d.ji_pages;
    let per_k = 1.5
        + d.n_ji * w.tr / p
        + d.ir_pages * w.pra / ji
        + d.ir_pages * w.pra * d.n_ir * w.s_tuples * w.js * d.tv / (ji * p);
    let fixed = 2.0 * space_merge(n1, w.tr, params);
    let approx = ((avail - fixed) / per_k).max(1.0);
    let sq = space_quicksort(approx * d.n_ji, params)
        .max(space_quicksort(approx * d.ir_pages * w.pra * d.n_ir / ji, params))
        .max(space_quicksort(
            approx * d.ir_pages * w.pra * d.n_ir * w.s_tuples * w.js / ji,
            params,
        ));
    (((avail - fixed - sq) / per_k).floor()).clamp(1.0, ji)
}

/// The full §3.3 cost model.
pub fn cost(params: &SystemParams, w: &Workload) -> CostReport {
    let d = w.derived(params);
    let io = params.io_us / 1e6;
    let comp = params.comp_us / 1e6;
    let mv = params.move_us / 1e6;
    let mut terms: Vec<Term> = Vec::new();
    let push = |name: &'static str, secs: f64, kind: TermKind, terms: &mut Vec<Term>| {
        terms.push(Term { name, secs, kind });
    };

    let upd_tuples = w.pra * w.updates; // Pr_A·‖iR‖
    let upd_pages = w.pra * d.ir_pages; // Pr_A·|iR|

    // ---- (1) maintaining the pertinent iR and dR ----------------------
    let z = z_pages(params, d.n_ir);
    let (f_runs, p_runs, n1) = n1_runs(upd_pages, z);
    push(
        "C1.1 log + write pertinent differentials",
        2.0 * upd_tuples * mv + 2.0 * upd_pages * io,
        TermKind::Update,
        &mut terms,
    );
    push("C1.2 read pertinent differentials", 2.0 * upd_pages * io, TermKind::Update, &mut terms);
    let leftover = (upd_tuples - f_runs * z * d.n_ir).max(0.0);
    push(
        "C1.3 sort runs on r",
        2.0 * f_runs * cpu_sort(z * d.n_ir, params) + 2.0 * p_runs * cpu_sort(leftover, params),
        TermKind::Update,
        &mut terms,
    );
    push("C1.4 merge runs", 2.0 * cpu_merge(upd_tuples, n1, params), TermKind::Update, &mut terms);

    // ---- (2) reading and updating the JI ------------------------------
    push("C2.1 read join index", d.ji_pages * io, TermKind::BaseFile, &mut terms);
    push(
        "C2.2 mark deleted entries",
        (upd_tuples + d.join_tuples) * comp,
        TermKind::Update,
        &mut terms,
    );
    push(
        "C2.3 merge inserted entries",
        (upd_tuples * w.s_tuples * w.js + d.join_tuples - upd_tuples * w.s_tuples * w.js) * comp
            + upd_tuples * w.s_tuples * w.js * mv,
        TermKind::Update,
        &mut terms,
    );
    let changed = yao(2.0 * upd_tuples, d.ji_pages, d.join_tuples);
    push("C2.4 write changed JI pages", changed * (io + d.n_ji * mv), TermKind::Update, &mut terms);

    // ---- (3) forming the join ------------------------------------------
    let jik = jik_pages(params, w, &d, n1);
    let n2 = (d.ji_pages / jik).ceil().max(1.0);
    let irk_tuples = upd_tuples / n2; // ‖iR_k‖ per pass
    let c31 = cpu_sort(irk_tuples, params)
        + io_inverted(w.sr * irk_tuples, d.s_pages, w.s_tuples, params)
        + yao(w.sr * irk_tuples, d.s_pages, w.s_tuples) * d.n_s * comp
        + irk_tuples * w.s_tuples * w.js * mv
        + cpu_sort(irk_tuples * w.js * w.s_tuples, params);
    push("C3.1 join pass insertions with S (all passes)", c31 * n2, TermKind::Update, &mut terms);

    let rk = w.r_tuples * w.sr / n2;
    let c32_io = io_clustered(rk, d.r_pages / n2, w.r_tuples / n2, params) * n2;
    push("C3.2a fetch R fragments (I/O)", c32_io, TermKind::BaseFile, &mut terms);
    push(
        "C3.2b match R fragments (CPU)",
        yao(rk, d.r_pages / n2, w.r_tuples / n2) * d.n_r * comp * n2 + w.r_tuples * w.sr * mv,
        TermKind::BaseInternal,
        &mut terms,
    );
    push(
        "C3.3 sort JI_k on s (all passes)",
        cpu_sort(jik * d.n_ji, params) * n2,
        TermKind::BaseInternal,
        &mut terms,
    );
    // Each pass covers an r-range of JI, but the s-values inside it scatter
    // over (nearly) the whole S-semijoin — the paper's "several runs of
    // randomly accessing portions of S". Distinct s per pass is therefore
    // the full ‖S‖·SS, capped by the entries the pass actually holds.
    let sk = (w.s_tuples * w.ss).min(d.join_tuples / n2).max(w.s_tuples * w.ss / n2);
    push(
        "C3.4a fetch S via clustered index (I/O)",
        io_clustered(sk, d.s_pages, w.s_tuples, params) * n2,
        TermKind::BaseFile,
        &mut terms,
    );
    push(
        "C3.4b assemble output (CPU)",
        yao(sk, d.s_pages, w.s_tuples) * d.n_s * comp * n2 + sk * n2 * mv,
        TermKind::BaseInternal,
        &mut terms,
    );

    CostReport { method: Method::JoinIndex, terms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::Workload;

    fn p() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn reading_ji_is_cheap_at_low_selectivity() {
        let w = Workload::figure4_point(0.001, 0.06);
        let r = cost(&p(), &w);
        // ‖JI‖ = 20 000 entries -> |JI| = 58 pages -> C2.1 = 1.45 s.
        assert!((r.term("C2.1") - 58.0 * 0.025).abs() < 1e-9);
        assert!(r.total() < 300.0, "total = {}", r.total());
    }

    #[test]
    fn pra_scales_update_costs() {
        let mut w = Workload::figure4_point(0.01, 0.2);
        w.pra = 0.1;
        let low = cost(&p(), &w);
        w.pra = 1.0;
        let high = cost(&p(), &w);
        assert!(high.total() > low.total());
        assert!(high.term("C1.1") > 9.0 * low.term("C1.1"));
        // Base file costs unchanged.
        assert!((high.term("C2.1") - low.term("C2.1")).abs() < 1e-9);
    }

    #[test]
    fn internal_costs_are_a_small_fraction() {
        // The paper: "the internal costs are small and never exceed 3
        // percent of the total time" (for the basic algorithm). That holds
        // where I/O dominates; at the very smallest configurations (SR =
        // 0.001, where the whole query is ~30 s) the in-memory sort of JI_k
        // is a visible but still minor slice.
        for (sr, bound) in [(0.001, 0.20), (0.01, 0.06), (0.1, 0.06)] {
            let r = cost(&p(), &Workload::figure5_point(sr));
            let internal: f64 =
                r.terms.iter().filter(|t| t.kind == TermKind::BaseInternal).map(|t| t.secs).sum();
            assert!(
                internal < bound * r.total(),
                "SR={sr}: internal {internal:.1}s of {:.1}s",
                r.total()
            );
        }
    }

    #[test]
    fn jik_grows_with_memory() {
        let w = Workload::figure6_point(0.01);
        let small = SystemParams { mem_pages: 1_000, ..p() };
        let large = SystemParams { mem_pages: 8_000, ..p() };
        let d_small = w.derived(&small);
        let d_large = w.derived(&large);
        let k_small = jik_pages(&small, &w, &d_small, 1.0);
        let k_large = jik_pages(&large, &w, &d_large, 1.0);
        assert!(k_large > k_small, "{k_large} vs {k_small}");
        // And is capped at |JI| (single pass) once memory is plentiful.
        assert!(k_large <= d_large.ji_pages);
    }

    #[test]
    fn more_memory_means_fewer_passes_and_less_io() {
        let w = Workload::figure6_point(0.05);
        let small = SystemParams { mem_pages: 1_000, ..p() };
        let large = SystemParams { mem_pages: 16_000, ..p() };
        let c_small = cost(&small, &w);
        let c_large = cost(&large, &w);
        assert!(
            c_large.total() < c_small.total(),
            "JI must benefit from memory: {} vs {}",
            c_large.total(),
            c_small.total()
        );
    }
}
