//! The Appendix's basic formulas, transcribed directly.
//!
//! All time-valued functions return **seconds** of simulated time under the
//! given [`SystemParams`]; space-valued functions return **pages** (real
//! valued — the integer maximizations that consume them do the rounding).

use trijoin_common::SystemParams;

use crate::math::{lg, ln_gamma, ln_quicksort_factor};

/// `CPU_s(n)`: average-case quicksort of `n` tuples on a plain key
/// (Knuth): `2(n+1)ln((n+1)/11)·comp + (2/3)(n+1)ln((n+1)/11)·move`.
pub fn cpu_sort(n: f64, p: &SystemParams) -> f64 {
    if n <= 1.0 {
        return 0.0;
    }
    let l = ln_quicksort_factor(n);
    ((2.0 * (n + 1.0) * l) * p.comp_us + (2.0 / 3.0) * (n + 1.0) * l * p.move_us) / 1e6
}

/// `CPU_s(n)` when the sort key must be hashed: each comparison costs
/// `comp + 2·hash`.
pub fn cpu_sort_hashed(n: f64, p: &SystemParams) -> f64 {
    if n <= 1.0 {
        return 0.0;
    }
    let l = ln_quicksort_factor(n);
    ((2.0 * (n + 1.0) * l) * (p.comp_us + 2.0 * p.hash_us)
        + (2.0 / 3.0) * (n + 1.0) * l * p.move_us)
        / 1e6
}

/// `SPACE_q(n)`: overhead pages to quicksort `n` in-memory items:
/// `2·sptr·lg(n)/P`.
pub fn space_quicksort(n: f64, p: &SystemParams) -> f64 {
    2.0 * p.sptr as f64 * lg(n) / p.page_size as f64
}

/// `CPU_mrg(n, z)`: heap-merge `n` items through a heap of size `z`
/// (Knuth): `((2n−1)lg z − 3.042n)·comp + (n·lg z + 1.13n + n/2 − 4)·move`,
/// clamped at zero (the closed forms go negative for tiny z).
pub fn cpu_merge(n: f64, z: f64, p: &SystemParams) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let comps = ((2.0 * n - 1.0) * lg(z) - 3.042 * n).max(0.0);
    let moves = (n * lg(z) + 1.13 * n + n / 2.0 - 4.0).max(0.0);
    (comps * p.comp_us + moves * p.move_us) / 1e6
}

/// `CPU_mrg(n, z)` with hashed merge keys (`comp + 2·hash` per comparison).
pub fn cpu_merge_hashed(n: f64, z: f64, p: &SystemParams) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let comps = ((2.0 * n - 1.0) * lg(z) - 3.042 * n).max(0.0);
    let moves = (n * lg(z) + 1.13 * n + n / 2.0 - 4.0).max(0.0);
    (comps * (p.comp_us + 2.0 * p.hash_us) + moves * p.move_us) / 1e6
}

/// `SPACE_mrg(z, s)`: pages for a heap of `z` items of size `s`:
/// `z·(s + sptr)/P`.
pub fn space_merge(z: f64, item_bytes: f64, p: &SystemParams) -> f64 {
    z * (item_bytes + p.sptr as f64) / p.page_size as f64
}

/// Yao's formula \[27\]: expected pages touched when fetching `k` records
/// randomly chosen among `n` records stored in `m` pages, each page read
/// at most once:
///
/// `Yao(k, m, n) = m · [1 − C(n − n/m, k) / C(n, k)]`
///
/// evaluated in log space; the real-valued `n/m` the paper's call sites
/// produce is handled by the gamma generalization of the binomial.
pub fn yao(k: f64, m: f64, n: f64) -> f64 {
    if k <= 0.0 || m <= 0.0 || n <= 0.0 {
        return 0.0;
    }
    let m_eff = m.min(n); // cannot have more (useful) pages than records
    if k >= n {
        return m_eff;
    }
    let d = n / m_eff; // records per page
    let reduced = n - d; // records outside one page
    if k > reduced {
        return m_eff;
    }
    // ln [ C(reduced, k) / C(n, k) ]
    //  = lnΓ(reduced+1) − lnΓ(reduced−k+1) − lnΓ(n+1) + lnΓ(n−k+1)
    let ln_frac = ln_gamma(reduced + 1.0) - ln_gamma(reduced - k + 1.0) - ln_gamma(n + 1.0)
        + ln_gamma(n - k + 1.0);
    let miss = ln_frac.exp();
    (m_eff * (1.0 - miss)).clamp(0.0, m_eff)
}

/// `IO_ci(k, m, n)`: seconds to fetch `k` of `n` records in `m` pages via a
/// clustered B⁺-tree (two levels of index pages, root memory-resident):
/// `[Yao(k,m,n) + Yao(Yao(k,m,n), m/FO, m)] · IO`.
pub fn io_clustered(k: f64, m: f64, n: f64, p: &SystemParams) -> f64 {
    let data = yao(k, m, n);
    let index = yao(data, m / p.fan_out as f64, m);
    (data + index) * p.io_us / 1e6
}

/// `IO_ii(k, m, n)`: seconds to fetch `k` of `n` records in `m` pages via an
/// inverted (non-clustered) B⁺-tree with three index levels, root resident:
/// `[Yao(k,m,n) + Yao(k, n/FO, n) + Yao(Yao(k, n/FO, n), n/FO², n/FO)] · IO`.
pub fn io_inverted(k: f64, m: f64, n: f64, p: &SystemParams) -> f64 {
    let fo = p.fan_out as f64;
    let data = yao(k, m, n);
    let leaves = yao(k, n / fo, n);
    let internal = yao(leaves, n / (fo * fo), n / fo);
    (data + leaves + internal) * p.io_us / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn yao_boundary_behaviour() {
        // k = n touches every page.
        assert!((yao(200.0, 10.0, 200.0) - 10.0).abs() < 1e-9);
        // k = 0 touches nothing.
        assert_eq!(yao(0.0, 10.0, 200.0), 0.0);
        // One record touches ~one page.
        let one = yao(1.0, 10.0, 200.0);
        assert!((one - 1.0).abs() < 1e-9, "yao(1) = {one}");
        // Monotone in k.
        let mut last = 0.0;
        for k in 1..=50 {
            let v = yao(k as f64, 10.0, 200.0);
            assert!(v >= last, "yao not monotone at k={k}");
            last = v;
        }
        // Never exceeds m.
        assert!(yao(150.0, 10.0, 200.0) <= 10.0 + 1e-9);
    }

    #[test]
    fn yao_matches_exact_small_case() {
        // n=4 records, m=2 pages (2 per page), k=2:
        // P(page untouched) = C(2,2)/C(4,2) = 1/6; Yao = 2·(1−1/6) = 5/3.
        let v = yao(2.0, 2.0, 4.0);
        assert!((v - 5.0 / 3.0).abs() < 1e-9, "yao = {v}");
    }

    #[test]
    fn yao_large_arguments_stable() {
        // Paper-scale: 12 000 of 200 000 records in 14 286 pages.
        let v = yao(12_000.0, 14_286.0, 200_000.0);
        assert!(v.is_finite());
        // Each page holds 14 records; expect most touched pages distinct
        // but with some collisions: strictly between k·0.6 and min(k, m).
        assert!(v > 7_000.0 && v < 12_000.0, "yao = {v}");
        // Huge k saturates at m.
        assert!((yao(199_999.0, 14_286.0, 200_000.0) - 14_286.0).abs() < 1.0);
    }

    #[test]
    fn cpu_formulas_positive_and_scaling() {
        let p = p();
        assert_eq!(cpu_sort(0.0, &p), 0.0);
        assert_eq!(cpu_sort(1.0, &p), 0.0);
        let s1k = cpu_sort(1_000.0, &p);
        let s10k = cpu_sort(10_000.0, &p);
        assert!(s1k > 0.0 && s10k > 10.0 * s1k * 0.8, "n log n growth");
        // Hashed sort strictly more expensive.
        assert!(cpu_sort_hashed(1_000.0, &p) > s1k);
        // Merge through a 1-way "heap" costs (almost) nothing in comps.
        assert!(cpu_merge(100.0, 1.0, &p) < cpu_merge(100.0, 8.0, &p));
        assert!(cpu_merge_hashed(100.0, 8.0, &p) > cpu_merge(100.0, 8.0, &p));
        assert_eq!(cpu_merge(0.0, 8.0, &p), 0.0);
    }

    #[test]
    fn space_formulas() {
        let p = p();
        // Quicksort overhead is well under one page at any realistic n.
        assert!(space_quicksort(1e6, &p) < 1.0);
        assert_eq!(space_quicksort(1.0, &p), 0.0);
        // Merge space: 10 items of 200 bytes + 4-byte pointers = 2040/4000.
        assert!((space_merge(10.0, 200.0, &p) - 0.51).abs() < 1e-9);
    }

    #[test]
    fn clustered_access_cheaper_than_inverted() {
        let p = p();
        // Same k records: the inverted path adds posting-page traffic.
        let k = 500.0;
        let ci = io_clustered(k, 14_286.0, 200_000.0, &p);
        let ii = io_inverted(k, 14_286.0, 200_000.0, &p);
        assert!(ci < ii, "ci = {ci}, ii = {ii}");
        // And both are bounded by touching every page once.
        assert!(ii < (14_286.0 + 500.0 + 2.0) * 0.025);
    }

    #[test]
    fn io_formulas_zero_k() {
        let p = p();
        assert_eq!(io_clustered(0.0, 100.0, 1000.0, &p), 0.0);
        assert_eq!(io_inverted(0.0, 100.0, 1000.0, &p), 0.0);
    }
}
