//! Region solvers for Figures 4 and 6: which method is cheapest where.

use trijoin_common::SystemParams;

use crate::inputs::Workload;
use crate::report::{CostReport, Method};
use crate::{hh, ji, mv};

/// Price one workload under all three methods.
pub fn all_costs(params: &SystemParams, w: &Workload) -> [CostReport; 3] {
    [mv::cost(params, w), ji::cost(params, w), hh::cost(params, w)]
}

/// The cheapest method for one workload (ties broken in presentation
/// order, which never matters at the grid resolutions used).
pub fn cheapest(params: &SystemParams, w: &Workload) -> (Method, f64) {
    all_costs(params, w)
        .into_iter()
        .map(|r| (r.method, r.total()))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap()
}

/// Logarithmically spaced values from `lo` to `hi` inclusive.
pub fn log_space(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    assert!(steps >= 2 && lo > 0.0 && hi > lo);
    let ratio = (hi / lo).powf(1.0 / (steps - 1) as f64);
    (0..steps).map(|i| lo * ratio.powi(i as i32)).collect()
}

/// One cell of a region map.
#[derive(Debug, Clone)]
pub struct RegionCell {
    /// Semijoin selectivity `SR` (x-axis of both figures).
    pub sr: f64,
    /// The swept y-axis value (update activity for Figure 4, `|M|` pages
    /// for Figure 6).
    pub y: f64,
    /// The winning method.
    pub winner: Method,
    /// Each method's total seconds, in [`Method::all`] order.
    pub totals: [f64; 3],
}

/// Figure 4: cheapest method over `(SR, update activity)` at `|M| = 1000`,
/// `Pr_A = 0.1`. `SR ∈ [0.001, 1.0]`, activity `∈ [1%, 100%]`,
/// logarithmic axes as in the paper.
pub fn figure4_grid(params: &SystemParams, sr_steps: usize, act_steps: usize) -> Vec<RegionCell> {
    let mut out = Vec::with_capacity(sr_steps * act_steps);
    for &activity in &log_space(0.01, 1.0, act_steps) {
        for &sr in &log_space(0.001, 1.0, sr_steps) {
            let w = Workload::figure4_point(sr, activity);
            let costs = all_costs(params, &w);
            let totals = [costs[0].total(), costs[1].total(), costs[2].total()];
            let (winner, _) = cheapest(params, &w);
            out.push(RegionCell { sr, y: activity, winner, totals });
        }
    }
    out
}

/// Figure 6: cheapest method over `(SR, |M|)` at `‖iR‖ = 6000`,
/// `Pr_A = 0.1`. `|M| ∈ [1000, 16000]` pages (the paper's y-axis ticks are
/// 1K/2K/4K/8K/16K), `SR ∈ [0.001, 1.0]`.
pub fn figure6_grid(base: &SystemParams, sr_steps: usize, mem_steps: usize) -> Vec<RegionCell> {
    let mut out = Vec::with_capacity(sr_steps * mem_steps);
    for &mem in &log_space(1_000.0, 16_000.0, mem_steps) {
        let params = SystemParams { mem_pages: mem.round() as usize, ..base.clone() };
        for &sr in &log_space(0.001, 1.0, sr_steps) {
            let w = Workload::figure6_point(sr);
            let costs = all_costs(&params, &w);
            let totals = [costs[0].total(), costs[1].total(), costs[2].total()];
            let (winner, _) = cheapest(&params, &w);
            out.push(RegionCell { sr, y: mem, winner, totals });
        }
    }
    out
}

/// Render a region grid (rows = descending y, columns = ascending SR) as
/// an ASCII map: `M` = materialized view, `J` = join index, `H` = hybrid
/// hash.
pub fn ascii_map(cells: &[RegionCell], sr_steps: usize) -> String {
    let glyph = |m: Method| match m {
        Method::MaterializedView => 'M',
        Method::JoinIndex => 'J',
        Method::HybridHash => 'H',
    };
    let mut rows: Vec<&[RegionCell]> = cells.chunks(sr_steps).collect();
    rows.reverse(); // largest y on top, like the paper's axes
    let mut out = String::new();
    for row in rows {
        let y = row[0].y;
        out.push_str(&format!("{:>9.4} | ", y));
        for cell in row {
            out.push(glyph(cell.winner));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn log_space_endpoints() {
        let v = log_space(0.001, 1.0, 4);
        assert_eq!(v.len(), 4);
        assert!((v[0] - 0.001).abs() < 1e-12);
        assert!((v[3] - 1.0).abs() < 1e-9);
        assert!((v[1] - 0.01).abs() < 1e-9);
    }

    #[test]
    fn figure4_regions_have_the_papers_shape() {
        // The paper's Figure 4: MV wins at moderate selectivity and low
        // activity; JI wins at very low selectivity or high activity; HH
        // wins at extreme selectivity.
        let params = p();
        let (w, _) = cheapest(&params, &Workload::figure4_point(0.02, 0.02));
        assert_eq!(w, Method::MaterializedView, "moderate SR, low activity");
        let (w, _) = cheapest(&params, &Workload::figure4_point(0.001, 0.02));
        assert_eq!(w, Method::JoinIndex, "very low selectivity");
        let (w, _) = cheapest(&params, &Workload::figure4_point(1.0, 0.02));
        assert_eq!(w, Method::HybridHash, "extreme selectivity");
        let (w, _) = cheapest(&params, &Workload::figure4_point(0.01, 0.9));
        assert_eq!(w, Method::JoinIndex, "moderate SR, very high activity");
        // At high activity the MV band closes and hash join borders the
        // join-index region directly (the top of Figure 4).
        let (w, _) = cheapest(&params, &Workload::figure4_point(0.05, 0.6));
        assert_eq!(w, Method::HybridHash, "high activity squeezes MV out");
    }

    #[test]
    fn figure4_grid_contains_all_three_regions() {
        let cells = figure4_grid(&p(), 13, 9);
        let count = |m: Method| cells.iter().filter(|c| c.winner == m).count();
        assert!(count(Method::MaterializedView) > 0);
        assert!(count(Method::JoinIndex) > 0);
        assert!(count(Method::HybridHash) > 0);
        // Totals are all positive and finite.
        assert!(cells.iter().all(|c| c.totals.iter().all(|t| t.is_finite() && *t > 0.0)));
        let map = ascii_map(&cells, 13);
        assert_eq!(map.lines().count(), 9);
    }

    #[test]
    fn figure6_memory_grows_ji_region() {
        // "the join index algorithm is able to use additional main memory
        // more efficiently than the other two algorithms"
        let cells = figure6_grid(&p(), 13, 5);
        let ji_at = |mem: f64| {
            cells
                .iter()
                .filter(|c| (c.y - mem).abs() / mem < 0.01 && c.winner == Method::JoinIndex)
                .count()
        };
        let low = ji_at(1_000.0);
        let high = ji_at(16_000.0);
        assert!(high >= low, "JI region must not shrink with memory: {low} -> {high}");
    }
}
