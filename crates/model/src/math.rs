//! Numeric helpers for the cost formulas.
//!
//! Yao's formula involves ratios of binomial coefficients with arguments up
//! to the relation cardinalities (200 000 at Table 7 defaults), so it is
//! evaluated in log space via a Lanczos log-gamma — stable for any k, m, n
//! the sweeps produce, including the real-valued `n/m` the paper's formulas
//! plug in.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
/// Accurate to ~1e-13 for x > 0.
#[allow(clippy::excessive_precision)] // published Lanczos coefficients, verbatim
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma domain: x = {x}");
    if x < 0.5 {
        // Reflection formula for small x.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Base-2 logarithm clamped to 0 for arguments ≤ 1 (the paper's `lg` in
/// merge/space formulas, where degenerate sizes must cost nothing).
pub fn lg(x: f64) -> f64 {
    if x <= 1.0 {
        0.0
    } else {
        x.log2()
    }
}

/// `ln((n+1)/11)` clamped at 0 — the factor in Knuth's quicksort averages,
/// which go negative (meaningless) below ~10 elements.
pub fn ln_quicksort_factor(n: f64) -> f64 {
    let v = ((n + 1.0) / 11.0).ln();
    v.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let cases: [(f64, f64); 5] =
            [(1.0, 1.0), (2.0, 1.0), (5.0, 24.0), (6.0, 120.0), (11.0, 3_628_800.0)];
        for (x, want) in cases {
            let got = ln_gamma(x).exp();
            assert!((got - want).abs() / want < 1e-10, "Γ({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(0.5) = √π.
        let got = ln_gamma(0.5).exp();
        assert!((got - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        // Γ(2.5) = 1.5 · 0.5 · √π.
        let got = ln_gamma(2.5).exp();
        let want = 1.5 * 0.5 * std::f64::consts::PI.sqrt();
        assert!((got - want).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_large_arguments_are_finite() {
        for x in [1e3, 1e5, 1e7] {
            let v = ln_gamma(x);
            assert!(v.is_finite() && v > 0.0);
        }
        // Stirling check: lnΓ(n) ≈ n ln n − n for large n.
        let n: f64 = 1e6;
        let approx = n * n.ln() - n;
        assert!((ln_gamma(n) - approx).abs() / approx < 0.01);
    }

    #[test]
    fn lg_clamps() {
        assert_eq!(lg(0.0), 0.0);
        assert_eq!(lg(1.0), 0.0);
        assert!((lg(8.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn quicksort_factor_clamps() {
        assert_eq!(ln_quicksort_factor(1.0), 0.0);
        assert_eq!(ln_quicksort_factor(9.0), 0.0);
        assert!(ln_quicksort_factor(100.0) > 2.0);
    }
}
