//! §3.2 — cost of the materialized view with deferred updates.

use trijoin_common::SystemParams;

use crate::formulas::{
    cpu_merge_hashed, cpu_sort, cpu_sort_hashed, io_inverted, space_merge, space_quicksort, yao,
};
use crate::inputs::{Derived, Workload};
use crate::report::{CostReport, Method, Term, TermKind};

/// Memory-layout solution for the differential logger (Figure 1): the
/// largest `Z` with `2·Z + SPACE_q(Z·n_iR) ≤ |M|`.
pub fn z_pages(params: &SystemParams, n_ir: f64) -> f64 {
    let m = params.mem_pages as f64;
    // SPACE_q is logarithmic (well under a page); two fixpoint rounds.
    let mut z = ((m - 1.0) / 2.0).floor().max(1.0);
    for _ in 0..3 {
        z = ((m - space_quicksort(z * n_ir, params)) / 2.0).floor().max(1.0);
    }
    z
}

/// Number of sorted runs produced per differential set (Figure 1):
/// `f = ⌊|iR|/Z⌋` full sorts plus `p = ⌈(|iR| − f·Z)/Z⌉` partial sorts.
pub fn n1_runs(ir_pages: f64, z: f64) -> (f64, f64, f64) {
    if ir_pages <= 0.0 {
        return (0.0, 0.0, 0.0);
    }
    let f = (ir_pages / z).floor();
    let p = ((ir_pages - f * z) / z).ceil().clamp(0.0, 1.0);
    (f, p, f + p)
}

/// Memory-layout solution for the join passes (Figure 2): the largest `w`
/// with `w + w·n_iR·‖S‖·JS·(T_R+T_S)/P + 2·SPACE_mrg(N1, T_R) +
/// max(SPACE_q(w·n_iR), SPACE_q(w·n_iR·‖S‖·JS)) ≤ |M| − 2·N1 − 3`.
pub fn wr_pages(params: &SystemParams, w: &Workload, d: &Derived, n1: f64) -> f64 {
    let m = params.mem_pages as f64;
    let avail = m - 2.0 * n1 - 3.0;
    if avail < 2.0 {
        return 1.0;
    }
    let p = params.page_size as f64;
    let per_w = 1.0 + d.n_ir * w.s_tuples * w.js * d.tv / p;
    let fixed = 2.0 * space_merge(n1, w.tr, params);
    // SPACE_q is logarithmic; evaluate at the upper bound.
    let approx = ((avail - fixed) / per_w).max(1.0);
    let sq = space_quicksort(approx * d.n_ir, params)
        .max(space_quicksort(approx * d.n_ir * w.s_tuples * w.js, params));
    (((avail - fixed - sq) / per_w).floor()).max(1.0)
}

/// The full §3.2 cost model.
pub fn cost(params: &SystemParams, w: &Workload) -> CostReport {
    let d = w.derived(params);
    let io = params.io_us / 1e6;
    let comp = params.comp_us / 1e6;
    let mv = params.move_us / 1e6;
    let f_ov = params.hash_overhead;
    let mut terms: Vec<Term> = Vec::new();
    let upd = |name: &'static str, secs: f64, terms: &mut Vec<Term>| {
        terms.push(Term { name, secs, kind: TermKind::Update });
    };

    // ---- (1) maintaining iR and dR -----------------------------------
    let z = z_pages(params, d.n_ir);
    let (f_runs, p_runs, n1) = n1_runs(d.ir_pages, z);
    upd(
        "C1.1 log + write differentials",
        (w.updates * 2.0) * mv + (d.ir_pages * 2.0) * io,
        &mut terms,
    );
    upd("C1.2 read differentials back", (d.ir_pages * 2.0) * io, &mut terms);
    let leftover = (w.updates - f_runs * z * d.n_ir).max(0.0);
    upd(
        "C1.3 sort runs by hash(A)",
        2.0 * f_runs * cpu_sort_hashed(z * d.n_ir, params)
            + 2.0 * p_runs * cpu_sort_hashed(leftover, params),
        &mut terms,
    );
    upd(
        "C1.4 merge runs",
        cpu_merge_hashed(w.updates, n1, params) + cpu_merge_hashed(w.updates, n1, params),
        &mut terms,
    );

    // ---- (2) compute iR ⋈ S ------------------------------------------
    // The paper prices N2 identical passes of |W_R| pages (its operating
    // points have |iR| >> |W_R|, so the residual pass is negligible). We
    // price the residual pass at its actual size so the model stays
    // monotone in memory outside that regime too.
    let wr = wr_pages(params, w, &d, n1).min(d.ir_pages.max(1.0));
    if d.ir_pages > 0.0 {
        let full = (d.ir_pages / wr).floor();
        let residual_pages = d.ir_pages - full * wr;
        let mut c21 = 0.0;
        let mut c22 = 0.0;
        let mut c23 = 0.0;
        let pass = |pages: f64, count: f64, c21: &mut f64, c22: &mut f64, c23: &mut f64| {
            if pages <= 0.0 || count <= 0.0 {
                return;
            }
            let wr_tuples = (pages * d.n_ir).min(w.updates.max(1.0));
            let k = w.sr * wr_tuples;
            *c21 += count * cpu_sort(wr_tuples, params);
            *c22 += count
                * (io_inverted(k, d.s_pages, w.s_tuples, params)
                    + yao(k, d.s_pages, w.s_tuples) * d.n_s * comp
                    + wr_tuples * w.s_tuples * w.js * mv);
            *c23 += count * cpu_sort_hashed(wr_tuples * w.s_tuples * w.js, params);
        };
        pass(wr, full, &mut c21, &mut c22, &mut c23);
        pass(residual_pages, 1.0, &mut c21, &mut c22, &mut c23);
        upd("C2.1 sort W_R on A (per pass)", c21, &mut terms);
        upd("C2.2 probe S via inverted index (per pass)", c22, &mut terms);
        upd("C2.3 sort W_R ⋈ S by hash(A) (per pass)", c23, &mut terms);
    }

    // ---- (3)/(4) update the view on the fly while reading it ----------
    terms.push(Term {
        name: "C3.1 read whole view",
        secs: f_ov * d.v_pages * io,
        kind: TermKind::BaseFile,
    });
    let groups = (w.updates * 2.0) * w.sr;
    let changed = yao(groups, f_ov * d.v_pages, d.join_tuples);
    upd("C3.2 write changed view pages", f_ov * changed * io, &mut terms);
    upd(
        "C3.3 merge differentials into view",
        ((w.updates * 2.0) * w.s_tuples * w.js + d.join_tuples) * comp
            + f_ov * changed * d.n_v * mv,
        &mut terms,
    );

    CostReport { method: Method::MaterializedView, terms }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn z_is_about_half_of_memory() {
        let z = z_pages(&p(), 20.0);
        assert!((490.0..=500.0).contains(&z), "Z = {z}");
    }

    #[test]
    fn n1_run_counts() {
        // 858 differential pages through Z=499: one full + one partial run.
        let (f, pp, n1) = n1_runs(858.0, 499.0);
        assert_eq!((f, pp, n1), (1.0, 1.0, 2.0));
        let (f, pp, n1) = n1_runs(400.0, 499.0);
        assert_eq!((f, pp, n1), (0.0, 1.0, 1.0));
        assert_eq!(n1_runs(0.0, 499.0), (0.0, 0.0, 0.0));
        // Exact multiple: no partial run.
        let (f, pp, n1) = n1_runs(998.0, 499.0);
        assert_eq!((f, pp, n1), (2.0, 0.0, 2.0));
    }

    #[test]
    fn no_updates_means_pure_view_read() {
        let w = Workload::paper_point(0.01, 0.0, 0.1);
        let r = cost(&p(), &w);
        // C3.1 = F·|V|·IO = 1.2 · 28572 · 25 ms ≈ 857 s.
        let read = r.term("C3.1");
        assert!((read - 1.2 * 28_572.0 * 0.025).abs() < 1e-6);
        // With zero updates everything except C3.1 and the residual ‖V‖
        // merge comparisons vanishes.
        let dark = r.update_and_internal();
        assert!(dark < 0.01 * r.total() + 1.0, "dark = {dark}");
        assert!(r.total() < read + 1.0);
    }

    #[test]
    fn six_percent_activity_at_sr_001_matches_hand_computation() {
        let w = Workload::figure5_point(0.01);
        let r = cost(&p(), &w);
        // C1.1: 24 000 moves + 1200 page writes = 0.48 + 30 s = 30.48 s.
        assert!((r.term("C1.1") - (24_000.0 * 20e-6 + 1_200.0 * 0.025)).abs() < 1e-6);
        // C1.2 = 1200 reads = 30 s.
        assert!((r.term("C1.2") - 30.0).abs() < 1e-9);
        // Total is view-read dominated at this point.
        assert!(r.term("C3.1") > 0.5 * r.total());
        assert!(r.total() > r.term("C3.1"));
    }

    #[test]
    fn update_cost_grows_with_activity() {
        let lo = cost(&p(), &Workload::figure4_point(0.01, 0.01));
        let hi = cost(&p(), &Workload::figure4_point(0.01, 0.5));
        assert!(hi.total() > lo.total());
        assert!(hi.update_and_internal() > 10.0 * lo.update_and_internal() * 0.5);
        // The base file cost (reading V) does not change with activity.
        assert!((hi.base_file() - lo.base_file()).abs() < 1e-6);
    }

    #[test]
    fn view_read_dominates_at_high_selectivity() {
        let r = cost(&p(), &Workload::figure4_point(0.5, 0.06));
        // ‖V‖ = 100·0.5·200000 = 10M tuples; reading it is the story.
        assert!(r.term("C3.1") > 0.8 * r.total());
    }

    #[test]
    fn wr_shrinks_with_more_partners() {
        let p = p();
        let w_small = Workload::paper_point(0.001, 6_000.0, 0.1);
        let w_big = Workload::paper_point(0.5, 6_000.0, 0.1);
        let d_small = w_small.derived(&p);
        let d_big = w_big.derived(&p);
        let wr_small = wr_pages(&p, &w_small, &d_small, 2.0);
        let wr_big = wr_pages(&p, &w_big, &d_big, 2.0);
        assert!(wr_big < wr_small, "more join partners ⇒ smaller batches");
        assert!(wr_big >= 1.0);
    }
}
