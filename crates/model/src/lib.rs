//! The paper's analytical cost model (Section 3 + Appendix), transcribed.
//!
//! Given the Table 6/7 parameters ([`trijoin_common::SystemParams`] +
//! [`inputs::Workload`]), the three modules [`mv`], [`ji`], [`hh`] price
//! the materialized-view, join-index, and hybrid-hash strategies in
//! seconds of simulated 1989 time, term by term ([`report::CostReport`]),
//! with each term tagged for the Figure 5 white/dark decomposition.
//! [`regions`] sweeps the grids behind Figures 4 and 6.
//!
//! The execution engine in `trijoin-exec` runs the same algorithms for
//! real against the simulated disk; integration tests compare its measured
//! ledgers against these predictions.
//!
//! ```
//! use trijoin_common::SystemParams;
//! use trijoin_model::{cheapest, Method, Workload};
//!
//! let params = SystemParams::paper_defaults(); // Table 7
//!
//! // The canonical Figure 4/5 point: SR = 0.01, 6% update activity.
//! let w = Workload::figure5_point(0.01);
//! let (winner, secs) = cheapest(&params, &w);
//! assert!(secs > 0.0);
//!
//! // At extreme selectivity nothing beats recomputation.
//! let extreme = Workload::figure4_point(1.0, 0.06);
//! assert_eq!(cheapest(&params, &extreme).0, Method::HybridHash);
//! ```

pub mod formulas;
pub mod hh;
pub mod inputs;
pub mod ji;
pub mod math;
pub mod mv;
pub mod regions;
pub mod report;

pub use inputs::{Derived, Workload};
pub use regions::{all_costs, cheapest, figure4_grid, figure6_grid, RegionCell};
pub use report::{CostReport, Method, Term, TermKind};
