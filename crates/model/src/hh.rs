//! §3.4 — cost of the hybrid-hash join (after DeWitt et al. \[6\]).

use trijoin_common::SystemParams;

use crate::inputs::Workload;
use crate::report::{CostReport, Method, Term, TermKind};

/// `B = max(0, ⌈(|R|·F − |M|)/(|M| − 1)⌉)` — partitions that spill.
pub fn partitions(r_pages: f64, params: &SystemParams) -> f64 {
    let m = params.mem_pages as f64;
    (((r_pages * params.hash_overhead - m) / (m - 1.0)).ceil()).max(0.0)
}

/// `q = |R0|/|R|` with `|R0| = (|M| − B)/F` — the fraction processed
/// entirely in the first pass.
pub fn first_pass_fraction(r_pages: f64, params: &SystemParams) -> f64 {
    if r_pages <= 0.0 {
        return 1.0;
    }
    let b = partitions(r_pages, params);
    let r0 = ((params.mem_pages as f64 - b) / params.hash_overhead).max(0.0);
    (r0 / r_pages).min(1.0)
}

/// The full §3.4 cost model:
///
/// `C = (|R|+|S|)·IO + (‖R‖+‖S‖)·hash + (‖R‖+‖S‖)(1−q)·move
///    + (|R|+|S|)(1−q)·IO + (‖R‖+‖S‖)(1−q)·hash + ‖S‖·F·comp
///    + ‖R‖·move + (|R|+|S|)(1−q)·IO`.
pub fn cost(params: &SystemParams, w: &Workload) -> CostReport {
    let d = w.derived(params);
    let io = params.io_us / 1e6;
    let comp = params.comp_us / 1e6;
    let mv = params.move_us / 1e6;
    let hash = params.hash_us / 1e6;
    let pages = d.r_pages + d.s_pages;
    let tuples = w.r_tuples + w.s_tuples;
    let q = first_pass_fraction(d.r_pages, params);
    let spill = 1.0 - q;

    let terms = vec![
        Term { name: "read R and S", secs: pages * io, kind: TermKind::BaseFile },
        Term {
            name: "hash all tuples (pass 0)",
            secs: tuples * hash,
            kind: TermKind::BaseInternal,
        },
        Term {
            name: "move spilled tuples to output buffers",
            secs: tuples * spill * mv,
            kind: TermKind::BaseInternal,
        },
        Term {
            name: "write spilled partitions",
            secs: pages * spill * io,
            kind: TermKind::BaseFile,
        },
        Term {
            name: "re-hash spilled tuples",
            secs: tuples * spill * hash,
            kind: TermKind::BaseInternal,
        },
        Term {
            name: "probe comparisons",
            secs: w.s_tuples * params.hash_overhead * comp,
            kind: TermKind::BaseInternal,
        },
        Term {
            name: "move R tuples into tables",
            secs: w.r_tuples * mv,
            kind: TermKind::BaseInternal,
        },
        Term {
            name: "read spilled partitions back",
            secs: pages * spill * io,
            kind: TermKind::BaseFile,
        },
    ];
    CostReport { method: Method::HybridHash, terms }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::Workload;

    fn p() -> SystemParams {
        SystemParams::paper_defaults()
    }

    #[test]
    fn paper_scale_constants() {
        assert_eq!(partitions(14_286.0, &p()), 17.0);
        let q = first_pass_fraction(14_286.0, &p());
        assert!((q - 0.0573).abs() < 0.001, "q = {q}");
        // Memory-resident case.
        assert_eq!(partitions(500.0, &p()), 0.0);
        assert!((first_pass_fraction(500.0, &p()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_matches_hand_computation() {
        let w = Workload::paper_point(0.01, 0.0, 0.1);
        let r = cost(&p(), &w);
        // IO part: 28572·(1 + 2·(1−q))·25 ms with q ≈ 0.0573.
        let q = first_pass_fraction(14_286.0, &p());
        let want_io = 28_572.0 * (1.0 + 2.0 * (1.0 - q)) * 0.025;
        assert!((r.base_file() - want_io).abs() < 1.0, "{} vs {want_io}", r.base_file());
        // Total around half an hour of 1989 time.
        assert!(r.total() > 1_900.0 && r.total() < 2_300.0, "total = {}", r.total());
    }

    #[test]
    fn cost_is_selectivity_invariant_but_size_sensitive() {
        let a = cost(&p(), &Workload::figure4_point(0.001, 0.06));
        let b = cost(&p(), &Workload::figure4_point(0.5, 0.06));
        assert!((a.total() - b.total()).abs() < 1e-9, "HH ignores selectivity");
        let mut big = Workload::figure4_point(0.01, 0.06);
        big.r_tuples *= 2.0;
        let c = cost(&p(), &big);
        assert!(c.total() > 1.4 * a.total(), "HH scales with relation size");
    }

    #[test]
    fn internal_cost_is_about_one_percent() {
        // The paper: hash-join internal costs ≈ 1% of total.
        let r = cost(&p(), &Workload::figure5_point(0.01));
        let dark = r.update_and_internal();
        assert!(
            dark > 0.002 * r.total() && dark < 0.03 * r.total(),
            "dark fraction = {}",
            dark / r.total()
        );
    }

    #[test]
    fn memory_only_helps_when_very_large() {
        let w = Workload::figure4_point(0.01, 0.06);
        let m1 = cost(&SystemParams { mem_pages: 1_000, ..p() }, &w).total();
        let m4 = cost(&SystemParams { mem_pages: 4_000, ..p() }, &w).total();
        let m20 = cost(&SystemParams { mem_pages: 20_000, ..p() }, &w).total();
        // 1K -> 4K barely moves the needle; 20K (≈ |R|·F) collapses to one pass.
        assert!((m1 - m4) / m1 < 0.25);
        assert!(m20 < 0.55 * m1, "m20 = {m20}, m1 = {m1}");
    }
}
