//! Property-based tests of the analytical model: numeric stability and
//! the monotone responses the paper's conclusions rest on, over random
//! parameter points (not just the Table 7 grid).

use proptest::prelude::*;

use trijoin_common::SystemParams;
use trijoin_model::formulas::yao;
use trijoin_model::{all_costs, hh, ji, mv, Workload};

fn workloads() -> impl Strategy<Value = Workload> {
    (
        1_000.0f64..500_000.0, // r tuples
        1_000.0f64..500_000.0, // s tuples
        1e-4f64..1.0,          // sr
        0.0f64..1.0,           // pra
        0.0f64..1.0,           // activity
        1.0f64..500.0,         // partners per matching tuple
    )
        .prop_map(|(r, s, sr, pra, act, partners)| Workload {
            r_tuples: r,
            s_tuples: s,
            tr: 200.0,
            ts: 200.0,
            sr,
            ss: sr,
            js: (partners * sr / s).min(1.0),
            pra,
            updates: (act * r).round(),
        })
}

fn params() -> impl Strategy<Value = SystemParams> {
    (100usize..50_000).prop_map(|m| SystemParams { mem_pages: m, ..SystemParams::paper_defaults() })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn yao_is_bounded_and_monotone(
        k1 in 0.0f64..1e6, k2 in 0.0f64..1e6,
        m in 1.0f64..1e5, n in 1.0f64..1e6,
    ) {
        prop_assume!(m <= n);
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        let y_lo = yao(lo, m, n);
        let y_hi = yao(hi, m, n);
        prop_assert!(y_lo.is_finite() && y_hi.is_finite());
        prop_assert!(y_lo >= 0.0 && y_hi <= m + 1e-9, "bounds: {y_lo} {y_hi} m={m}");
        prop_assert!(y_lo <= y_hi + 1e-9, "monotone in k: yao({lo})={y_lo} > yao({hi})={y_hi}");
        // Fetching everything touches everything.
        prop_assert!((yao(n, m, n) - m).abs() < 1e-6);
    }

    #[test]
    fn all_costs_are_finite_and_positive(w in workloads(), p in params()) {
        for report in all_costs(&p, &w) {
            let total = report.total();
            prop_assert!(total.is_finite(), "{}: total not finite", report.method);
            prop_assert!(total > 0.0, "{}: total = {total}", report.method);
            prop_assert!(report.base_file() >= 0.0);
            prop_assert!(report.update_and_internal() >= -1e-9);
            for term in &report.terms {
                prop_assert!(
                    term.secs.is_finite() && term.secs >= -1e-9,
                    "{}: term {} = {}",
                    report.method,
                    term.name,
                    term.secs
                );
            }
        }
    }

    #[test]
    fn conclusion_monotonicities(w in workloads(), p in params()) {
        // MV is Pr_A-invariant.
        let mut w2 = w.clone();
        w2.pra = (w.pra + 0.37) % 1.0;
        prop_assert!((mv::cost(&p, &w).total() - mv::cost(&p, &w2).total()).abs() < 1e-6);
        // HH ignores updates and Pr_A entirely.
        let mut w3 = w.clone();
        w3.updates = (w.updates + 12_345.0).min(w.r_tuples);
        w3.pra = (w.pra + 0.5) % 1.0;
        prop_assert!((hh::cost(&p, &w).total() - hh::cost(&p, &w3).total()).abs() < 1e-6);
        // More updates never make MV or JI meaningfully cheaper, and higher
        // Pr_A never makes JI meaningfully cheaper. (Strict monotonicity
        // does not hold to the last digit: the integer pass-budget
        // maximizations |W_R|/|JI_k| step at boundaries, and Yao is
        // sub-additive across pass splits — allow 2%.)
        let mut w4 = w.clone();
        w4.updates = w.updates * 2.0 + 100.0;
        prop_assert!(mv::cost(&p, &w4).total() * 1.02 + 1e-6 >= mv::cost(&p, &w).total());
        prop_assert!(ji::cost(&p, &w4).total() * 1.02 + 1e-6 >= ji::cost(&p, &w).total());
        let mut w5 = w.clone();
        w5.pra = (w.pra + 1.0) / 2.0; // strictly >= original
        prop_assert!(ji::cost(&p, &w5).total() * 1.02 + 1e-6 >= ji::cost(&p, &w).total());
    }

    #[test]
    fn memory_never_hurts_much(w in workloads()) {
        // Doubling memory must not make any method meaningfully slower
        // (tiny regressions can come from integer boundary effects in the
        // layout maximizations; allow 2%).
        let small = SystemParams { mem_pages: 1_000, ..SystemParams::paper_defaults() };
        let large = SystemParams { mem_pages: 2_000, ..SystemParams::paper_defaults() };
        for (a, b) in all_costs(&small, &w).iter().zip(all_costs(&large, &w).iter()) {
            prop_assert!(
                b.total() <= a.total() * 1.02 + 1.0,
                "{}: {} -> {} with more memory",
                a.method,
                a.total(),
                b.total()
            );
        }
    }
}
