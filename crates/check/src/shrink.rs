//! Delta-debugging minimization of failing scripts.
//!
//! Classic `ddmin` over the op sequence: try removing chunks of ops
//! (coarse to fine), keeping any candidate that still fails, until the
//! script is 1-minimal — no single op can be removed without the failure
//! disappearing. Pick-based op addressing (see [`trijoin_common::script`])
//! guarantees every subsequence is a well-formed script, so the shrinker
//! never has to repair references.
//!
//! The driver returns failures as values (no panics), which keeps each
//! probe cheap; a run cap bounds worst-case shrink time.

use trijoin_common::{Script, ScriptOp};

use crate::driver::{run_script, CheckConfig, CheckFailure};

/// Result of a successful minimization.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The 1-minimal failing script.
    pub script: Script,
    /// The failure the minimal script reproduces.
    pub failure: CheckFailure,
    /// Driver probes spent.
    pub runs: usize,
}

/// Upper bound on driver probes during one minimization.
const MAX_RUNS: usize = 400;

struct Shrinker<'a> {
    template: &'a Script,
    cfg: &'a CheckConfig,
    runs: usize,
}

impl Shrinker<'_> {
    /// Does this op subsequence still fail? `None` once the budget is
    /// spent (treated as "does not fail": keeps the current candidate).
    fn fails(&mut self, ops: &[ScriptOp]) -> Option<CheckFailure> {
        if self.runs >= MAX_RUNS {
            return None;
        }
        self.runs += 1;
        let candidate = Script { ops: ops.to_vec(), ..self.template.clone() };
        run_script(&candidate, self.cfg).err().map(|b| *b)
    }
}

/// Minimize a failing script. Returns `None` when `script` does not fail
/// under `cfg` (nothing to shrink).
pub fn shrink(script: &Script, cfg: &CheckConfig) -> Option<ShrinkResult> {
    let mut shrinker = Shrinker { template: script, cfg, runs: 0 };
    let mut failure = shrinker.fails(&script.ops)?;
    let mut ops = script.ops.clone();

    // ddmin: remove ever-finer chunks while the failure persists.
    let mut chunks = 2usize;
    while ops.len() > 1 && chunks <= ops.len() && shrinker.runs < MAX_RUNS {
        let chunk_len = ops.len().div_ceil(chunks);
        let mut reduced = false;
        let mut start = 0;
        while start < ops.len() {
            let end = (start + chunk_len).min(ops.len());
            let candidate: Vec<ScriptOp> =
                ops[..start].iter().chain(&ops[end..]).cloned().collect();
            if candidate.is_empty() {
                start = end;
                continue;
            }
            if let Some(f) = shrinker.fails(&candidate) {
                ops = candidate;
                failure = f;
                reduced = true;
                // Stay at this granularity; chunk boundaries shifted.
            } else {
                start = end;
            }
        }
        if !reduced {
            if chunk_len == 1 {
                break; // 1-minimal
            }
            chunks = (chunks * 2).min(ops.len());
        } else {
            chunks = chunks.max(2).min(ops.len().max(2));
        }
    }

    // Final singles pass: ddmin with a run cap can stop early, and the
    // repro quality contract ("≤ 15 ops") is worth a linear sweep.
    let mut i = 0;
    while i < ops.len() && ops.len() > 1 && shrinker.runs < MAX_RUNS {
        let mut candidate = ops.clone();
        candidate.remove(i);
        if let Some(f) = shrinker.fails(&candidate) {
            ops = candidate;
            failure = f;
        } else {
            i += 1;
        }
    }

    Some(ShrinkResult {
        script: Script { name: format!("shrunk({})", script.name), ops, ..script.clone() },
        failure,
        runs: shrinker.runs,
    })
}
