//! `trijoin` — command-line front end.
//!
//! ```text
//! trijoin advise --sr 0.01 --activity 0.06 [--pra 0.1] [--mem 1000]
//!     recommend a strategy (paper heuristic + cost model)
//! trijoin model --sr 0.01 --activity 0.06 [--pra 0.1] [--mem 1000]
//!     print the full per-term cost breakdown of all three methods
//! trijoin run --scale 50 --sr 0.01 --activity 0.06 [--pra 0.1] [--mem 80]
//!             [--strategy mv|ji|hh|eager|all] [--seed 42] [--epochs 1]
//!             [--trace] [--report <path>] [--durable <dir>]
//!     run the engine on a scaled paper workload and report measured cost;
//!     `--trace` prints each strategy's span-tree profile, `--report`
//!     writes a JSON run report (params, spans, metrics, events, deltas);
//!     `--durable <dir>` backs each strategy's store with the WAL-guarded
//!     file backend under `<dir>/<strategy>`, committing once per epoch
//! trijoin serve --shards 4 --clients 4 --batch 64 --queries 10
//!               [--scale 200] [--sr 0.01] [--activity 0.06] [--pra 0.1]
//!               [--mem 80] [--strategy mv|ji|hh] [--seed 42] [--report <path>]
//!               [--durable <dir>] [--deferred] [--adaptive]
//!     run the sharded serving layer on a scaled paper workload: clients
//!     submit batched updates between queries, answers are checked against
//!     the single-engine oracle, and `--report` writes the per-shard
//!     reports plus their rollup as JSON; `--durable <dir>` gives every
//!     shard a WAL-backed store with a commit barrier per query round, and
//!     `--deferred` makes those barriers group-commit (append per round,
//!     one coalesced fsync per shard at the next seal); `--adaptive` lets
//!     every shard pick and *migrate* its own strategy online from the §3
//!     cost model (the `--strategy` flag then only names the advisory
//!     method; answers are still oracle-checked every query)
//! trijoin top --shards 4 --clients 4 [--batch 64] [--ring 1024]
//!             [--scale 200] [--queries 4] [--refreshes 0] [--mem 80]
//!             [--strategy mv|ji|hh] [--seed 42] [--once] [--json]
//!             [--report <path>] [--durable <dir>] [--deferred] [--adaptive]
//!     live serving-stack monitor: spawns a server plus client traffic and
//!     renders qps, latency percentiles, ring backpressure, pool hit rate,
//!     per-shard update/query ratio and key skew, cost-drift counts, and
//!     the telemetry window series. `--once` renders a single frame and
//!     exits; `--json` emits the sharded run report as JSON (scriptable,
//!     `report-validate`-clean) instead of the dashboard; `--durable`/
//!     `--deferred` mirror `trijoin serve` and add a `wal` dashboard row
//!     (commits, fsyncs, skip-clean frames, apply lag, log bytes);
//!     `--adaptive` turns on per-shard online strategy migration and adds
//!     a per-shard strategy/migration-state column plus a `migrate` row
//! trijoin report-validate <path> [--min-series-windows <n>]
//!     check that <path> holds a well-formed report (CI schema gate); the
//!     schema is sniffed: a run report, a sharded serve report (per-shard
//!     reports + rollup, with the metric-sum invariant re-verified), or a
//!     bench results file (`figure`/`rows`); `--min-series-windows`
//!     additionally requires every per-shard telemetry series to carry at
//!     least that many closed windows
//! trijoin check --seed 7 --ops 160 [--shards 1,2,4] [--batch 8] [--mem 64]
//!               [--crash-pct <n>] [--durable <dir>] [--emit <path>]
//!               [--adversary bursty|zipf|phase|imbalance] [--adaptive]
//!               [--out <path>] | --corpus <dir>
//!     deterministic simulation check: generate a workload script from the
//!     seed, replay it against MV/JI/HH, the brute-force oracle, and the
//!     sharded server at every shard count, verifying equivalence at every
//!     checkpoint (faults included); on failure, delta-debug the script to
//!     a minimal repro and write it as JSON. `--crash-pct` mixes durable
//!     crash/recover ops into the script (a scratch `--durable` root is
//!     chosen when none is given), `--emit` writes the generated script for
//!     corpus curation, and `--corpus <dir>` instead replays every
//!     committed `*.json` script in the directory (crash-bearing scripts
//!     get a scratch durable root automatically). `--adversary <shape>`
//!     generates shaped traffic (update bursts, zipf skew, phase flips,
//!     or shard imbalance) and implies `--adaptive`, which adds a second
//!     serving fleet per shard count running online strategy migration —
//!     checked against the same oracle at every checkpoint, with a
//!     flapping cap on per-shard migration counts
//! trijoin repro <file>
//!     replay a JSON repro file produced by `trijoin check`
//! ```
//!
//! (No external argument-parsing dependency: flags are `--name value`
//! pairs, order-free; `--trace` is a bare boolean flag.)

use std::collections::HashMap;
use std::process::ExitCode;

use trijoin::{Advisor, Database, JoinStrategy, Method, SystemParams, Workload, WorkloadSpec};
use trijoin_check::{generate, run_script, shrink, CheckConfig, GenConfig};
use trijoin_common::{AdversaryShape, ModelDelta, RunReport, Script};
use trijoin_model::all_costs;
use trijoin_serve::{ClientTraffic, ServeConfig, Server};

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["trace", "once", "json", "deferred", "adaptive"];

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            let name = a.strip_prefix("--").ok_or_else(|| format!("expected --flag, got {a:?}"))?;
            if BOOL_FLAGS.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Args { flags })
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    fn opt_str(&self, name: &str) -> Option<String> {
        self.flags.get(name).cloned()
    }

    fn f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: not a number: {v:?}")),
        }
    }

    fn u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: not an integer: {v:?}")),
        }
    }

    fn str(&self, name: &str, default: &str) -> String {
        self.flags.get(name).cloned().unwrap_or_else(|| default.to_string())
    }
}

fn usage() -> &'static str {
    "usage:\n  trijoin advise --sr <f> --activity <f> [--pra <f>] [--mem <pages>]\n  trijoin model  --sr <f> --activity <f> [--pra <f>] [--mem <pages>]\n  trijoin run    --scale <n> --sr <f> --activity <f> [--pra <f>] [--mem <pages>]\n                 [--strategy mv|ji|hh|eager|all] [--seed <n>] [--epochs <n>]\n                 [--trace] [--report <path>] [--durable <dir>]\n  trijoin serve  --shards <n> --clients <n> --batch <n> --queries <n>\n                 [--scale <n>] [--sr <f>] [--activity <f>] [--pra <f>]\n                 [--mem <pages>] [--strategy mv|ji|hh] [--seed <n>] [--report <path>]\n                 [--durable <dir>] [--deferred] [--adaptive]\n  trijoin top    --shards <n> --clients <n> [--batch <n>] [--ring <n>]\n                 [--scale <n>] [--queries <n>] [--refreshes <n>] [--mem <pages>]\n                 [--strategy mv|ji|hh] [--seed <n>] [--once] [--json] [--report <path>]\n                 [--durable <dir>] [--deferred] [--adaptive]\n  trijoin check  --seed <n> --ops <n> [--shards <a,b,c>] [--batch <n>]\n                 [--mem <pages>] [--crash-pct <n>] [--durable <dir>]\n                 [--adversary bursty|zipf|phase|imbalance] [--adaptive]\n                 [--emit <path>] [--out <path>] | --corpus <dir>\n  trijoin repro  <file>\n  trijoin report-validate <path> [--min-series-windows <n>]"
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = if cmd == "report-validate" {
        report_validate(rest)
    } else if cmd == "repro" {
        repro(rest)
    } else {
        match Args::parse(rest) {
            Ok(args) => match cmd.as_str() {
                "advise" => advise(&args),
                "model" => model(&args),
                "run" => run(&args),
                "serve" => serve(&args),
                "top" => top(&args),
                "check" => check(&args),
                other => Err(format!("unknown command {other:?}\n{}", usage())),
            },
            Err(e) => Err(e),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn params_from(args: &Args) -> Result<SystemParams, String> {
    Ok(SystemParams {
        mem_pages: args.u64("mem", 1000)? as usize,
        ..SystemParams::paper_defaults()
    })
}

fn workload_from(args: &Args) -> Result<Workload, String> {
    let sr = args.f64("sr", 0.01)?;
    let activity = args.f64("activity", 0.06)?;
    let pra = args.f64("pra", 0.1)?;
    if !(0.0..=1.0).contains(&sr) || !(0.0..=1.0).contains(&activity) || !(0.0..=1.0).contains(&pra)
    {
        return Err("--sr, --activity and --pra must be within [0, 1]".into());
    }
    let mut w = Workload::figure4_point(sr.max(1e-6), activity);
    w.pra = pra;
    Ok(w)
}

fn advise(args: &Args) -> Result<(), String> {
    let params = params_from(args)?;
    let w = workload_from(args)?;
    let advisor = Advisor::new(&params);
    let (heuristic, model_pick) = advisor.both(&w);
    println!(
        "workload: SR={} activity={} Pr_A={} |M|={} pages",
        w.sr,
        w.updates / w.r_tuples,
        w.pra,
        params.mem_pages
    );
    println!("paper heuristic : {}", heuristic.method);
    println!("                  {}", heuristic.reason);
    println!("cost-model pick : {}", model_pick.method);
    println!("                  {}", model_pick.reason);
    Ok(())
}

fn model(args: &Args) -> Result<(), String> {
    let params = params_from(args)?;
    let w = workload_from(args)?;
    for report in all_costs(&params, &w) {
        println!(
            "== {} : {:.1} s total ({:.1} s base file, {:.1} s update+internal) ==",
            report.method,
            report.total(),
            report.base_file(),
            report.update_and_internal()
        );
        for term in &report.terms {
            if term.secs >= 0.05 {
                println!("  {:<48} {:>10.1} s", term.name, term.secs);
            }
        }
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    let scale = args.u64("scale", 50)? as u32;
    let spec = WorkloadSpec::paper_scaled(
        scale,
        args.f64("sr", 0.01)?,
        args.f64("activity", 0.06)?,
        args.f64("pra", 0.1)?,
        args.u64("seed", 42)?,
    );
    let params = params_from(args)?;
    let epochs = args.u64("epochs", 1)?;
    let which = args.str("strategy", "all");
    let gen = spec.generate();
    let measured = gen.measured();
    println!(
        "workload: ‖R‖=‖S‖={} SR={:.4} ‖iR‖={}/epoch Pr_A={} |M|={}",
        gen.r.len(),
        measured.sr,
        gen.updates_per_epoch(),
        measured.pra,
        params.mem_pages
    );
    let wanted: Vec<&str> = match which.as_str() {
        "all" => vec!["mv", "ji", "hh", "eager"],
        one @ ("mv" | "ji" | "hh" | "eager") => vec![one],
        other => return Err(format!("--strategy: unknown {other:?} (mv|ji|hh|eager|all)")),
    };
    let durable = args.opt_str("durable").map(std::path::PathBuf::from);
    for name in wanted {
        let mut db = match &durable {
            // One WAL-backed store per strategy; each epoch ends in a
            // commit so the log carries every update batch.
            Some(root) => {
                Database::create_durable(&params, gen.r.clone(), gen.s.clone(), &root.join(name))
                    .map_err(|e| e.to_string())?
            }
            None => {
                Database::new(&params, gen.r.clone(), gen.s.clone()).map_err(|e| e.to_string())?
            }
        };
        let mut strategy: Box<dyn JoinStrategy> = match name {
            "mv" => Box::new(db.materialized_view().map_err(|e| e.to_string())?),
            "ji" => Box::new(db.join_index().map_err(|e| e.to_string())?),
            "hh" => Box::new(db.hybrid_hash()),
            "eager" => Box::new(db.eager_view().map_err(|e| e.to_string())?),
            _ => unreachable!(),
        };
        let mut stream = gen.update_stream();
        for epoch in 0..epochs {
            db.reset_cost();
            for _ in 0..gen.updates_per_epoch() {
                let u = stream.next_update();
                strategy.on_update(&u).map_err(|e| e.to_string())?;
                db.r_mut().apply_update(&u.old, &u.new).map_err(|e| e.to_string())?;
            }
            let mut n = 0u64;
            strategy.execute(db.r(), db.s(), &mut |_| n += 1).map_err(|e| e.to_string())?;
            let t = db.cost().total();
            println!(
                "{:<18} epoch {epoch}: {:>9.2} simulated s  ({} IOs, {} tuples)",
                strategy.name(),
                db.cost().elapsed_secs(db.params()),
                t.ios,
                n
            );
            if durable.is_some() {
                db.commit().map_err(|e| e.to_string())?;
            }
        }
        if args.flag("trace") {
            println!("\n-- {} span profile (last epoch) --", strategy.name());
            print!("{}", db.cost().render_profile(db.params()));
            println!();
        }
    }
    // Model reference, priced at the measured (scaled) workload.
    let model = all_costs(&params, &measured);
    let preds: Vec<String> =
        model.iter().map(|c| format!("{}={:.1}s", c.method, c.total())).collect();
    println!("model prediction for this workload: {}", preds.join("  "));
    if let Some(path) = args.opt_str("report") {
        let report = observed_report(&params, &gen, &measured, epochs, durable.as_deref())?;
        std::fs::write(&path, report.to_json().pretty())
            .map_err(|e| format!("--report {path}: {e}"))?;
        println!("run report written to {path}");
    }
    Ok(())
}

/// One observed pass with MV, JI and HH sharing a single database, so the
/// emitted [`RunReport`] carries every strategy's cost sections in one span
/// tree, plus per-method engine-vs-model deltas.
fn observed_report(
    params: &SystemParams,
    gen: &trijoin::GeneratedWorkload,
    measured: &Workload,
    epochs: u64,
    durable: Option<&std::path::Path>,
) -> Result<RunReport, String> {
    let err = |e: trijoin_common::Error| e.to_string();
    let mut db = match durable {
        Some(root) => {
            Database::create_durable(params, gen.r.clone(), gen.s.clone(), &root.join("report"))
                .map_err(err)?
        }
        None => Database::new(params, gen.r.clone(), gen.s.clone()).map_err(err)?,
    };
    let mut mv = db.materialized_view().map_err(err)?;
    let mut ji = db.join_index().map_err(err)?;
    let mut hh = db.hybrid_hash();
    db.reset_observability();
    let mut stream = gen.update_stream();
    let mut engine = [0.0f64; 3];
    for _ in 0..epochs {
        for _ in 0..gen.updates_per_epoch() {
            let u = stream.next_update();
            mv.on_update(&u).map_err(err)?;
            ji.on_update(&u).map_err(err)?;
            hh.on_update(&u).map_err(err)?;
            db.apply_r_update(&u).map_err(err)?;
        }
        let strategies: [&mut dyn JoinStrategy; 3] = [&mut mv, &mut ji, &mut hh];
        for (i, strategy) in strategies.into_iter().enumerate() {
            let before = db.cost().total();
            db.query(strategy).map_err(err)?;
            engine[i] += db.cost().total().delta_since(&before).time_secs(params);
        }
        if durable.is_some() {
            db.commit().map_err(err)?;
        }
    }
    let mut report = db.run_report("trijoin run");
    let model = all_costs(params, measured);
    for (method, secs) in Method::all().into_iter().zip(engine) {
        let m = model.iter().find(|c| c.method == method).unwrap();
        report.deltas.push(ModelDelta {
            label: method.label().to_string(),
            engine_secs: secs,
            model_secs: m.total(),
        });
    }
    Ok(report)
}

/// `trijoin serve` — run the sharded serving layer on a scaled paper
/// workload: `--clients` deterministic update streams feed the admission
/// scheduler between `--queries` queries, every answer is checked against
/// the single-engine oracle, and `--report` writes the per-shard reports
/// plus their rollup.
fn serve(args: &Args) -> Result<(), String> {
    let err = |e: trijoin_common::Error| e.to_string();
    let shards = args.u64("shards", 4)? as usize;
    let clients = args.u64("clients", 4)? as usize;
    let batch = args.u64("batch", 64)? as usize;
    let ring = args.u64("ring", 1024)? as usize;
    let queries = args.u64("queries", 10)?;
    let seed = args.u64("seed", 42)?;
    if shards == 0 || clients == 0 || queries == 0 || ring == 0 {
        return Err("--shards, --clients, --queries and --ring must be positive".into());
    }
    let method = match args.str("strategy", "hh").as_str() {
        "mv" => Method::MaterializedView,
        "ji" => Method::JoinIndex,
        "hh" => Method::HybridHash,
        other => return Err(format!("--strategy: unknown {other:?} (mv|ji|hh)")),
    };
    let spec = WorkloadSpec::paper_scaled(
        args.u64("scale", 200)? as u32,
        args.f64("sr", 0.01)?,
        args.f64("activity", 0.06)?,
        args.f64("pra", 0.1)?,
        trijoin_common::rng::derive(seed, "workload"),
    );
    let params = params_from(args)?;
    let gen = spec.generate();
    let durable_dir = args.opt_str("durable").map(std::path::PathBuf::from);
    let durable = durable_dir.is_some();
    let deferred = args.flag("deferred");
    if deferred && !durable {
        return Err("--deferred needs --durable".into());
    }
    let durability =
        if deferred { trijoin_storage::Durability::Deferred } else { Default::default() };
    let adaptive = args.flag("adaptive");
    let config = ServeConfig {
        batch,
        ring,
        seed,
        durable_dir,
        durability,
        adaptive,
        ..ServeConfig::new(params, shards)
    };
    let server = Server::start(&config, gen.r.clone(), gen.s.clone()).map_err(err)?;
    let session = server.session().map_err(err)?;
    let mut traffic = ClientTraffic::split(&gen, &config, clients);
    let updates_per_query = gen.updates_per_epoch();
    println!(
        "serve: ‖R‖=‖S‖={} shards={shards} clients={clients} batch={batch} ring={ring} \
         strategy={} ‖iR‖={updates_per_query}/query{}",
        gen.r.len(),
        if adaptive { "adaptive".to_string() } else { method.to_string() },
        match (durable, deferred) {
            (true, true) => " (durable, deferred commits)",
            (true, false) => " (durable)",
            _ => "",
        }
    );
    let started = std::time::Instant::now();
    let mut total_updates = 0u64;
    let mut total_rows = 0u64;
    for q in 0..queries {
        for u in 0..updates_per_query {
            let c = ((q * updates_per_query + u) % clients as u64) as usize;
            session.update_r(traffic[c].next_mutation()).map_err(err)?;
            total_updates += 1;
        }
        let rows = session.query(method).map_err(err)?;
        total_rows += rows.len() as u64;
        // The merged answer must equal the single-engine oracle over the
        // clients' merged mirror.
        let want = trijoin_exec::oracle::canonicalize(trijoin_exec::oracle::join_tuples(
            &trijoin_serve::merged_current(&traffic),
            &gen.s,
        ));
        if rows != want {
            return Err(format!("query {q}: sharded answer diverged from the oracle"));
        }
        if durable {
            // A commit barrier per query round: every shard WAL seals the
            // round's updates, and the report carries `wal.*` accounting.
            session.commit().map_err(err)?;
        }
    }
    let wall = started.elapsed().as_secs_f64();
    let report = session.report().map_err(err)?;
    let rollup = &report.rollup;
    println!(
        "{queries} queries, {total_updates} updates, {total_rows} result tuples \
         in {wall:.2} s wall ({:.1} q/s)",
        queries as f64 / wall.max(1e-9)
    );
    println!(
        "rollup: {} shard queries, {} batches (mean len {:.1}), {} cross-shard splits, \
         {} simulated IOs",
        rollup.metrics.counter("db.queries"),
        rollup.metrics.counter("serve.batches"),
        rollup.metrics.histogram("serve.batch.len").map(|h| h.mean()).unwrap_or(0.0),
        rollup.metrics.counter("serve.updates.cross_shard"),
        rollup.totals.ios
    );
    if durable {
        // Group-commit accounting across all shard WALs: under --deferred
        // the fsync count trails the commit count — that gap is the
        // coalescing win.
        println!(
            "wal: {} commits, {} fsyncs, {} frames ({} skipped clean), apply lag {:.0}",
            rollup.metrics.counter("wal.commits"),
            rollup.metrics.counter("wal.fsyncs"),
            rollup.metrics.counter("wal.frames"),
            rollup.metrics.counter("wal.frames_skipped"),
            rollup.metrics.gauge("wal.apply_lag").unwrap_or(0.0),
        );
    }
    if adaptive {
        println!(
            "migrate: {} switches over {} steps, {} pages rebuilt, {} rollbacks; \
             per-shard strategies [{}]",
            rollup.metrics.counter("migrate.count"),
            rollup.metrics.counter("migrate.steps"),
            rollup.metrics.counter("migrate.rebuild_pages"),
            rollup.metrics.counter("migrate.rollbacks"),
            report
                .shards
                .iter()
                .map(|s| shard_strategy_label(&s.metrics))
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    if let Some(path) = args.opt_str("report") {
        std::fs::write(&path, report.to_json().pretty())
            .map_err(|e| format!("--report {path}: {e}"))?;
        println!("sharded run report written to {path}");
    }
    Ok(())
}

/// Compact per-shard strategy cell for adaptive output: the method the
/// shard currently serves with (the `shard.strategy` gauge indexes
/// [`Method::all`]) plus any in-flight migration phase, e.g. `ji+build`.
fn shard_strategy_label(m: &trijoin_common::MetricsSnapshot) -> String {
    let Some(idx) = m.gauge("shard.strategy") else {
        return "-".to_string();
    };
    let strategy = match Method::all().get(idx as usize) {
        Some(Method::MaterializedView) => "mv",
        Some(Method::JoinIndex) => "ji",
        Some(Method::HybridHash) => "hh",
        None => "?",
    };
    match m.gauge("shard.migration_state").unwrap_or(0.0) as u64 {
        1 => format!("{strategy}+build"),
        2 => format!("{strategy}+drain"),
        _ => strategy.to_string(),
    }
}

/// `trijoin report-validate <path>` — the CI schema gate, implemented in
/// [`trijoin_serve::validate`] so its error paths are unit-tested.
fn report_validate(rest: &[String]) -> Result<(), String> {
    let usage = "usage: trijoin report-validate <path> [--min-series-windows <n>]";
    let (path, min_windows) = match rest {
        [path] => (path, 0usize),
        [path, flag, n] if flag == "--min-series-windows" => {
            let n = n.parse().map_err(|_| format!("--min-series-windows: bad count {n:?}"))?;
            (path, n)
        }
        _ => return Err(usage.into()),
    };
    let summary = trijoin_serve::validate::validate_report_file_with(path, min_windows)?;
    println!("{summary}");
    Ok(())
}

/// `trijoin top` — the live serving-stack monitor. Spawns its own server
/// plus deterministic client traffic, then refreshes a dashboard frame
/// per traffic round: throughput, latency percentiles, ring
/// backpressure, pool hit rate, per-shard update/query ratio, key skew,
/// cost-drift counts, and the telemetry window series. `--once` renders
/// a single frame; `--json` prints the sharded run report instead (it
/// validates under `trijoin report-validate`).
fn top(args: &Args) -> Result<(), String> {
    let err = |e: trijoin_common::Error| e.to_string();
    let shards = args.u64("shards", 4)? as usize;
    let clients = args.u64("clients", 4)? as usize;
    let batch = args.u64("batch", 64)? as usize;
    let ring = args.u64("ring", 1024)? as usize;
    let queries = args.u64("queries", 4)?;
    let refreshes = args.u64("refreshes", 0)?;
    let seed = args.u64("seed", 42)?;
    let once = args.flag("once");
    let json = args.flag("json");
    if shards == 0 || clients == 0 || queries == 0 || ring == 0 {
        return Err("--shards, --clients, --queries and --ring must be positive".into());
    }
    let method = match args.str("strategy", "hh").as_str() {
        "mv" => Method::MaterializedView,
        "ji" => Method::JoinIndex,
        "hh" => Method::HybridHash,
        other => return Err(format!("--strategy: unknown {other:?} (mv|ji|hh)")),
    };
    let spec = WorkloadSpec::paper_scaled(
        args.u64("scale", 200)? as u32,
        args.f64("sr", 0.01)?,
        args.f64("activity", 0.06)?,
        args.f64("pra", 0.1)?,
        trijoin_common::rng::derive(seed, "workload"),
    );
    let params =
        SystemParams { mem_pages: args.u64("mem", 80)? as usize, ..SystemParams::paper_defaults() };
    let gen = spec.generate();
    let durable_dir = args.opt_str("durable").map(std::path::PathBuf::from);
    let durable = durable_dir.is_some();
    let deferred = args.flag("deferred");
    if deferred && !durable {
        return Err("--deferred needs --durable".into());
    }
    let durability =
        if deferred { trijoin_storage::Durability::Deferred } else { Default::default() };
    let adaptive = args.flag("adaptive");
    let config = ServeConfig {
        batch,
        ring,
        seed,
        durable_dir,
        durability,
        adaptive,
        ..ServeConfig::new(params, shards)
    };
    let server = Server::start(&config, gen.r.clone(), gen.s.clone()).map_err(err)?;
    let session = server.session().map_err(err)?;
    let mut traffic = ClientTraffic::split(&gen, &config, clients);
    let updates_per_query = gen.updates_per_epoch();

    let mut frame = 0u64;
    let mut sent = 0u64;
    loop {
        // One traffic round per frame: interleaved client updates, then
        // the queries whose completion times feed the percentiles.
        let round_start = std::time::Instant::now();
        for q in 0..queries {
            for u in 0..updates_per_query {
                let c = ((sent + q * updates_per_query + u) % clients as u64) as usize;
                session.update_r(traffic[c].next_mutation()).map_err(err)?;
            }
            session.query(method).map_err(err)?;
            if durable {
                session.commit().map_err(err)?;
            }
        }
        sent += queries * updates_per_query;
        let wall = round_start.elapsed().as_secs_f64();
        let report = session.report().map_err(err)?;
        frame += 1;

        let last_frame = once || (refreshes > 0 && frame >= refreshes);
        if json {
            if last_frame {
                println!("{}", report.to_json().pretty());
            }
        } else {
            if !once {
                // Redraw in place: clear screen, home the cursor.
                print!("\x1b[2J\x1b[H");
            }
            render_top_frame(&report, frame, method, queries as f64 / wall.max(1e-9));
        }
        if let Some(path) = args.opt_str("report") {
            if last_frame {
                std::fs::write(&path, report.to_json().pretty())
                    .map_err(|e| format!("--report {path}: {e}"))?;
            }
        }
        if last_frame {
            return Ok(());
        }
    }
}

/// Render one `trijoin top` dashboard frame from a sharded run report.
fn render_top_frame(
    report: &trijoin_common::ShardedRunReport,
    frame: u64,
    method: Method,
    qps: f64,
) {
    use trijoin_common::telemetry::safe_div;
    let rollup = &report.rollup;
    let m = &rollup.metrics;
    let gauge = |name: &str| m.gauge(name).unwrap_or(0.0);
    let adaptive = gauge("serve.adaptive") >= 1.0;
    println!(
        "trijoin top — frame {frame}: {} shards, strategy {}",
        report.shards.len(),
        if adaptive { "adaptive".to_string() } else { method.to_string() }
    );
    println!(
        "  qps {qps:>8.1}   p50 {:>7.0}us   p99 {:>7.0}us   ring cap {:>5.0} \
         ({:.0} full-waits)   pool hit {:>5.1}%",
        gauge("serve.latency.p50_us"),
        gauge("serve.latency.p99_us"),
        gauge("serve.ring.capacity"),
        gauge("serve.ring.full_waits"),
        rollup.pool_hit_rate() * 100.0
    );
    if gauge("wal.enabled") >= 1.0 {
        // Durable serving: group-commit accounting summed across shard
        // WALs. fsyncs < commits means deferred barriers coalesced; the
        // skipped count is frames dropped by the skip-clean encoder; the
        // apply lag is committed-but-unapplied pages awaiting checkpoint.
        println!(
            "  wal  commits {:>6}   fsyncs {:>6}   frames {:>7} ({} skipped clean)   \
             apply lag {:>5.0}   log {:>9.0} B",
            m.counter("wal.commits"),
            m.counter("wal.fsyncs"),
            m.counter("wal.frames"),
            m.counter("wal.frames_skipped"),
            gauge("wal.apply_lag"),
            gauge("wal.len_bytes"),
        );
    }
    if adaptive {
        // Rollup migration accounting: switches completed, incremental
        // steps taken, pages written into migration targets, rollbacks
        // (faults or S-churn landing mid-migration).
        println!(
            "  migrate  switches {:>4}   steps {:>6}   rebuilt {:>7} pages   rollbacks {:>3}",
            m.counter("migrate.count"),
            m.counter("migrate.steps"),
            m.counter("migrate.rebuild_pages"),
            m.counter("migrate.rollbacks"),
        );
    }
    let mean_r = safe_div(
        report.shards.iter().map(|s| s.metrics.gauge("shard.r_tuples").unwrap_or(0.0)).sum(),
        report.shards.len() as f64,
    );
    let strategy_header = if adaptive { "   strategy" } else { "" };
    println!("  shard   r_tuples   s_tuples   upd/query   skew   drift{strategy_header}");
    for shard in &report.shards {
        let sm = &shard.metrics;
        let drift =
            shard.events.iter().filter(|e| e.kind == trijoin_common::EventKind::CostDrift).count();
        let strategy =
            if adaptive { format!("   {:>8}", shard_strategy_label(sm)) } else { String::new() };
        println!(
            "  {:>5}   {:>8.0}   {:>8.0}   {:>9.1}   {:>4.2}   {drift:>5}{strategy}",
            shard.name.trim_start_matches("shard"),
            sm.gauge("shard.r_tuples").unwrap_or(0.0),
            sm.gauge("shard.s_tuples").unwrap_or(0.0),
            safe_div(sm.counter("db.mutations") as f64, sm.counter("db.queries") as f64),
            safe_div(sm.gauge("shard.r_tuples").unwrap_or(0.0), mean_r),
        );
    }
    for series in &rollup.series {
        let audited: usize = series.audit.len();
        println!(
            "  series {:<8} domain {:<8} {:>3} windows   {audited} audited sections",
            series.name,
            series.domain,
            series.windows.len()
        );
    }
}

/// `trijoin check` — the deterministic simulation harness. Generates a
/// seeded workload script (or loads a committed corpus), replays it
/// against every implementation, and on failure shrinks to a minimal
/// JSON repro.
fn check(args: &Args) -> Result<(), String> {
    let mut cfg = CheckConfig {
        params: SystemParams {
            mem_pages: args.u64("mem", 64)? as usize,
            ..SystemParams::paper_defaults()
        },
        ..CheckConfig::default()
    };
    cfg.durable_root = args.opt_str("durable").map(std::path::PathBuf::from);
    if let Some(dir) = args.opt_str("corpus") {
        return check_corpus(&dir, &cfg);
    }
    let seed = args.u64("seed", 42)?;
    let ops = args.u64("ops", 160)? as usize;
    let mut gen_cfg = match args.opt_str("adversary") {
        // A shaped stream without adaptive replay would stress nothing:
        // --adversary therefore implies --adaptive.
        Some(name) => match AdversaryShape::from_wire(&name) {
            Some(shape) => GenConfig::adversarial(seed, ops, shape),
            None => {
                return Err(format!(
                    "--adversary: unknown shape {name:?} (bursty|zipf|phase|imbalance)"
                ))
            }
        },
        None => GenConfig::new(seed, ops),
    };
    if args.flag("adaptive") {
        gen_cfg.adaptive = true;
    }
    gen_cfg.batch = args.u64("batch", gen_cfg.batch as u64)? as usize;
    gen_cfg.crash_pct = args.u64("crash-pct", 0)? as u32;
    if gen_cfg.crash_pct > 100 {
        return Err("--crash-pct: must be within [0, 100]".into());
    }
    if gen_cfg.crash_pct > 0 && cfg.durable_root.is_none() {
        // Crash ops are inert on the in-memory backend; give the run a
        // scratch durable root so they actually exercise recovery.
        let root = std::env::temp_dir().join(format!("trijoin-check-{seed}"));
        println!("check: --crash-pct without --durable; using {}", root.display());
        cfg.durable_root = Some(root);
    }
    if let Some(list) = args.opt_str("shards") {
        gen_cfg.shard_counts = list
            .split(',')
            .map(|s| s.trim().parse::<usize>().map_err(|_| format!("--shards: bad count {s:?}")))
            .collect::<Result<Vec<usize>, String>>()?;
        if gen_cfg.shard_counts.is_empty() || gen_cfg.shard_counts.contains(&0) {
            return Err("--shards: counts must be positive".into());
        }
    }
    let script = generate(&gen_cfg);
    println!(
        "check: script {} — {} ops, {} checkpoints, shards {:?}{}{}",
        script.name,
        script.ops.len(),
        script.checkpoints(),
        script.shard_counts,
        match &script.spec.adversary {
            Some(a) => format!(", adversary {}", a.shape.as_str()),
            None => String::new(),
        },
        if script.spec.adaptive { ", adaptive" } else { "" }
    );
    if let Some(path) = args.opt_str("emit") {
        std::fs::write(&path, script.to_json_string())
            .map_err(|e| format!("--emit {path}: {e}"))?;
        println!("script written to {path}");
    }
    match run_script(&script, &cfg) {
        Ok(outcome) => {
            println!(
                "check ok: {} checkpoints verified (MV ≡ JI ≡ HH ≡ oracle ≡ serve), \
                 {} ops applied, {} skipped, {} fault plans, {} crash-recovery cycles",
                outcome.checkpoints,
                outcome.applied,
                outcome.skipped,
                outcome.faults_installed,
                outcome.crashes
            );
            if script.spec.adaptive {
                let per: Vec<String> = outcome
                    .migrations_by_server
                    .iter()
                    .map(|(shards, n)| format!("{shards}-shard:{n}"))
                    .collect();
                println!(
                    "adaptive ok: {} migrations ({} rollbacks) under the same oracle [{}]",
                    outcome.migrations,
                    outcome.migration_rollbacks,
                    per.join(" ")
                );
            }
            Ok(())
        }
        Err(failure) => {
            println!("check FAILED: {failure}");
            let out = args.opt_str("out").unwrap_or_else(|| format!("repro-seed-{seed}.json"));
            let shrunk = shrink(&script, &cfg).expect("a failing script shrinks");
            std::fs::write(&out, shrunk.script.to_json_string())
                .map_err(|e| format!("--out {out}: {e}"))?;
            println!(
                "shrunk {} ops -> {} ops in {} runs; minimal failure: {}",
                script.ops.len(),
                shrunk.script.ops.len(),
                shrunk.runs,
                shrunk.failure
            );
            println!("repro written to {out} (replay with: trijoin repro {out})");
            Err(format!("simulation check failed (seed {seed}); repro at {out}"))
        }
    }
}

/// Replay every `*.json` script in a corpus directory.
fn check_corpus(dir: &str, cfg: &CheckConfig) -> Result<(), String> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("--corpus {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("--corpus {dir}: no .json scripts found"));
    }
    let mut checkpoints = 0;
    for path in &paths {
        let shown = path.display();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{shown}: {e}"))?;
        let script = Script::from_json_str(&text).map_err(|e| format!("{shown}: {e}"))?;
        let cfg = durable_cfg_for(&script, cfg, "corpus");
        let outcome = run_script(&script, &cfg).map_err(|f| format!("{shown}: {f}"))?;
        println!(
            "{shown}: ok — {} checkpoints, {} ops applied, {} fault plans, {} crashes{}",
            outcome.checkpoints,
            outcome.applied,
            outcome.faults_installed,
            outcome.crashes,
            if script.spec.adaptive {
                format!(", {} migrations", outcome.migrations)
            } else {
                String::new()
            }
        );
        checkpoints += outcome.checkpoints;
    }
    println!("corpus ok: {} scripts, {checkpoints} checkpoints verified", paths.len());
    Ok(())
}

/// Crash ops are inert on the in-memory backend. When a script carries
/// them and the caller supplied no durable root, replay it under a
/// scratch directory so the crash-recovery cycles actually run.
fn durable_cfg_for(script: &Script, cfg: &CheckConfig, tag: &str) -> CheckConfig {
    let mut cfg = cfg.clone();
    let has_crashes =
        script.ops.iter().any(|op| matches!(op, trijoin_common::ScriptOp::Crash { .. }));
    if has_crashes && cfg.durable_root.is_none() {
        cfg.durable_root =
            Some(std::env::temp_dir().join(format!("trijoin-{tag}-{}", script.name)));
    }
    cfg
}

/// `trijoin repro <file>` — replay a shrunk repro (or any script file).
fn repro(rest: &[String]) -> Result<(), String> {
    let [path] = rest else {
        return Err("usage: trijoin repro <file>".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let script = Script::from_json_str(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "repro: script {} — {} ops, {} checkpoints, shards {:?}",
        script.name,
        script.ops.len(),
        script.checkpoints(),
        script.shard_counts
    );
    let cfg = durable_cfg_for(&script, &CheckConfig::default(), "repro");
    match run_script(&script, &cfg) {
        Ok(outcome) => {
            println!(
                "script passes: {} checkpoints verified, {} ops applied, {} skipped, {} crashes",
                outcome.checkpoints, outcome.applied, outcome.skipped, outcome.crashes
            );
            Ok(())
        }
        Err(failure) => Err(format!("reproduced: {failure}")),
    }
}
