//! Differential script replay: one script, every implementation.
//!
//! The driver replays a [`Script`] simultaneously against
//!
//! - three single-node engines, one per strategy (each with its own
//!   [`Database`] and simulated disk, so per-engine fault plans stay
//!   isolated),
//! - an in-memory mirror of both relations (`BTreeMap` keyed by
//!   surrogate) feeding the brute-force oracle, and
//! - one running [`trijoin_serve::Server`] per configured shard count,
//!
//! and at every `Checkpoint` op asserts MV ≡ JI ≡ HH ≡ oracle ≡
//! sharded-serve, plus metamorphic relations on the analytical cost
//! model. Fault ops arm seeded [`FaultPlan`]s that are installed at the
//! next checkpoint immediately before query execution — the placement
//! `tests/faults.rs` establishes as recoverable by design (§8 recovery
//! must absorb transient and cached-state faults during query work;
//! damage to base relations during the apply phase is unrecoverable and
//! would fail the run spuriously).
//!
//! With [`CheckConfig::durable_root`] set, the whole replay moves onto
//! the WAL-backed file backend: `batch` and `checkpoint` ops double as
//! commit barriers, and `crash` ops kill every engine and server at a
//! seeded sabotage point (cold drop, torn log tail, or sealed-but-
//! unapplied log), recover each from its own WAL, re-apply the
//! uncommitted tail, and let the very same equivalence checks prove the
//! recovery correct — the mirrors never crash, so the oracle is exactly
//! the state durability must reproduce.
//!
//! Failures come back as structured [`CheckFailure`]s rather than
//! panics, so the shrinker can probe candidate scripts cheaply.

use std::collections::BTreeMap;
use std::path::PathBuf;

use rand::prelude::*;
use trijoin::{Database, WorkloadSpec};
use trijoin_common::{
    rng, BaseTuple, Error, EventKind, Script, ScriptOp, Surrogate, SystemParams, TelemetryConfig,
    ViewTuple,
};
use trijoin_exec::{oracle, JoinStrategy, Mutation, Update};
use trijoin_model::{all_costs, Method, Workload};
use trijoin_serve::{ClientSession, ServeConfig, Server};
use trijoin_storage::{CommitSabotage, FaultPlan};

/// Deliberate bugs the driver can plant in its own replay path, used to
/// demonstrate that the harness catches (and the shrinker minimizes) a
/// real divergence. Sabotage never touches library code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// Replay faithfully.
    None,
    /// Apply the join index's `Pr_A` filter to *every* cached structure:
    /// payload-only updates are not forwarded to the strategies. The
    /// materialized view then serves stale payloads — exactly the bug the
    /// paper's §3.2 maintenance discussion warns the filter must not
    /// introduce.
    SkipPraFilter,
}

/// Configuration of one replay.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// System parameters for every engine and server shard.
    pub params: SystemParams,
    /// Planted bug (tests only).
    pub sabotage: Sabotage,
    /// Run the cost-model metamorphic checks at checkpoints.
    pub model_checks: bool,
    /// Scale factor applied to every analytical prediction the engines'
    /// cost audit makes. `1.0` audits the stock model (which must stay
    /// under the drift threshold on the corpus); a factor far from 1.0
    /// simulates a miscalibrated model parameter so the `CostDrift`
    /// detection path can be exercised deliberately.
    pub audit_calibration: f64,
    /// Root directory for durable replay. `None` (the default) replays on
    /// the in-memory backend and `crash` ops are inert. When set, the
    /// three engines and every server shard live on the WAL-backed file
    /// backend under this directory, `batch` and `checkpoint` ops become
    /// commit barriers, and `crash` ops kill every implementation at a
    /// seeded sabotage point and recover it from its own log. The
    /// directory is reused (and wiped) across shrink probes and left on
    /// disk afterwards for post-mortem inspection.
    pub durable_root: Option<PathBuf>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            params: SystemParams::test_small(),
            sabotage: Sabotage::None,
            model_checks: true,
            audit_calibration: 1.0,
            durable_root: None,
        }
    }
}

/// Statistics of a passing replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Checkpoints verified.
    pub checkpoints: usize,
    /// Mutation ops applied.
    pub applied: usize,
    /// Mutation ops deterministically skipped (duplicate-surrogate
    /// inserts, deletes on a ≤ 1-tuple relation).
    pub skipped: usize,
    /// Fault plans installed across engines and servers.
    pub faults_installed: usize,
    /// `CostDrift` events the engines' predicted-vs-actual audit raised
    /// over the whole replay (0 when the model tracks the ledger).
    pub cost_drift_events: usize,
    /// Crash-recovery cycles performed (durable mode; `crash` ops are
    /// inert — and uncounted — on the in-memory backend).
    pub crashes: usize,
    /// Completed strategy migrations across every adaptive server
    /// (adaptive scripts only; 0 when `spec.adaptive` is off).
    pub migrations: usize,
    /// Migration rollbacks across every adaptive server (device faults or
    /// `S` mutations landing mid-migration).
    pub migration_rollbacks: usize,
    /// Per-adaptive-server migration totals as `(shard_count, migrations)`,
    /// in `shard_counts` order — lets callers assert that every
    /// configured shard count actually exercised the migration machinery.
    pub migrations_by_server: Vec<(usize, usize)>,
}

/// A failed replay: which checkpoint, which implementation, and why.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// Index of the failing op in the script (usually a checkpoint).
    pub op_index: usize,
    /// The diverging site: `engine:<method>`, `serve:<shards>:<method>`,
    /// `model:<relation>`, or `script` for malformed input.
    pub site: String,
    /// Human-readable diagnosis.
    pub message: String,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op {}: {}: {}", self.op_index, self.site, self.message)
    }
}

/// Per-strategy cached state. An enum (not `Box<dyn JoinStrategy>`) so
/// the driver can reach strategy-specific surfaces: the cached-structure
/// file for scoped poison faults and the rebuild constructors.
enum Cached {
    Mv(trijoin_exec::MaterializedView),
    Ji(trijoin_exec::JoinIndexStrategy),
    Hh(trijoin_exec::HybridHash),
}

/// One single-node engine replaying the script with one strategy.
struct Engine {
    method: Method,
    db: Database,
    cached: Cached,
    s_dirty: bool,
    /// Durable-store directory (`None` on the in-memory backend).
    dir: Option<PathBuf>,
    /// Audit workload of the initial relations, re-installed after every
    /// crash recovery (the audit is calibrated once per run, not re-fit).
    audit: Workload,
}

impl Engine {
    fn new(
        method: Method,
        cfg: &CheckConfig,
        r: Vec<BaseTuple>,
        s: Vec<BaseTuple>,
        dir: Option<PathBuf>,
    ) -> trijoin_common::Result<Engine> {
        // The audit prices the model against the initial measured
        // statistics (same pra the metamorphic checks use); enable it
        // before any script work so every query cycle is audited.
        let workload = trijoin::measure_workload(&r, &s, 0.1, 0.0);
        let db = match &dir {
            Some(d) => Database::create_durable(&cfg.params, r, s, d)?,
            None => Database::new(&cfg.params, r, s)?,
        };
        db.enable_telemetry(TelemetryConfig::default());
        db.enable_cost_audit(workload.clone(), cfg.audit_calibration);
        let cached = match method {
            Method::MaterializedView => Cached::Mv(db.materialized_view()?),
            Method::JoinIndex => Cached::Ji(db.join_index()?),
            Method::HybridHash => Cached::Hh(db.hybrid_hash()),
        };
        Ok(Engine { method, db, cached, s_dirty: false, dir, audit: workload })
    }

    /// Kill this engine at a seeded sabotage point and recover it from
    /// its durable store (durable mode only). Returns whether the
    /// in-flight commit became durable anyway — [`CommitSabotage`]'s
    /// `SkipApply` seals the log before "dying", so recovery redoes the
    /// commit and the caller must treat the tail as committed here.
    fn crash_recover(
        &mut self,
        mode: Option<CommitSabotage>,
        cfg: &CheckConfig,
    ) -> trijoin_common::Result<bool> {
        let dir = self.dir.clone().expect("crash_recover needs a durable engine");
        let committed = match mode {
            // Die cold: the buffered overlay vanishes with the process.
            None => false,
            Some(CommitSabotage::TornWal) => {
                self.db.sabotage_next_commit(CommitSabotage::TornWal);
                if self.db.commit().is_ok() {
                    return Err(Error::Invariant(
                        "torn-WAL sabotage did not fail the commit".into(),
                    ));
                }
                false
            }
            Some(CommitSabotage::SkipApply) => {
                self.db.sabotage_next_commit(CommitSabotage::SkipApply);
                self.db.commit()?;
                true
            }
        };
        // The "process" dies here: dropping the database releases every
        // handle; reopening runs WAL recovery (replay sealed groups,
        // truncate any torn tail) and reattaches the catalog. Derived
        // caches are gone by design — rebuild as at first start.
        self.db = Database::open_durable(&cfg.params, &dir)?;
        self.db.enable_telemetry(TelemetryConfig::default());
        self.db.enable_cost_audit(self.audit.clone(), cfg.audit_calibration);
        self.cached = match self.method {
            Method::MaterializedView => Cached::Mv(self.db.materialized_view()?),
            Method::JoinIndex => Cached::Ji(self.db.join_index()?),
            Method::HybridHash => Cached::Hh(self.db.hybrid_hash()),
        };
        self.s_dirty = false;
        Ok(committed)
    }

    fn strategy(&mut self) -> &mut dyn JoinStrategy {
        match &mut self.cached {
            Cached::Mv(s) => s,
            Cached::Ji(s) => s,
            Cached::Hh(s) => s,
        }
    }

    /// Mirror of the serve layer's shard apply: the strategy observes the
    /// mutation *before* it lands in the stored relation.
    fn apply_r(&mut self, m: &Mutation, sabotage: Sabotage) -> trijoin_common::Result<()> {
        let skip_notify = sabotage == Sabotage::SkipPraFilter
            && matches!(m, Mutation::Update(u) if !u.changes_join_attr());
        if !skip_notify {
            self.strategy().on_mutation(m)?;
        }
        self.db.apply_r_mutation(m)
    }

    fn apply_s(&mut self, m: &Mutation) -> trijoin_common::Result<()> {
        self.db.s_mut()?.apply_mutation(m)?;
        self.s_dirty = true;
        Ok(())
    }

    /// Lazy cached-structure rebuild after S-side mutations, mirroring
    /// `trijoin_serve::shard`: build fresh, then delete the stale file.
    fn rebuild_if_dirty(&mut self) -> trijoin_common::Result<()> {
        if !self.s_dirty {
            return Ok(());
        }
        let stale = match &self.cached {
            Cached::Mv(mv) => Some(mv.view_file()),
            Cached::Ji(ji) => Some(ji.index_file()),
            Cached::Hh(_) => None, // reads both base relations every query
        };
        if let Some(old) = stale {
            self.cached = match self.method {
                Method::MaterializedView => Cached::Mv(self.db.materialized_view()?),
                Method::JoinIndex => Cached::Ji(self.db.join_index()?),
                Method::HybridHash => unreachable!("hybrid-hash caches nothing"),
            };
            self.db.disk().delete_file(old);
        }
        self.s_dirty = false;
        Ok(())
    }

    /// Derive and install this engine's fault plan for one `Fault` op.
    ///
    /// Scoping follows the recoverability contract of `tests/faults.rs`:
    /// transient read faults may land anywhere (absorbed by retry in every
    /// strategy), but poisoned reads are pinned to the strategy's *cached*
    /// file — a poisoned base-relation page is unrecoverable by design.
    fn install_faults(&mut self, fault_seed: u64) -> usize {
        let stream = rng::derive_indexed(fault_seed, "check/engine", self.method as u64);
        let mut rn = rng::seeded(stream);
        let mut plan = FaultPlan::new();
        for _ in 0..rn.gen_range(1u32..=2) {
            plan = plan.fail_nth_read(None, rn.gen_range(0u64..32));
        }
        let cache_file = match &self.cached {
            Cached::Mv(mv) => Some(mv.view_file()),
            Cached::Ji(ji) => Some(ji.index_file()),
            Cached::Hh(_) => None,
        };
        if let Some(file) = cache_file {
            if rn.gen_bool(0.5) {
                plan = plan.poison_nth_read(Some(file), rn.gen_range(0u64..8));
            }
        }
        self.db.install_fault_plan(plan);
        1
    }

    fn query(&mut self) -> trijoin_common::Result<Vec<ViewTuple>> {
        let Engine { db, cached, .. } = self;
        let strategy: &mut dyn JoinStrategy = match cached {
            Cached::Mv(s) => s,
            Cached::Ji(s) => s,
            Cached::Hh(s) => s,
        };
        db.query(strategy)
    }
}

/// One running server plus its session (and, for durable-mode crash
/// recovery, the configuration to reopen it with).
struct Serving {
    shards: usize,
    /// Failure-site label: `serve:<shards>` or `serve-adaptive:<shards>`.
    site: String,
    config: ServeConfig,
    _server: Server,
    session: ClientSession,
}

/// Sort into the (r_sur, s_sur) total order every implementation reports
/// in. Unlike `oracle::canonicalize` this never panics on duplicates —
/// a buggy implementation emitting duplicate pairs must surface as a
/// comparison failure, not a harness crash.
fn canon(mut v: Vec<ViewTuple>) -> Vec<ViewTuple> {
    v.sort_by_key(|t| (t.r_sur.0, t.s_sur.0));
    v
}

/// Compare an implementation's answer against the oracle.
fn diff_join(got: &[ViewTuple], want: &[ViewTuple]) -> Result<(), String> {
    if got == want {
        return Ok(());
    }
    if got.len() != want.len() {
        return Err(format!("cardinality {} != oracle {}", got.len(), want.len()));
    }
    let (i, (g, w)) = got
        .iter()
        .zip(want)
        .enumerate()
        .find(|(_, (g, w))| g != w)
        .expect("unequal vectors of equal length differ somewhere");
    if g.r_sur == w.r_sur && g.s_sur == w.s_sur && g.key == w.key {
        return Err(format!(
            "pair {i} (r{}, s{}) has stale payloads (key {} matches)",
            g.r_sur.0, g.s_sur.0, g.key
        ));
    }
    Err(format!(
        "pair {i}: got (r{}, s{}, key {}), oracle has (r{}, s{}, key {})",
        g.r_sur.0, g.s_sur.0, g.key, w.r_sur.0, w.s_sur.0, w.key
    ))
}

/// The replay state machine.
struct Driver<'a> {
    script: &'a Script,
    cfg: &'a CheckConfig,
    engines: Vec<Engine>,
    servers: Vec<Serving>,
    /// Adaptive-mode servers (`spec.adaptive` scripts only): same shard
    /// counts, `ServeConfig::adaptive` set, own seed stream. They receive
    /// every mutation and are checked against the oracle at every
    /// checkpoint with migrations in flight — the metamorphic claim that
    /// migration never changes answers.
    adaptive_servers: Vec<Serving>,
    r_mirror: BTreeMap<u32, BaseTuple>,
    s_mirror: BTreeMap<u32, BaseTuple>,
    armed_faults: Vec<u64>,
    /// Durable mode only: mutations applied since the last commit
    /// barrier, re-applied after a crash recovery (the mirrors never
    /// crash, so the tail is exactly what recovery rolls back).
    tail: Vec<(Side, Mutation)>,
    durable: bool,
    outcome: CheckOutcome,
}

/// Either side of the schema, for the shared mutation-resolution path.
#[derive(Clone, Copy, PartialEq)]
enum Side {
    R,
    S,
}

/// Build a boxed failure (free function: call sites hold field borrows).
fn fail(op_index: usize, site: &str, message: String) -> Box<CheckFailure> {
    Box::new(CheckFailure { op_index, site: site.to_string(), message })
}

impl Driver<'_> {
    fn payload_tuple(&self, sur: u32, key: u64, tag: u64) -> Result<BaseTuple, String> {
        BaseTuple::with_payload(
            Surrogate(sur),
            key,
            &tag.to_le_bytes(),
            self.script.spec.tuple_bytes,
        )
        .map_err(|e| format!("tuple_bytes {} too small: {e}", self.script.spec.tuple_bytes))
    }

    /// Resolve a pick against a mirror (BTreeMap order = surrogate order).
    fn victim(mirror: &BTreeMap<u32, BaseTuple>, pick: u64) -> BaseTuple {
        let idx = (pick % mirror.len() as u64) as usize;
        mirror.values().nth(idx).expect("index is reduced modulo len").clone()
    }

    /// Turn a script op into a concrete mutation against one side, or
    /// `None` when the op is deterministically inert.
    fn resolve(&self, op: &ScriptOp) -> Result<Option<(Side, Mutation)>, String> {
        let m = match *op {
            ScriptOp::InsertR { sur, key, tag } => {
                if self.r_mirror.contains_key(&sur) {
                    return Ok(None);
                }
                (Side::R, Mutation::Insert(self.payload_tuple(sur, key, tag)?))
            }
            ScriptOp::InsertS { sur, key, tag } => {
                if self.s_mirror.contains_key(&sur) {
                    return Ok(None);
                }
                (Side::S, Mutation::Insert(self.payload_tuple(sur, key, tag)?))
            }
            ScriptOp::DeleteR { pick } => {
                if self.r_mirror.len() <= 1 {
                    return Ok(None);
                }
                (Side::R, Mutation::Delete(Self::victim(&self.r_mirror, pick)))
            }
            ScriptOp::DeleteS { pick } => {
                if self.s_mirror.len() <= 1 {
                    return Ok(None);
                }
                (Side::S, Mutation::Delete(Self::victim(&self.s_mirror, pick)))
            }
            ScriptOp::ModifyJoinR { pick, key, tag } => {
                let old = Self::victim(&self.r_mirror, pick);
                let new = self.payload_tuple(old.sur.0, key, tag)?;
                (Side::R, Mutation::Update(Update { old, new }))
            }
            ScriptOp::ModifyJoinS { pick, key, tag } => {
                let old = Self::victim(&self.s_mirror, pick);
                let new = self.payload_tuple(old.sur.0, key, tag)?;
                (Side::S, Mutation::Update(Update { old, new }))
            }
            ScriptOp::ModifyPayloadR { pick, tag } => {
                let old = Self::victim(&self.r_mirror, pick);
                let new = self.payload_tuple(old.sur.0, old.key, tag)?;
                (Side::R, Mutation::Update(Update { old, new }))
            }
            ScriptOp::ModifyPayloadS { pick, tag } => {
                let old = Self::victim(&self.s_mirror, pick);
                let new = self.payload_tuple(old.sur.0, old.key, tag)?;
                (Side::S, Mutation::Update(Update { old, new }))
            }
            ScriptOp::Checkpoint
            | ScriptOp::Fault { .. }
            | ScriptOp::Batch
            | ScriptOp::Crash { .. } => {
                unreachable!("control-flow ops are handled by the main loop")
            }
        };
        Ok(Some(m))
    }

    fn apply(&mut self, i: usize, side: Side, m: &Mutation) -> Result<(), Box<CheckFailure>> {
        let sabotage = self.cfg.sabotage;
        for e in &mut self.engines {
            let res = match side {
                Side::R => e.apply_r(m, sabotage),
                Side::S => e.apply_s(m),
            };
            res.map_err(|err| {
                fail(i, &format!("engine:{}", e.method), format!("apply failed: {err}"))
            })?;
        }
        for srv in self.servers.iter().chain(&self.adaptive_servers) {
            let res = match side {
                Side::R => srv.session.update_r(m.clone()),
                Side::S => srv.session.update_s(m.clone()),
            };
            res.map_err(|err| fail(i, &srv.site, format!("update failed: {err}")))?;
        }
        match (side, m) {
            (Side::R, Mutation::Insert(t)) => {
                self.r_mirror.insert(t.sur.0, t.clone());
            }
            (Side::R, Mutation::Delete(t)) => {
                self.r_mirror.remove(&t.sur.0);
            }
            (Side::R, Mutation::Update(u)) => {
                self.r_mirror.insert(u.new.sur.0, u.new.clone());
            }
            (Side::S, Mutation::Insert(t)) => {
                self.s_mirror.insert(t.sur.0, t.clone());
            }
            (Side::S, Mutation::Delete(t)) => {
                self.s_mirror.remove(&t.sur.0);
            }
            (Side::S, Mutation::Update(u)) => {
                self.s_mirror.insert(u.new.sur.0, u.new.clone());
            }
        }
        if self.durable {
            self.tail.push((side, m.clone()));
        }
        Ok(())
    }

    /// Durable-mode commit barrier: every engine commits, every server
    /// drives its shard-commit barrier, and the uncommitted tail is gone.
    /// A no-op on the in-memory backend.
    fn commit_all(&mut self, i: usize) -> Result<(), Box<CheckFailure>> {
        if !self.durable {
            return Ok(());
        }
        for e in &self.engines {
            e.db.commit().map_err(|err| {
                fail(i, &format!("engine:{}", e.method), format!("commit: {err}"))
            })?;
        }
        for srv in self.servers.iter().chain(&self.adaptive_servers) {
            srv.session.commit().map_err(|e| fail(i, &srv.site, format!("commit barrier: {e}")))?;
        }
        self.tail.clear();
        Ok(())
    }

    /// Durable-mode crash: kill every implementation at the sabotage
    /// point `seed` derives, recover each from its own log, then re-apply
    /// the uncommitted tail so state converges back to the mirrors.
    fn crash(&mut self, i: usize, seed: u64) -> Result<(), Box<CheckFailure>> {
        let mut rn = rng::seeded(rng::derive(seed, "check/crash"));
        let mode = match rn.gen_range(0u32..3) {
            0 => None,                            // die cold (overlay dropped)
            1 => Some(CommitSabotage::TornWal),   // die mid log flush
            _ => Some(CommitSabotage::SkipApply), // die before the data-file apply
        };
        let mut engines_committed = false;
        for e in &mut self.engines {
            let site = format!("engine:{}", e.method);
            engines_committed = e
                .crash_recover(mode, self.cfg)
                .map_err(|err| fail(i, &site, format!("crash recovery: {err}")))?;
        }
        // Servers always die cold: shard threads exit on channel close
        // without committing, so their recovery point is the last commit
        // barrier regardless of the engines' sabotage flavour. Adaptive
        // servers additionally lose any in-flight migration (migration
        // state is derived, never persisted) — they restart Stable on the
        // recovered relations, which the checkpoint equivalence verifies.
        for list in [&mut self.servers, &mut self.adaptive_servers] {
            let old = std::mem::take(list);
            for srv in old {
                let Serving { shards, site, config, .. } = srv; // drops session + server
                let server = Server::recover(&config)
                    .map_err(|e| fail(i, &site, format!("recover: {e}")))?;
                let session =
                    server.session().map_err(|e| fail(i, &site, format!("session: {e}")))?;
                list.push(Serving { shards, site, config, _server: server, session });
            }
        }
        // Re-apply the tail recovery rolled back. Engines whose in-flight
        // commit was sealed (`SkipApply`) already hold it via log redo.
        let tail = std::mem::take(&mut self.tail);
        let sabotage = self.cfg.sabotage;
        for (side, m) in &tail {
            if !engines_committed {
                for e in &mut self.engines {
                    let res = match side {
                        Side::R => e.apply_r(m, sabotage),
                        Side::S => e.apply_s(m),
                    };
                    res.map_err(|err| {
                        fail(i, &format!("engine:{}", e.method), format!("tail replay: {err}"))
                    })?;
                }
            }
            for srv in self.servers.iter().chain(&self.adaptive_servers) {
                let res = match side {
                    Side::R => srv.session.update_r(m.clone()),
                    Side::S => srv.session.update_s(m.clone()),
                };
                res.map_err(|e| fail(i, &srv.site, format!("tail replay: {e}")))?;
            }
        }
        if engines_committed {
            // The engines hold the tail durably; bring the servers to the
            // same commit point so every log agrees the tail is sealed.
            self.commit_all(i)?;
        } else {
            self.tail = tail;
        }
        self.outcome.crashes += 1;
        Ok(())
    }

    /// Flush + verify every implementation against the oracle, with any
    /// armed fault plans installed under the queries.
    fn checkpoint(&mut self, i: usize) -> Result<(), Box<CheckFailure>> {
        // 1. Drain server queues and warm caches *before* faults go in:
        //    apply-phase damage is unrecoverable by design. The warm-up
        //    query also forces the lazy S rebuild inside each shard.
        let arming = !self.armed_faults.is_empty();
        for srv in self.servers.iter().chain(&self.adaptive_servers) {
            srv.session.flush().map_err(|e| fail(i, &srv.site, format!("flush: {e}")))?;
            if arming {
                srv.session
                    .query(Method::MaterializedView)
                    .map_err(|e| fail(i, &srv.site, format!("warm-up query: {e}")))?;
            }
        }
        for e in &mut self.engines {
            let site = format!("engine:{}", e.method);
            e.rebuild_if_dirty().map_err(|err| fail(i, &site, format!("cache rebuild: {err}")))?;
        }
        // Checkpoints are commit barriers in durable mode — everything
        // the queries below observe is also what a crash recovers to.
        self.commit_all(i)?;

        // 2. Install armed fault plans (engines and one shard per server).
        let armed = std::mem::take(&mut self.armed_faults);
        for &fault_seed in &armed {
            for e in &mut self.engines {
                self.outcome.faults_installed += e.install_faults(fault_seed);
            }
            for srv in self.servers.iter().chain(&self.adaptive_servers) {
                let stream = rng::derive_indexed(fault_seed, "check/serve", srv.shards as u64);
                let mut rn = rng::seeded(stream);
                let shard = rn.gen_range(0u64..srv.shards as u64) as usize;
                let mut plan = FaultPlan::new();
                for _ in 0..rn.gen_range(1u32..=2) {
                    plan = plan.fail_nth_read(None, rn.gen_range(0u64..32));
                }
                let site = srv.site.clone();
                srv.session
                    .install_fault_plan(shard, plan)
                    .map_err(|e| fail(i, &site, format!("install faults: {e}")))?;
                if rn.gen_bool(0.5) {
                    srv.session
                        .poison_cached_view(shard)
                        .map_err(|e| fail(i, &site, format!("poison view: {e}")))?;
                }
                self.outcome.faults_installed += 1;
            }
        }

        // 3. Oracle answer from the mirrors.
        let r: Vec<BaseTuple> = self.r_mirror.values().cloned().collect();
        let s: Vec<BaseTuple> = self.s_mirror.values().cloned().collect();
        let want = canon(oracle::join_tuples(&r, &s));

        // 4. Every engine agrees.
        for e in &mut self.engines {
            let site = format!("engine:{}", e.method);
            let got = e.query().map_err(|err| fail(i, &site, format!("query: {err}")))?;
            diff_join(&canon(got), &want).map_err(|msg| fail(i, &site, msg))?;
        }

        // 5. Every server agrees, for every method.
        for srv in &self.servers {
            for method in Method::all() {
                let site = format!("serve:{}:{}", srv.shards, method);
                let got =
                    srv.session.query(method).map_err(|e| fail(i, &site, format!("query: {e}")))?;
                diff_join(&canon(got), &want).map_err(|msg| fail(i, &site, msg))?;
            }
        }

        // 5b. Every adaptive server agrees too — the metamorphic claim
        //     that online migration never changes a checkpoint answer.
        //     The requested method is advisory on adaptive shards; each
        //     shard answers with its current structure, mid-migration or
        //     not, and the answer must still be the oracle's.
        for srv in &self.adaptive_servers {
            let got = srv
                .session
                .query(Method::MaterializedView)
                .map_err(|e| fail(i, &srv.site, format!("query: {e}")))?;
            diff_join(&canon(got), &want).map_err(|msg| fail(i, &srv.site, msg))?;
        }

        // 6. Cost-model metamorphic relations at the live workload point.
        if self.cfg.model_checks {
            self.model_checks(i)?;
        }

        // 7. Heal: clear residual faults so the next apply phase is clean.
        if arming {
            for e in &self.engines {
                e.db.clear_faults();
            }
            for srv in self.servers.iter().chain(&self.adaptive_servers) {
                for shard in 0..srv.shards {
                    let site = srv.site.clone();
                    srv.session
                        .clear_faults(shard)
                        .map_err(|e| fail(i, &site, format!("clear faults: {e}")))?;
                }
            }
        }

        self.outcome.checkpoints += 1;
        Ok(())
    }

    /// Metamorphic relations on the analytical model, evaluated at the
    /// *current* measured workload: (a) deferring updates is never
    /// cheaper than none, for every method; (b) predicted cost is
    /// non-decreasing in `‖dR‖` for MV and HH (strict) and for JI up to
    /// the small dips its page-access formulas are known to produce.
    fn model_checks(&self, i: usize) -> Result<(), Box<CheckFailure>> {
        let w0 = self.measured_workload(0.0);
        let live = self.r_mirror.len() as f64;
        let u1 = (live / 20.0).ceil().max(1.0);
        let totals = |updates: f64| -> Vec<f64> {
            let w = Workload { updates, ..w0.clone() };
            all_costs(&self.cfg.params, &w).iter().map(|c| c.total()).collect()
        };
        let base = totals(0.0);
        let at1 = totals(u1);
        let at2 = totals(2.0 * u1);
        for (k, method) in Method::all().into_iter().enumerate() {
            let site = format!("model:{method}");
            for (u, t) in [(u1, &at1), (2.0 * u1, &at2)] {
                if t[k] < base[k] - 1e-9 {
                    return Err(fail(
                        i,
                        &site,
                        format!(
                            "cost at ‖dR‖={u} is {} < {} at ‖dR‖=0 — deferred updates \
                             must never be predicted cheaper than none",
                            t[k], base[k]
                        ),
                    ));
                }
            }
            // JI's Yao-style page-access terms are non-monotone by a
            // hair (< 0.1% observed); MV and HH must be exactly monotone.
            let slack = if method == Method::JoinIndex { at1[k] * 2e-3 } else { 1e-9 };
            if at2[k] < at1[k] - slack {
                return Err(fail(
                    i,
                    &site,
                    format!(
                        "cost decreased from {} at ‖dR‖={u1} to {} at ‖dR‖={} — predicted \
                         I/O must be non-decreasing in the differential size",
                        at1[k],
                        at2[k],
                        2.0 * u1
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Measure the live mirrors into a model workload (the analogue of
    /// `GeneratedWorkload::measured`, over script-mutated relations).
    fn measured_workload(&self, updates: f64) -> Workload {
        let count_by_key = |mirror: &BTreeMap<u32, BaseTuple>| {
            let mut m: BTreeMap<u64, u64> = BTreeMap::new();
            for t in mirror.values() {
                *m.entry(t.key).or_insert(0) += 1;
            }
            m
        };
        let rk = count_by_key(&self.r_mirror);
        let sk = count_by_key(&self.s_mirror);
        let mut join_tuples = 0u64;
        let mut matched_r = 0u64;
        for (k, &rc) in &rk {
            if let Some(&sc) = sk.get(k) {
                join_tuples += rc * sc;
                matched_r += rc;
            }
        }
        let matched_s: u64 = sk.iter().filter(|(k, _)| rk.contains_key(*k)).map(|(_, &c)| c).sum();
        let nr = self.r_mirror.len().max(1) as f64;
        let ns = self.s_mirror.len().max(1) as f64;
        Workload {
            r_tuples: nr,
            s_tuples: ns,
            tr: self.script.spec.tuple_bytes as f64,
            ts: self.script.spec.tuple_bytes as f64,
            sr: matched_r as f64 / nr,
            ss: matched_s as f64 / ns,
            js: join_tuples as f64 / (nr * ns),
            pra: 0.1,
            updates,
        }
    }
}

/// Replay `script` under `cfg`. Returns the run statistics, or the first
/// divergence as a structured failure.
pub fn run_script(script: &Script, cfg: &CheckConfig) -> Result<CheckOutcome, Box<CheckFailure>> {
    let bad_input = |msg: String| {
        Box::new(CheckFailure { op_index: 0, site: "script".to_string(), message: msg })
    };
    if script.spec.tuple_bytes < BaseTuple::HEADER_BYTES + 8 {
        return Err(bad_input(format!(
            "tuple_bytes {} cannot carry a tagged payload (need ≥ {})",
            script.spec.tuple_bytes,
            BaseTuple::HEADER_BYTES + 8
        )));
    }
    // The initial relations come from the core generator, so scripts
    // start from the same workload family every other suite uses.
    let spec = WorkloadSpec {
        r_tuples: script.spec.r_tuples,
        s_tuples: script.spec.s_tuples,
        tuple_bytes: script.spec.tuple_bytes,
        sr: script.spec.sr,
        group_size: script.spec.group_size,
        pra: 0.0,
        update_rate: 0.0,
        seed: script.spec.seed,
    };
    let generated = spec.generate();

    let mut engines = Vec::with_capacity(3);
    for method in Method::all() {
        let dir = cfg.durable_root.as_ref().map(|root| root.join(format!("engine-{method}")));
        engines.push(
            Engine::new(method, cfg, generated.r.clone(), generated.s.clone(), dir)
                .map_err(|e| bad_input(format!("engine {method} construction: {e}")))?,
        );
    }
    let mut servers = Vec::with_capacity(script.shard_counts.len());
    let mut adaptive_servers = Vec::new();
    for (idx, &shards) in script.shard_counts.iter().enumerate() {
        let serve_cfg = ServeConfig {
            batch: script.batch,
            seed: rng::derive_indexed(script.spec.seed, "check/serve", shards as u64),
            durable_dir: cfg
                .durable_root
                .as_ref()
                .map(|root| root.join(format!("serve-{idx}-{shards}"))),
            ..ServeConfig::new(cfg.params.clone(), shards)
        };
        let server = Server::start(&serve_cfg, generated.r.clone(), generated.s.clone())
            .map_err(|e| bad_input(format!("server({shards} shards) start: {e}")))?;
        let session = server
            .session()
            .map_err(|e| bad_input(format!("server({shards} shards) session: {e}")))?;
        servers.push(Serving {
            shards,
            site: format!("serve:{shards}"),
            config: serve_cfg,
            _server: server,
            session,
        });
        if script.spec.adaptive {
            // A second fleet in adaptive mode, replaying identical traffic:
            // its shards re-price and migrate online while the fixed fleet
            // (and the oracle) pins what the answers must be.
            let adaptive_cfg = ServeConfig {
                batch: script.batch,
                seed: rng::derive_indexed(script.spec.seed, "check/serve-adaptive", shards as u64),
                durable_dir: cfg
                    .durable_root
                    .as_ref()
                    .map(|root| root.join(format!("serve-adaptive-{idx}-{shards}"))),
                adaptive: true,
                ..ServeConfig::new(cfg.params.clone(), shards)
            };
            let server = Server::start(&adaptive_cfg, generated.r.clone(), generated.s.clone())
                .map_err(|e| bad_input(format!("adaptive server({shards} shards) start: {e}")))?;
            let session = server
                .session()
                .map_err(|e| bad_input(format!("adaptive server({shards} shards) session: {e}")))?;
            adaptive_servers.push(Serving {
                shards,
                site: format!("serve-adaptive:{shards}"),
                config: adaptive_cfg,
                _server: server,
                session,
            });
        }
    }

    let mut driver = Driver {
        script,
        cfg,
        engines,
        servers,
        adaptive_servers,
        r_mirror: generated.r.iter().map(|t| (t.sur.0, t.clone())).collect(),
        s_mirror: generated.s.iter().map(|t| (t.sur.0, t.clone())).collect(),
        armed_faults: Vec::new(),
        tail: Vec::new(),
        durable: cfg.durable_root.is_some(),
        outcome: CheckOutcome::default(),
    };

    for (i, op) in script.ops.iter().enumerate() {
        match op {
            ScriptOp::Checkpoint => driver.checkpoint(i)?,
            ScriptOp::Fault { seed } => driver.armed_faults.push(*seed),
            ScriptOp::Batch => {
                for srv in driver.servers.iter().chain(&driver.adaptive_servers) {
                    srv.session.flush().map_err(|e| fail(i, &srv.site, format!("flush: {e}")))?;
                }
                driver.commit_all(i)?;
            }
            ScriptOp::Crash { seed } => {
                // Inert on the in-memory backend: nothing to reopen from.
                if driver.durable {
                    driver.crash(i, *seed)?;
                }
            }
            mutation => {
                let resolved = driver.resolve(mutation).map_err(|msg| fail(i, "script", msg))?;
                match resolved {
                    Some((side, m)) => {
                        driver.apply(i, side, &m)?;
                        driver.outcome.applied += 1;
                    }
                    None => driver.outcome.skipped += 1,
                }
            }
        }
    }
    // Close each engine's open telemetry window (the report capture does
    // that and lands any tail drift alerts in the event log first), then
    // total the audit's verdict over the whole replay.
    for e in &driver.engines {
        let report = e.db.run_report(format!("check:{}", e.method));
        driver.outcome.cost_drift_events +=
            report.events.iter().filter(|ev| ev.kind == EventKind::CostDrift).count();
    }
    // Adaptive fleet post-mortem: total the migration accounting and
    // enforce the liveness bound — a shard may migrate at most once per
    // two checkpoint decisions (the cooldown makes faster flapping a
    // controller bug, not a workload property).
    let last_op = script.ops.len().saturating_sub(1);
    let per_shard_cap = (driver.outcome.checkpoints as u64).div_ceil(2).max(1);
    for srv in &driver.adaptive_servers {
        let report = srv
            .session
            .report()
            .map_err(|e| fail(last_op, &srv.site, format!("final report: {e}")))?;
        let count = report.rollup.metrics.counter("migrate.count") as usize;
        driver.outcome.migrations += count;
        driver.outcome.migration_rollbacks +=
            report.rollup.metrics.counter("migrate.rollbacks") as usize;
        driver.outcome.migrations_by_server.push((srv.shards, count));
        for shard in &report.shards {
            let count = shard.metrics.counter("migrate.count");
            if count > per_shard_cap {
                return Err(fail(
                    last_op,
                    &srv.site,
                    format!(
                        "{} migrated {count} times over {} checkpoints (cap {per_shard_cap}) — \
                         the hysteresis/cooldown guard is flapping",
                        shard.name, driver.outcome.checkpoints
                    ),
                ));
            }
        }
    }
    Ok(driver.outcome)
}
