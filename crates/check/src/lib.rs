//! `trijoin-check`: a deterministic simulation harness in the
//! FoundationDB style, sitting at the top of the crate stack.
//!
//! The paper's entire argument is an equivalence: the materialized view
//! (§3.2), the join index (§3.3), and hybrid-hash (§3.4) must compute the
//! *same* `R ⋈ S` under any interleaving of insertions, deletions, and
//! attribute updates. The existing suites check hand-picked scenarios;
//! this crate explores the interleaving × fault × shard-count space
//! automatically:
//!
//! - [`gen`] turns a seed into a typed workload *script*
//!   ([`trijoin_common::Script`]) via the workspace seed tree;
//! - [`driver`] replays one script differentially against all three
//!   strategies, the brute-force oracle, and the sharded serving layer
//!   at every configured shard count, checking answer equivalence (and
//!   §8 recovery equivalence under injected faults) at every checkpoint,
//!   plus metamorphic relations on the analytical cost model;
//! - [`shrink`] delta-debugs any failing script down to a 1-minimal op
//!   sequence, which the `trijoin` CLI serializes as a JSON repro file
//!   replayable with `trijoin repro <file>`.
//!
//! Determinism is end-to-end: `trijoin check --seed S --ops K` generates,
//! replays, and (on failure) shrinks the identical script on every
//! machine, and the committed corpus under `tests/corpus/` keeps a set of
//! known-good scripts replaying in CI.

pub mod driver;
pub mod gen;
pub mod shrink;

pub use driver::{run_script, CheckConfig, CheckFailure, CheckOutcome, Sabotage};
pub use gen::{generate, GenConfig};
pub use shrink::{shrink, ShrinkResult};
