//! Seeded workload-script generation.
//!
//! Every random decision derives from one root seed through the
//! workspace seed tree ([`trijoin_common::rng`]): the initial relations
//! from `derive(seed, "check/workload")`, the op stream from
//! `derive(seed, "check/ops")`, and the `k`-th fault plan from
//! `derive_indexed(seed, "check/fault", k)` — so `generate` is a pure
//! function of its configuration and two runs of `trijoin check --seed S`
//! explore the identical script.

use rand::prelude::*;
use trijoin_common::{rng, shard_of_key, Adversary, AdversaryShape, Script, ScriptOp, ScriptSpec};

/// Base of the generator's unmatched-key range. Far above the matched
/// group keys (small integers) and distinct per emitted op, so removing
/// ops during shrinking never changes which keys later ops use.
const UNMATCHED_BASE: u64 = 1 << 41;

/// Configuration of one generated script.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Root seed of the script's seed tree.
    pub seed: u64,
    /// Number of ops to emit (checkpoints included).
    pub ops: usize,
    /// `‖R‖` of the initial relations.
    pub r_tuples: u32,
    /// `‖S‖` of the initial relations.
    pub s_tuples: u32,
    /// Serialized tuple size.
    pub tuple_bytes: usize,
    /// Initial semijoin selectivity.
    pub sr: f64,
    /// Join partners per matched tuple.
    pub group_size: u32,
    /// Serving-layer shard counts to replay against.
    pub shard_counts: Vec<usize>,
    /// Admission batch size for every server.
    pub batch: usize,
    /// Probability (in percent) that an op slot becomes a fault injection.
    pub fault_pct: u32,
    /// Probability (in percent) that a control-flow slot becomes a
    /// durable-mode `crash` op instead. The default 0 draws *nothing*
    /// from the RNG, so scripts (and the committed corpus) generated
    /// before the crash grammar existed are reproduced byte-identically.
    pub crash_pct: u32,
    /// Adversarial traffic shape. `None` (the default) emits the classic
    /// uniform stream from the `"check/ops"` RNG exactly as before the
    /// adversary grammar existed — shaped streams draw from their own
    /// `"check/adversary"` stream, so this cannot perturb legacy scripts.
    pub adversary: Option<Adversary>,
    /// Mark the script for adaptive serving replay (shards migrate
    /// strategies online; the driver asserts at least one migration).
    pub adaptive: bool,
}

impl GenConfig {
    /// Harness defaults: small relations (fast replay, still non-trivial
    /// joins — 6 matched groups of 4×4 partners), shard counts 1/2/4.
    pub fn new(seed: u64, ops: usize) -> GenConfig {
        GenConfig {
            seed,
            ops,
            r_tuples: 96,
            s_tuples: 80,
            tuple_bytes: 64,
            sr: 0.25,
            group_size: 4,
            shard_counts: vec![1, 2, 4],
            batch: 8,
            fault_pct: 4,
            crash_pct: 0,
            adversary: None,
            adaptive: false,
        }
    }

    /// Harness defaults plus an adversarial shape, sized so every shape
    /// reliably crosses the adaptive controller's cost crossovers:
    /// adaptive replay on, and relations big enough that the strategy
    /// choice actually matters per shard at 1/2/4 shards.
    pub fn adversarial(seed: u64, ops: usize, shape: AdversaryShape) -> GenConfig {
        GenConfig {
            adversary: Some(Adversary::new(shape)),
            adaptive: true,
            ..GenConfig::new(seed, ops)
        }
    }
}

/// Emit a script from the seed tree under `cfg`.
pub fn generate(cfg: &GenConfig) -> Script {
    if let Some(adv) = &cfg.adversary {
        return generate_adversary(cfg, adv);
    }
    let mut rn = rng::seeded(rng::derive(cfg.seed, "check/ops"));
    let groups =
        (((cfg.sr * cfg.r_tuples as f64) / cfg.group_size.max(1) as f64).round() as u64).max(1);

    let mut ops: Vec<ScriptOp> = Vec::with_capacity(cfg.ops + 1);
    // Fresh surrogates and unmatched keys come from generator-owned
    // counters: each emitted op owns its values, so any subsequence of
    // the script (a shrinking candidate) still inserts distinct tuples.
    let mut next_sur_r = cfg.r_tuples;
    let mut next_sur_s = cfg.s_tuples;
    let mut next_unmatched = UNMATCHED_BASE;
    let mut next_fault = 0u64;
    let mut next_crash = 0u64;
    let mut since_checkpoint = 0usize;

    let mut tag = 0u64;
    while ops.len() < cfg.ops {
        // Never drift too far from a checkpoint: long unchecked stretches
        // cost coverage (a divergence is only observed at a checkpoint).
        if since_checkpoint >= 12 {
            ops.push(ScriptOp::Checkpoint);
            since_checkpoint = 0;
            continue;
        }
        since_checkpoint += 1;
        tag += 1;
        let pick = rn.gen_range(0u64..1 << 32);
        // A 60/40 matched/unmatched key split keeps the join populated
        // while still exercising the no-partner paths.
        let key = if rn.gen_bool(0.6) {
            rn.gen_range(0..groups)
        } else {
            next_unmatched += 1;
            next_unmatched
        };
        let roll = rn.gen_range(0u32..100);
        let op = match roll {
            // R-side traffic dominates, matching the paper's model.
            0..=17 => {
                next_sur_r += 1;
                ScriptOp::InsertR { sur: next_sur_r, key, tag }
            }
            18..=29 => ScriptOp::DeleteR { pick },
            30..=47 => ScriptOp::ModifyJoinR { pick, key, tag },
            48..=59 => ScriptOp::ModifyPayloadR { pick, tag },
            // S-side traffic exercises the lazy cached-structure rebuild.
            60..=67 => {
                next_sur_s += 1;
                ScriptOp::InsertS { sur: next_sur_s, key, tag }
            }
            68..=73 => ScriptOp::DeleteS { pick },
            74..=79 => ScriptOp::ModifyJoinS { pick, key, tag },
            80..=83 => ScriptOp::ModifyPayloadS { pick, tag },
            84..=91 => {
                since_checkpoint = 0;
                ScriptOp::Checkpoint
            }
            92..=95 => ScriptOp::Batch,
            _ => {
                // Guarded draws: with crash_pct = 0 the crash branch
                // consumes no randomness, keeping pre-crash-grammar
                // scripts (the committed corpus) byte-identical.
                if cfg.crash_pct > 0 && rn.gen_range(0u32..100) < cfg.crash_pct {
                    let seed = rng::derive_indexed(cfg.seed, "check/crash", next_crash);
                    next_crash += 1;
                    ScriptOp::Crash { seed }
                } else if rn.gen_range(0u32..100) < cfg.fault_pct * 25 {
                    let seed = rng::derive_indexed(cfg.seed, "check/fault", next_fault);
                    next_fault += 1;
                    ScriptOp::Fault { seed }
                } else {
                    ScriptOp::Batch
                }
            }
        };
        ops.push(op);
    }
    // Every script observes its final state.
    if !matches!(ops.last(), Some(ScriptOp::Checkpoint)) {
        ops.push(ScriptOp::Checkpoint);
    }

    Script {
        name: format!("seed-{}", cfg.seed),
        spec: ScriptSpec {
            r_tuples: cfg.r_tuples,
            s_tuples: cfg.s_tuples,
            tuple_bytes: cfg.tuple_bytes,
            sr: cfg.sr,
            group_size: cfg.group_size,
            seed: rng::derive(cfg.seed, "check/workload"),
            adversary: None,
            adaptive: cfg.adaptive,
        },
        shard_counts: cfg.shard_counts.clone(),
        batch: cfg.batch,
        ops,
    }
}

/// Draw a matched group key from a Zipf(`exponent`) distribution over
/// the group indices (rank 1 = group 0 is the hottest). Inverse-CDF over
/// the precomputed harmonic weights; one `u32` draw per key.
fn zipf_key(rn: &mut impl Rng, cdf: &[f64]) -> u64 {
    let total = *cdf.last().expect("at least one group");
    let u = (rn.gen_range(0u32..u32::MAX) as f64 / u32::MAX as f64) * total;
    cdf.iter().position(|&c| u <= c).unwrap_or(cdf.len() - 1) as u64
}

/// Emit a shaped adversarial script (see [`AdversaryShape`]).
///
/// All four shapes share one skeleton: the stream alternates *update
/// regimes* (dense mutation trains that pull the per-shard cost model
/// toward hybrid-hash) and *query regimes* (payload-only churn plus
/// frequent checkpoints that pull it back toward the cached structures),
/// so an adaptive shard that prices the §3 model must migrate at the
/// regime boundaries. The shapes differ in *which* axis they stress:
///
/// - `bursty`: short high-`Pr_A` update trains, long checkpointed lulls;
/// - `zipf`: every key draw is Zipf-skewed, so the differential keeps
///   hammering the same hot groups (the skew sketch must light up);
/// - `phase`: long symmetric regimes with the starkest ratio shifts;
/// - `imbalance`: mutations are biased onto the keys one shard owns at
///   the largest configured shard count, starving the siblings.
///
/// Every regime boundary checkpoints, no unchecked stretch exceeds 12
/// ops, and the stream draws from its own `"check/adversary"` seed.
fn generate_adversary(cfg: &GenConfig, adv: &Adversary) -> Script {
    let mut rn = rng::seeded(rng::derive(cfg.seed, "check/adversary"));
    let groups =
        (((cfg.sr * cfg.r_tuples as f64) / cfg.group_size.max(1) as f64).round() as u64).max(1);
    let max_shards = cfg.shard_counts.iter().copied().max().unwrap_or(1);
    // Zipf inverse-CDF over group ranks (group 0 hottest).
    let mut cdf = Vec::with_capacity(groups as usize);
    let mut acc = 0.0;
    for rank in 1..=groups {
        acc += 1.0 / (rank as f64).powf(adv.exponent);
        cdf.push(acc);
    }
    // Keys the largest shard count routes to shard 0 — the imbalance
    // shape's target partition.
    let owned: Vec<u64> = (0..groups).filter(|&k| shard_of_key(k, max_shards) == 0).collect();

    let mut ops: Vec<ScriptOp> = Vec::with_capacity(cfg.ops + 8);
    let mut next_sur_r = cfg.r_tuples;
    let mut next_fault = 0u64;
    let mut since_checkpoint = 0usize;
    let mut tag = 0u64;

    // Regime lengths per shape: (update-train ops, query-lull ops).
    let (train, lull) = match adv.shape {
        AdversaryShape::Bursty => (10, 14),
        AdversaryShape::Zipf => (12, 12),
        AdversaryShape::Phase => (20, 20),
        AdversaryShape::Imbalance => (12, 12),
    };

    let key_for = |rn: &mut StdRng| -> u64 {
        match adv.shape {
            AdversaryShape::Zipf => zipf_key(rn, &cdf),
            AdversaryShape::Imbalance if !owned.is_empty() => {
                // 7/8 of update churn lands on shard 0's keys.
                if rn.gen_range(0u32..8) < 7 {
                    owned[rn.gen_range(0..owned.len() as u64) as usize]
                } else {
                    rn.gen_range(0..groups)
                }
            }
            _ => rn.gen_range(0..groups),
        }
    };

    let mut update_regime = true;
    while ops.len() < cfg.ops {
        if update_regime {
            // Dense mutation train: join-attribute churn (high Pr_A) with
            // a sprinkle of inserts/deletes, flushed and checkpointed at
            // the end so the oracle observes the regime's effect with any
            // triggered migration still in flight on the next train.
            for _ in 0..train {
                if ops.len() >= cfg.ops {
                    break;
                }
                // Cap at 11 mutations, not 12: the train's trailing
                // `Batch` op extends the streak by one before the regime
                // boundary checkpoint lands.
                if since_checkpoint >= 11 {
                    ops.push(ScriptOp::Checkpoint);
                    since_checkpoint = 0;
                    continue;
                }
                tag += 1;
                since_checkpoint += 1;
                let key = key_for(&mut rn);
                let pick = rn.gen_range(0u64..1 << 32);
                ops.push(match rn.gen_range(0u32..10) {
                    0..=6 => ScriptOp::ModifyJoinR { pick, key, tag },
                    7..=8 => {
                        next_sur_r += 1;
                        ScriptOp::InsertR { sur: next_sur_r, key, tag }
                    }
                    _ => ScriptOp::DeleteR { pick },
                });
            }
            ops.push(ScriptOp::Batch);
        } else {
            // Query-heavy lull: payload-only churn (Pr_A → 0) checked
            // every few ops, so queries dominate the update/query ratio.
            // The i%4 cadence keeps every unchecked streak at 3 ops, so
            // the train's 12-op cap is never at risk here.
            for i in 0..lull {
                if ops.len() >= cfg.ops {
                    break;
                }
                tag += 1;
                let pick = rn.gen_range(0u64..1 << 32);
                if i % 4 == 3 {
                    ops.push(ScriptOp::Checkpoint);
                } else if rn.gen_range(0u32..12) == 0 && cfg.fault_pct > 0 {
                    let seed = rng::derive_indexed(cfg.seed, "check/adversary-fault", next_fault);
                    next_fault += 1;
                    ops.push(ScriptOp::Fault { seed });
                } else {
                    ops.push(ScriptOp::ModifyPayloadR { pick, tag });
                }
            }
        }
        // Regime boundary: always observe the flip.
        ops.push(ScriptOp::Checkpoint);
        since_checkpoint = 0;
        update_regime = !update_regime;
    }
    if !matches!(ops.last(), Some(ScriptOp::Checkpoint)) {
        ops.push(ScriptOp::Checkpoint);
    }

    Script {
        name: format!("{}-seed-{}", adv.shape.as_str(), cfg.seed),
        spec: ScriptSpec {
            r_tuples: cfg.r_tuples,
            s_tuples: cfg.s_tuples,
            tuple_bytes: cfg.tuple_bytes,
            sr: cfg.sr,
            group_size: cfg.group_size,
            seed: rng::derive(cfg.seed, "check/workload"),
            adversary: Some(adv.clone()),
            adaptive: cfg.adaptive,
        },
        shard_counts: cfg.shard_counts.clone(),
        batch: cfg.batch,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::new(7, 120);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        let c = generate(&GenConfig::new(8, 120));
        assert_ne!(a.ops, c.ops, "different seeds explore different scripts");
    }

    #[test]
    fn scripts_end_with_a_checkpoint_and_stay_checked() {
        for seed in 0..20 {
            let script = generate(&GenConfig::new(seed, 100));
            assert!(matches!(script.ops.last(), Some(ScriptOp::Checkpoint)));
            assert!(script.checkpoints() >= 100 / 13, "seed {seed} under-checkpoints");
            // No stretch of more than 12 mutations runs unobserved.
            let mut streak = 0;
            for op in &script.ops {
                if matches!(op, ScriptOp::Checkpoint) {
                    streak = 0;
                } else {
                    streak += 1;
                    assert!(streak <= 12, "seed {seed} has an unchecked stretch");
                }
            }
        }
    }

    #[test]
    fn inserted_surrogates_are_unique() {
        let script = generate(&GenConfig::new(3, 400));
        let mut r_surs = Vec::new();
        let mut s_surs = Vec::new();
        for op in &script.ops {
            match op {
                ScriptOp::InsertR { sur, .. } => r_surs.push(*sur),
                ScriptOp::InsertS { sur, .. } => s_surs.push(*sur),
                _ => {}
            }
        }
        let (rn, sn) = (r_surs.len(), s_surs.len());
        r_surs.sort_unstable();
        r_surs.dedup();
        s_surs.sort_unstable();
        s_surs.dedup();
        assert_eq!(r_surs.len(), rn);
        assert_eq!(s_surs.len(), sn);
        assert!(r_surs.iter().all(|&s| s >= 96), "fresh surrogates sit above the initial ones");
    }

    #[test]
    fn crash_emission_is_opt_in_and_deterministic() {
        // Default: no crash ops, ever (the corpus predates the grammar).
        for seed in 0..10 {
            let script = generate(&GenConfig::new(seed, 300));
            assert!(!script.ops.iter().any(|op| matches!(op, ScriptOp::Crash { .. })));
        }
        // Opt-in: crash ops appear, with distinct derived seeds, and the
        // whole script is still a pure function of the config.
        let cfg = GenConfig { crash_pct: 100, ..GenConfig::new(5, 600) };
        let script = generate(&cfg);
        assert_eq!(script, generate(&cfg));
        let mut seeds: Vec<u64> = script
            .ops
            .iter()
            .filter_map(|op| match op {
                ScriptOp::Crash { seed } => Some(*seed),
                _ => None,
            })
            .collect();
        assert!(!seeds.is_empty(), "crash_pct=100 must emit crash ops");
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "each crash op owns a distinct seed");
    }

    #[test]
    fn op_mix_covers_every_kind() {
        // One long script should exercise the full grammar.
        let script = generate(&GenConfig::new(11, 2000));
        let mut kinds: Vec<&str> = script.ops.iter().map(|o| o.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert!(kinds.len() >= 10, "only saw {kinds:?}");
    }

    #[test]
    fn adversary_generation_is_deterministic_and_stamps_v3() {
        for shape in AdversaryShape::all() {
            let cfg = GenConfig::adversarial(21, 240, shape);
            let a = generate(&cfg);
            assert_eq!(a, generate(&cfg), "{} must be a pure function of the seed", shape.as_str());
            assert_eq!(a.version(), 3, "adversarial scripts carry the v3 extensions");
            assert_eq!(a.spec.adversary.as_ref().map(|adv| adv.shape), Some(shape));
            assert!(a.spec.adaptive);
            assert!(a.name.starts_with(shape.as_str()));
            let b = generate(&GenConfig::adversarial(22, 240, shape));
            assert_ne!(a.ops, b.ops, "different seeds explore different scripts");
        }
    }

    #[test]
    fn adversary_scripts_stay_checked_and_alternate_regimes() {
        for shape in AdversaryShape::all() {
            for seed in [3u64, 77] {
                let script = generate(&GenConfig::adversarial(seed, 300, shape));
                assert!(matches!(script.ops.last(), Some(ScriptOp::Checkpoint)));
                let mut streak = 0;
                for op in &script.ops {
                    if matches!(op, ScriptOp::Checkpoint) {
                        streak = 0;
                    } else {
                        streak += 1;
                        assert!(streak <= 12, "{}: unchecked stretch", shape.as_str());
                    }
                }
                // Both regimes must be present: join-attribute churn from
                // the update trains, payload-only churn from the lulls.
                let joins = script
                    .ops
                    .iter()
                    .filter(|op| matches!(op, ScriptOp::ModifyJoinR { .. }))
                    .count();
                let payloads = script
                    .ops
                    .iter()
                    .filter(|op| matches!(op, ScriptOp::ModifyPayloadR { .. }))
                    .count();
                assert!(joins >= 20, "{}: update trains too thin ({joins})", shape.as_str());
                assert!(payloads >= 20, "{}: query lulls too thin ({payloads})", shape.as_str());
            }
        }
    }

    #[test]
    fn zipf_shape_skews_update_keys_onto_hot_groups() {
        let script = generate(&GenConfig::adversarial(9, 600, AdversaryShape::Zipf));
        let mut by_key = std::collections::BTreeMap::new();
        let mut total = 0u64;
        for op in &script.ops {
            if let ScriptOp::ModifyJoinR { key, .. } | ScriptOp::InsertR { key, .. } = op {
                *by_key.entry(*key).or_insert(0u64) += 1;
                total += 1;
            }
        }
        let hottest = by_key.values().copied().max().unwrap_or(0);
        // Uniform over the ~12 groups would put ~8% on any one key; the
        // Zipf(1.2) head should take a much larger share.
        assert!(
            hottest * 5 >= total,
            "hot key holds {hottest}/{total}, expected a Zipf head of at least 20%"
        );
    }

    #[test]
    fn imbalance_shape_starves_the_sibling_shards() {
        let cfg = GenConfig::adversarial(13, 600, AdversaryShape::Imbalance);
        let max_shards = cfg.shard_counts.iter().copied().max().unwrap();
        let script = generate(&cfg);
        let mut on_zero = 0u64;
        let mut total = 0u64;
        for op in &script.ops {
            if let ScriptOp::ModifyJoinR { key, .. } | ScriptOp::InsertR { key, .. } = op {
                total += 1;
                if shard_of_key(*key, max_shards) == 0 {
                    on_zero += 1;
                }
            }
        }
        assert!(
            on_zero * 4 >= total * 3,
            "shard 0 sees {on_zero}/{total} mutations, expected at least 75%"
        );
    }

    #[test]
    fn adversary_and_legacy_streams_are_independent() {
        // Turning the adversary grammar on must not perturb the legacy
        // generator: it draws from its own derived stream.
        let legacy = generate(&GenConfig::new(7, 120));
        let again = generate(&GenConfig::new(7, 120));
        assert_eq!(legacy, again);
        assert_eq!(legacy.version(), 2, "legacy scripts still serialize as v2");
    }
}
