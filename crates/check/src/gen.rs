//! Seeded workload-script generation.
//!
//! Every random decision derives from one root seed through the
//! workspace seed tree ([`trijoin_common::rng`]): the initial relations
//! from `derive(seed, "check/workload")`, the op stream from
//! `derive(seed, "check/ops")`, and the `k`-th fault plan from
//! `derive_indexed(seed, "check/fault", k)` — so `generate` is a pure
//! function of its configuration and two runs of `trijoin check --seed S`
//! explore the identical script.

use rand::prelude::*;
use trijoin_common::{rng, Script, ScriptOp, ScriptSpec};

/// Base of the generator's unmatched-key range. Far above the matched
/// group keys (small integers) and distinct per emitted op, so removing
/// ops during shrinking never changes which keys later ops use.
const UNMATCHED_BASE: u64 = 1 << 41;

/// Configuration of one generated script.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Root seed of the script's seed tree.
    pub seed: u64,
    /// Number of ops to emit (checkpoints included).
    pub ops: usize,
    /// `‖R‖` of the initial relations.
    pub r_tuples: u32,
    /// `‖S‖` of the initial relations.
    pub s_tuples: u32,
    /// Serialized tuple size.
    pub tuple_bytes: usize,
    /// Initial semijoin selectivity.
    pub sr: f64,
    /// Join partners per matched tuple.
    pub group_size: u32,
    /// Serving-layer shard counts to replay against.
    pub shard_counts: Vec<usize>,
    /// Admission batch size for every server.
    pub batch: usize,
    /// Probability (in percent) that an op slot becomes a fault injection.
    pub fault_pct: u32,
    /// Probability (in percent) that a control-flow slot becomes a
    /// durable-mode `crash` op instead. The default 0 draws *nothing*
    /// from the RNG, so scripts (and the committed corpus) generated
    /// before the crash grammar existed are reproduced byte-identically.
    pub crash_pct: u32,
}

impl GenConfig {
    /// Harness defaults: small relations (fast replay, still non-trivial
    /// joins — 6 matched groups of 4×4 partners), shard counts 1/2/4.
    pub fn new(seed: u64, ops: usize) -> GenConfig {
        GenConfig {
            seed,
            ops,
            r_tuples: 96,
            s_tuples: 80,
            tuple_bytes: 64,
            sr: 0.25,
            group_size: 4,
            shard_counts: vec![1, 2, 4],
            batch: 8,
            fault_pct: 4,
            crash_pct: 0,
        }
    }
}

/// Emit a script from the seed tree under `cfg`.
pub fn generate(cfg: &GenConfig) -> Script {
    let mut rn = rng::seeded(rng::derive(cfg.seed, "check/ops"));
    let groups =
        (((cfg.sr * cfg.r_tuples as f64) / cfg.group_size.max(1) as f64).round() as u64).max(1);

    let mut ops: Vec<ScriptOp> = Vec::with_capacity(cfg.ops + 1);
    // Fresh surrogates and unmatched keys come from generator-owned
    // counters: each emitted op owns its values, so any subsequence of
    // the script (a shrinking candidate) still inserts distinct tuples.
    let mut next_sur_r = cfg.r_tuples;
    let mut next_sur_s = cfg.s_tuples;
    let mut next_unmatched = UNMATCHED_BASE;
    let mut next_fault = 0u64;
    let mut next_crash = 0u64;
    let mut since_checkpoint = 0usize;

    let mut tag = 0u64;
    while ops.len() < cfg.ops {
        // Never drift too far from a checkpoint: long unchecked stretches
        // cost coverage (a divergence is only observed at a checkpoint).
        if since_checkpoint >= 12 {
            ops.push(ScriptOp::Checkpoint);
            since_checkpoint = 0;
            continue;
        }
        since_checkpoint += 1;
        tag += 1;
        let pick = rn.gen_range(0u64..1 << 32);
        // A 60/40 matched/unmatched key split keeps the join populated
        // while still exercising the no-partner paths.
        let key = if rn.gen_bool(0.6) {
            rn.gen_range(0..groups)
        } else {
            next_unmatched += 1;
            next_unmatched
        };
        let roll = rn.gen_range(0u32..100);
        let op = match roll {
            // R-side traffic dominates, matching the paper's model.
            0..=17 => {
                next_sur_r += 1;
                ScriptOp::InsertR { sur: next_sur_r, key, tag }
            }
            18..=29 => ScriptOp::DeleteR { pick },
            30..=47 => ScriptOp::ModifyJoinR { pick, key, tag },
            48..=59 => ScriptOp::ModifyPayloadR { pick, tag },
            // S-side traffic exercises the lazy cached-structure rebuild.
            60..=67 => {
                next_sur_s += 1;
                ScriptOp::InsertS { sur: next_sur_s, key, tag }
            }
            68..=73 => ScriptOp::DeleteS { pick },
            74..=79 => ScriptOp::ModifyJoinS { pick, key, tag },
            80..=83 => ScriptOp::ModifyPayloadS { pick, tag },
            84..=91 => {
                since_checkpoint = 0;
                ScriptOp::Checkpoint
            }
            92..=95 => ScriptOp::Batch,
            _ => {
                // Guarded draws: with crash_pct = 0 the crash branch
                // consumes no randomness, keeping pre-crash-grammar
                // scripts (the committed corpus) byte-identical.
                if cfg.crash_pct > 0 && rn.gen_range(0u32..100) < cfg.crash_pct {
                    let seed = rng::derive_indexed(cfg.seed, "check/crash", next_crash);
                    next_crash += 1;
                    ScriptOp::Crash { seed }
                } else if rn.gen_range(0u32..100) < cfg.fault_pct * 25 {
                    let seed = rng::derive_indexed(cfg.seed, "check/fault", next_fault);
                    next_fault += 1;
                    ScriptOp::Fault { seed }
                } else {
                    ScriptOp::Batch
                }
            }
        };
        ops.push(op);
    }
    // Every script observes its final state.
    if !matches!(ops.last(), Some(ScriptOp::Checkpoint)) {
        ops.push(ScriptOp::Checkpoint);
    }

    Script {
        name: format!("seed-{}", cfg.seed),
        spec: ScriptSpec {
            r_tuples: cfg.r_tuples,
            s_tuples: cfg.s_tuples,
            tuple_bytes: cfg.tuple_bytes,
            sr: cfg.sr,
            group_size: cfg.group_size,
            seed: rng::derive(cfg.seed, "check/workload"),
        },
        shard_counts: cfg.shard_counts.clone(),
        batch: cfg.batch,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::new(7, 120);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        let c = generate(&GenConfig::new(8, 120));
        assert_ne!(a.ops, c.ops, "different seeds explore different scripts");
    }

    #[test]
    fn scripts_end_with_a_checkpoint_and_stay_checked() {
        for seed in 0..20 {
            let script = generate(&GenConfig::new(seed, 100));
            assert!(matches!(script.ops.last(), Some(ScriptOp::Checkpoint)));
            assert!(script.checkpoints() >= 100 / 13, "seed {seed} under-checkpoints");
            // No stretch of more than 12 mutations runs unobserved.
            let mut streak = 0;
            for op in &script.ops {
                if matches!(op, ScriptOp::Checkpoint) {
                    streak = 0;
                } else {
                    streak += 1;
                    assert!(streak <= 12, "seed {seed} has an unchecked stretch");
                }
            }
        }
    }

    #[test]
    fn inserted_surrogates_are_unique() {
        let script = generate(&GenConfig::new(3, 400));
        let mut r_surs = Vec::new();
        let mut s_surs = Vec::new();
        for op in &script.ops {
            match op {
                ScriptOp::InsertR { sur, .. } => r_surs.push(*sur),
                ScriptOp::InsertS { sur, .. } => s_surs.push(*sur),
                _ => {}
            }
        }
        let (rn, sn) = (r_surs.len(), s_surs.len());
        r_surs.sort_unstable();
        r_surs.dedup();
        s_surs.sort_unstable();
        s_surs.dedup();
        assert_eq!(r_surs.len(), rn);
        assert_eq!(s_surs.len(), sn);
        assert!(r_surs.iter().all(|&s| s >= 96), "fresh surrogates sit above the initial ones");
    }

    #[test]
    fn crash_emission_is_opt_in_and_deterministic() {
        // Default: no crash ops, ever (the corpus predates the grammar).
        for seed in 0..10 {
            let script = generate(&GenConfig::new(seed, 300));
            assert!(!script.ops.iter().any(|op| matches!(op, ScriptOp::Crash { .. })));
        }
        // Opt-in: crash ops appear, with distinct derived seeds, and the
        // whole script is still a pure function of the config.
        let cfg = GenConfig { crash_pct: 100, ..GenConfig::new(5, 600) };
        let script = generate(&cfg);
        assert_eq!(script, generate(&cfg));
        let mut seeds: Vec<u64> = script
            .ops
            .iter()
            .filter_map(|op| match op {
                ScriptOp::Crash { seed } => Some(*seed),
                _ => None,
            })
            .collect();
        assert!(!seeds.is_empty(), "crash_pct=100 must emit crash ops");
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "each crash op owns a distinct seed");
    }

    #[test]
    fn op_mix_covers_every_kind() {
        // One long script should exercise the full grammar.
        let script = generate(&GenConfig::new(11, 2000));
        let mut kinds: Vec<&str> = script.ops.iter().map(|o| o.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert!(kinds.len() >= 10, "only saw {kinds:?}");
    }
}
