//! The B⁺-tree proper.
//!
//! One tree = one file on the [`Disk`]. The root node is kept in memory and
//! never charges I/O, matching the paper's Appendix assumption that "the
//! root node is permanently stored in main memory"; every other node read
//! or write charges one random I/O through the disk.
//!
//! Two usage modes, per Table 5 of the paper:
//! * **clustered** — leaves hold full tuples keyed on the surrogate
//!   (relations `R`, `S`, and the join index `JI` keyed on `r`);
//! * **inverted** — a secondary index keyed on the join attribute whose
//!   leaf values are surrogates (the non-clustered index on `S.A`, and the
//!   non-clustered index on `JI.s`).
//!
//! Batch access ([`BTree::fetch_many`]) deduplicates page touches within the
//! batch, which is exactly the semantics of Yao's formula ("a page is
//! accessed at most once") that the analytical model charges for scheduled,
//! pointer-sorted access.
//!
//! Deletes are *lazy*: entries are removed from leaves but nodes are never
//! merged, and empty leaves stay chained. This keeps the paper's workloads
//! exact (updates are delete+insert pairs of the same surrogate, so
//! occupancy stays stable) while avoiding rebalancing machinery the cost
//! model never prices.

use trijoin_common::{Error, FxHashSet, Result, SystemParams};
use trijoin_storage::{Disk, FileId, PageId};

use crate::node::{self, Node};

/// Capacity configuration for one tree.
#[derive(Debug, Clone, Copy)]
pub struct BTreeConfig {
    /// Maximum entries per leaf (occupancy-derived; also byte-bounded).
    pub leaf_cap: usize,
    /// Maximum separator keys per internal node (the paper's `FO`; also
    /// byte-bounded by the page size).
    pub internal_cap: usize,
}

impl BTreeConfig {
    /// Hard byte-capacity of an internal node for a given page size.
    pub fn max_internal_keys(page_size: usize) -> usize {
        (page_size.saturating_sub(7)) / 12
    }

    /// Config for a clustered tree whose leaves hold full tuples of
    /// `tuple_bytes` serialized bytes: `n = ⌊P·PO/T⌋` tuples per leaf page,
    /// exactly the paper's `n_R` packing.
    pub fn clustered(params: &SystemParams, tuple_bytes: usize) -> Self {
        let leaf_cap = params.tuples_per_page(tuple_bytes).max(2);
        BTreeConfig {
            leaf_cap,
            internal_cap: params.fan_out.min(Self::max_internal_keys(params.page_size)).max(2),
        }
    }

    /// Config for an inverted (secondary) index whose leaf values are
    /// 4-byte surrogates: entry ≈ 14 bytes, capped at the paper's `FO`.
    pub fn inverted(params: &SystemParams) -> Self {
        let entry_bytes = 8 + 2 + params.ssur;
        let leaf_cap = params.fan_out.min(params.tuples_per_page(entry_bytes)).max(2);
        BTreeConfig {
            leaf_cap,
            internal_cap: params.fan_out.min(Self::max_internal_keys(params.page_size)).max(2),
        }
    }
}

/// Persisted shape of one tree: everything [`BTree::open`] needs to
/// reattach to its pages after a process restart. The page *contents* are
/// the durable backend's problem; this is the handful of in-memory fields
/// (`BTree` keeps them outside the page images because the paper's model
/// never prices reading them back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeMeta {
    /// File the tree's pages live in.
    pub file: u32,
    /// Page number of the memory-resident root within that file.
    pub root_page: u32,
    /// Tree height in levels (1 = the root is a leaf).
    pub height: usize,
    /// Total entry count.
    pub entries: u64,
    /// Leaf page count.
    pub leaves: u64,
}

/// A B⁺-tree over `u64` keys with byte-string values (duplicates allowed).
pub struct BTree {
    disk: Disk,
    file: FileId,
    cfg: BTreeConfig,
    /// Memory-resident root (free of I/O charge).
    root: Node,
    root_page: u32,
    height: usize,
    entries: u64,
    leaves: u64,
}

/// Where a descent landed: the memory-resident root leaf, or a leaf page.
enum LeafLoc {
    Root,
    Page(u32),
}

/// Outcome of scanning one leaf during a chain walk.
enum Step {
    Done,
    Next(u32),
}

impl BTree {
    /// Create an empty tree (root is an empty leaf).
    pub fn new(disk: &Disk, cfg: BTreeConfig) -> Result<Self> {
        let file = disk.create_file();
        let root = Node::empty_leaf();
        let pid = disk.allocate_page(file)?;
        disk.write_page_free(pid, &root.to_page(disk.page_size())?)?;
        Ok(BTree {
            disk: disk.clone(),
            file,
            cfg,
            root,
            root_page: pid.page,
            height: 1,
            entries: 0,
            leaves: 1,
        })
    }

    /// Bulk-load from entries sorted by `(key, value)`. Charges one write
    /// I/O per node page (leaves and internals); the root stays resident.
    ///
    /// Returns an error if the input is unsorted.
    pub fn bulk_load(
        disk: &Disk,
        cfg: BTreeConfig,
        entries: impl IntoIterator<Item = (u64, Vec<u8>)>,
    ) -> Result<Self> {
        let file = disk.create_file();
        let page_size = disk.page_size();
        // Pack leaves.
        let mut leaves: Vec<Node> = Vec::new();
        let mut current: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut current_bytes = 7usize;
        let mut prev: Option<(u64, Vec<u8>)> = None;
        let mut total = 0u64;
        for (k, v) in entries {
            if let Some((pk, pv)) = &prev {
                if (*pk, pv.as_slice()) > (k, v.as_slice()) {
                    return Err(Error::Invariant("bulk_load input not sorted".into()));
                }
            }
            prev = Some((k, v.clone()));
            let entry_bytes = 10 + v.len();
            if current.len() >= cfg.leaf_cap || current_bytes + entry_bytes > page_size {
                if current.is_empty() {
                    return Err(Error::PageOverflow { needed: entry_bytes, available: page_size });
                }
                leaves.push(Node::Leaf { entries: std::mem::take(&mut current), next: None });
                current_bytes = 7;
            }
            current.push((k, v));
            current_bytes += entry_bytes;
            total += 1;
        }
        if !current.is_empty() || leaves.is_empty() {
            leaves.push(Node::Leaf { entries: current, next: None });
        }
        let leaf_count = leaves.len() as u64;

        // Write leaves with sibling pointers: leaf i lands on page i.
        let n_leaves = leaves.len();
        let mut level: Vec<(u64, u32)> = Vec::with_capacity(n_leaves); // (min_key, page)
        for (i, mut leaf) in leaves.into_iter().enumerate() {
            if let Node::Leaf { ref mut next, ref entries } = leaf {
                *next = if i + 1 < n_leaves { Some(i as u32 + 1) } else { None };
                let min_key = entries.first().map(|(k, _)| *k).unwrap_or(0);
                level.push((min_key, i as u32));
            }
            let pid = disk.allocate_page(file)?;
            debug_assert_eq!(pid.page as usize, i);
            disk.write_page(pid, &leaf.to_page(page_size)?)?;
        }

        // Build internal levels bottom-up.
        let mut height = 1usize;
        while level.len() > 1 {
            height += 1;
            let mut next_level = Vec::new();
            for chunk in level.chunks(cfg.internal_cap + 1) {
                let children: Vec<u32> = chunk.iter().map(|&(_, p)| p).collect();
                let keys: Vec<u64> = chunk[1..].iter().map(|&(k, _)| k).collect();
                let node = Node::Internal { keys, children };
                let min_key = chunk[0].0;
                if level.len() <= cfg.internal_cap + 1 {
                    // This is the root: keep it resident.
                    let pid = disk.allocate_page(file)?;
                    disk.write_page_free(pid, &node.to_page(page_size)?)?;
                    return Ok(BTree {
                        disk: disk.clone(),
                        file,
                        cfg,
                        root: node,
                        root_page: pid.page,
                        height,
                        entries: total,
                        leaves: leaf_count,
                    });
                }
                let pid = disk.allocate_page(file)?;
                disk.write_page(pid, &node.to_page(page_size)?)?;
                next_level.push((min_key, pid.page));
            }
            level = next_level;
        }
        // Single leaf: it is the root.
        let root = {
            let raw = disk.read_page_free(PageId::new(file, level[0].1))?;
            Node::from_page(&raw)?
        };
        Ok(BTree {
            disk: disk.clone(),
            file,
            cfg,
            root,
            root_page: level[0].1,
            height: 1,
            entries: total,
            leaves: leaf_count,
        })
    }

    /// The persisted shape of this tree (see [`BTreeMeta`]). Written into
    /// the durable catalog at commit; [`BTree::open`] inverts it.
    pub fn meta(&self) -> BTreeMeta {
        BTreeMeta {
            file: self.file.0,
            root_page: self.root_page,
            height: self.height,
            entries: self.entries,
            leaves: self.leaves,
        }
    }

    /// Reattach to a persisted tree from its catalog metadata. Reads the
    /// root node back without charging I/O — the root is permanently
    /// memory-resident per the Appendix assumption, and reloading it is
    /// part of opening the database, which the paper does not price (same
    /// reason loading is free). Every other node is read lazily, charged,
    /// on first access exactly as before the restart.
    pub fn open(disk: &Disk, cfg: BTreeConfig, meta: &BTreeMeta) -> Result<Self> {
        let file = FileId(meta.file);
        let pages = disk.num_pages(file)?;
        if meta.root_page >= pages {
            return Err(Error::Corrupt(format!(
                "btree catalog names root page {} but file {} has {} pages",
                meta.root_page, meta.file, pages
            )));
        }
        let raw = disk.read_page_free(PageId::new(file, meta.root_page))?;
        let root = Node::from_page(&raw)?;
        if meta.height == 1 && !matches!(root, Node::Leaf { .. }) {
            return Err(Error::Corrupt("height-1 btree root is not a leaf".into()));
        }
        Ok(BTree {
            disk: disk.clone(),
            file,
            cfg,
            root,
            root_page: meta.root_page,
            height: meta.height,
            entries: meta.entries,
            leaves: meta.leaves,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of leaf pages.
    pub fn leaf_pages(&self) -> u64 {
        self.leaves
    }

    /// Tree height in levels (1 = the root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// The underlying file id (for space reporting).
    pub fn file_id(&self) -> FileId {
        self.file
    }

    // ---- node I/O -------------------------------------------------------

    fn read_node(&self, page: u32) -> Result<Node> {
        let raw = self.disk.read_page(PageId::new(self.file, page))?;
        Node::from_page(&raw)
    }

    fn write_node(&self, page: u32, node: &Node) -> Result<()> {
        self.disk.write_page(PageId::new(self.file, page), &node.to_page(self.disk.page_size())?)
    }

    fn alloc_node(&self, node: &Node) -> Result<u32> {
        let pid = self.disk.allocate_page(self.file)?;
        self.disk.write_page(pid, &node.to_page(self.disk.page_size())?)?;
        Ok(pid.page)
    }

    fn write_root_free(&self) -> Result<()> {
        self.disk.write_page_free(
            PageId::new(self.file, self.root_page),
            &self.root.to_page(self.disk.page_size())?,
        )
    }

    // ---- descent --------------------------------------------------------

    /// Charge the binary-search comparisons of a `partition_point` over
    /// `len` keys into the shared cost ledger.
    fn charge_search(&self, len: usize) {
        if len > 0 {
            self.disk.cost().comp((len as u64).ilog2() as u64 + 1);
        }
    }

    /// Child index for the *leftmost* occurrence of `key`.
    fn child_left(keys: &[u64], key: u64) -> usize {
        keys.partition_point(|&s| s < key)
    }

    /// Child index for inserting `key` (rightmost).
    fn child_right(keys: &[u64], key: u64) -> usize {
        keys.partition_point(|&s| s <= key)
    }

    /// Page number of the leftmost leaf that can contain `key` (owned-node
    /// path, used by mutations).
    fn descend_to_leaf(&self, key: u64) -> Result<(u32, Node)> {
        let mut node = self.root.clone();
        let mut page = self.root_page;
        loop {
            match node {
                Node::Leaf { .. } => return Ok((page, node)),
                Node::Internal { ref keys, ref children } => {
                    self.charge_search(keys.len());
                    let idx = Self::child_left(keys, key);
                    page = children[idx];
                    node = self.read_node(page)?;
                }
            }
        }
    }

    /// Zero-copy descent: walk internal levels through borrowed page views
    /// (no `Node` materialization) down to the page number of the leftmost
    /// leaf that can contain `key`. Charges the same binary-search
    /// comparisons and node-read I/Os as the owned-node descent; pages in
    /// `seen` (batch mode) are read free of I/O charge after first touch.
    fn descend_to_leaf_page(
        &self,
        key: u64,
        mut seen: Option<&mut FxHashSet<u32>>,
    ) -> Result<LeafLoc> {
        let Node::Internal { ref keys, ref children } = self.root else {
            return Ok(LeafLoc::Root);
        };
        self.charge_search(keys.len());
        let mut page = children[Self::child_left(keys, key)];
        // Root is level 1, leaves are level `height`; levels 2..height are
        // the internal nodes below the root.
        for _ in 2..self.height {
            let pid = PageId::new(self.file, page);
            let charged = match seen.as_deref_mut() {
                Some(s) => s.insert(page),
                None => true,
            };
            let (child, key_count) = if charged {
                self.disk.read_page_with(pid, |raw| node::internal_child_left(raw, key))?
            } else {
                self.disk.read_page_free_with(pid, |raw| node::internal_child_left(raw, key))?
            };
            self.charge_search(key_count);
            page = child;
        }
        Ok(LeafLoc::Page(page))
    }

    /// Run `f` on one leaf page's shared image (an `Rc` clone of the disk's
    /// own buffer — no copy). The callback may re-enter the disk — e.g.
    /// append heap pages — because the disk borrow is released as soon as
    /// the image handle is cloned.
    fn with_leaf_copy<T>(
        &self,
        page: u32,
        charged: bool,
        f: impl FnOnce(&[u8]) -> Result<T>,
    ) -> Result<T> {
        let pid = PageId::new(self.file, page);
        let image = if charged {
            self.disk.read_page_rc(pid)?
        } else {
            self.disk.read_page_free_rc(pid)?
        };
        f(&image)
    }

    // ---- queries --------------------------------------------------------

    /// All values stored under `key`, in leaf-chain order (value order among
    /// duplicates is unspecified).
    pub fn lookup(&self, key: u64) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        self.for_each_range(key, key, |_, v| {
            out.push(v.to_vec());
            true
        })?;
        Ok(out)
    }

    /// Visit every entry with `lo <= key <= hi` in key order; the callback
    /// returns `false` to stop early.
    pub fn for_each_range(
        &self,
        lo: u64,
        hi: u64,
        mut f: impl FnMut(u64, &[u8]) -> bool,
    ) -> Result<()> {
        if lo > hi {
            return Ok(());
        }
        let mut page = match self.descend_to_leaf_page(lo, None)? {
            LeafLoc::Root => {
                let Node::Leaf { ref entries, .. } = self.root else {
                    return Err(Error::Invariant("descended to internal node".into()));
                };
                let mut examined = 0u64;
                for (k, v) in entries {
                    examined += 1;
                    if *k > hi || (*k >= lo && !f(*k, v)) {
                        break;
                    }
                }
                self.disk.cost().comp(examined);
                return Ok(());
            }
            LeafLoc::Page(p) => p,
        };
        loop {
            let step = self.with_leaf_copy(page, true, |raw| {
                let (iter, next) = node::leaf_entries(raw)?;
                let mut examined = 0u64;
                for entry in iter {
                    let (k, v) = entry?;
                    examined += 1;
                    if k > hi || (k >= lo && !f(k, v)) {
                        self.disk.cost().comp(examined);
                        return Ok(Step::Done);
                    }
                }
                self.disk.cost().comp(examined);
                Ok(match next {
                    Some(p) => Step::Next(p),
                    None => Step::Done,
                })
            })?;
            match step {
                Step::Done => return Ok(()),
                Step::Next(p) => page = p,
            }
        }
    }

    /// Collect a key range eagerly.
    pub fn scan_range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each_range(lo, hi, |k, v| {
            out.push((k, v.to_vec()));
            true
        })?;
        Ok(out)
    }

    /// Visit every entry in key order (full scan through the leaf chain).
    pub fn for_each(&self, mut f: impl FnMut(u64, &[u8]) -> bool) -> Result<()> {
        self.for_each_range(0, u64::MAX, |k, v| f(k, v))
    }

    /// Full scan in key order that also hands the callback the shared page
    /// image each value borrows from (`None` for entries of a memory-
    /// resident root leaf). Charge-identical to [`BTree::for_each`]; the
    /// extra handle lets scan consumers *pin* pages — keep payload bytes
    /// alive past the callback without copying them.
    pub fn for_each_pinned(
        &self,
        mut f: impl FnMut(u64, &[u8], Option<&std::rc::Rc<Vec<u8>>>) -> bool,
    ) -> Result<()> {
        let mut page = match self.descend_to_leaf_page(0, None)? {
            LeafLoc::Root => {
                let Node::Leaf { ref entries, .. } = self.root else {
                    return Err(Error::Invariant("descended to internal node".into()));
                };
                let mut examined = 0u64;
                for (k, v) in entries {
                    examined += 1;
                    if !f(*k, v, None) {
                        break;
                    }
                }
                self.disk.cost().comp(examined);
                return Ok(());
            }
            LeafLoc::Page(p) => p,
        };
        loop {
            let image = self.disk.read_page_rc(PageId::new(self.file, page))?;
            let (iter, next) = node::leaf_entries(&image)?;
            let mut examined = 0u64;
            let mut stop = false;
            for entry in iter {
                let (k, v) = entry?;
                examined += 1;
                if !f(k, v, Some(&image)) {
                    stop = true;
                    break;
                }
            }
            self.disk.cost().comp(examined);
            match (stop, next) {
                (true, _) | (false, None) => return Ok(()),
                (false, Some(p)) => page = p,
            }
        }
    }

    /// Batched point lookups for a *sorted* slice of keys. Each tree page is
    /// charged at most once for the whole batch — the engine-side equivalent
    /// of the Yao-formula access pattern the paper assumes for scheduled,
    /// pointer-sorted probes. Calls `f(key, value)` for every match.
    pub fn fetch_many(&self, sorted_keys: &[u64], mut f: impl FnMut(u64, &[u8])) -> Result<()> {
        debug_assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut i = 0;
        while i < sorted_keys.len() {
            let key = sorted_keys[i];
            // Skip duplicate probe keys: one probe serves them all.
            let mut dup = 1u64;
            while i + 1 < sorted_keys.len() && sorted_keys[i + 1] == key {
                i += 1;
                dup += 1;
            }
            match self.descend_to_leaf_page(key, Some(&mut seen))? {
                LeafLoc::Root => {
                    let Node::Leaf { ref entries, .. } = self.root else {
                        return Err(Error::Invariant("descended to internal node".into()));
                    };
                    let mut examined = 0u64;
                    for (k, v) in entries {
                        examined += 1;
                        if *k > key {
                            break;
                        }
                        if *k == key {
                            for _ in 0..dup {
                                f(*k, v);
                            }
                        }
                    }
                    self.disk.cost().comp(examined);
                }
                LeafLoc::Page(mut page) => loop {
                    let charged = seen.insert(page);
                    let step = self.with_leaf_copy(page, charged, |raw| {
                        let (iter, next) = node::leaf_entries(raw)?;
                        let mut examined = 0u64;
                        for entry in iter {
                            let (k, v) = entry?;
                            examined += 1;
                            if k > key {
                                self.disk.cost().comp(examined);
                                return Ok(Step::Done);
                            }
                            if k == key {
                                for _ in 0..dup {
                                    f(k, v);
                                }
                            }
                        }
                        self.disk.cost().comp(examined);
                        Ok(match next {
                            Some(p) => Step::Next(p),
                            None => Step::Done,
                        })
                    })?;
                    match step {
                        Step::Done => break,
                        Step::Next(p) => page = p,
                    }
                },
            }
            i += 1;
        }
        Ok(())
    }

    // ---- mutations ------------------------------------------------------

    /// Insert `(key, value)`. Duplicates are allowed.
    pub fn insert(&mut self, key: u64, value: Vec<u8>) -> Result<()> {
        let entry_bytes = 10 + value.len();
        if 7 + entry_bytes > self.disk.page_size() {
            return Err(Error::PageOverflow {
                needed: entry_bytes,
                available: self.disk.page_size(),
            });
        }
        let mut root = std::mem::replace(&mut self.root, Node::empty_leaf());
        let split = self.insert_into(&mut root, key, value, true)?;
        self.root = root;
        if let Some((sep, right_pid)) = split {
            // Move the (already-split) root's left half to a fresh page and
            // grow the tree by one level; the new root stays resident.
            let left = std::mem::replace(
                &mut self.root,
                Node::Internal { keys: vec![sep], children: vec![0, right_pid] },
            );
            let left_pid = self.alloc_node(&left)?;
            if let Node::Internal { ref mut children, .. } = self.root {
                children[0] = left_pid;
            }
            self.height += 1;
        }
        self.write_root_free()?;
        self.entries += 1;
        Ok(())
    }

    /// Recursive insert. Returns `Some((separator, new_right_page))` when
    /// `node` split; the caller owns writing `node` back (the root wrapper
    /// writes it free, inner levels write charged).
    fn insert_into(
        &mut self,
        node: &mut Node,
        key: u64,
        value: Vec<u8>,
        is_root: bool,
    ) -> Result<Option<(u64, u32)>> {
        match node {
            Node::Leaf { entries, next } => {
                self.charge_search(entries.len());
                let at =
                    entries.partition_point(|(k, v)| (*k, v.as_slice()) <= (key, value.as_slice()));
                self.disk.cost().mov(1);
                entries.insert(at, (key, value));
                let over_cap = entries.len() > self.cfg.leaf_cap
                    || node_bytes_leaf(entries) > self.disk.page_size();
                if !over_cap {
                    return Ok(None);
                }
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0;
                let right = Node::Leaf { entries: right_entries, next: *next };
                let right_pid = self.alloc_node(&right)?;
                *next = Some(right_pid);
                self.leaves += 1;
                Ok(Some((sep, right_pid)))
            }
            Node::Internal { keys, children } => {
                self.charge_search(keys.len());
                let idx = Self::child_right(keys, key);
                let child_pid = children[idx];
                let mut child = self.read_node(child_pid)?;
                let split = self.insert_into(&mut child, key, value, false)?;
                self.write_node(child_pid, &child)?;
                let Some((sep, new_right)) = split else { return Ok(None) };
                keys.insert(idx, sep);
                children.insert(idx + 1, new_right);
                let over = keys.len() > self.cfg.internal_cap
                    || node_bytes_internal(keys.len()) > self.disk.page_size();
                if !over {
                    let _ = is_root;
                    return Ok(None);
                }
                let mid = keys.len() / 2;
                let up = keys[mid];
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // `up` moves to the parent
                let right_children = children.split_off(mid + 1);
                let right = Node::Internal { keys: right_keys, children: right_children };
                let right_pid = self.alloc_node(&right)?;
                Ok(Some((up, right_pid)))
            }
        }
    }

    /// Remove the first entry equal to `(key, value)`. Returns whether an
    /// entry was removed.
    pub fn remove_exact(&mut self, key: u64, value: &[u8]) -> Result<bool> {
        self.remove_where(key, |v| v == value)
    }

    /// Remove the first entry under `key` whose value satisfies `pred`.
    ///
    /// Lazy deletion: leaves may become under-full or empty; structure and
    /// sibling pointers are untouched.
    pub fn remove_where(&mut self, key: u64, pred: impl Fn(&[u8]) -> bool) -> Result<bool> {
        // Root-resident leaf fast path.
        if self.height == 1 {
            if let Node::Leaf { ref mut entries, .. } = self.root {
                let found = entries.iter().position(|(k, v)| *k == key && pred(v));
                if let Some(at) = found {
                    entries.remove(at);
                    self.entries -= 1;
                    self.write_root_free()?;
                    return Ok(true);
                }
                return Ok(false);
            }
        }
        let (mut page, mut node) = self.descend_to_leaf(key)?;
        loop {
            let (entries, next) = match &mut node {
                Node::Leaf { entries, next } => (entries, *next),
                Node::Internal { .. } => {
                    return Err(Error::Invariant("descended to internal node".into()))
                }
            };
            self.disk.cost().comp(entries.len() as u64);
            if let Some(at) = entries.iter().position(|(k, v)| *k == key && pred(v)) {
                entries.remove(at);
                self.write_node(page, &node)?;
                self.entries -= 1;
                return Ok(true);
            }
            if entries.iter().any(|(k, _)| *k > key) {
                return Ok(false);
            }
            match next {
                Some(p) => {
                    page = p;
                    node = self.read_node(p)?;
                }
                None => return Ok(false),
            }
        }
    }

    /// Sanity-check structural invariants (test helper; reads pages free of
    /// charge). Verifies sortedness within and across leaves, separator
    /// consistency, and the entry count.
    pub fn check_invariants(&self) -> Result<()> {
        // Walk the leaf chain.
        let mut page = {
            let mut node = self.root.clone();
            let mut page = self.root_page;
            loop {
                match node {
                    Node::Leaf { .. } => break page,
                    Node::Internal { ref children, .. } => {
                        page = children[0];
                        let raw = self.disk.read_page_free(PageId::new(self.file, page))?;
                        node = Node::from_page(&raw)?;
                    }
                }
            }
        };
        let mut last: Option<u64> = None;
        let mut count = 0u64;
        let mut leaf_count = 0u64;
        loop {
            let raw = self.disk.read_page_free(PageId::new(self.file, page))?;
            let node = Node::from_page(&raw)?;
            let (entries, next) = match node {
                Node::Leaf { entries, next } => (entries, next),
                _ => return Err(Error::Invariant("leaf chain hit internal node".into())),
            };
            leaf_count += 1;
            for (k, _v) in entries {
                if let Some(lk) = last {
                    // Keys must be globally sorted. Value order among equal
                    // keys is unspecified (duplicates may span leaves).
                    if lk > k {
                        return Err(Error::Invariant(format!("entries out of order at key {k}")));
                    }
                }
                last = Some(k);
                count += 1;
            }
            match next {
                Some(p) => page = p,
                None => break,
            }
        }
        if count != self.entries {
            return Err(Error::Invariant(format!(
                "entry count mismatch: chain has {count}, tree says {}",
                self.entries
            )));
        }
        if self.height == 1 {
            // Root-resident leaf: the chain walk above read the stale disk
            // copy only if we forgot to flush — verify agreement.
            if leaf_count != 1 {
                return Err(Error::Invariant("height-1 tree with multiple leaves".into()));
            }
        }
        Ok(())
    }
}

fn node_bytes_leaf(entries: &[(u64, Vec<u8>)]) -> usize {
    7 + entries.iter().map(|(_, v)| 10 + v.len()).sum::<usize>()
}

fn node_bytes_internal(keys: usize) -> usize {
    7 + keys * 12
}

impl std::fmt::Debug for BTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTree")
            .field("entries", &self.entries)
            .field("leaves", &self.leaves)
            .field("height", &self.height)
            .finish()
    }
}
