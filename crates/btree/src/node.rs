//! B⁺-tree node representation and page serialization.
//!
//! Nodes are parsed eagerly into owned structures on read and re-serialized
//! on write; at 4000-byte pages this is cheap, and it keeps the mutation
//! code straightforward. Layout:
//!
//! ```text
//! leaf:     [0]=0  [1..3]=count  [3..7]=next_leaf(u32, MAX=none)
//!           then per entry: key(u64) | len(u16) | value bytes
//! internal: [0]=1  [1..3]=key_count
//!           then child0(u32), then per key: key(u64) | child(u32)
//! ```

use trijoin_common::{Error, Result};

/// Sentinel for "no next leaf".
pub const NO_PAGE: u32 = u32::MAX;

/// An in-memory B⁺-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Leaf: key-sorted `(key, value)` entries (duplicates allowed; value
    /// order among equal keys is unspecified once duplicates span leaves)
    /// plus a right-sibling pointer.
    Leaf {
        /// Sorted entries.
        entries: Vec<(u64, Vec<u8>)>,
        /// Page number of the right sibling leaf, if any.
        next: Option<u32>,
    },
    /// Internal: `keys[i]` separates `children[i]` from `children[i+1]`;
    /// `keys[i]` is the minimum key reachable under `children[i+1]`.
    Internal {
        /// Separator keys (sorted).
        keys: Vec<u64>,
        /// Child page numbers (`keys.len() + 1` of them).
        children: Vec<u32>,
    },
}

impl Node {
    /// A fresh empty leaf.
    pub fn empty_leaf() -> Self {
        Node::Leaf { entries: Vec::new(), next: None }
    }

    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Serialized size in bytes.
    pub fn serialized_len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                7 + entries.iter().map(|(_, v)| 8 + 2 + v.len()).sum::<usize>()
            }
            Node::Internal { keys, .. } => 3 + 4 + keys.len() * 12,
        }
    }

    /// Serialize into a zero-padded page of `page_size` bytes.
    pub fn to_page(&self, page_size: usize) -> Result<Vec<u8>> {
        let need = self.serialized_len();
        if need > page_size {
            return Err(Error::PageOverflow { needed: need, available: page_size });
        }
        let mut out = Vec::with_capacity(page_size);
        match self {
            Node::Leaf { entries, next } => {
                out.push(0);
                out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                out.extend_from_slice(&next.unwrap_or(NO_PAGE).to_le_bytes());
                for (k, v) in entries {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&(v.len() as u16).to_le_bytes());
                    out.extend_from_slice(v);
                }
            }
            Node::Internal { keys, children } => {
                debug_assert_eq!(children.len(), keys.len() + 1);
                out.push(1);
                out.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                out.extend_from_slice(&children[0].to_le_bytes());
                for (k, c) in keys.iter().zip(&children[1..]) {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
        out.resize(page_size, 0);
        Ok(out)
    }

    /// Parse a node from page bytes.
    pub fn from_page(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 7 {
            return Err(Error::Corrupt("btree page too small".into()));
        }
        let count = u16::from_le_bytes(bytes[1..3].try_into().unwrap()) as usize;
        match bytes[0] {
            0 => {
                let next_raw = u32::from_le_bytes(bytes[3..7].try_into().unwrap());
                let next = if next_raw == NO_PAGE { None } else { Some(next_raw) };
                let mut at = 7;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    if at + 10 > bytes.len() {
                        return Err(Error::Corrupt("btree leaf truncated".into()));
                    }
                    let k = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
                    let len =
                        u16::from_le_bytes(bytes[at + 8..at + 10].try_into().unwrap()) as usize;
                    at += 10;
                    if at + len > bytes.len() {
                        return Err(Error::Corrupt("btree leaf value truncated".into()));
                    }
                    entries.push((k, bytes[at..at + len].to_vec()));
                    at += len;
                }
                Ok(Node::Leaf { entries, next })
            }
            1 => {
                if 7 + count * 12 > bytes.len() {
                    return Err(Error::Corrupt("btree internal truncated".into()));
                }
                let mut children = Vec::with_capacity(count + 1);
                children.push(u32::from_le_bytes(bytes[3..7].try_into().unwrap()));
                let mut keys = Vec::with_capacity(count);
                let mut at = 7;
                for _ in 0..count {
                    keys.push(u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()));
                    children.push(u32::from_le_bytes(bytes[at + 8..at + 12].try_into().unwrap()));
                    at += 12;
                }
                Ok(Node::Internal { keys, children })
            }
            t => Err(Error::Corrupt(format!("unknown btree node tag {t}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Raw-page access: the read paths of the tree (scans, batched probes)
// decode straight out of a borrowed page image instead of materializing a
// `Node` — no per-entry `Vec<u8>`, no keys/children vectors. Mutation
// paths still parse eagerly via `Node::from_page`.
// ---------------------------------------------------------------------

/// Iterator over the `(key, value)` entries of a raw *leaf* page, borrowed
/// from the page bytes. Obtained from [`leaf_entries`].
pub struct LeafEntries<'a> {
    bytes: &'a [u8],
    at: usize,
    remaining: usize,
}

impl<'a> Iterator for LeafEntries<'a> {
    type Item = Result<(u64, &'a [u8])>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.at + 10 > self.bytes.len() {
            self.remaining = 0;
            return Some(Err(Error::Corrupt("btree leaf truncated".into())));
        }
        let k = u64::from_le_bytes(self.bytes[self.at..self.at + 8].try_into().unwrap());
        let len =
            u16::from_le_bytes(self.bytes[self.at + 8..self.at + 10].try_into().unwrap()) as usize;
        self.at += 10;
        if self.at + len > self.bytes.len() {
            self.remaining = 0;
            return Some(Err(Error::Corrupt("btree leaf value truncated".into())));
        }
        let v = &self.bytes[self.at..self.at + len];
        self.at += len;
        Some(Ok((k, v)))
    }
}

/// Borrow-decode a leaf page: its entry iterator plus the next-leaf
/// pointer. Fails on non-leaf pages.
pub fn leaf_entries(bytes: &[u8]) -> Result<(LeafEntries<'_>, Option<u32>)> {
    if bytes.len() < 7 {
        return Err(Error::Corrupt("btree page too small".into()));
    }
    if bytes[0] != 0 {
        return Err(Error::Corrupt(format!("expected leaf page, found tag {}", bytes[0])));
    }
    let count = u16::from_le_bytes(bytes[1..3].try_into().unwrap()) as usize;
    let next_raw = u32::from_le_bytes(bytes[3..7].try_into().unwrap());
    let next = if next_raw == NO_PAGE { None } else { Some(next_raw) };
    Ok((LeafEntries { bytes, at: 7, remaining: count }, next))
}

/// Binary-search a raw *internal* page for the child to descend into for
/// the leftmost occurrence of `key` (the `partition_point(|s| s < key)`
/// child). Returns `(child_page, key_count)` — the count so the caller can
/// charge the same search comparisons the owned-node path charges.
pub fn internal_child_left(bytes: &[u8], key: u64) -> Result<(u32, usize)> {
    if bytes.len() < 7 {
        return Err(Error::Corrupt("btree page too small".into()));
    }
    if bytes[0] != 1 {
        return Err(Error::Corrupt(format!("expected internal page, found tag {}", bytes[0])));
    }
    let count = u16::from_le_bytes(bytes[1..3].try_into().unwrap()) as usize;
    if 7 + count * 12 > bytes.len() {
        return Err(Error::Corrupt("btree internal truncated".into()));
    }
    let key_at =
        |i: usize| u64::from_le_bytes(bytes[7 + i * 12..7 + i * 12 + 8].try_into().unwrap());
    // partition_point over keys[0..count] for `keys[i] < key`.
    let (mut lo, mut hi) = (0usize, count);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if key_at(mid) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    let child = if lo == 0 {
        u32::from_le_bytes(bytes[3..7].try_into().unwrap())
    } else {
        u32::from_le_bytes(bytes[7 + (lo - 1) * 12 + 8..7 + (lo - 1) * 12 + 12].try_into().unwrap())
    };
    Ok((child, count))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let n = Node::Leaf {
            entries: vec![(1, b"one".to_vec()), (2, b"two".to_vec()), (2, b"two-b".to_vec())],
            next: Some(42),
        };
        let page = n.to_page(256).unwrap();
        assert_eq!(page.len(), 256);
        assert_eq!(Node::from_page(&page).unwrap(), n);
    }

    #[test]
    fn leaf_without_next_roundtrip() {
        let n = Node::Leaf { entries: vec![(7, vec![0xFF; 10])], next: None };
        assert_eq!(Node::from_page(&n.to_page(128).unwrap()).unwrap(), n);
    }

    #[test]
    fn internal_roundtrip() {
        let n = Node::Internal { keys: vec![10, 20, 30], children: vec![1, 2, 3, 4] };
        let page = n.to_page(128).unwrap();
        assert_eq!(Node::from_page(&page).unwrap(), n);
    }

    #[test]
    fn oversized_node_rejected() {
        let n = Node::Leaf { entries: vec![(1, vec![0u8; 500])], next: None };
        assert!(matches!(n.to_page(256), Err(Error::PageOverflow { .. })));
    }

    #[test]
    fn corrupt_pages_rejected() {
        assert!(Node::from_page(&[0u8; 3]).is_err());
        let mut bad_tag = vec![0u8; 64];
        bad_tag[0] = 9;
        assert!(Node::from_page(&bad_tag).is_err());
        // Leaf claiming more entries than the page holds.
        let mut trunc = vec![0u8; 16];
        trunc[0] = 0;
        trunc[1..3].copy_from_slice(&100u16.to_le_bytes());
        trunc[3..7].copy_from_slice(&NO_PAGE.to_le_bytes());
        assert!(Node::from_page(&trunc).is_err());
    }

    #[test]
    fn raw_leaf_walk_matches_parsed_node() {
        let n = Node::Leaf {
            entries: vec![(1, b"one".to_vec()), (2, b"two".to_vec()), (2, b"two-b".to_vec())],
            next: Some(9),
        };
        let page = n.to_page(256).unwrap();
        let (iter, next) = leaf_entries(&page).unwrap();
        assert_eq!(next, Some(9));
        let walked: Vec<(u64, Vec<u8>)> =
            iter.map(|e| e.map(|(k, v)| (k, v.to_vec()))).collect::<Result<_>>().unwrap();
        let Node::Leaf { entries, .. } = n else { unreachable!() };
        assert_eq!(walked, entries);
        // Internal page rejected by the leaf walker and vice versa.
        let internal = Node::Internal { keys: vec![10], children: vec![1, 2] }.to_page(64).unwrap();
        assert!(leaf_entries(&internal).is_err());
        assert!(internal_child_left(&page, 1).is_err());
    }

    #[test]
    fn raw_internal_search_matches_partition_point() {
        let keys = vec![10u64, 20, 20, 30];
        let children = vec![100u32, 101, 102, 103, 104];
        let page =
            Node::Internal { keys: keys.clone(), children: children.clone() }.to_page(128).unwrap();
        for probe in [0u64, 10, 15, 20, 25, 30, 99] {
            let (child, count) = internal_child_left(&page, probe).unwrap();
            assert_eq!(count, keys.len());
            let expect = children[keys.partition_point(|&s| s < probe)];
            assert_eq!(child, expect, "probe {probe}");
        }
    }

    #[test]
    fn serialized_len_matches() {
        let leaf = Node::Leaf { entries: vec![(1, vec![0u8; 9]), (2, vec![])], next: None };
        assert_eq!(leaf.serialized_len(), 7 + (10 + 9) + 10);
        let inner = Node::Internal { keys: vec![5], children: vec![0, 1] };
        assert_eq!(inner.serialized_len(), 7 + 12);
        assert_eq!(leaf.to_page(64).unwrap().len(), 64);
    }
}
