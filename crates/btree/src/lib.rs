//! Page-based B⁺-tree, the access-path substrate of Table 5.
//!
//! The paper assumes (Table 5): base relations `R` and `S` clustered by a
//! B⁺-tree on the surrogate; a non-clustered ("inverted") index on `S`'s
//! join attribute; the join index `JI` clustered on surrogate `r` with a
//! non-clustered B⁺-tree on surrogate `s`. [`BTree`] implements both modes
//! over the simulated disk, with the root permanently memory-resident (the
//! Appendix's assumption) and batch probes that charge each page at most
//! once, mirroring Yao's formula.
//!
//! ```
//! use trijoin_btree::{BTree, BTreeConfig};
//! use trijoin_common::{Cost, SystemParams};
//! use trijoin_storage::SimDisk;
//!
//! let params = SystemParams::paper_defaults();
//! let cost = Cost::new();
//! let disk = SimDisk::new(&params, cost.clone());
//!
//! // A clustered tree holding 200-byte tuples (the paper's R).
//! let cfg = BTreeConfig::clustered(&params, 200);
//! let entries = (0..1000u64).map(|k| (k, vec![0u8; 190]));
//! let mut tree = BTree::bulk_load(&disk, cfg, entries).unwrap();
//!
//! assert_eq!(tree.len(), 1000);
//! assert_eq!(tree.leaf_pages(), 1000_u64.div_ceil(14)); // n_R = 14
//!
//! cost.reset();
//! let hits = tree.lookup(123).unwrap();
//! assert_eq!(hits.len(), 1);
//! // The root is memory-resident: a point lookup charges height-1 I/Os.
//! assert_eq!(cost.total().ios as usize, tree.height() - 1);
//!
//! tree.insert(1000, vec![1u8; 190]).unwrap();
//! assert!(tree.remove_exact(1000, &vec![1u8; 190]).unwrap());
//! ```

pub mod node;
pub mod tree;

pub use tree::{BTree, BTreeConfig, BTreeMeta};

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_common::{Cost, SystemParams};
    use trijoin_storage::{Disk, SimDisk};

    fn setup() -> (Disk, Cost, SystemParams) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
        (SimDisk::new(&params, cost.clone()), cost, params)
    }

    fn small_cfg() -> BTreeConfig {
        BTreeConfig { leaf_cap: 4, internal_cap: 4 }
    }

    #[test]
    fn empty_tree_lookup() {
        let (disk, _c, _p) = setup();
        let t = BTree::new(&disk, small_cfg()).unwrap();
        assert!(t.lookup(5).unwrap().is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_lookup_across_splits() {
        let (disk, _c, _p) = setup();
        let mut t = BTree::new(&disk, small_cfg()).unwrap();
        for k in 0..100u64 {
            t.insert(k, vec![k as u8]).unwrap();
        }
        assert_eq!(t.len(), 100);
        assert!(t.height() > 1, "100 keys with cap 4 must split");
        for k in 0..100u64 {
            assert_eq!(t.lookup(k).unwrap(), vec![vec![k as u8]], "key {k}");
        }
        assert!(t.lookup(100).unwrap().is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn reverse_and_shuffled_inserts() {
        let (disk, _c, _p) = setup();
        let mut t = BTree::new(&disk, small_cfg()).unwrap();
        // A fixed shuffled order (deterministic).
        let keys: Vec<u64> = (0..64u64).map(|i| (i * 37) % 64).collect();
        for &k in &keys {
            t.insert(k, k.to_le_bytes().to_vec()).unwrap();
        }
        for k in 0..64u64 {
            assert_eq!(t.lookup(k).unwrap(), vec![k.to_le_bytes().to_vec()]);
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_keys_spanning_leaves() {
        let (disk, _c, _p) = setup();
        let mut t = BTree::new(&disk, small_cfg()).unwrap();
        // 20 duplicates of key 5 (spans many cap-4 leaves) plus neighbors.
        t.insert(4, b"four".to_vec()).unwrap();
        for i in 0..20u8 {
            t.insert(5, vec![i]).unwrap();
        }
        t.insert(6, b"six".to_vec()).unwrap();
        let mut got = t.lookup(5).unwrap();
        assert_eq!(got.len(), 20);
        got.sort();
        let expect: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i]).collect();
        assert_eq!(got, expect, "all duplicates found (value order unspecified)");
        assert_eq!(t.lookup(4).unwrap(), vec![b"four".to_vec()]);
        assert_eq!(t.lookup(6).unwrap(), vec![b"six".to_vec()]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let (disk, _c, _p) = setup();
        let entries: Vec<(u64, Vec<u8>)> =
            (0..500u64).map(|k| (k, (k as u32).to_le_bytes().to_vec())).collect();
        let t = BTree::bulk_load(&disk, small_cfg(), entries.clone()).unwrap();
        assert_eq!(t.len(), 500);
        assert_eq!(t.leaf_pages(), 125); // 500 / leaf_cap 4
        for (k, v) in &entries {
            assert_eq!(t.lookup(*k).unwrap(), vec![v.clone()]);
        }
        assert_eq!(t.scan_range(100, 103).unwrap().len(), 4);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_rejects_unsorted() {
        let (disk, _c, _p) = setup();
        let entries = vec![(2u64, vec![]), (1u64, vec![])];
        assert!(BTree::bulk_load(&disk, small_cfg(), entries).is_err());
    }

    #[test]
    fn bulk_load_empty_is_valid() {
        let (disk, _c, _p) = setup();
        let t = BTree::bulk_load(&disk, small_cfg(), Vec::new()).unwrap();
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        assert!(t.lookup(0).unwrap().is_empty());
    }

    #[test]
    fn range_scans_and_early_exit() {
        let (disk, _c, _p) = setup();
        let entries: Vec<(u64, Vec<u8>)> = (0..50u64).map(|k| (k * 2, vec![k as u8])).collect();
        let t = BTree::bulk_load(&disk, small_cfg(), entries).unwrap();
        let got = t.scan_range(10, 20).unwrap();
        let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18, 20]);
        // Early exit stops the walk.
        let mut seen = 0;
        t.for_each_range(0, u64::MAX, |_, _| {
            seen += 1;
            seen < 7
        })
        .unwrap();
        assert_eq!(seen, 7);
        // Inverted bounds yield nothing.
        assert!(t.scan_range(20, 10).unwrap().is_empty());
    }

    #[test]
    fn remove_exact_and_lazy_delete() {
        let (disk, _c, _p) = setup();
        let mut t = BTree::new(&disk, small_cfg()).unwrap();
        for k in 0..30u64 {
            t.insert(k, vec![k as u8]).unwrap();
            t.insert(k, vec![k as u8, 0xFF]).unwrap(); // a duplicate
        }
        assert_eq!(t.len(), 60);
        assert!(t.remove_exact(10, &[10]).unwrap());
        assert_eq!(t.lookup(10).unwrap(), vec![vec![10, 0xFF]]);
        assert!(!t.remove_exact(10, &[10]).unwrap(), "already removed");
        assert!(!t.remove_exact(99, &[0]).unwrap(), "never existed");
        assert_eq!(t.len(), 59);
        // Drain an entire key.
        assert!(t.remove_exact(10, &[10, 0xFF]).unwrap());
        assert!(t.lookup(10).unwrap().is_empty());
        // Neighbours unaffected.
        assert_eq!(t.lookup(9).unwrap().len(), 2);
        assert_eq!(t.lookup(11).unwrap().len(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_from_root_leaf() {
        let (disk, _c, _p) = setup();
        let mut t = BTree::new(&disk, small_cfg()).unwrap();
        t.insert(1, b"a".to_vec()).unwrap();
        t.insert(2, b"b".to_vec()).unwrap();
        assert!(t.remove_exact(1, b"a").unwrap());
        assert!(!t.remove_exact(1, b"a").unwrap());
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn fetch_many_dedupes_page_charges() {
        let (disk, cost, _p) = setup();
        let entries: Vec<(u64, Vec<u8>)> = (0..400u64).map(|k| (k, vec![k as u8])).collect();
        let t = BTree::bulk_load(&disk, small_cfg(), entries).unwrap();
        cost.reset();

        // Probe every key once, sorted: every leaf is needed, but each page
        // must be charged at most once.
        let keys: Vec<u64> = (0..400).collect();
        let mut hits = 0u64;
        t.fetch_many(&keys, |_, _| hits += 1).unwrap();
        assert_eq!(hits, 400);
        let total_pages = disk.num_pages(t.file_id()).unwrap() as u64;
        assert!(
            cost.total().ios <= total_pages,
            "batch fetch charged {} IOs for a {}-page tree",
            cost.total().ios,
            total_pages
        );

        // A second, tiny batch touches only a few pages.
        cost.reset();
        t.fetch_many(&[3, 4], |_, _| {}).unwrap();
        assert!(cost.total().ios <= t.height() as u64 + 2);
    }

    #[test]
    fn fetch_many_with_duplicate_probes_and_misses() {
        let (disk, _c, _p) = setup();
        let entries: Vec<(u64, Vec<u8>)> = (0..20u64).map(|k| (k * 2, vec![k as u8])).collect();
        let t = BTree::bulk_load(&disk, small_cfg(), entries).unwrap();
        let mut got: Vec<u64> = Vec::new();
        t.fetch_many(&[4, 4, 5, 6], |k, _| got.push(k)).unwrap();
        assert_eq!(got, vec![4, 4, 6], "dup probes double-count, misses skip");
    }

    #[test]
    fn point_lookup_io_matches_height_minus_root() {
        let (disk, cost, _p) = setup();
        let entries: Vec<(u64, Vec<u8>)> = (0..2000u64).map(|k| (k, vec![0u8; 8])).collect();
        let t = BTree::bulk_load(&disk, small_cfg(), entries).unwrap();
        cost.reset();
        t.lookup(1234).unwrap();
        // Root is free; each level below charges one read. A lookup may read
        // one extra sibling leaf when chasing potential duplicates.
        let ios = cost.total().ios;
        let h = t.height() as u64;
        assert!(ios >= h - 1 && ios <= h, "lookup cost {ios} vs height {h}");
        let _ = disk;
    }

    #[test]
    fn extreme_keys_and_empty_probes() {
        let (disk, _c, _p) = setup();
        let mut t = BTree::new(&disk, small_cfg()).unwrap();
        t.insert(0, b"zero".to_vec()).unwrap();
        t.insert(u64::MAX, b"max".to_vec()).unwrap();
        assert_eq!(t.lookup(u64::MAX).unwrap(), vec![b"max".to_vec()]);
        assert_eq!(t.lookup(0).unwrap(), vec![b"zero".to_vec()]);
        assert_eq!(t.scan_range(0, u64::MAX).unwrap().len(), 2);
        // Empty probe list is a no-op.
        t.fetch_many(&[], |_, _| panic!("no probes")).unwrap();
        t.check_invariants().unwrap();
    }

    #[test]
    fn mass_deletion_leaves_usable_empty_chain() {
        let (disk, _c, _p) = setup();
        let entries: Vec<(u64, Vec<u8>)> = (0..200u64).map(|k| (k, vec![k as u8])).collect();
        let mut t = BTree::bulk_load(&disk, small_cfg(), entries).unwrap();
        for k in 0..200u64 {
            assert!(t.remove_where(k, |_| true).unwrap(), "key {k}");
        }
        assert_eq!(t.len(), 0);
        // Lazy deletion: structure remains, searches still work.
        assert!(t.lookup(50).unwrap().is_empty());
        assert!(t.scan_range(0, u64::MAX).unwrap().is_empty());
        t.check_invariants().unwrap();
        // And the tree accepts new inserts.
        t.insert(77, b"back".to_vec()).unwrap();
        assert_eq!(t.lookup(77).unwrap(), vec![b"back".to_vec()]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn oversized_value_is_rejected_cleanly() {
        let (disk, _c, _p) = setup();
        // Page size 256 in this fixture: a 300-byte value cannot fit.
        let mut t = BTree::new(&disk, small_cfg()).unwrap();
        assert!(t.insert(1, vec![0u8; 300]).is_err());
        assert_eq!(t.len(), 0);
        t.insert(1, vec![0u8; 100]).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn paper_scale_config_heights() {
        // At Table 7 defaults a 200 000-tuple clustered relation has 14 286
        // leaf pages; scaled down 100× the same packing yields 143 leaves
        // under one resident root (the 2-level charged structure of IO_ci).
        let cost = Cost::new();
        let params = SystemParams::paper_defaults();
        let disk = SimDisk::new(&params, cost.clone());
        let cfg = BTreeConfig::clustered(&params, 200);
        assert_eq!(cfg.leaf_cap, 14);
        let entries: Vec<(u64, Vec<u8>)> = (0..2000u64).map(|k| (k, vec![0u8; 190])).collect();
        let t = BTree::bulk_load(&disk, cfg, entries).unwrap();
        assert_eq!(t.leaf_pages(), (2000f64 / 14.0).ceil() as u64);
        assert_eq!(t.height(), 2, "143 leaves under one resident root");
        let inv = BTreeConfig::inverted(&params);
        assert!(inv.leaf_cap <= params.fan_out);
        assert!(inv.internal_cap <= BTreeConfig::max_internal_keys(params.page_size));
    }
}
