//! Property-based tests: the B⁺-tree must behave like a sorted multimap.

use proptest::prelude::*;
use std::collections::BTreeMap;

use trijoin_btree::{BTree, BTreeConfig};
use trijoin_common::{Cost, SystemParams};
use trijoin_storage::SimDisk;

type Model = BTreeMap<(u64, Vec<u8>), u32>;

fn model_insert(m: &mut Model, k: u64, v: Vec<u8>) {
    *m.entry((k, v)).or_insert(0) += 1;
}

fn model_remove(m: &mut Model, k: u64, v: &[u8]) -> bool {
    if let Some(c) = m.get_mut(&(k, v.to_vec())) {
        *c -= 1;
        if *c == 0 {
            m.remove(&(k, v.to_vec()));
        }
        true
    } else {
        false
    }
}

fn model_lookup(m: &Model, k: u64) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for ((mk, mv), c) in m.range((k, Vec::new())..) {
        if *mk != k {
            break;
        }
        for _ in 0..*c {
            out.push(mv.clone());
        }
    }
    out
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, Vec<u8>),
    Remove(u64, Vec<u8>),
    Lookup(u64),
    Range(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = 0u64..40; // small domain => duplicates are common
    let val = prop::collection::vec(any::<u8>(), 0..12);
    prop_oneof![
        4 => (key.clone(), val.clone()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (key.clone(), val).prop_map(|(k, v)| Op::Remove(k, v)),
        2 => key.clone().prop_map(Op::Lookup),
        1 => (key.clone(), key).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn btree_matches_multimap_model(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
        let disk = SimDisk::new(&params, cost);
        let mut tree = BTree::new(&disk, BTreeConfig { leaf_cap: 4, internal_cap: 4 }).unwrap();
        let mut model: Model = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    tree.insert(k, v.clone()).unwrap();
                    model_insert(&mut model, k, v);
                }
                Op::Remove(k, v) => {
                    let tree_removed = tree.remove_exact(k, &v).unwrap();
                    let model_removed = model_remove(&mut model, k, &v);
                    prop_assert_eq!(tree_removed, model_removed);
                }
                Op::Lookup(k) => {
                    // Value order among duplicates is unspecified: compare
                    // as sorted multisets.
                    let mut got = tree.lookup(k).unwrap();
                    got.sort();
                    prop_assert_eq!(got, model_lookup(&model, k));
                }
                Op::Range(lo, hi) => {
                    let mut got = tree.scan_range(lo, hi).unwrap();
                    // Keys must come back sorted...
                    prop_assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
                    // ...and as a multiset the range matches the model.
                    got.sort();
                    let want: Vec<(u64, Vec<u8>)> = model
                        .range((lo, Vec::new())..)
                        .take_while(|((k, _), _)| *k <= hi)
                        .flat_map(|((k, v), c)| {
                            std::iter::repeat_n((*k, v.clone()), *c as usize)
                        })
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        let total: u64 = model.values().map(|&c| c as u64).sum();
        prop_assert_eq!(tree.len(), total);
        tree.check_invariants().unwrap();
    }

    /// Random insert/delete interleavings against the `BTreeMap` reference
    /// model, with structural invariants re-checked after *every* op (the
    /// model test above only audits the final tree): underflow handling
    /// during deletes, `remove_where` picking an arbitrary duplicate, full
    /// scans staying a multiset image of the model, and a final drain down
    /// to the empty tree.
    #[test]
    fn interleaved_deletes_preserve_structure(
        ops in prop::collection::vec(
            prop_oneof![
                5 => (0u64..24, prop::collection::vec(any::<u8>(), 0..8))
                    .prop_map(|(k, v)| Op::Insert(k, v)),
                2 => (0u64..24, prop::collection::vec(any::<u8>(), 0..8))
                    .prop_map(|(k, v)| Op::Remove(k, v)),
                2 => (0u64..24).prop_map(Op::Lookup), // reused as remove_where(k)
            ],
            1..120,
        ),
    ) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
        let disk = SimDisk::new(&params, cost);
        let mut tree = BTree::new(&disk, BTreeConfig { leaf_cap: 4, internal_cap: 4 }).unwrap();
        let mut model: Model = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    tree.insert(k, v.clone()).unwrap();
                    model_insert(&mut model, k, v);
                }
                Op::Remove(k, v) => {
                    let got = tree.remove_exact(k, &v).unwrap();
                    prop_assert_eq!(got, model_remove(&mut model, k, &v));
                }
                // Repurposed as remove_where: drop an *arbitrary* record
                // under k (whichever the tree finds first) and reconcile the
                // model from the tree's own post-state.
                Op::Lookup(k) => {
                    let got = tree.remove_where(k, |_| true).unwrap();
                    let want = model_lookup(&model, k);
                    prop_assert_eq!(got, !want.is_empty());
                    if got {
                        let mut now = tree.lookup(k).unwrap();
                        now.sort();
                        prop_assert_eq!(now.len() + 1, want.len());
                        // Rebuild the model's k-entries as exactly `now`.
                        model.retain(|(mk, _), _| *mk != k);
                        for v in now {
                            model_insert(&mut model, k, v);
                        }
                    }
                }
                Op::Range(..) => unreachable!("not generated here"),
            }
            tree.check_invariants().unwrap();
            let total: u64 = model.values().map(|&c| c as u64).sum();
            prop_assert_eq!(tree.len(), total);
            prop_assert_eq!(tree.is_empty(), total == 0);
        }

        // The surviving records, as one full scan, are the model's multiset.
        let mut got = tree.scan_range(0, u64::MAX).unwrap();
        got.sort();
        let want: Vec<(u64, Vec<u8>)> = model
            .iter()
            .flat_map(|((k, v), c)| std::iter::repeat_n((*k, v.clone()), *c as usize))
            .collect();
        prop_assert_eq!(got, want);

        // Drain to empty: every surviving record is individually removable,
        // and the tree ends structurally valid with nothing left.
        let survivors: Vec<(u64, Vec<u8>)> = model
            .iter()
            .flat_map(|((k, v), c)| std::iter::repeat_n((*k, v.clone()), *c as usize))
            .collect();
        for (k, v) in &survivors {
            prop_assert!(tree.remove_exact(*k, v).unwrap(), "drain lost ({}, {:?})", k, v);
            tree.check_invariants().unwrap();
        }
        prop_assert!(tree.is_empty());
        prop_assert_eq!(tree.lookup(0).unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn bulk_load_equals_incremental(keys in prop::collection::vec(0u64..1000, 0..300)) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
        let disk = SimDisk::new(&params, cost);
        let cfg = BTreeConfig { leaf_cap: 5, internal_cap: 4 };

        let mut sorted: Vec<(u64, Vec<u8>)> =
            keys.iter().map(|&k| (k, k.to_le_bytes().to_vec())).collect();
        sorted.sort();
        let bulk = BTree::bulk_load(&disk, cfg, sorted.clone()).unwrap();

        let mut incr = BTree::new(&disk, cfg).unwrap();
        for &k in &keys {
            incr.insert(k, k.to_le_bytes().to_vec()).unwrap();
        }

        for &k in &keys {
            prop_assert_eq!(bulk.lookup(k).unwrap(), incr.lookup(k).unwrap());
        }
        prop_assert_eq!(bulk.len(), incr.len());
        bulk.check_invariants().unwrap();
        incr.check_invariants().unwrap();
    }

    #[test]
    fn fetch_many_equals_lookups(
        stored in prop::collection::vec(0u64..200, 1..200),
        probes in prop::collection::vec(0u64..200, 1..50),
    ) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
        let disk = SimDisk::new(&params, cost);
        let cfg = BTreeConfig { leaf_cap: 4, internal_cap: 4 };
        let mut sorted: Vec<(u64, Vec<u8>)> =
            stored.iter().map(|&k| (k, k.to_le_bytes().to_vec())).collect();
        sorted.sort();
        let tree = BTree::bulk_load(&disk, cfg, sorted).unwrap();

        let mut sorted_probes = probes.clone();
        sorted_probes.sort_unstable();
        let mut batched: Vec<(u64, Vec<u8>)> = Vec::new();
        tree.fetch_many(&sorted_probes, |k, v| batched.push((k, v.to_vec()))).unwrap();

        let mut singles: Vec<(u64, Vec<u8>)> = Vec::new();
        for &k in &sorted_probes {
            for v in tree.lookup(k).unwrap() {
                singles.push((k, v));
            }
        }
        batched.sort();
        singles.sort();
        prop_assert_eq!(batched, singles);
    }
}

/// Permanent copy of the shrunk case from `prop_btree.proptest-regressions`
/// (duplicate keys with empty payloads straddling leaf splits). The vendored
/// proptest does not replay regression files, so the case lives here as a
/// plain test and runs on every `cargo test`.
#[test]
fn regression_duplicate_keys_with_empty_payloads() {
    let cost = Cost::new();
    let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
    let disk = SimDisk::new(&params, cost);
    let mut tree = BTree::new(&disk, BTreeConfig { leaf_cap: 4, internal_cap: 4 }).unwrap();
    let ops: Vec<(u64, Vec<u8>)> = vec![
        (0, vec![]),
        (0, vec![]),
        (18, vec![]),
        (18, vec![]),
        (5, vec![]),
        (15, vec![97]),
        (0, vec![]),
        (15, vec![97]),
        (0, vec![]),
        (0, vec![]),
        (15, vec![0]),
    ];
    let mut model: Model = BTreeMap::new();
    for (k, v) in &ops {
        tree.insert(*k, v.clone()).unwrap();
        model_insert(&mut model, *k, v.clone());
    }

    for k in [0u64, 5, 15, 18, 40] {
        let mut got = tree.lookup(k).unwrap();
        got.sort();
        assert_eq!(got, model_lookup(&model, k), "lookup({k})");
    }

    let mut got = tree.scan_range(0, 40).unwrap();
    assert!(got.windows(2).all(|w| w[0].0 <= w[1].0), "scan out of key order");
    got.sort();
    let mut want = ops.clone();
    want.sort();
    assert_eq!(got, want, "scan_range multiset");

    assert_eq!(tree.len(), ops.len() as u64);
    tree.check_invariants().unwrap();

    // Every inserted (key, payload) pair — duplicates included — must be
    // individually removable exactly once.
    for (k, v) in &ops {
        assert!(tree.remove_exact(*k, v).unwrap(), "remove_exact({k}, {v:?})");
    }
    assert_eq!(tree.len(), 0);
    tree.check_invariants().unwrap();
}
