//! Three-way joins through cached two-way views stay exact under deferred
//! updates, for every inner strategy.

use rand::prelude::*;

use trijoin_common::{rng, BaseTuple, Cost, Surrogate, SystemParams};
use trijoin_exec::threeway::{
    assert_same_three_way, key2_from_s_payload, three_way_execute, three_way_oracle,
};
use trijoin_exec::{
    HybridHash, JoinIndexStrategy, JoinStrategy, MaterializedView, StoredRelation, Update,
};
use trijoin_storage::{Disk, SimDisk};

const TUPLE: usize = 64;

/// S tuples carry the second join attribute B in their first 8 payload
/// bytes; R and T are plain.
type Fixture = (
    Disk,
    Cost,
    SystemParams,
    StoredRelation,
    StoredRelation,
    StoredRelation,
    Vec<BaseTuple>,
    Vec<BaseTuple>,
    Vec<BaseTuple>,
);

fn setup(seed: u64) -> Fixture {
    let cost = Cost::new();
    let params = SystemParams { page_size: 512, mem_pages: 24, ..SystemParams::paper_defaults() };
    let disk = SimDisk::new(&params, cost.clone());
    let mut rn = rng::seeded(seed);
    let r_tuples: Vec<BaseTuple> =
        (0..120).map(|i| BaseTuple::padded(Surrogate(i), rn.gen_range(0..8), TUPLE)).collect();
    let s_tuples: Vec<BaseTuple> = (0..100)
        .map(|i| {
            let a = rn.gen_range(0..8u64);
            let b = rn.gen_range(0..6u64);
            BaseTuple::with_payload(Surrogate(i), a, &b.to_le_bytes(), TUPLE).unwrap()
        })
        .collect();
    let t_tuples: Vec<BaseTuple> =
        (0..80).map(|i| BaseTuple::padded(Surrogate(i), rn.gen_range(0..6), TUPLE)).collect();
    let r = StoredRelation::build(&disk, &params, "R", r_tuples.clone(), false).unwrap();
    let s = StoredRelation::build(&disk, &params, "S", s_tuples.clone(), true).unwrap();
    let t = StoredRelation::build(&disk, &params, "T", t_tuples.clone(), false).unwrap();
    (disk, cost, params, r, s, t, r_tuples, s_tuples, t_tuples)
}

#[test]
fn three_way_through_each_inner_strategy() {
    let (disk, cost, params, r, s, t, r_now, s_now, t_now) = setup(71);
    let want = three_way_oracle(&r_now, &s_now, &t_now, key2_from_s_payload);
    assert!(!want.is_empty(), "fixture must produce rows");

    let mut mv = MaterializedView::build(&disk, &params, &cost, &r, &s).unwrap();
    let mut ji = JoinIndexStrategy::build(&disk, &params, &cost, &r, &s).unwrap();
    let mut hh = HybridHash::new(&disk, &params, &cost);
    let inners: Vec<(&str, &mut dyn JoinStrategy)> =
        vec![("mv", &mut mv), ("ji", &mut ji), ("hh", &mut hh)];
    for (label, inner) in inners {
        let mut got = Vec::new();
        let n = three_way_execute(
            &disk,
            &params,
            &cost,
            inner,
            &r,
            &s,
            &t,
            key2_from_s_payload,
            &mut |row| got.push(row),
        )
        .unwrap();
        assert_eq!(n as usize, got.len());
        assert_same_three_way(label, got, want.clone());
    }
}

#[test]
fn three_way_stays_exact_under_r_updates() {
    let (disk, cost, params, mut r, s, t, r_now, s_now, t_now) = setup(72);
    let mut mv = MaterializedView::build(&disk, &params, &cost, &r, &s).unwrap();
    let mut r_map: std::collections::HashMap<u32, BaseTuple> =
        r_now.into_iter().map(|x| (x.sur.0, x)).collect();
    let mut rn = rng::seeded(720);
    for i in 0..60u64 {
        let surs: Vec<u32> = {
            let mut v: Vec<u32> = r_map.keys().copied().collect();
            v.sort_unstable();
            v
        };
        let sur = surs[rn.gen_range(0..surs.len())];
        let old = r_map[&sur].clone();
        let new =
            BaseTuple::with_payload(Surrogate(sur), rn.gen_range(0..8), &i.to_le_bytes(), TUPLE)
                .unwrap();
        mv.on_update(&Update { old: old.clone(), new: new.clone() }).unwrap();
        r.apply_update(&old, &new).unwrap();
        r_map.insert(sur, new);
    }
    let current: Vec<BaseTuple> = r_map.values().cloned().collect();
    let want = three_way_oracle(&current, &s_now, &t_now, key2_from_s_payload);
    let mut got = Vec::new();
    three_way_execute(
        &disk,
        &params,
        &cost,
        &mut mv,
        &r,
        &s,
        &t,
        key2_from_s_payload,
        &mut |row| got.push(row),
    )
    .unwrap();
    assert_same_three_way("after updates", got, want);
}

#[test]
fn three_way_spills_under_tiny_memory() {
    // Force B > 0 on the second hop: tiny memory, larger T.
    let cost = Cost::new();
    let params = SystemParams { page_size: 512, mem_pages: 6, ..SystemParams::paper_defaults() };
    let disk = SimDisk::new(&params, cost.clone());
    let mut rn = rng::seeded(73);
    let r_now: Vec<BaseTuple> =
        (0..200).map(|i| BaseTuple::padded(Surrogate(i), rn.gen_range(0..10), TUPLE)).collect();
    let s_now: Vec<BaseTuple> = (0..200)
        .map(|i| {
            let b = rn.gen_range(0..40u64);
            BaseTuple::with_payload(Surrogate(i), rn.gen_range(0..10), &b.to_le_bytes(), TUPLE)
                .unwrap()
        })
        .collect();
    let t_now: Vec<BaseTuple> =
        (0..400).map(|i| BaseTuple::padded(Surrogate(i), rn.gen_range(0..40), TUPLE)).collect();
    let r = StoredRelation::build(&disk, &params, "R", r_now.clone(), false).unwrap();
    let s = StoredRelation::build(&disk, &params, "S", s_now.clone(), true).unwrap();
    let t = StoredRelation::build(&disk, &params, "T", t_now.clone(), false).unwrap();
    assert!(
        trijoin_exec::hybridhash::spilled_partitions(t.data_pages(), &params) > 0,
        "fixture must actually spill"
    );
    let mut hh = HybridHash::new(&disk, &params, &cost);
    let want = three_way_oracle(&r_now, &s_now, &t_now, key2_from_s_payload);
    let mut got = Vec::new();
    three_way_execute(
        &disk,
        &params,
        &cost,
        &mut hh,
        &r,
        &s,
        &t,
        key2_from_s_payload,
        &mut |row| got.push(row),
    )
    .unwrap();
    assert_same_three_way("spilled", got, want);
}

#[test]
fn empty_t_side() {
    let (disk, cost, params, r, s, _t, _r_now, _s_now, _t_now) = setup(74);
    let t = StoredRelation::build(&disk, &params, "T0", Vec::new(), false).unwrap();
    let mut hh = HybridHash::new(&disk, &params, &cost);
    let mut got = Vec::new();
    let n = three_way_execute(
        &disk,
        &params,
        &cost,
        &mut hh,
        &r,
        &s,
        &t,
        key2_from_s_payload,
        &mut |row| got.push(row),
    )
    .unwrap();
    assert_eq!(n, 0);
    assert!(got.is_empty());
}
