//! Property-based strategy equivalence: under *arbitrary* generated update
//! scripts (which surrogates, which keys, matched or unmatched, repeated or
//! not, interleaved with queries), all three strategies must equal the
//! oracle join of the current relations.

use proptest::prelude::*;
use std::collections::HashMap;
use std::rc::Rc;

use trijoin_common::{BaseTuple, Cost, Surrogate, SystemParams};
use trijoin_exec::{
    execute_collect, oracle, EagerView, HybridHash, JoinIndexStrategy, JoinStrategy,
    MaterializedView, Mutation, StoredRelation, Update,
};
use trijoin_storage::SimDisk;

const TUPLE: usize = 48;
const N_R: u32 = 40;
const N_S: u32 = 30;

#[derive(Debug, Clone)]
enum Script {
    /// Update tuple `sur % live` to key `key` with payload byte `p`.
    Update { sur: u32, key: u64, p: u8 },
    /// Insert a fresh tuple with key `key`.
    Insert { key: u64, p: u8 },
    /// Delete tuple `sur % live`.
    Delete { sur: u32 },
    /// Run all strategies and compare against the oracle.
    Query,
}

fn script() -> impl Strategy<Value = Vec<Script>> {
    prop::collection::vec(
        prop_oneof![
            5 => (any::<u32>(), 0u64..8, any::<u8>())
                .prop_map(|(sur, key, p)| Script::Update { sur, key, p }),
            // Occasionally point keys at an unmatched range.
            2 => (any::<u32>(), 100u64..110, any::<u8>())
                .prop_map(|(sur, key, p)| Script::Update { sur, key, p }),
            1 => (0u64..8, any::<u8>()).prop_map(|(key, p)| Script::Insert { key, p }),
            1 => any::<u32>().prop_map(|sur| Script::Delete { sur }),
            1 => Just(Script::Query),
        ],
        1..60,
    )
}

proptest! {
    // Each case builds three strategies and runs a script; keep the count
    // moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn strategies_match_oracle_under_arbitrary_scripts(ops in script()) {
        let cost = Cost::new();
        let params = SystemParams {
            page_size: 512,
            mem_pages: 16,
            ..SystemParams::paper_defaults()
        };
        let disk = SimDisk::new(&params, cost.clone());
        let r_tuples: Vec<BaseTuple> = (0..N_R)
            .map(|i| BaseTuple::with_payload(Surrogate(i), (i % 6) as u64, &[i as u8], TUPLE).unwrap())
            .collect();
        let s_tuples: Vec<BaseTuple> = (0..N_S)
            .map(|i| BaseTuple::with_payload(Surrogate(i), (i % 7) as u64, &[i as u8], TUPLE).unwrap())
            .collect();
        let mut r = StoredRelation::build(&disk, &params, "R", r_tuples.clone(), false).unwrap();
        let s = StoredRelation::build(&disk, &params, "S", s_tuples.clone(), true).unwrap();
        let mut r_now: HashMap<u32, BaseTuple> =
            r_tuples.into_iter().map(|t| (t.sur.0, t)).collect();

        let mut mv = MaterializedView::build(&disk, &params, &cost, &r, &s).unwrap();
        let mut ji = JoinIndexStrategy::build(&disk, &params, &cost, &r, &s).unwrap();
        let mut hh = HybridHash::new(&disk, &params, &cost);
        let s_rc = Rc::new(StoredRelation::build(&disk, &params, "S2", s_tuples.clone(), true).unwrap());
        let mut eager = EagerView::build(&disk, &params, &cost, &r, s_rc).unwrap();
        let mut next_sur = N_R;

        let live_pick = |r_now: &HashMap<u32, BaseTuple>, raw: u32| -> u32 {
            let mut surs: Vec<u32> = r_now.keys().copied().collect();
            surs.sort_unstable();
            surs[(raw as usize) % surs.len()]
        };
        for (step, op) in ops.into_iter().enumerate() {
            let mutation = match op {
                Script::Update { sur, key, p } => {
                    let sur = live_pick(&r_now, sur);
                    let old = r_now[&sur].clone();
                    let new = BaseTuple::with_payload(Surrogate(sur), key, &[p], TUPLE).unwrap();
                    r_now.insert(sur, new.clone());
                    Some(Mutation::Update(Update { old, new }))
                }
                Script::Insert { key, p } => {
                    let t = BaseTuple::with_payload(Surrogate(next_sur), key, &[p], TUPLE).unwrap();
                    next_sur += 1;
                    r_now.insert(t.sur.0, t.clone());
                    Some(Mutation::Insert(t))
                }
                Script::Delete { sur } => {
                    if r_now.len() <= 1 {
                        None // never empty the relation
                    } else {
                        let sur = live_pick(&r_now, sur);
                        let t = r_now.remove(&sur).unwrap();
                        Some(Mutation::Delete(t))
                    }
                }
                Script::Query => None,
            };
            if let Some(m) = mutation {
                mv.on_mutation(&m).unwrap();
                ji.on_mutation(&m).unwrap();
                hh.on_mutation(&m).unwrap();
                eager.on_mutation(&m).unwrap();
                r.apply_mutation(&m).unwrap();
                continue;
            }
            match op {
                Script::Query => {
                    let current: Vec<BaseTuple> = r_now.values().cloned().collect();
                    let want = oracle::join_tuples(&current, &s_tuples);
                    let got_mv = execute_collect(&mut mv, &r, &s).unwrap();
                    oracle::assert_same_join(&format!("step {step} mv"), got_mv, want.clone());
                    let got_ji = execute_collect(&mut ji, &r, &s).unwrap();
                    oracle::assert_same_join(&format!("step {step} ji"), got_ji, want.clone());
                    let got_hh = execute_collect(&mut hh, &r, &s).unwrap();
                    oracle::assert_same_join(&format!("step {step} hh"), got_hh, want.clone());
                    let got_eager = execute_collect(&mut eager, &r, &s).unwrap();
                    oracle::assert_same_join(&format!("step {step} eager"), got_eager, want);
                    ji.index().check_invariants().unwrap();
                }
                _ => unreachable!("mutations handled above"),
            }
        }
        // Always end with a final query so every script checks something.
        let current: Vec<BaseTuple> = r_now.values().cloned().collect();
        let want = oracle::join_tuples(&current, &s_tuples);
        let got_mv = execute_collect(&mut mv, &r, &s).unwrap();
        oracle::assert_same_join("final mv", got_mv, want.clone());
        let got_ji = execute_collect(&mut ji, &r, &s).unwrap();
        oracle::assert_same_join("final ji", got_ji, want.clone());
        let got_hh = execute_collect(&mut hh, &r, &s).unwrap();
        oracle::assert_same_join("final hh", got_hh, want.clone());
        let got_eager = execute_collect(&mut eager, &r, &s).unwrap();
        oracle::assert_same_join("final eager", got_eager, want);
        prop_assert_eq!(mv.view_len(), ji.index_len());
        prop_assert_eq!(mv.view_len(), eager.view_len());
    }
}
