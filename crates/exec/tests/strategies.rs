//! Cross-strategy correctness: materialized view, join index and
//! hybrid-hash must all produce exactly the current `R ⋈ S` — same pairs,
//! same keys, same payloads — under arbitrary deferred update streams.

use std::collections::HashMap;

use rand::prelude::*;
use trijoin_common::{rng, BaseTuple, Cost, Surrogate, SystemParams};
use trijoin_exec::oracle;
use trijoin_exec::{
    execute_collect, HybridHash, JoinIndexStrategy, JoinStrategy, MaterializedView, StoredRelation,
    Update,
};
use trijoin_storage::{Disk, SimDisk};

const TUPLE: usize = 64;

struct TestDb {
    cost: Cost,
    params: SystemParams,
    disk: Disk,
    r: StoredRelation,
    s: StoredRelation,
    /// Ground-truth mirror of R (current state).
    r_now: HashMap<u32, BaseTuple>,
    s_now: Vec<BaseTuple>,
}

impl TestDb {
    /// `n_r`/`n_s` tuples; join keys drawn from `0..key_domain` (small
    /// domain ⇒ plenty of matches), plus some unmatched keys.
    fn new(n_r: u32, n_s: u32, key_domain: u64, seed: u64) -> Self {
        let mut rn = rng::seeded(rng::derive(seed, "build"));
        let cost = Cost::new();
        let params =
            SystemParams { page_size: 512, mem_pages: 24, ..SystemParams::paper_defaults() };
        let disk = SimDisk::new(&params, cost.clone());
        let mk = |i: u32, rn: &mut StdRng| {
            let key = if rn.gen_bool(0.8) {
                rn.gen_range(0..key_domain)
            } else {
                1_000_000 + rn.gen_range(0u64..1000) // unmatched range
            };
            let payload: Vec<u8> = (0..8).map(|_| rn.gen()).collect();
            BaseTuple::with_payload(Surrogate(i), key, &payload, TUPLE).unwrap()
        };
        let r_tuples: Vec<BaseTuple> = (0..n_r).map(|i| mk(i, &mut rn)).collect();
        let s_tuples: Vec<BaseTuple> = (0..n_s).map(|i| mk(i, &mut rn)).collect();
        let r = StoredRelation::build(&disk, &params, "R", r_tuples.clone(), false).unwrap();
        let s = StoredRelation::build(&disk, &params, "S", s_tuples.clone(), true).unwrap();
        let r_now = r_tuples.into_iter().map(|t| (t.sur.0, t)).collect();
        TestDb { cost, params, disk, r, s, r_now, s_now: s_tuples }
    }

    fn strategies(&self) -> (MaterializedView, JoinIndexStrategy, HybridHash) {
        let mv = MaterializedView::build(&self.disk, &self.params, &self.cost, &self.r, &self.s)
            .unwrap();
        let ji = JoinIndexStrategy::build(&self.disk, &self.params, &self.cost, &self.r, &self.s)
            .unwrap();
        let hh = HybridHash::new(&self.disk, &self.params, &self.cost);
        self.cost.reset();
        (mv, ji, hh)
    }

    /// One random update; with probability `pra` the join attribute
    /// changes. Observed by all `strategies`, then applied to R.
    fn random_update(
        &mut self,
        strategies: &mut [&mut dyn JoinStrategy],
        pra: f64,
        key_domain: u64,
        rn: &mut StdRng,
    ) {
        let mut surs: Vec<u32> = self.r_now.keys().copied().collect();
        surs.sort_unstable(); // HashMap order is random; the pick must not be
        let sur = surs[rn.gen_range(0..surs.len())];
        let old = self.r_now[&sur].clone();
        let new_key = if rn.gen_bool(pra) {
            // Change A (may move between matched and unmatched ranges).
            if rn.gen_bool(0.8) {
                rn.gen_range(0..key_domain)
            } else {
                1_000_000 + rn.gen_range(0u64..1000)
            }
        } else {
            old.key
        };
        let payload: Vec<u8> = (0..8).map(|_| rn.gen()).collect();
        let new = BaseTuple::with_payload(Surrogate(sur), new_key, &payload, TUPLE).unwrap();
        let upd = Update { old: old.clone(), new: new.clone() };
        for st in strategies.iter_mut() {
            st.on_update(&upd).unwrap();
        }
        self.r.apply_update(&old, &new).unwrap();
        self.r_now.insert(sur, new);
    }

    fn oracle_join(&self) -> Vec<trijoin_common::ViewTuple> {
        let r: Vec<BaseTuple> = self.r_now.values().cloned().collect();
        oracle::join_tuples(&r, &self.s_now)
    }

    fn check_all(
        &self,
        mv: &mut MaterializedView,
        ji: &mut JoinIndexStrategy,
        hh: &mut HybridHash,
        label: &str,
    ) {
        let want = self.oracle_join();
        let got_hh = execute_collect(hh, &self.r, &self.s).unwrap();
        oracle::assert_same_join(&format!("{label}/hybrid-hash"), got_hh, want.clone());
        let got_mv = execute_collect(mv, &self.r, &self.s).unwrap();
        oracle::assert_same_join(&format!("{label}/materialized-view"), got_mv, want.clone());
        let got_ji = execute_collect(ji, &self.r, &self.s).unwrap();
        oracle::assert_same_join(&format!("{label}/join-index"), got_ji, want.clone());
        ji.index().check_invariants().unwrap();
        assert_eq!(mv.view_len(), want.len() as u64, "{label}: view cardinality");
        assert_eq!(ji.index_len(), want.len() as u64, "{label}: index cardinality");
    }
}

#[test]
fn no_updates_all_strategies_agree() {
    let db = TestDb::new(120, 100, 12, 1);
    let (mut mv, mut ji, mut hh) = db.strategies();
    db.check_all(&mut mv, &mut ji, &mut hh, "fresh");
}

#[test]
fn empty_join_everywhere() {
    // Disjoint key ranges: R keys all unmatched.
    let mut db = TestDb::new(40, 40, 5, 2);
    // Force R to be fully unmatched.
    let surs: Vec<u32> = db.r_now.keys().copied().collect();
    for sur in surs {
        let old = db.r_now[&sur].clone();
        let new = BaseTuple::with_payload(Surrogate(sur), 9_999_999, b"x", TUPLE).unwrap();
        db.r.apply_update(&old, &new).unwrap();
        db.r_now.insert(sur, new);
    }
    let (mut mv, mut ji, mut hh) = db.strategies();
    let want = db.oracle_join();
    assert!(want.is_empty());
    assert_eq!(execute_collect(&mut hh, &db.r, &db.s).unwrap().len(), 0);
    assert_eq!(execute_collect(&mut mv, &db.r, &db.s).unwrap().len(), 0);
    assert_eq!(execute_collect(&mut ji, &db.r, &db.s).unwrap().len(), 0);
}

#[test]
fn updates_then_query_all_agree() {
    let mut db = TestDb::new(150, 120, 10, 3);
    let (mut mv, mut ji, mut hh) = db.strategies();
    let mut rn = rng::seeded(rng::derive(3, "updates"));
    for _ in 0..60 {
        db.random_update(&mut [&mut mv, &mut ji, &mut hh], 0.4, 10, &mut rn);
    }
    db.check_all(&mut mv, &mut ji, &mut hh, "after-60-updates");
}

#[test]
fn repeated_update_query_rounds() {
    let mut db = TestDb::new(100, 80, 8, 4);
    let (mut mv, mut ji, mut hh) = db.strategies();
    let mut rn = rng::seeded(rng::derive(4, "updates"));
    for round in 0..4 {
        for _ in 0..25 {
            db.random_update(&mut [&mut mv, &mut ji, &mut hh], 0.5, 8, &mut rn);
        }
        db.check_all(&mut mv, &mut ji, &mut hh, &format!("round-{round}"));
    }
}

#[test]
fn chained_updates_to_same_tuple_cancel_correctly() {
    let mut db = TestDb::new(50, 50, 6, 5);
    let (mut mv, mut ji, mut hh) = db.strategies();
    // Hand-crafted chains on one tuple: a -> b -> c, then payload-only.
    let sur = 7u32;
    let steps: Vec<(u64, &[u8])> = vec![
        (1, b"step1"),
        (2, b"step2"),
        (2, b"step3-payload-only"),
        (3, b"step4"),
        (3, b"step5-payload-only"),
    ];
    for (key, payload) in steps {
        let old = db.r_now[&sur].clone();
        let new = BaseTuple::with_payload(Surrogate(sur), key, payload, TUPLE).unwrap();
        let upd = Update { old: old.clone(), new: new.clone() };
        mv.on_update(&upd).unwrap();
        ji.on_update(&upd).unwrap();
        hh.on_update(&upd).unwrap();
        db.r.apply_update(&old, &new).unwrap();
        db.r_now.insert(sur, new);
    }
    db.check_all(&mut mv, &mut ji, &mut hh, "chained");
}

#[test]
fn roundtrip_update_is_a_noop_for_the_join() {
    let mut db = TestDb::new(60, 60, 6, 6);
    let (mut mv, mut ji, mut hh) = db.strategies();
    let sur = 3u32;
    let orig = db.r_now[&sur].clone();
    let detour = BaseTuple::with_payload(Surrogate(sur), orig.key + 1, b"detour", TUPLE).unwrap();
    for (old, new) in [(orig.clone(), detour.clone()), (detour, orig.clone())] {
        let upd = Update { old: old.clone(), new: new.clone() };
        mv.on_update(&upd).unwrap();
        ji.on_update(&upd).unwrap();
        hh.on_update(&upd).unwrap();
        db.r.apply_update(&old, &new).unwrap();
        db.r_now.insert(sur, new);
    }
    assert_eq!(db.r_now[&sur], orig);
    db.check_all(&mut mv, &mut ji, &mut hh, "roundtrip");
}

#[test]
fn grace_and_hybrid_hash_agree() {
    let db = TestDb::new(200, 150, 10, 7);
    let mut hybrid = HybridHash::new(&db.disk, &db.params, &db.cost);
    let mut grace = HybridHash::grace(&db.disk, &db.params, &db.cost);
    let want = db.oracle_join();
    oracle::assert_same_join(
        "hybrid",
        execute_collect(&mut hybrid, &db.r, &db.s).unwrap(),
        want.clone(),
    );
    db.cost.reset();
    oracle::assert_same_join("grace", execute_collect(&mut grace, &db.r, &db.s).unwrap(), want);
}

#[test]
fn second_query_without_updates_is_cheap_for_caches() {
    let mut db = TestDb::new(150, 120, 10, 8);
    let (mut mv, mut ji, mut hh) = db.strategies();
    let mut rn = rng::seeded(rng::derive(8, "updates"));
    for _ in 0..40 {
        db.random_update(&mut [&mut mv, &mut ji, &mut hh], 0.5, 10, &mut rn);
    }
    // First query pays for update maintenance.
    db.cost.reset();
    execute_collect(&mut mv, &db.r, &db.s).unwrap();
    let mv_first = db.cost.total().ios;
    db.cost.reset();
    execute_collect(&mut mv, &db.r, &db.s).unwrap();
    let mv_second = db.cost.total().ios;
    assert!(
        mv_second < mv_first,
        "clean MV re-read ({mv_second} IOs) should beat maintaining ({mv_first} IOs)"
    );
    db.cost.reset();
    execute_collect(&mut ji, &db.r, &db.s).unwrap();
    let ji_first = db.cost.total().ios;
    db.cost.reset();
    execute_collect(&mut ji, &db.r, &db.s).unwrap();
    let ji_second = db.cost.total().ios;
    assert!(
        ji_second <= ji_first,
        "JI without pending updates must not cost more: {ji_second} vs {ji_first} \
         (pages {})",
        ji.index_pages()
    );
    // Hybrid hash costs the same either way.
    db.cost.reset();
    execute_collect(&mut hh, &db.r, &db.s).unwrap();
    let hh_a = db.cost.total().ios;
    db.cost.reset();
    execute_collect(&mut hh, &db.r, &db.s).unwrap();
    let hh_b = db.cost.total().ios;
    assert_eq!(hh_a, hh_b, "hybrid-hash is update-oblivious");
}

#[test]
fn costs_are_deterministic() {
    let run = || {
        let mut db = TestDb::new(100, 90, 9, 42);
        let (mut mv, mut ji, mut hh) = db.strategies();
        let mut rn = rng::seeded(rng::derive(42, "updates"));
        for _ in 0..30 {
            db.random_update(&mut [&mut mv, &mut ji, &mut hh], 0.3, 9, &mut rn);
        }
        db.cost.reset();
        execute_collect(&mut mv, &db.r, &db.s).unwrap();
        execute_collect(&mut ji, &db.r, &db.s).unwrap();
        execute_collect(&mut hh, &db.r, &db.s).unwrap();
        db.cost.total()
    };
    assert_eq!(run(), run(), "same seed must reproduce identical op counts");
}

#[test]
fn mv_io_cost_scales_with_view_not_base() {
    // Low-selectivity case: tiny view, MV query should touch far fewer
    // pages than hybrid hash (the heart of Figure 4's low-SR region).
    let mut db = TestDb::new(300, 300, 2000, 9); // few matches
    let (mut mv, _ji, mut hh) = db.strategies();
    let mut rn = rng::seeded(rng::derive(9, "updates"));
    for _ in 0..10 {
        db.random_update(&mut [&mut mv, &mut hh], 0.2, 2000, &mut rn);
    }
    db.cost.reset();
    execute_collect(&mut mv, &db.r, &db.s).unwrap();
    let mv_ios = db.cost.total().ios;
    db.cost.reset();
    execute_collect(&mut hh, &db.r, &db.s).unwrap();
    let hh_ios = db.cost.total().ios;
    assert!(
        mv_ios < hh_ios,
        "low selectivity: MV ({mv_ios} IOs) must beat hybrid hash ({hh_ios} IOs)"
    );
}

#[test]
fn eager_view_stays_correct_and_pays_per_update() {
    use std::rc::Rc;
    use trijoin_exec::EagerView;
    let mut db = TestDb::new(150, 120, 10, 21);
    let s_rc =
        Rc::new(StoredRelation::build(&db.disk, &db.params, "S2", db.s_now.clone(), true).unwrap());
    let mut eager =
        EagerView::build(&db.disk, &db.params, &db.cost, &db.r, Rc::clone(&s_rc)).unwrap();
    let mut mv = MaterializedView::build(&db.disk, &db.params, &db.cost, &db.r, &db.s).unwrap();
    db.cost.reset();

    let mut rn = rng::seeded(rng::derive(21, "updates"));
    let eager_before = db.cost.total();
    for _ in 0..40 {
        db.random_update(&mut [&mut eager, &mut mv], 0.4, 10, &mut rn);
    }
    let maintain_ops = db.cost.total().delta_since(&eager_before);
    assert!(
        maintain_ops.ios > 40,
        "eager maintenance must pay I/O per update, got {} IOs",
        maintain_ops.ios
    );

    // Both answer correctly.
    let want = db.oracle_join();
    oracle::assert_same_join(
        "eager",
        execute_collect(&mut eager, &db.r, &db.s).unwrap(),
        want.clone(),
    );
    oracle::assert_same_join("mv", execute_collect(&mut mv, &db.r, &db.s).unwrap(), want.clone());
    assert_eq!(eager.view_len(), want.len() as u64);

    // A clean query through the eager view is just the view scan.
    db.cost.reset();
    execute_collect(&mut eager, &db.r, &db.s).unwrap();
    let clean_ios = db.cost.total().ios;
    assert!(
        clean_ios <= eager.view_pages() + 2,
        "clean eager query reads only the view: {} IOs for {} pages",
        clean_ios,
        eager.view_pages()
    );
}

#[test]
fn eager_total_cost_exceeds_deferred_under_churn() {
    // End-to-end epoch cost (maintenance + query): deferral must win once
    // updates are plentiful — the engine-side counterpart of the
    // ablation_eager model study.
    use std::rc::Rc;
    use trijoin_exec::EagerView;
    let mut db = TestDb::new(300, 300, 12, 22);
    let s_rc =
        Rc::new(StoredRelation::build(&db.disk, &db.params, "S2", db.s_now.clone(), true).unwrap());
    let mut eager =
        EagerView::build(&db.disk, &db.params, &db.cost, &db.r, Rc::clone(&s_rc)).unwrap();
    let mut mv = MaterializedView::build(&db.disk, &db.params, &db.cost, &db.r, &db.s).unwrap();
    db.cost.reset();

    let mut rn = rng::seeded(rng::derive(22, "updates"));
    let start = db.cost.total();
    for _ in 0..150 {
        db.random_update(&mut [&mut eager, &mut mv], 0.5, 12, &mut rn);
    }
    // Split the shared ledger by running the queries one at a time.
    let after_updates = db.cost.total();
    execute_collect(&mut eager, &db.r, &db.s).unwrap();
    let after_eager_q = db.cost.total();
    execute_collect(&mut mv, &db.r, &db.s).unwrap();
    let after_mv_q = db.cost.total();

    // Maintenance phase: eager paid I/O per update, deferred only logged
    // (moves + occasional spills). The shared maintenance ledger is
    // dominated by eager (MV logging is ~2 moves/update + spill pages).
    let maintain = after_updates.delta_since(&start);
    let eager_q = after_eager_q.delta_since(&after_updates);
    let mv_q = after_mv_q.delta_since(&after_eager_q);
    let p = &db.params;
    let eager_total = maintain.time_secs(p) * 0.95 + eager_q.time_secs(p); // ≥95% of maintain is eager's
    let deferred_total = maintain.time_secs(p) * 0.05 + mv_q.time_secs(p);
    assert!(
        eager_total > deferred_total,
        "under churn, eager ({eager_total:.2}s) must cost more than deferred \
         ({deferred_total:.2}s)"
    );
}
