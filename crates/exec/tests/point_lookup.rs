//! Point lookups through the caches: the active-database access pattern
//! ("actions ... time-constrained in the order of a few milliseconds").

use rand::prelude::*;

use trijoin_common::{rng, BaseTuple, Cost, Error, Surrogate, SystemParams};
use trijoin_exec::{
    execute_collect, JoinIndexStrategy, JoinStrategy, MaterializedView, StoredRelation, Update,
};
use trijoin_storage::{Disk, SimDisk};

const TUPLE: usize = 64;

fn setup(
    seed: u64,
) -> (Disk, Cost, SystemParams, StoredRelation, StoredRelation, Vec<BaseTuple>, Vec<BaseTuple>) {
    let cost = Cost::new();
    let params = SystemParams { page_size: 512, mem_pages: 24, ..SystemParams::paper_defaults() };
    let disk = SimDisk::new(&params, cost.clone());
    let mut rn = rng::seeded(seed);
    let mk = |i: u32, rn: &mut StdRng| {
        // ~100 distinct keys over 200 tuples: small per-key groups, so a
        // point lookup's bucket chain stays short.
        BaseTuple::padded(Surrogate(i), rn.gen_range(0..100), TUPLE)
    };
    let r_tuples: Vec<BaseTuple> = (0..200).map(|i| mk(i, &mut rn)).collect();
    let s_tuples: Vec<BaseTuple> = (0..200).map(|i| mk(i, &mut rn)).collect();
    let r = StoredRelation::build(&disk, &params, "R", r_tuples.clone(), false).unwrap();
    let s = StoredRelation::build(&disk, &params, "S", s_tuples.clone(), true).unwrap();
    (disk, cost, params, r, s, r_tuples, s_tuples)
}

#[test]
fn mv_point_lookup_matches_full_scan_and_is_cheap() {
    let (disk, cost, params, r, s, r_now, s_now) = setup(81);
    let mv = MaterializedView::build(&disk, &params, &cost, &r, &s).unwrap();
    for key in 0..100u64 {
        cost.reset();
        let got = mv.lookup_key(key).unwrap();
        let ios = cost.total().ios;
        let want: usize = r_now.iter().filter(|t| t.key == key).count()
            * s_now.iter().filter(|t| t.key == key).count();
        assert_eq!(got.len(), want, "key {key}");
        assert!(got.iter().all(|v| v.key == key));
        // Point cost: one bucket chain. Its length is the bucket's
        // occupancy (the probed key's matches plus any hash co-residents),
        // never the view size — at this fixture's scale a couple dozen
        // pages at worst versus a ~200-page view.
        assert!(ios <= 24, "key {key}: {ios} IOs for {} tuples", got.len());
        assert!(ios < mv.view_pages() / 4, "must not approach a full scan");
    }
    // Missing key: empty, still cheap.
    cost.reset();
    assert!(mv.lookup_key(999_999).unwrap().is_empty());
    assert!(cost.total().ios <= 4);
}

#[test]
fn ji_partner_lookup_matches_oracle_and_is_cheap() {
    let (disk, cost, params, r, s, r_now, s_now) = setup(82);
    let ji = JoinIndexStrategy::build(&disk, &params, &cost, &r, &s).unwrap();
    for probe in [0u32, 7, 42, 150, 199] {
        cost.reset();
        let mut got = ji.partners_of_r(Surrogate(probe)).unwrap();
        got.sort();
        let key = r_now[probe as usize].key;
        let mut want: Vec<Surrogate> =
            s_now.iter().filter(|t| t.key == key).map(|t| t.sur).collect();
        want.sort();
        assert_eq!(got, want, "r = {probe}");
        assert!(cost.total().ios <= 4, "point lookup took {} IOs", cost.total().ios);
    }
}

#[test]
fn point_lookups_refuse_stale_caches() {
    let (disk, cost, params, mut r, s, r_now, _s_now) = setup(83);
    let mut mv = MaterializedView::build(&disk, &params, &cost, &r, &s).unwrap();
    let mut ji = JoinIndexStrategy::build(&disk, &params, &cost, &r, &s).unwrap();
    let old = r_now[5].clone();
    let new = BaseTuple::padded(Surrogate(5), old.key + 1, TUPLE);
    let upd = Update { old: old.clone(), new: new.clone() };
    mv.on_update(&upd).unwrap();
    ji.on_update(&upd).unwrap();
    r.apply_update(&old, &new).unwrap();
    assert!(matches!(mv.lookup_key(0), Err(Error::Infeasible(_))));
    assert!(matches!(ji.partners_of_r(Surrogate(5)), Err(Error::Infeasible(_))));
    // After a query the caches are clean again and lookups agree with the
    // post-update state.
    execute_collect(&mut mv, &r, &s).unwrap();
    execute_collect(&mut ji, &r, &s).unwrap();
    let via_mv: Vec<u32> = mv
        .lookup_key(new.key)
        .unwrap()
        .iter()
        .filter(|v| v.r_sur == Surrogate(5))
        .map(|v| v.s_sur.0)
        .collect();
    let mut via_ji: Vec<u32> =
        ji.partners_of_r(Surrogate(5)).unwrap().iter().map(|s| s.0).collect();
    via_ji.sort_unstable();
    let mut via_mv = via_mv;
    via_mv.sort_unstable();
    assert_eq!(via_mv, via_ji);
}

#[test]
fn ji_partner_lookup_handles_group_spanning_pages() {
    // One r with more partners than a JI page holds: the group alone
    // exceeds max_cap, forcing a multi-page group.
    let cost = Cost::new();
    let params = SystemParams { page_size: 256, mem_pages: 24, ..SystemParams::paper_defaults() };
    let disk = SimDisk::new(&params, cost.clone());
    // page 256: max_cap = (256-2)/8 = 31 entries; give r=0 80 partners.
    let r_tuples: Vec<BaseTuple> = vec![BaseTuple::padded(Surrogate(0), 7, TUPLE)];
    let s_tuples: Vec<BaseTuple> =
        (0..80).map(|i| BaseTuple::padded(Surrogate(i), 7, TUPLE)).collect();
    let r = StoredRelation::build(&disk, &params, "R", r_tuples, false).unwrap();
    let s = StoredRelation::build(&disk, &params, "S", s_tuples, true).unwrap();
    let ji = JoinIndexStrategy::build(&disk, &params, &cost, &r, &s).unwrap();
    assert!(ji.index_pages() > 1, "group must span pages");
    let got = ji.partners_of_r(Surrogate(0)).unwrap();
    assert_eq!(got.len(), 80);
    assert!(ji.partners_of_r(Surrogate(1)).unwrap().is_empty());
}
