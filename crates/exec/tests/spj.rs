//! Select-project view correctness and the irrelevant-update optimization.

use rand::prelude::*;
use std::collections::HashMap;

use trijoin_common::{rng, BaseTuple, Cost, Surrogate, SystemParams, ViewTuple};
use trijoin_exec::{
    execute_collect, JoinStrategy, MaterializedView, Mutation, Predicate, StoredRelation, Update,
    ViewDef,
};
use trijoin_storage::{Disk, SimDisk};

const TUPLE: usize = 64;

fn setup(
    seed: u64,
) -> (Disk, Cost, SystemParams, StoredRelation, StoredRelation, Vec<BaseTuple>, Vec<BaseTuple>) {
    let cost = Cost::new();
    let params = SystemParams { page_size: 512, mem_pages: 24, ..SystemParams::paper_defaults() };
    let disk = SimDisk::new(&params, cost.clone());
    let mut rn = rng::seeded(seed);
    let mk = |i: u32, rn: &mut StdRng| {
        let key = rn.gen_range(0..12u64);
        let payload: Vec<u8> = (0..8).map(|_| rn.gen()).collect();
        BaseTuple::with_payload(Surrogate(i), key, &payload, TUPLE).unwrap()
    };
    let r_tuples: Vec<BaseTuple> = (0..150).map(|i| mk(i, &mut rn)).collect();
    let s_tuples: Vec<BaseTuple> = (0..120).map(|i| mk(i, &mut rn)).collect();
    let r = StoredRelation::build(&disk, &params, "R", r_tuples.clone(), false).unwrap();
    let s = StoredRelation::build(&disk, &params, "S", s_tuples.clone(), true).unwrap();
    (disk, cost, params, r, s, r_tuples, s_tuples)
}

/// Ground truth for a select-project view.
fn spj_oracle(def: &ViewDef, r: &[BaseTuple], s: &[BaseTuple]) -> Vec<ViewTuple> {
    let mut out = Vec::new();
    for rt in r.iter().filter(|t| def.r_pred.eval(t)) {
        for st in s.iter().filter(|t| def.s_pred.eval(t)) {
            if rt.key == st.key {
                out.push(def.make_view_tuple(rt, st));
            }
        }
    }
    out
}

fn assert_view(label: &str, mut got: Vec<ViewTuple>, mut want: Vec<ViewTuple>) {
    got.sort_by_key(|v| (v.r_sur, v.s_sur));
    want.sort_by_key(|v| (v.r_sur, v.s_sur));
    assert_eq!(got, want, "{label}");
}

fn sample_def() -> ViewDef {
    ViewDef {
        // Only R tuples with keys 0..=5 and first payload byte < 128.
        r_pred: Predicate::KeyRange { lo: 0, hi: 5 }
            .and(Predicate::PayloadByteLt { index: 0, bound: 128 }),
        // Only S tuples whose first payload byte is even-ish (< 200).
        s_pred: Predicate::PayloadByteLt { index: 0, bound: 200 },
        r_project: Some(4),
        s_project: Some(2),
    }
}

#[test]
fn spj_view_matches_oracle_fresh() {
    let (disk, cost, params, r, s, r_now, s_now) = setup(61);
    let def = sample_def();
    let mut view =
        MaterializedView::build_with(&disk, &params, &cost, &r, &s, def.clone()).unwrap();
    let want = spj_oracle(&def, &r_now, &s_now);
    assert!(!want.is_empty(), "fixture should select something");
    assert!(want.len() < r_now.len() * 3, "fixture should actually filter");
    let got = execute_collect(&mut view, &r, &s).unwrap();
    assert_view("fresh", got, want.clone());
    assert_eq!(view.view_len(), want.len() as u64);
}

#[test]
fn spj_view_survives_updates_across_the_selection_boundary() {
    let (disk, cost, params, mut r, s, r_now, s_now) = setup(62);
    let def = sample_def();
    let mut view =
        MaterializedView::build_with(&disk, &params, &cost, &r, &s, def.clone()).unwrap();
    let mut r_map: HashMap<u32, BaseTuple> = r_now.into_iter().map(|t| (t.sur.0, t)).collect();
    let mut rn = rng::seeded(620);
    for _ in 0..80 {
        let surs: Vec<u32> = {
            let mut v: Vec<u32> = r_map.keys().copied().collect();
            v.sort_unstable();
            v
        };
        let sur = surs[rn.gen_range(0..surs.len())];
        let old = r_map[&sur].clone();
        // Key and payload both churn, crossing the selection both ways.
        let new_key = rn.gen_range(0..12u64);
        let payload: Vec<u8> = (0..8).map(|_| rn.gen()).collect();
        let new = BaseTuple::with_payload(Surrogate(sur), new_key, &payload, TUPLE).unwrap();
        let m = Mutation::Update(Update { old: old.clone(), new: new.clone() });
        view.on_mutation(&m).unwrap();
        r.apply_update(&old, &new).unwrap();
        r_map.insert(sur, new);
    }
    let current: Vec<BaseTuple> = r_map.values().cloned().collect();
    let want = spj_oracle(&def, &current, &s_now);
    let got = execute_collect(&mut view, &r, &s).unwrap();
    assert_view("after churn", got, want.clone());
    assert_eq!(view.view_len(), want.len() as u64);

    // Second query with no changes returns the same thing.
    let again = execute_collect(&mut view, &r, &s).unwrap();
    assert_view("idempotent", again, want);
}

#[test]
fn irrelevant_updates_cost_nothing() {
    let (disk, cost, params, mut r, s, r_now, _s_now) = setup(63);
    let def = ViewDef { r_pred: Predicate::KeyRange { lo: 0, hi: 3 }, ..ViewDef::default() };
    let mut view =
        MaterializedView::build_with(&disk, &params, &cost, &r, &s, def.clone()).unwrap();
    // Updates entirely outside the selection: keys 6..12 -> 6..12.
    let outside: Vec<BaseTuple> = r_now.iter().filter(|t| t.key >= 6).take(20).cloned().collect();
    assert!(outside.len() >= 10, "fixture needs outside tuples");
    cost.reset();
    for (i, old) in outside.iter().enumerate() {
        let new =
            BaseTuple::with_payload(old.sur, 6 + (old.key + 1) % 6, &[i as u8], TUPLE).unwrap();
        let m = Mutation::Update(Update { old: old.clone(), new: new.clone() });
        view.on_mutation(&m).unwrap();
        // Note: applying to the base relation costs I/O, but the *view*
        // must log nothing.
        r.apply_update(old, &new).unwrap();
    }
    assert_eq!(view.pending_updates(), 0, "irrelevant updates must not be logged");

    // And the next query is a clean view read: no differential processing.
    cost.reset();
    execute_collect(&mut view, &r, &s).unwrap();
    let ios = cost.total().ios;
    assert!(
        ios <= view.view_pages() + 2,
        "clean query should read only the view: {ios} IOs vs {} pages",
        view.view_pages()
    );
}

#[test]
fn projection_shrinks_the_view() {
    let (disk, cost, params, r, s, _r_now, _s_now) = setup(64);
    let full = MaterializedView::build(&disk, &params, &cost, &r, &s).unwrap();
    let projected = MaterializedView::build_with(
        &disk,
        &params,
        &cost,
        &r,
        &s,
        ViewDef { r_project: Some(0), s_project: Some(0), ..ViewDef::default() },
    )
    .unwrap();
    assert_eq!(full.view_len(), projected.view_len(), "same tuples, smaller rows");
    assert!(
        projected.view_pages() * 2 <= full.view_pages(),
        "dropping both payloads must shrink the file: {} vs {} pages",
        projected.view_pages(),
        full.view_pages()
    );
}

#[test]
fn spj_handles_inserts_and_deletes() {
    let (disk, cost, params, mut r, s, r_now, s_now) = setup(65);
    let def = ViewDef { r_pred: Predicate::KeyRange { lo: 0, hi: 5 }, ..ViewDef::default() };
    let mut view =
        MaterializedView::build_with(&disk, &params, &cost, &r, &s, def.clone()).unwrap();
    let mut r_map: HashMap<u32, BaseTuple> = r_now.into_iter().map(|t| (t.sur.0, t)).collect();

    // Insert one inside, one outside; delete one of each.
    let ins_in = BaseTuple::with_payload(Surrogate(900), 2, b"in", TUPLE).unwrap();
    let ins_out = BaseTuple::with_payload(Surrogate(901), 9, b"out", TUPLE).unwrap();
    let del_in = r_map.values().find(|t| t.key <= 5).unwrap().clone();
    let del_out = r_map.values().find(|t| t.key > 5).unwrap().clone();
    for m in [
        Mutation::Insert(ins_in.clone()),
        Mutation::Insert(ins_out.clone()),
        Mutation::Delete(del_in.clone()),
        Mutation::Delete(del_out.clone()),
    ] {
        view.on_mutation(&m).unwrap();
        r.apply_mutation(&m).unwrap();
        match m {
            Mutation::Insert(t) => {
                r_map.insert(t.sur.0, t);
            }
            Mutation::Delete(t) => {
                r_map.remove(&t.sur.0);
            }
            Mutation::Update(_) => unreachable!(),
        }
    }
    let current: Vec<BaseTuple> = r_map.values().cloned().collect();
    let want = spj_oracle(&def, &current, &s_now);
    let got = execute_collect(&mut view, &r, &s).unwrap();
    assert_view("spj insert/delete", got, want);
}
