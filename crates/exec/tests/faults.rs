//! Fault injection: every strategy and substrate must surface a legacy
//! one-shot fault as a clean `Err`, never a panic — and must *recover*
//! from the typed device faults of a [`FaultPlan`], answering the query
//! exactly despite damaged cached state.

use trijoin_common::{BaseTuple, Cost, Error, Surrogate, SystemParams, ViewTuple};
use trijoin_exec::{
    execute_collect, oracle, HybridHash, JoinIndexStrategy, JoinStrategy, MaterializedView,
    Mutation, StoredRelation,
};
use trijoin_storage::{Disk, FaultPlan, SimDisk};

fn setup() -> (Disk, Cost, SystemParams, StoredRelation, StoredRelation) {
    let cost = Cost::new();
    let params = SystemParams { page_size: 512, mem_pages: 24, ..SystemParams::paper_defaults() };
    let disk = SimDisk::new(&params, cost.clone());
    let mk = |i: u32| BaseTuple::padded(Surrogate(i), (i % 7) as u64, 64);
    let r = StoredRelation::build(&disk, &params, "R", (0..150).map(mk).collect(), false).unwrap();
    let s = StoredRelation::build(&disk, &params, "S", (0..150).map(mk).collect(), true).unwrap();
    (disk, cost, params, r, s)
}

#[test]
fn btree_lookup_surfaces_fault_and_recovers() {
    let (disk, _c, _p, r, _s) = setup();
    disk.inject_fault(0);
    let err = r.get(Surrogate(10)).unwrap_err();
    assert_eq!(err, Error::Faulted);
    // One-shot: the next access succeeds.
    assert!(r.get(Surrogate(10)).unwrap().is_some());
}

#[test]
fn strategies_surface_faults_mid_query() {
    let (disk, cost, params, r, s) = setup();
    let mut mv = MaterializedView::build(&disk, &params, &cost, &r, &s).unwrap();
    let mut ji = JoinIndexStrategy::build(&disk, &params, &cost, &r, &s).unwrap();
    let mut hh = HybridHash::new(&disk, &params, &cost);
    let strategies: Vec<(&str, &mut dyn JoinStrategy)> =
        vec![("hh", &mut hh), ("mv", &mut mv), ("ji", &mut ji)];
    for (label, strategy) in strategies {
        // Fail a read somewhere in the middle of the query.
        disk.inject_fault(7);
        let got = strategy.execute(&r, &s, &mut |_| {});
        assert_eq!(got.unwrap_err(), Error::Faulted, "{label} must propagate the fault");
        disk.clear_fault();
    }
    // Hybrid hash is stateless: it recovers immediately and fully.
    let ok = execute_collect(&mut hh, &r, &s).unwrap();
    assert!(!ok.is_empty());
}

#[test]
fn fault_countdown_is_precise() {
    let (disk, cost, _p, r, _s) = setup();
    cost.reset();
    // Warm nothing: each get costs height-1..height IOs; fail exactly the
    // third charged I/O.
    disk.inject_fault(2);
    let mut results = Vec::new();
    for i in 0..4 {
        results.push(r.get(Surrogate(i)).map(|t| t.is_some()));
    }
    let failures = results.iter().filter(|x| x.is_err()).count();
    assert_eq!(failures, 1, "exactly one operation fails: {results:?}");
}

#[test]
fn relation_mutation_fault_does_not_panic() {
    let (disk, _c, _p, mut r, _s) = setup();
    let old = r.get(Surrogate(3)).unwrap().unwrap();
    let new = BaseTuple::padded(Surrogate(3), 99, 64);
    disk.inject_fault(0);
    assert!(r.apply_update(&old, &new).is_err());
    disk.clear_fault();
    // The relation remains usable (the tree may have logically applied the
    // remove before the fault hit the write path; we only require no panic
    // and continued operability here — full crash-atomicity is WAL
    // territory, which the 1989 model does not include).
    let _ = r.get(Surrogate(3)).unwrap();
    let _ = r.get(Surrogate(4)).unwrap();
}

// ---------------------------------------------------------------------
// Typed device faults (FaultPlan): strategies recover, answers stay exact.
// ---------------------------------------------------------------------

fn oracle_answer(r: &StoredRelation, s: &StoredRelation) -> Vec<ViewTuple> {
    let mut r_all = Vec::new();
    r.scan(|t| r_all.push(t)).unwrap();
    let mut s_all = Vec::new();
    s.scan(|t| s_all.push(t)).unwrap();
    oracle::join_tuples(&r_all, &s_all)
}

#[test]
fn mv_recovers_exactly_from_poisoned_view_read() {
    let (disk, cost, params, r, s) = setup();
    let mut mv = MaterializedView::build(&disk, &params, &cost, &r, &s).unwrap();
    let want = oracle_answer(&r, &s);
    disk.install_fault_plan(FaultPlan::new().poison_nth_read(Some(mv.view_file()), 0));
    let got = execute_collect(&mut mv, &r, &s).unwrap();
    oracle::assert_same_join("mv poisoned view", got, want.clone());
    assert_eq!(disk.faults_fired(), 1, "the poison fired exactly once");
    assert!(
        !cost.section_counts("mv.recover").is_zero(),
        "rebuild work appears as the mv.recover section"
    );
    // The rebuilt view serves the next query without further recovery.
    let recover_before = cost.section_counts("mv.recover");
    let again = execute_collect(&mut mv, &r, &s).unwrap();
    oracle::assert_same_join("mv after rebuild", again, want);
    assert_eq!(cost.section_counts("mv.recover"), recover_before);
}

#[test]
fn mv_recovers_exactly_from_torn_view_write() {
    let (disk, cost, params, mut r, s) = setup();
    let mut mv = MaterializedView::build(&disk, &params, &cost, &r, &s).unwrap();
    // Pend an insertion so the merge must rewrite a view bucket.
    let t = BaseTuple::padded(Surrogate(500), 3, 64);
    mv.on_mutation(&Mutation::Insert(t.clone())).unwrap();
    r.apply_mutation(&Mutation::Insert(t)).unwrap();
    let want = oracle_answer(&r, &s);
    disk.install_fault_plan(FaultPlan::new().torn_write(Some(mv.view_file()), 0));
    let got = execute_collect(&mut mv, &r, &s).unwrap();
    oracle::assert_same_join("mv torn view write", got, want.clone());
    assert_eq!(disk.faults_fired(), 1);
    assert!(!cost.section_counts("mv.recover").is_zero());
    let again = execute_collect(&mut mv, &r, &s).unwrap();
    oracle::assert_same_join("mv after torn-write rebuild", again, want);
}

#[test]
fn ji_recovers_exactly_from_poisoned_index_read() {
    let (disk, cost, params, r, s) = setup();
    let mut ji = JoinIndexStrategy::build(&disk, &params, &cost, &r, &s).unwrap();
    let want = oracle_answer(&r, &s);
    disk.install_fault_plan(FaultPlan::new().poison_nth_read(Some(ji.index_file()), 0));
    let got = execute_collect(&mut ji, &r, &s).unwrap();
    oracle::assert_same_join("ji poisoned index", got, want.clone());
    assert_eq!(disk.faults_fired(), 1);
    assert!(
        !cost.section_counts("ji.recover").is_zero(),
        "rebuild work appears as the ji.recover section"
    );
    ji.index().check_invariants().unwrap();
    let recover_before = cost.section_counts("ji.recover");
    let again = execute_collect(&mut ji, &r, &s).unwrap();
    oracle::assert_same_join("ji after rebuild", again, want);
    assert_eq!(cost.section_counts("ji.recover"), recover_before);
}

#[test]
fn hh_survives_transient_read_faults_anywhere() {
    // Unscoped transient read faults at several countdowns: whether the
    // fault lands on a base-relation scan (whole-join restart) or a
    // spilled-run scan (bounded per-run retry), the answer stays exact.
    let (disk, cost, params, r, s) = setup();
    let want = oracle_answer(&r, &s);
    let mut hh = HybridHash::new(&disk, &params, &cost);
    for after in [0u64, 3, 11, 29] {
        disk.clear_faults();
        let fired_before = disk.faults_fired();
        disk.install_fault_plan(FaultPlan::new().fail_nth_read(None, after));
        let got = execute_collect(&mut hh, &r, &s).unwrap();
        oracle::assert_same_join(&format!("hh transient read after {after}"), got, want.clone());
        assert_eq!(
            disk.faults_fired() - fired_before,
            1,
            "after {after}: fault must actually fire"
        );
    }
    let retry = cost.section_counts("hh.retry");
    let restart = cost.section_counts("hh.recover");
    assert!(
        !retry.is_zero() || !restart.is_zero(),
        "recovery work must be ledgered: retry {retry:?}, restart {restart:?}"
    );
}

#[test]
fn legacy_fault_is_never_recovered() {
    // The one-shot `inject_fault` countdown is the error-path contract:
    // strategies must surface it, not absorb it into recovery.
    let (disk, cost, params, r, s) = setup();
    let mut mv = MaterializedView::build(&disk, &params, &cost, &r, &s).unwrap();
    disk.inject_fault(7);
    assert_eq!(mv.execute(&r, &s, &mut |_| {}).unwrap_err(), Error::Faulted);
    disk.clear_fault();
    assert!(
        cost.section_counts("mv.recover").is_zero(),
        "legacy faults must not trigger the recovery path"
    );
}
