//! Fault injection: every strategy and substrate must surface a device
//! fault as a clean `Err`, never a panic, and must work again once the
//! fault clears.

use trijoin_common::{BaseTuple, Cost, Error, Surrogate, SystemParams};
use trijoin_exec::{
    execute_collect, HybridHash, JoinIndexStrategy, JoinStrategy, MaterializedView,
    StoredRelation,
};
use trijoin_storage::{Disk, SimDisk};

fn setup() -> (Disk, Cost, SystemParams, StoredRelation, StoredRelation) {
    let cost = Cost::new();
    let params = SystemParams { page_size: 512, mem_pages: 24, ..SystemParams::paper_defaults() };
    let disk = SimDisk::new(&params, cost.clone());
    let mk = |i: u32| BaseTuple::padded(Surrogate(i), (i % 7) as u64, 64);
    let r = StoredRelation::build(&disk, &params, "R", (0..150).map(mk).collect(), false).unwrap();
    let s = StoredRelation::build(&disk, &params, "S", (0..150).map(mk).collect(), true).unwrap();
    (disk, cost, params, r, s)
}

#[test]
fn btree_lookup_surfaces_fault_and_recovers() {
    let (disk, _c, _p, r, _s) = setup();
    disk.inject_fault(0);
    let err = r.get(Surrogate(10)).unwrap_err();
    assert_eq!(err, Error::Faulted);
    // One-shot: the next access succeeds.
    assert!(r.get(Surrogate(10)).unwrap().is_some());
}

#[test]
fn strategies_surface_faults_mid_query() {
    let (disk, cost, params, r, s) = setup();
    let mut mv = MaterializedView::build(&disk, &params, &cost, &r, &s).unwrap();
    let mut ji = JoinIndexStrategy::build(&disk, &params, &cost, &r, &s).unwrap();
    let mut hh = HybridHash::new(&disk, &params, &cost);
    let strategies: Vec<(&str, &mut dyn JoinStrategy)> =
        vec![("hh", &mut hh), ("mv", &mut mv), ("ji", &mut ji)];
    for (label, strategy) in strategies {
        // Fail a read somewhere in the middle of the query.
        disk.inject_fault(7);
        let got = strategy.execute(&r, &s, &mut |_| {});
        assert_eq!(got.unwrap_err(), Error::Faulted, "{label} must propagate the fault");
        disk.clear_fault();
    }
    // Hybrid hash is stateless: it recovers immediately and fully.
    let ok = execute_collect(&mut hh, &r, &s).unwrap();
    assert!(!ok.is_empty());
}

#[test]
fn fault_countdown_is_precise() {
    let (disk, cost, _p, r, _s) = setup();
    cost.reset();
    // Warm nothing: each get costs height-1..height IOs; fail exactly the
    // third charged I/O.
    disk.inject_fault(2);
    let mut results = Vec::new();
    for i in 0..4 {
        results.push(r.get(Surrogate(i)).map(|t| t.is_some()));
    }
    let failures = results.iter().filter(|x| x.is_err()).count();
    assert_eq!(failures, 1, "exactly one operation fails: {results:?}");
}

#[test]
fn relation_mutation_fault_does_not_panic() {
    let (disk, _c, _p, mut r, _s) = setup();
    let old = r.get(Surrogate(3)).unwrap().unwrap();
    let new = BaseTuple::padded(Surrogate(3), 99, 64);
    disk.inject_fault(0);
    assert!(r.apply_update(&old, &new).is_err());
    disk.clear_fault();
    // The relation remains usable (the tree may have logically applied the
    // remove before the fault hit the write path; we only require no panic
    // and continued operability here — full crash-atomicity is WAL
    // territory, which the 1989 model does not include).
    let _ = r.get(Surrogate(3)).unwrap();
    let _ = r.get(Surrogate(4)).unwrap();
}
