//! Reference join implementations used as correctness oracles.
//!
//! These operate on plain in-memory tuple vectors (no storage, no cost
//! charges) so tests can compare every strategy's output against ground
//! truth computed by an independent, trivially-auditable algorithm.

use std::collections::HashMap;

use trijoin_common::{BaseTuple, JiEntry, JoinKey, ViewTuple};

/// In-memory hash equi-join of two tuple sets (ground truth).
pub fn join_tuples(r: &[BaseTuple], s: &[BaseTuple]) -> Vec<ViewTuple> {
    let mut by_key: HashMap<JoinKey, Vec<&BaseTuple>> = HashMap::new();
    for st in s {
        by_key.entry(st.key).or_default().push(st);
    }
    let mut out = Vec::new();
    for rt in r {
        if let Some(matches) = by_key.get(&rt.key) {
            for st in matches {
                out.push(ViewTuple::join(rt, st));
            }
        }
    }
    out
}

/// The surrogate pairs of the join — exactly the join-index contents.
pub fn join_pairs(r: &[BaseTuple], s: &[BaseTuple]) -> Vec<JiEntry> {
    join_tuples(r, s).iter().map(|v| v.ji_entry()).collect()
}

/// Canonicalize a join result for comparison: sorted by (r, s) surrogates.
/// Panics if the same pair appears twice (the paper's joins are over
/// unique-surrogate relations, so pairs are unique).
pub fn canonicalize(mut result: Vec<ViewTuple>) -> Vec<ViewTuple> {
    result.sort_by_key(|v| (v.r_sur, v.s_sur));
    for w in result.windows(2) {
        assert!(
            (w[0].r_sur, w[0].s_sur) != (w[1].r_sur, w[1].s_sur),
            "duplicate join pair ({}, {})",
            w[0].r_sur,
            w[0].s_sur
        );
    }
    result
}

/// Assert two join results are identical (pairs, keys, and payloads).
pub fn assert_same_join(label: &str, got: Vec<ViewTuple>, want: Vec<ViewTuple>) {
    let got = canonicalize(got);
    let want = canonicalize(want);
    assert_eq!(
        got.len(),
        want.len(),
        "{label}: cardinality {} vs expected {}",
        got.len(),
        want.len()
    );
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g, w, "{label}: tuple mismatch at pair ({}, {})", w.r_sur, w.s_sur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_common::Surrogate;

    fn t(sur: u32, key: u64) -> BaseTuple {
        BaseTuple::padded(Surrogate(sur), key, 32)
    }

    #[test]
    fn small_join_ground_truth() {
        let r = vec![t(1, 10), t(2, 20), t(3, 10)];
        let s = vec![t(100, 10), t(101, 30), t(102, 10)];
        let mut pairs = join_pairs(&r, &s);
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                JiEntry { r: Surrogate(1), s: Surrogate(100) },
                JiEntry { r: Surrogate(1), s: Surrogate(102) },
                JiEntry { r: Surrogate(3), s: Surrogate(100) },
                JiEntry { r: Surrogate(3), s: Surrogate(102) },
            ]
        );
    }

    #[test]
    fn empty_sides() {
        assert!(join_tuples(&[], &[t(1, 1)]).is_empty());
        assert!(join_tuples(&[t(1, 1)], &[]).is_empty());
        assert!(join_tuples(&[t(1, 1)], &[t(2, 2)]).is_empty());
    }

    #[test]
    fn assert_same_join_accepts_permutations() {
        let r = vec![t(1, 7), t(2, 7)];
        let s = vec![t(9, 7)];
        let a = join_tuples(&r, &s);
        let mut b = a.clone();
        b.reverse();
        assert_same_join("perm", a, b);
    }

    #[test]
    #[should_panic(expected = "cardinality")]
    fn assert_same_join_rejects_mismatch() {
        let r = vec![t(1, 7)];
        let s = vec![t(9, 7)];
        assert_same_join("bad", join_tuples(&r, &s), vec![]);
    }
}
