//! Bilateral deferred maintenance — updates to *both* base relations.
//!
//! §3.2 opens with the general expression
//!
//! ```text
//! V' = V ∪ (iR ⋈ S') ∪ (R' ⋈ iS) ∪ (iR ⋈ iS)
//!        − ((dR ⋈ S) ∪ (R ⋈ dS) ∪ (dR ⋈ dS))
//! ```
//!
//! and then restricts the analysis to R-only updates. This module
//! implements the general case for the materialized view, using the
//! duplicate-free sequential decomposition
//!
//! ```text
//! V1 = V  −  {v : v.r ∈ dR}  ∪  (iR ⋈ (S_now − iS))
//! V' = V1 −  {v : v.s ∈ dS}  ∪  (iS ⋈ R_now)
//! ```
//!
//! i.e. R-insertions join against the *pre-epoch* S (probe the current S
//! and skip net-inserted s tuples — `(iR ⋈ iS)` pairs arrive exactly once,
//! from the S side, because `R_now ⊇ iR`), and S-insertions join against
//! the *current* R through an inverted index on `R.A` (which Table 5 does
//! not provide for the R-only analysis — bilateral maintenance needs the
//! symmetric access path, so [`BilateralView`] requires it).
//!
//! Memory note: the R side streams exactly like [`crate::mv`]; the S-side
//! net differentials are materialized in memory for the duration of one
//! query (their runs are still logged/spilled/merged at full charge). For
//! moderate S churn this is well within |M|; a fully symmetric streaming
//! merge is possible but needs a two-dimensional bucket merge the paper
//! never contemplates.

use std::collections::VecDeque;

use trijoin_common::{
    types::hash_key, BaseTuple, Cost, Error, FxHashMap, FxHashSet, Result, Surrogate, SystemParams,
    ViewTuple,
};
use trijoin_linearhash::{Addressing, LinearHash};
use trijoin_storage::Disk;

use crate::diff::{mv_sort_key, net_differentials, DiffLog, Net, SortKey};
use crate::mv::view_tuple_bytes;
use crate::relation::StoredRelation;
use crate::sort::counted_sort_by;
use crate::strategy::{JoinStrategy, Mutation};

/// Materialized view maintained under mutations to both `R` and `S`.
pub struct BilateralView {
    disk: Disk,
    params: SystemParams,
    cost: Cost,
    v: LinearHash,
    addressing: Addressing,
    r_ins: DiffLog,
    r_del: DiffLog,
    s_ins: DiffLog,
    s_del: DiffLog,
    r_tuple_bytes: usize,
    s_tuple_bytes: usize,
}

impl BilateralView {
    /// Materialize `V = R ⋈ S`. Requires `R` to carry an inverted index on
    /// the join attribute (the symmetric access path S-side insertions
    /// probe).
    pub fn build(
        disk: &Disk,
        params: &SystemParams,
        cost: &Cost,
        r: &StoredRelation,
        s: &StoredRelation,
    ) -> Result<Self> {
        if !r.has_inverted() {
            return Err(Error::Infeasible(
                "bilateral maintenance needs an inverted index on R's join attribute".into(),
            ));
        }
        let mut s_tuples: Vec<BaseTuple> = Vec::with_capacity(s.len() as usize);
        s.scan(|t| s_tuples.push(t))?;
        let mut by_key: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, st) in s_tuples.iter().enumerate() {
            by_key.entry(st.key).or_default().push(i);
        }
        let mut view: Vec<(u64, Vec<u8>)> = Vec::new();
        r.scan(|rt| {
            if let Some(matches) = by_key.get(&rt.key) {
                for &i in matches {
                    let vt = ViewTuple::join(&rt, &s_tuples[i]);
                    view.push((hash_key(vt.key), vt.to_bytes()));
                }
            }
        })?;
        let count = view.len() as u64;
        let tv = view_tuple_bytes(r.tuple_bytes(), s.tuple_bytes());
        let v = LinearHash::build(disk, params, view, count, tv)?;
        let addressing = v.addressing();
        let logs = |bytes: usize| {
            let z = (crate::mv::MaterializedView::z_pages(params) / 2).max(1);
            let per_page = params.tuples_per_full_page(bytes);
            let key = move |t: &BaseTuple| -> SortKey {
                let h = hash_key(t.key);
                mv_sort_key(addressing.addr(h), h, t.sur.0)
            };
            DiffLog::new(disk, cost, z, per_page, true, key)
        };
        Ok(BilateralView {
            disk: disk.clone(),
            params: params.clone(),
            cost: cost.clone(),
            v,
            addressing,
            r_ins: logs(r.tuple_bytes()),
            r_del: logs(r.tuple_bytes()),
            s_ins: logs(s.tuple_bytes()),
            s_del: logs(s.tuple_bytes()),
            r_tuple_bytes: r.tuple_bytes(),
            s_tuple_bytes: s.tuple_bytes(),
        })
    }

    /// Observe a mutation of relation `S` (the extension this type exists
    /// for). `R`-side mutations go through [`JoinStrategy::on_mutation`].
    pub fn on_s_mutation(&mut self, m: &Mutation) -> Result<()> {
        let _g = self.cost.section("mv2.log_s");
        match m {
            Mutation::Update(u) => {
                self.s_del.add(u.old.clone())?;
                self.s_ins.add(u.new.clone())?;
            }
            Mutation::Insert(t) => self.s_ins.add(t.clone())?,
            Mutation::Delete(t) => self.s_del.add(t.clone())?,
        }
        Ok(())
    }

    /// View cardinality.
    pub fn view_len(&self) -> u64 {
        self.v.len()
    }

    /// View pages.
    pub fn view_pages(&self) -> u64 {
        self.v.num_pages()
    }

    /// Pending logged mutations `(R-side, S-side)`.
    pub fn pending(&self) -> (u64, u64) {
        (self.r_ins.len().max(self.r_del.len()), self.s_ins.len().max(self.s_del.len()))
    }

    /// Join a batch of R-insertions against `S_now − iS` (skip net-inserted
    /// s so `(iR ⋈ iS)` pairs arrive exactly once, from the S side).
    fn join_r_batch(
        &self,
        s: &StoredRelation,
        mut batch: Vec<BaseTuple>,
        skip_s: &FxHashSet<Surrogate>,
    ) -> Result<Vec<ViewTuple>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let _g = self.cost.section("mv2.join_ir");
        counted_sort_by(&mut batch, |t| t.key, &self.cost);
        let mut keys: Vec<u64> = batch.iter().map(|t| t.key).collect();
        keys.dedup();
        let mut postings: std::collections::BTreeMap<u64, Vec<Surrogate>> = Default::default();
        s.probe_inverted(&keys, |k, sur| postings.entry(k).or_default().push(sur))?;
        let mut surs: Vec<Surrogate> =
            postings.values().flatten().filter(|sur| !skip_s.contains(sur)).copied().collect();
        self.cost.comp(surs.len() as u64);
        counted_sort_by(&mut surs, |x| x.0, &self.cost);
        let mut s_tuples: FxHashMap<Surrogate, BaseTuple> = Default::default();
        s.fetch_by_surrogates(&surs, |t| {
            s_tuples.insert(t.sur, t);
        })?;
        let mut out = Vec::new();
        for rt in &batch {
            if let Some(ss) = postings.get(&rt.key) {
                for sur in ss {
                    if let Some(st) = s_tuples.get(sur) {
                        out.push(ViewTuple::join(rt, st));
                        self.cost.mov(1);
                    }
                }
            }
        }
        self.cost.hash(out.len() as u64);
        let addressing = self.addressing;
        counted_sort_by(
            &mut out,
            |v| {
                let h = hash_key(v.key);
                mv_sort_key(addressing.addr(h), h, v.r_sur.0)
            },
            &self.cost,
        );
        Ok(out)
    }

    /// Join the (memory-resident) net S-insertions against the current `R`
    /// through R's inverted index; result sorted by `(bucket, hash, ...)`.
    fn join_s_inserts(
        &self,
        r: &StoredRelation,
        mut ins_s: Vec<BaseTuple>,
    ) -> Result<Vec<ViewTuple>> {
        if ins_s.is_empty() {
            return Ok(Vec::new());
        }
        let _g = self.cost.section("mv2.join_is");
        counted_sort_by(&mut ins_s, |t| t.key, &self.cost);
        let mut keys: Vec<u64> = ins_s.iter().map(|t| t.key).collect();
        keys.dedup();
        let mut postings: std::collections::BTreeMap<u64, Vec<Surrogate>> = Default::default();
        r.probe_inverted(&keys, |k, sur| postings.entry(k).or_default().push(sur))?;
        let mut surs: Vec<Surrogate> = postings.values().flatten().copied().collect();
        counted_sort_by(&mut surs, |x| x.0, &self.cost);
        let mut r_tuples: FxHashMap<Surrogate, BaseTuple> = Default::default();
        r.fetch_by_surrogates(&surs, |t| {
            r_tuples.insert(t.sur, t);
        })?;
        let mut out = Vec::new();
        for st in &ins_s {
            if let Some(rs) = postings.get(&st.key) {
                for sur in rs {
                    let rt = r_tuples
                        .get(sur)
                        .ok_or_else(|| Error::Invariant(format!("R posting {sur} has no tuple")))?;
                    out.push(ViewTuple::join(rt, st));
                    self.cost.mov(1);
                }
            }
        }
        self.cost.hash(out.len() as u64);
        let addressing = self.addressing;
        counted_sort_by(
            &mut out,
            |v| {
                let h = hash_key(v.key);
                mv_sort_key(addressing.addr(h), h, v.s_sur.0)
            },
            &self.cost,
        );
        Ok(out)
    }
}

impl JoinStrategy for BilateralView {
    fn name(&self) -> &'static str {
        "bilateral-view"
    }

    fn on_mutation(&mut self, m: &Mutation) -> Result<()> {
        let _g = self.cost.section("mv2.log_r");
        match m {
            Mutation::Update(u) => {
                self.r_del.add(u.old.clone())?;
                self.r_ins.add(u.new.clone())?;
            }
            Mutation::Insert(t) => self.r_ins.add(t.clone())?,
            Mutation::Delete(t) => self.r_del.add(t.clone())?,
        }
        Ok(())
    }

    fn execute(
        &mut self,
        r: &StoredRelation,
        s: &StoredRelation,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64> {
        self.r_ins.seal()?;
        self.r_del.seal()?;
        self.s_ins.seal()?;
        self.s_del.seal()?;

        // ---- S side: materialize the net differential -------------------
        let key_of = {
            let addressing = self.addressing;
            move |t: &BaseTuple| -> SortKey {
                let h = hash_key(t.key);
                mv_sort_key(addressing.addr(h), h, t.sur.0)
            }
        };
        let (ins_s, del_s_surs) = {
            let _g = self.cost.section("mv2.read_s_diffs");
            let mut ins_s: Vec<BaseTuple> = Vec::new();
            let mut del_s_surs: FxHashSet<Surrogate> = FxHashSet::default();
            for item in net_differentials(
                self.s_ins.merged()?,
                self.s_del.merged()?,
                key_of,
                |a, b| a == b,
                &self.cost,
            ) {
                match item {
                    Net::Ins(t) => ins_s.push(t),
                    Net::Del(t) => {
                        del_s_surs.insert(t.sur);
                    }
                }
            }
            (ins_s, del_s_surs)
        };
        // Surface any run-read error parked while draining the S streams.
        self.s_ins.stream_error()?;
        self.s_del.stream_error()?;
        let ins_s_surs: FxHashSet<Surrogate> = ins_s.iter().map(|t| t.sur).collect();
        // Stream B: iS ⋈ R_now, bucket-ordered.
        let mut b_stream: VecDeque<ViewTuple> = self.join_s_inserts(r, ins_s)?.into();

        // ---- R side: stream exactly like the unilateral view ------------
        let wr_tuples = {
            let partners = if r.is_empty() { 1.0 } else { self.v.len() as f64 / r.len() as f64 };
            let n1 = self.r_ins.num_runs().max(self.r_del.num_runs());
            let m = self.params.mem_pages as f64;
            let avail = m - 2.0 * n1 as f64 - 5.0;
            let n_ir = self.params.tuples_per_full_page(self.r_tuple_bytes) as f64;
            let tv = view_tuple_bytes(self.r_tuple_bytes, self.s_tuple_bytes) as f64;
            let per_w = 1.0 + n_ir * partners.max(0.1) * tv / self.params.page_size as f64;
            (((avail / per_w).floor()).max(1.0) as usize)
                * self.params.tuples_per_full_page(self.r_tuple_bytes)
        };
        let mut net_r = net_differentials(
            self.r_ins.merged()?,
            self.r_del.merged()?,
            key_of,
            |a, b| a == b,
            &self.cost,
        )
        .peekable();

        let bucket_of_key = |k: SortKey| -> u64 { (k >> 96) as u64 };
        let mut del_q: VecDeque<(u64, Surrogate)> = VecDeque::new();
        let mut emitted = 0u64;
        let mut next_bucket = 0u64;
        let total_buckets = self.v.num_buckets();

        loop {
            let mut batch: Vec<BaseTuple> = Vec::new();
            {
                let _g = self.cost.section("mv2.read_r_diffs");
                while let Some(item) = net_r.peek() {
                    let key = match item {
                        Net::Ins(t) | Net::Del(t) => key_of(t),
                    };
                    let bucket = bucket_of_key(key);
                    if batch.len() >= wr_tuples {
                        let last_bucket =
                            batch.last().map(|t| bucket_of_key(key_of(t))).unwrap_or(bucket);
                        if bucket > last_bucket {
                            break;
                        }
                    }
                    match net_r.next().unwrap() {
                        Net::Ins(t) => batch.push(t),
                        Net::Del(t) => del_q.push_back((bucket, t.sur)),
                    }
                }
            }
            self.r_ins.stream_error()?;
            self.r_del.stream_error()?;
            let batch_empty = batch.is_empty();
            let scan_done = net_r.peek().is_none() && batch_empty;
            let hi_bucket = if net_r.peek().is_none() {
                total_buckets.saturating_sub(1)
            } else {
                batch
                    .iter()
                    .map(|t| bucket_of_key(key_of(t)))
                    .max()
                    .or_else(|| del_q.back().map(|&(b, _)| b))
                    .unwrap_or(next_bucket)
            };
            let mut joined: VecDeque<ViewTuple> = self.join_r_batch(s, batch, &ins_s_surs)?.into();

            let last = if scan_done {
                total_buckets.saturating_sub(1)
            } else {
                hi_bucket.min(total_buckets.saturating_sub(1))
            };
            for b in next_bucket..=last {
                let old = {
                    let _g = self.cost.section("mv2.scan_view");
                    self.v.scan_bucket(b)?
                };
                let mut r_dels: FxHashSet<Surrogate> = FxHashSet::default();
                while del_q.front().map(|&(db, _)| db == b).unwrap_or(false) {
                    r_dels.insert(del_q.pop_front().unwrap().1);
                }
                let mut changed = false;
                let mut new: Vec<(u64, Vec<u8>)> = Vec::with_capacity(old.len());
                for (h, bytes) in old {
                    let vt = ViewTuple::from_bytes(&bytes)?;
                    self.cost.comp(2); // tested against both deletion sets
                    if r_dels.contains(&vt.r_sur) || del_s_surs.contains(&vt.s_sur) {
                        changed = true;
                    } else {
                        sink(vt);
                        emitted += 1;
                        new.push((h, bytes));
                    }
                }
                let addressing = self.addressing;
                let cost = self.cost.clone();
                let absorb = move |stream: &mut VecDeque<ViewTuple>,
                                   new: &mut Vec<(u64, Vec<u8>)>,
                                   changed: &mut bool,
                                   emitted: &mut u64,
                                   sink: &mut dyn FnMut(ViewTuple)| {
                    while stream
                        .front()
                        .map(|v| addressing.addr(hash_key(v.key)) == b)
                        .unwrap_or(false)
                    {
                        let vt = stream.pop_front().unwrap();
                        cost.mov(1);
                        // Serialize before handing the tuple to the sink so
                        // it moves instead of cloning its payloads.
                        new.push((hash_key(vt.key), vt.to_bytes()));
                        sink(vt);
                        *emitted += 1;
                        *changed = true;
                    }
                };
                absorb(&mut joined, &mut new, &mut changed, &mut emitted, sink);
                absorb(&mut b_stream, &mut new, &mut changed, &mut emitted, sink);
                if changed {
                    let _g = self.cost.section("mv2.write_view");
                    self.cost.mov(new.len() as u64);
                    self.v.rewrite_bucket(b, new)?;
                }
            }
            next_bucket = last + 1;
            if scan_done || next_bucket >= total_buckets {
                debug_assert!(net_r.peek().is_none() && joined.is_empty());
                break;
            }
        }
        debug_assert!(b_stream.is_empty(), "S-side insertions outlived the scan");

        {
            let _g = self.cost.section("mv2.rebalance");
            self.v.rebalance()?;
        }
        self.addressing = self.v.addressing();
        let addressing = self.addressing;
        let mk_log = |bytes: usize, disk: &Disk, cost: &Cost, params: &SystemParams| {
            let z = (crate::mv::MaterializedView::z_pages(params) / 2).max(1);
            let per_page = params.tuples_per_full_page(bytes);
            let key = move |t: &BaseTuple| -> SortKey {
                let h = hash_key(t.key);
                mv_sort_key(addressing.addr(h), h, t.sur.0)
            };
            DiffLog::new(disk, cost, z, per_page, true, key)
        };
        let (rb, sb) = (self.r_tuple_bytes, self.s_tuple_bytes);
        std::mem::replace(&mut self.r_ins, mk_log(rb, &self.disk, &self.cost, &self.params))
            .destroy();
        std::mem::replace(&mut self.r_del, mk_log(rb, &self.disk, &self.cost, &self.params))
            .destroy();
        std::mem::replace(&mut self.s_ins, mk_log(sb, &self.disk, &self.cost, &self.params))
            .destroy();
        std::mem::replace(&mut self.s_del, mk_log(sb, &self.disk, &self.cost, &self.params))
            .destroy();
        Ok(emitted)
    }
}
