//! Select-project view definitions — the paper's §5 future work: "the
//! cost equations ... need to be augmented to account for the projectivity
//! of a join. In addition, the entire analysis should be generalized to
//! ... other additional operators like select".
//!
//! A [`ViewDef`] restricts the materialized view to
//! `V = π(σ_p(R) ⋈ σ_q(S))`:
//!
//! * **selections** are deterministic [`Predicate`]s over base tuples;
//!   maintenance translates base-relation mutations through them, so
//!   *irrelevant updates* (both states fail `p`) are detected at log time
//!   and cost nothing — the optimization of Blakeley, Coburn & Larson
//!   ("Updating derived relations: detecting irrelevant and autonomously
//!   computable updates", the paper's reference \[2\]);
//! * **projection** keeps only a payload prefix of each side, shrinking
//!   `T_V` and with it the dominant `F·|V|` read — exactly the lever the
//!   paper says makes the view's region grow.

use trijoin_common::{BaseTuple, ViewTuple};

use crate::strategy::{Mutation, Update};

/// A deterministic predicate over a base tuple.
///
/// Closures would be more flexible but not comparable/printable; this
/// small algebra covers selections on the join attribute and on fixed
/// payload bytes (the engine's payloads are opaque byte strings), and
/// composes with the usual connectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true (no selection).
    True,
    /// Join attribute within `[lo, hi]`.
    KeyRange {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Payload byte at `index` is strictly less than `bound` (missing
    /// bytes fail).
    PayloadByteLt {
        /// Byte offset within the payload.
        index: usize,
        /// Exclusive upper bound.
        bound: u8,
    },
    /// Payload byte at `index` equals `value` (missing bytes fail).
    PayloadByteEq {
        /// Byte offset within the payload.
        index: usize,
        /// Required value.
        value: u8,
    },
    /// Negation.
    Not(Box<Predicate>),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Evaluate against a tuple.
    pub fn eval(&self, t: &BaseTuple) -> bool {
        match self {
            Predicate::True => true,
            Predicate::KeyRange { lo, hi } => (*lo..=*hi).contains(&t.key),
            Predicate::PayloadByteLt { index, bound } => {
                t.payload.get(*index).map(|&b| b < *bound).unwrap_or(false)
            }
            Predicate::PayloadByteEq { index, value } => {
                t.payload.get(*index).map(|&b| b == *value).unwrap_or(false)
            }
            Predicate::Not(p) => !p.eval(t),
            Predicate::And(a, b) => a.eval(t) && b.eval(t),
            Predicate::Or(a, b) => a.eval(t) || b.eval(t),
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }
}

/// Definition of a select-project join view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// Selection on the `R` side.
    pub r_pred: Predicate,
    /// Selection on the `S` side.
    pub s_pred: Predicate,
    /// Keep only this many leading payload bytes of `R` tuples
    /// (`None` = full payload).
    pub r_project: Option<usize>,
    /// Keep only this many leading payload bytes of `S` tuples.
    pub s_project: Option<usize>,
}

impl Default for ViewDef {
    fn default() -> Self {
        ViewDef {
            r_pred: Predicate::True,
            s_pred: Predicate::True,
            r_project: None,
            s_project: None,
        }
    }
}

impl ViewDef {
    /// The full join (no selection, no projection).
    pub fn full() -> Self {
        Self::default()
    }

    /// True when this is the plain `R ⋈ S` of the paper's main analysis.
    pub fn is_full(&self) -> bool {
        *self == Self::default()
    }

    /// Construct the (projected) view tuple for a joining pair that has
    /// already passed both selections.
    pub fn make_view_tuple(&self, rt: &BaseTuple, st: &BaseTuple) -> ViewTuple {
        let cut = |payload: &[u8], keep: Option<usize>| -> Box<[u8]> {
            match keep {
                Some(k) if k < payload.len() => payload[..k].to_vec().into_boxed_slice(),
                _ => payload.to_vec().into_boxed_slice(),
            }
        };
        ViewTuple {
            r_sur: rt.sur,
            s_sur: st.sur,
            key: rt.key,
            r_payload: cut(&rt.payload, self.r_project),
            s_payload: cut(&st.payload, self.s_project),
        }
    }

    /// Serialized view-tuple size for base tuples of the given sizes.
    pub fn view_tuple_bytes(&self, r_bytes: usize, s_bytes: usize) -> usize {
        let r_payload = r_bytes - BaseTuple::HEADER_BYTES;
        let s_payload = s_bytes - BaseTuple::HEADER_BYTES;
        let rp = self.r_project.map(|k| k.min(r_payload)).unwrap_or(r_payload);
        let sp = self.s_project.map(|k| k.min(s_payload)).unwrap_or(s_payload);
        ViewTuple::HEADER_BYTES + rp + sp
    }

    /// Translate a base-relation mutation through the `R`-side selection:
    /// the view only needs to learn about states that satisfy `p`.
    /// Returns what should be logged; `(None, None)` is an *irrelevant*
    /// mutation that costs the view nothing.
    pub fn translate_r(&self, m: &Mutation) -> (Option<BaseTuple>, Option<BaseTuple>) {
        // (delete-side, insert-side)
        match m {
            Mutation::Update(Update { old, new }) => {
                let o = self.r_pred.eval(old).then(|| old.clone());
                let n = self.r_pred.eval(new).then(|| new.clone());
                (o, n)
            }
            Mutation::Insert(t) => (None, self.r_pred.eval(t).then(|| t.clone())),
            Mutation::Delete(t) => (self.r_pred.eval(t).then(|| t.clone()), None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_common::Surrogate;

    fn tup(key: u64, payload: &[u8]) -> BaseTuple {
        BaseTuple::with_payload(Surrogate(1), key, payload, 48).unwrap()
    }

    #[test]
    fn predicate_algebra() {
        let t = tup(10, &[5, 200]);
        assert!(Predicate::True.eval(&t));
        assert!(Predicate::KeyRange { lo: 10, hi: 10 }.eval(&t));
        assert!(!Predicate::KeyRange { lo: 11, hi: 20 }.eval(&t));
        assert!(Predicate::PayloadByteLt { index: 0, bound: 6 }.eval(&t));
        assert!(!Predicate::PayloadByteLt { index: 1, bound: 100 }.eval(&t));
        assert!(Predicate::PayloadByteEq { index: 1, value: 200 }.eval(&t));
        // Out-of-range byte index fails closed.
        assert!(!Predicate::PayloadByteEq { index: 500, value: 0 }.eval(&t));
        let p = Predicate::KeyRange { lo: 0, hi: 50 }
            .and(Predicate::Not(Box::new(Predicate::PayloadByteEq { index: 0, value: 9 })));
        assert!(p.eval(&t));
        let q = Predicate::Or(
            Box::new(Predicate::KeyRange { lo: 99, hi: 99 }),
            Box::new(Predicate::True),
        );
        assert!(q.eval(&t));
    }

    #[test]
    fn projection_sizes_and_tuples() {
        let def = ViewDef { r_project: Some(4), s_project: Some(0), ..ViewDef::default() };
        // 48-byte tuples: payload 34 bytes each side.
        assert_eq!(def.view_tuple_bytes(48, 48), ViewTuple::HEADER_BYTES + 4);
        let full = ViewDef::full();
        assert_eq!(full.view_tuple_bytes(48, 48), ViewTuple::HEADER_BYTES + 68);
        assert!(full.is_full());
        assert!(!def.is_full());

        let r = tup(3, b"abcdefgh");
        let s = tup(3, b"12345678");
        let vt = def.make_view_tuple(&r, &s);
        assert_eq!(&vt.r_payload[..], b"abcd");
        assert_eq!(&vt.s_payload[..], b"");
        assert_eq!(vt.key, 3);
        // Over-long projection keeps everything.
        let big = ViewDef { r_project: Some(10_000), ..ViewDef::default() };
        assert_eq!(big.make_view_tuple(&r, &s).r_payload.len(), 34);
    }

    #[test]
    fn mutation_translation_detects_irrelevant_updates() {
        let def = ViewDef { r_pred: Predicate::KeyRange { lo: 0, hi: 9 }, ..ViewDef::default() };
        let inside = tup(5, b"x");
        let outside = tup(50, b"y");
        // Irrelevant: both states outside the selection.
        let m = Mutation::Update(Update { old: outside.clone(), new: tup(60, b"z") });
        assert_eq!(def.translate_r(&m), (None, None));
        // Entering the view: insert-only.
        let m = Mutation::Update(Update { old: outside.clone(), new: inside.clone() });
        assert_eq!(def.translate_r(&m), (None, Some(inside.clone())));
        // Leaving the view: delete-only.
        let m = Mutation::Update(Update { old: inside.clone(), new: outside.clone() });
        assert_eq!(def.translate_r(&m), (Some(inside.clone()), None));
        // Staying inside: both sides logged.
        let inside2 = tup(7, b"w");
        let m = Mutation::Update(Update { old: inside.clone(), new: inside2.clone() });
        assert_eq!(def.translate_r(&m), (Some(inside.clone()), Some(inside2)));
        // Inserts/deletes filter too.
        assert_eq!(def.translate_r(&Mutation::Insert(outside.clone())), (None, None));
        assert_eq!(def.translate_r(&Mutation::Delete(inside.clone())), (Some(inside), None));
    }
}
