//! The common interface of the three join strategies.
//!
//! The driver applies a stream of updates to `R` (each an old/new tuple
//! pair with the same surrogate — the paper's model where "update operations
//! ... get translated into a deleted tuple followed by an inserted tuple"),
//! giving each strategy a chance to observe them, then asks for the current
//! join. Updates to `S` are out of scope, exactly as in §3.2 ("the analysis
//! presented here assumes that only relation R is updated").

use trijoin_common::{BaseTuple, Result, ViewTuple};

use crate::relation::StoredRelation;

/// One update to relation `R`: delete `old`, insert `new` (same surrogate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Update {
    /// The tuple being replaced (its current stored state).
    pub old: BaseTuple,
    /// The replacement.
    pub new: BaseTuple,
}

impl Update {
    /// Whether this update modifies the join attribute (the event whose
    /// probability the paper calls `Pr_A`).
    pub fn changes_join_attr(&self) -> bool {
        self.old.key != self.new.key
    }
}

/// One mutation of relation `R`.
///
/// The paper's analysis assumes update-only traffic ("relation R is
/// changed by update operations only, which get translated into a deleted
/// tuple followed by an inserted tuple, thus ‖iR‖ = ‖dR‖") and names the
/// general case — "arbitrary and possibly unequal sets of insertions and
/// deletions" — as future work. The strategies here support the general
/// case: the `V'` algebra of §3.2 already is a pure insert/delete
/// calculus, and the differential logs carry the two sets independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Replace a tuple in place (same surrogate).
    Update(Update),
    /// Insert a brand-new tuple (fresh surrogate).
    Insert(BaseTuple),
    /// Remove an existing tuple.
    Delete(BaseTuple),
}

impl Mutation {
    /// Whether a caching structure keyed only on the join attribute (the
    /// join index) must see this mutation. Inserts and deletes always
    /// matter; updates only when they change `A`.
    pub fn affects_join_index(&self) -> bool {
        match self {
            Mutation::Update(u) => u.changes_join_attr(),
            Mutation::Insert(_) | Mutation::Delete(_) => true,
        }
    }
}

/// A strategy for answering `R ⋈ S` under deferred updates.
pub trait JoinStrategy {
    /// Short name for reports ("materialized-view", "join-index",
    /// "hybrid-hash").
    fn name(&self) -> &'static str;

    /// Observe one mutation of `R` *before* it is applied to the stored
    /// relation. Caching strategies log it; hybrid-hash ignores it.
    fn on_mutation(&mut self, m: &Mutation) -> Result<()>;

    /// Convenience for the paper's update-only traffic model.
    fn on_update(&mut self, upd: &Update) -> Result<()> {
        self.on_mutation(&Mutation::Update(upd.clone()))
    }

    /// Produce the join of the *current* (post-mutation) `R` and `S`,
    /// feeding every result tuple to `sink` and returning the tuple count.
    fn execute(
        &mut self,
        r: &StoredRelation,
        s: &StoredRelation,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64>;
}

/// Collect a strategy's full result into a vector (test convenience).
pub fn execute_collect(
    strategy: &mut dyn JoinStrategy,
    r: &StoredRelation,
    s: &StoredRelation,
) -> Result<Vec<ViewTuple>> {
    let mut out = Vec::new();
    strategy.execute(r, s, &mut |v| out.push(v))?;
    Ok(out)
}
