//! Eagerly-maintained materialized view — the obvious alternative the
//! paper's deferred design is implicitly compared against.
//!
//! Instead of logging differentials and merging them at query time (§3.2),
//! this strategy maintains `V` *immediately* on every mutation: the old
//! tuple's derived view rows are removed from their bucket, the new
//! tuple's join partners are fetched through `S`'s inverted index and the
//! fresh rows inserted. A query is then a clean read of `V`.
//!
//! The price is paid per mutation — an index probe whether or not partners
//! exist, plus a bucket read-modify-write whenever they do — which is
//! exactly what the deferred pipeline's batching, sorting and on-the-fly
//! merge amortize away. The `ablation_eager` bench quantifies the gap in
//! the cost model; this operator lets the engine measure it.

use std::rc::Rc;

use trijoin_common::{
    types::hash_key, BaseTuple, Cost, Result, Surrogate, SystemParams, ViewTuple,
};
use trijoin_linearhash::LinearHash;
use trijoin_storage::Disk;

use crate::mv::view_tuple_bytes;
use crate::relation::StoredRelation;
use crate::strategy::{JoinStrategy, Mutation};

/// The eagerly-maintained view strategy.
pub struct EagerView {
    cost: Cost,
    v: LinearHash,
    /// `S` is read-only in the paper's model, so the strategy may hold a
    /// shared handle and probe it at mutation time.
    s: Rc<StoredRelation>,
}

impl EagerView {
    /// Materialize `V = R ⋈ S` (setup; callers normally reset the ledger).
    pub fn build(
        disk: &Disk,
        params: &SystemParams,
        cost: &Cost,
        r: &StoredRelation,
        s: Rc<StoredRelation>,
    ) -> Result<Self> {
        let mut s_tuples: Vec<BaseTuple> = Vec::with_capacity(s.len() as usize);
        s.scan(|t| s_tuples.push(t))?;
        let mut by_key: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, st) in s_tuples.iter().enumerate() {
            by_key.entry(st.key).or_default().push(i);
        }
        let mut view: Vec<(u64, Vec<u8>)> = Vec::new();
        r.scan(|rt| {
            if let Some(matches) = by_key.get(&rt.key) {
                for &i in matches {
                    let vt = ViewTuple::join(&rt, &s_tuples[i]);
                    view.push((hash_key(vt.key), vt.to_bytes()));
                }
            }
        })?;
        let count = view.len() as u64;
        let tv = view_tuple_bytes(r.tuple_bytes(), s.tuple_bytes());
        let v = LinearHash::build(disk, params, view, count, tv)?;
        Ok(EagerView { cost: cost.clone(), v, s })
    }

    /// View cardinality.
    pub fn view_len(&self) -> u64 {
        self.v.len()
    }

    /// View pages (≈ `F·|V|`).
    pub fn view_pages(&self) -> u64 {
        self.v.num_pages()
    }

    /// Remove every view row derived from `t` (bucket read-modify-write
    /// when any exist).
    fn remove_derived(&mut self, t: &BaseTuple) -> Result<()> {
        let h = hash_key(t.key);
        self.cost.hash(1);
        let bucket = self.v.addressing().addr(h);
        let rows = self.v.scan_bucket(bucket)?;
        self.cost.comp(rows.len() as u64);
        let kept: Vec<(u64, Vec<u8>)> = rows
            .into_iter()
            .filter(|(rh, bytes)| {
                if *rh != h {
                    return true;
                }
                match ViewTuple::from_bytes(bytes) {
                    Ok(vt) => vt.r_sur != t.sur,
                    Err(_) => true,
                }
            })
            .collect();
        // rewrite_bucket tracks the count delta itself.
        self.v.rewrite_bucket(bucket, kept)?;
        Ok(())
    }

    /// Join `t` against `S` and insert the derived rows.
    fn add_derived(&mut self, t: &BaseTuple) -> Result<()> {
        // The probe happens whether or not partners exist — the eager tax.
        let mut surs: Vec<Surrogate> = Vec::new();
        self.s.probe_inverted(&[t.key], |_, sur| surs.push(sur))?;
        if surs.is_empty() {
            return Ok(());
        }
        surs.sort_unstable();
        let mut rows: Vec<ViewTuple> = Vec::new();
        let mut err = None;
        self.s.fetch_by_surrogates(&surs, |st| {
            if st.key == t.key {
                rows.push(ViewTuple::join(t, &st));
            } else if err.is_none() {
                err =
                    Some(trijoin_common::Error::Invariant("inverted posting key mismatch".into()));
            }
        })?;
        if let Some(e) = err {
            return Err(e);
        }
        // All rows share hash(t.key): one bucket read-modify-write.
        let h = hash_key(t.key);
        self.cost.hash(1);
        let bucket = self.v.addressing().addr(h);
        let mut contents = self.v.scan_bucket(bucket)?;
        for vt in rows {
            self.cost.mov(1);
            contents.push((h, vt.to_bytes()));
        }
        self.v.rewrite_bucket(bucket, contents)?;
        self.v.rebalance()?;
        Ok(())
    }
}

impl JoinStrategy for EagerView {
    fn name(&self) -> &'static str {
        "eager-view"
    }

    fn on_mutation(&mut self, m: &Mutation) -> Result<()> {
        let _g = self.cost.section("eager.maintain");
        match m {
            Mutation::Update(u) => {
                self.remove_derived(&u.old)?;
                self.add_derived(&u.new)
            }
            Mutation::Insert(t) => self.add_derived(t),
            Mutation::Delete(t) => self.remove_derived(t),
        }
    }

    fn execute(
        &mut self,
        _r: &StoredRelation,
        _s: &StoredRelation,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64> {
        // The view is always current: the query is a clean scan.
        let _g = self.cost.section("eager.scan_view");
        let mut emitted = 0u64;
        for b in 0..self.v.num_buckets() {
            for (_, bytes) in self.v.scan_bucket(b)? {
                sink(ViewTuple::from_bytes(&bytes)?);
                emitted += 1;
            }
        }
        Ok(emitted)
    }
}
