//! Self-healing support for strategies with cached state.
//!
//! The fault-injection plan on [`trijoin_storage::SimDisk`] produces typed
//! [`Error::DeviceFault`] errors. Strategies react according to the fault
//! taxonomy (`trijoin_common::FaultKind`):
//!
//! * **Transient** faults clear after firing, so bounded retry of the failed
//!   read/scan succeeds — used for spilled-run I/O in hybrid-hash and for
//!   the base-relation snapshots recovery itself takes.
//! * **Torn/poisoned** pages stay damaged until rewritten. A strategy whose
//!   *cached* structure (view file, join index, differential runs) is hit
//!   falls back to recomputing the current answer directly from the base
//!   relations — an in-memory hybrid-hash pass, everything in partition 0 —
//!   validates the recomputation against [`crate::oracle`], rebuilds the
//!   cached structure into fresh pages, and answers the query exactly.
//!
//! The legacy one-shot [`Error::Faulted`] (from `SimDisk::inject_fault`) is
//! exempt: its contract is to surface unchanged, and the error-path tests
//! assert exactly that.

use std::collections::HashMap;

use trijoin_common::{BaseTuple, Cost, Error, JoinKey, Result, ViewTuple};

use crate::relation::StoredRelation;
use crate::viewdef::ViewDef;

/// Attempts allowed for one retryable operation (the original try plus two
/// retries — the simulated analogue of bounded backoff).
pub const MAX_ATTEMPTS: u32 = 3;

/// Run `op` up to [`MAX_ATTEMPTS`] times, retrying only on retryable
/// (transient) device faults. Non-retryable errors propagate immediately.
pub fn with_retry<T>(mut op: impl FnMut() -> Result<T>) -> Result<T> {
    let mut last: Option<Error> = None;
    for _ in 0..MAX_ATTEMPTS {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_retryable() => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("retry loop exits early unless a fault was seen"))
}

/// Snapshot a base relation's tuples, retrying transient faults. Base
/// relations are the recovery source of truth, so this is the one read path
/// recovery itself depends on.
pub fn snapshot_relation(rel: &StoredRelation) -> Result<Vec<BaseTuple>> {
    with_retry(|| {
        let mut out = Vec::with_capacity(rel.len() as usize);
        rel.scan(|t| out.push(t))?;
        Ok(out)
    })
}

/// Recompute the current query answer directly from base-relation
/// snapshots: an in-memory hash join (hybrid-hash with everything in
/// partition 0) honoring `def`, with the usual per-operation charges.
/// Returns `(answer, def-filtered R, def-filtered S)` so the caller can
/// validate against the oracle and rebuild its cached structure.
pub fn recompute_join(
    r: &StoredRelation,
    s: &StoredRelation,
    def: &ViewDef,
    cost: &Cost,
) -> Result<(Vec<ViewTuple>, Vec<BaseTuple>, Vec<BaseTuple>)> {
    let r_all = snapshot_relation(r)?;
    let s_all = snapshot_relation(s)?;
    let r_filt: Vec<BaseTuple> = r_all.into_iter().filter(|t| def.r_pred.eval(t)).collect();
    let s_filt: Vec<BaseTuple> = s_all.into_iter().filter(|t| def.s_pred.eval(t)).collect();

    let mut by_key: HashMap<JoinKey, Vec<&BaseTuple>> = HashMap::new();
    for st in &s_filt {
        cost.hash(1);
        by_key.entry(st.key).or_default().push(st);
    }
    let mut answer: Vec<ViewTuple> = Vec::new();
    for rt in &r_filt {
        cost.hash(1);
        match by_key.get(&rt.key) {
            Some(matches) => {
                cost.comp(matches.len() as u64);
                for st in matches {
                    cost.mov(1);
                    answer.push(def.make_view_tuple(rt, st));
                }
            }
            None => cost.comp(1),
        }
    }
    Ok((answer, r_filt, s_filt))
}

/// Validate a recomputed answer against the independent oracle join: the
/// (r, s) surrogate pair sets must match exactly, and for a full view the
/// tuples themselves must match byte-for-byte. Returns an invariant error
/// (not a panic) on mismatch so callers can surface it.
pub fn validate_against_oracle(
    label: &str,
    answer: &[ViewTuple],
    r_filt: &[BaseTuple],
    s_filt: &[BaseTuple],
    def: &ViewDef,
) -> Result<()> {
    let mut got_pairs: Vec<_> = answer.iter().map(|v| (v.r_sur, v.s_sur)).collect();
    got_pairs.sort_unstable();
    let mut want_pairs: Vec<_> =
        crate::oracle::join_pairs(r_filt, s_filt).into_iter().map(|e| (e.r, e.s)).collect();
    want_pairs.sort_unstable();
    if got_pairs != want_pairs {
        return Err(Error::Invariant(format!(
            "{label}: recovery recompute disagrees with oracle on join pairs \
             ({} vs {})",
            got_pairs.len(),
            want_pairs.len()
        )));
    }
    if def.is_full() {
        let mut got: Vec<ViewTuple> = answer.to_vec();
        got.sort_by_key(|v| (v.r_sur, v.s_sur));
        let mut want = crate::oracle::join_tuples(r_filt, s_filt);
        want.sort_by_key(|v| (v.r_sur, v.s_sur));
        if got != want {
            return Err(Error::Invariant(format!(
                "{label}: recovery recompute disagrees with oracle on tuple contents"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_common::{FaultKind, FaultOp};

    #[test]
    fn retry_passes_through_success_and_hard_errors() {
        let mut calls = 0;
        let ok: Result<u32> = with_retry(|| {
            calls += 1;
            Ok(7)
        });
        assert_eq!(ok.unwrap(), 7);
        assert_eq!(calls, 1);

        let mut calls = 0;
        let hard: Result<u32> = with_retry(|| {
            calls += 1;
            Err(Error::Faulted)
        });
        assert_eq!(hard.unwrap_err(), Error::Faulted);
        assert_eq!(calls, 1, "legacy faults are never retried");
    }

    #[test]
    fn retry_retries_transients_boundedly() {
        let transient = || Error::DeviceFault {
            op: FaultOp::Read,
            kind: FaultKind::Transient,
            file: 0,
            page: 0,
        };
        // Succeeds on the second attempt.
        let mut calls = 0;
        let out: Result<&str> = with_retry(|| {
            calls += 1;
            if calls < 2 {
                Err(transient())
            } else {
                Ok("recovered")
            }
        });
        assert_eq!(out.unwrap(), "recovered");
        assert_eq!(calls, 2);
        // Gives up after MAX_ATTEMPTS.
        let mut calls = 0;
        let out: Result<&str> = with_retry(|| {
            calls += 1;
            Err(transient())
        });
        assert!(out.unwrap_err().is_retryable());
        assert_eq!(calls, MAX_ATTEMPTS);
    }
}
