//! Columnar row batches for the vectorized probe paths.
//!
//! The scan-shaped operators (hybrid-hash pass 0, spilled-run reloads, the
//! view's S-side fetches) used to materialize one [`BaseTuple`] — a boxed
//! payload allocation plus a memcpy — per *visited* tuple, even though only
//! a small fraction of visited tuples ever reach the output. A [`RowBatch`]
//! keeps the decoded columns (surrogate, join key) in flat vectors and all
//! payloads in one shared byte arena, so building a batch is one amortized
//! arena append per kept row and probing it touches only the key column.
//!
//! Batches are a wall-clock representation only: they carry no [`Cost`]
//! handle and charge nothing. Every simulated charge stays where it always
//! was, in the operators that fill and probe the batch — the golden-ledger
//! suite pins that equivalence byte-for-byte.
//!
//! [`Cost`]: trijoin_common::Cost

use std::rc::Rc;

use trijoin_common::{BaseTuple, JoinKey, Result, Surrogate, ViewTuple};

/// One decoded-but-unmaterialized tuple: the fixed columns by value, the
/// payload (and the full serialized record) by borrow.
#[derive(Debug, Clone, Copy)]
pub struct TupleRef<'a> {
    /// Unique identifier within the relation.
    pub sur: Surrogate,
    /// Value of the join attribute `A`.
    pub key: JoinKey,
    /// Payload bytes, borrowed from the page or arena.
    pub payload: &'a [u8],
    /// The full serialized record (header + payload) — what a spill writer
    /// appends verbatim, byte-identical to `BaseTuple::to_bytes`.
    pub raw: &'a [u8],
}

impl<'a> TupleRef<'a> {
    /// Decode a serialized record into a borrowed view (same validation and
    /// errors as [`BaseTuple::from_bytes`]).
    pub fn decode(raw: &'a [u8]) -> Result<Self> {
        let (sur, key, payload) = BaseTuple::parts_from_bytes(raw)?;
        Ok(TupleRef { sur, key, payload, raw })
    }

    /// Materialize an owned tuple (allocates; keep off hot loops).
    pub fn to_tuple(&self) -> BaseTuple {
        BaseTuple { sur: self.sur, key: self.key, payload: self.payload.into() }
    }
}

/// A columnar batch of base-relation rows: parallel `sur`/`key` columns
/// plus payload spans that index either the batch's own arena (copied
/// payloads) or a *pinned* shared page image (zero-copy payloads — the
/// batch holds the `Rc` so the bytes outlive the scan that produced them).
#[derive(Default)]
pub struct RowBatch {
    surs: Vec<Surrogate>,
    keys: Vec<JoinKey>,
    /// `(source, at, len)`: `source == 0` indexes the arena; `source == i`
    /// for `i > 0` indexes `pages[i - 1]`.
    spans: Vec<(u32, u32, u32)>,
    arena: Vec<u8>,
    pages: Vec<Rc<Vec<u8>>>,
}

impl RowBatch {
    /// An empty batch.
    pub fn new() -> Self {
        RowBatch::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.surs.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.surs.is_empty()
    }

    /// Append one row; the payload is copied into the arena.
    pub fn push(&mut self, sur: Surrogate, key: JoinKey, payload: &[u8]) -> u32 {
        let row = self.surs.len() as u32;
        self.surs.push(sur);
        self.keys.push(key);
        self.spans.push((0, self.arena.len() as u32, payload.len() as u32));
        self.arena.extend_from_slice(payload);
        row
    }

    /// Append a borrowed tuple view (payload copied into the arena).
    pub fn push_ref(&mut self, t: &TupleRef<'_>) -> u32 {
        self.push(t.sur, t.key, t.payload)
    }

    /// Append a borrowed tuple view whose payload lives inside `page`,
    /// pinning the page instead of copying the payload. The caller
    /// guarantees `t` was decoded from `page`'s bytes (debug-asserted via
    /// pointer range).
    pub fn push_pinned(&mut self, t: &TupleRef<'_>, page: &Rc<Vec<u8>>) -> u32 {
        let base = page.as_ptr() as usize;
        let at = t.payload.as_ptr() as usize - base;
        debug_assert!(
            at + t.payload.len() <= page.len(),
            "payload does not lie inside the pinned page"
        );
        let source = match self.pages.last() {
            Some(last) if Rc::ptr_eq(last, page) => self.pages.len() as u32,
            _ => {
                self.pages.push(Rc::clone(page));
                self.pages.len() as u32
            }
        };
        let row = self.surs.len() as u32;
        self.surs.push(t.sur);
        self.keys.push(t.key);
        self.spans.push((source, at as u32, t.payload.len() as u32));
        row
    }

    /// The surrogate column entry of `row`.
    pub fn sur(&self, row: u32) -> Surrogate {
        self.surs[row as usize]
    }

    /// The join-key column entry of `row`.
    pub fn key(&self, row: u32) -> JoinKey {
        self.keys[row as usize]
    }

    /// The payload bytes of `row`, borrowed from the arena or a pinned page.
    pub fn payload(&self, row: u32) -> &[u8] {
        let (source, at, len) = self.spans[row as usize];
        let backing: &[u8] = match source {
            0 => &self.arena,
            i => &self.pages[(i - 1) as usize],
        };
        &backing[at as usize..(at + len) as usize]
    }

    /// Borrowed view of `row` (no allocation). `raw` is empty: a batch
    /// stores payloads, not serialized records.
    pub fn row(&self, row: u32) -> TupleRef<'_> {
        TupleRef { sur: self.sur(row), key: self.key(row), payload: self.payload(row), raw: &[] }
    }

    /// Join `row` (as the `R` side) against a borrowed `S` tuple.
    pub fn join_row(&self, row: u32, s: &TupleRef<'_>) -> ViewTuple {
        debug_assert_eq!(self.key(row), s.key, "view tuple from non-joining pair");
        ViewTuple::from_parts(self.sur(row), s.sur, s.key, self.payload(row), s.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_roundtrips_rows() {
        let mut b = RowBatch::new();
        let r0 = b.push(Surrogate(7), 3, b"abc");
        let r1 = b.push(Surrogate(9), 4, b"");
        let r2 = b.push(Surrogate(11), 3, b"xyzw");
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!((r0, r1, r2), (0, 1, 2));
        assert_eq!(b.sur(2), Surrogate(11));
        assert_eq!(b.key(1), 4);
        assert_eq!(b.payload(0), b"abc");
        assert_eq!(b.payload(1), b"");
        assert_eq!(b.payload(2), b"xyzw");
        let row = b.row(0);
        assert_eq!((row.sur, row.key, row.payload), (Surrogate(7), 3, &b"abc"[..]));
    }

    #[test]
    fn decode_matches_owned_decode() {
        let t = BaseTuple::with_payload(Surrogate(5), 42, b"payload", 48).unwrap();
        let bytes = t.to_bytes();
        let r = TupleRef::decode(&bytes).unwrap();
        assert_eq!(r.sur, t.sur);
        assert_eq!(r.key, t.key);
        assert_eq!(r.payload, &t.payload[..]);
        assert_eq!(r.raw, &bytes[..]);
        assert_eq!(r.to_tuple(), t);
        // Same rejection behavior as the owned decode.
        assert!(TupleRef::decode(&bytes[..10]).is_err());
        assert!(TupleRef::decode(&bytes[..bytes.len() - 4]).is_err());
    }

    #[test]
    fn pinned_rows_share_the_page_and_mix_with_copied_rows() {
        let t0 = BaseTuple::with_payload(Surrogate(1), 3, b"alpha", 24).unwrap();
        let t1 = BaseTuple::with_payload(Surrogate(2), 4, b"beta", 24).unwrap();
        // One "page" holding both serialized records back to back.
        let mut page = t0.to_bytes();
        let split = page.len();
        page.extend_from_slice(&t1.to_bytes());
        let page = Rc::new(page);

        let mut b = RowBatch::new();
        let r0 = b.push_pinned(&TupleRef::decode(&page[..split]).unwrap(), &page);
        let copied = b.push(Surrogate(9), 5, b"copied");
        let r1 = b.push_pinned(&TupleRef::decode(&page[split..]).unwrap(), &page);
        assert_eq!(b.len(), 3);
        assert_eq!(b.payload(r0), &t0.payload[..]);
        assert_eq!(b.payload(copied), b"copied");
        assert_eq!(b.payload(r1), &t1.payload[..]);
        assert_eq!((b.sur(r0), b.key(r0)), (t0.sur, t0.key));
        assert_eq!((b.sur(r1), b.key(r1)), (t1.sur, t1.key));
        // Zero-copy: the pinned payloads alias the page's own bytes.
        assert_eq!(b.payload(r0).as_ptr(), page[BaseTuple::HEADER_BYTES..].as_ptr());
        assert_eq!(b.pages.len(), 1, "consecutive rows from one page pin it once");
    }

    #[test]
    fn join_row_equals_viewtuple_join() {
        let r = BaseTuple::with_payload(Surrogate(1), 8, b"r-side", 32).unwrap();
        let s = BaseTuple::with_payload(Surrogate(2), 8, b"s-side", 32).unwrap();
        let mut b = RowBatch::new();
        let row = b.push(r.sur, r.key, &r.payload);
        let s_bytes = s.to_bytes();
        let s_ref = TupleRef::decode(&s_bytes).unwrap();
        assert_eq!(b.join_row(row, &s_ref), ViewTuple::join(&r, &s));
    }
}
