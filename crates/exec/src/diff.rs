//! Differential logging of base-relation updates (§3.2/§3.3 step 1,
//! Figure 1).
//!
//! Updates arriving between two executions of the join query are logged as
//! *deleted tuple* + *inserted tuple* pairs. Each side is buffered in a
//! memory area of `Z` pages; when the buffer fills it is quicksorted on the
//! strategy's sort key (hash of the join attribute for the materialized
//! view, surrogate `r` for the join index) and spilled to disk as a sorted
//! run. At query time the `N1` runs are merged back in key order.
//!
//! [`net_differentials`] performs pairwise cancellation of tuples that
//! appear identically in both the insertion and deletion streams — the
//! intermediate states of tuples updated more than once between queries —
//! leaving exactly the *net* change (`V'`'s algebra in §3.2 assumes net
//! sets; chains of updates produce intermediates that must cancel).

use std::cell::RefCell;
use std::rc::Rc;

use trijoin_common::{BaseTuple, Cost, Error, Metrics, Result, Surrogate};
use trijoin_storage::{Disk, HeapFile};

use crate::sort::{counted_sort_by, KWayMerge};

/// 128-bit sort key for differential tuples.
pub type SortKey = u128;

/// Sort-key constructor for materialized-view differentials:
/// `(bucket, hash(A), surrogate)` under a frozen linear-hash addressing.
pub fn mv_sort_key(bucket: u64, hash: u64, sur: u32) -> SortKey {
    debug_assert!(bucket < (1 << 32), "bucket index exceeds 32 bits");
    ((bucket as u128) << 96) | ((hash as u128) << 32) | sur as u128
}

/// Sort-key constructor for join-index differentials: surrogate `r`.
pub fn ji_sort_key(sur: u32) -> SortKey {
    sur as u128
}

/// One side (`iR` or `dR`) of a differential log.
pub struct DiffLog {
    disk: Disk,
    cost: Cost,
    key_of: std::rc::Rc<dyn Fn(&BaseTuple) -> SortKey>,
    /// True when the sort key involves hashing the join attribute (the MV
    /// log); charges one `hash` per tuple at key-computation time.
    hashed_key: bool,
    buf: Vec<BaseTuple>,
    buf_cap: usize,
    tuples_per_run_page: usize,
    runs: Vec<HeapFile>,
    total: u64,
    sealed: bool,
    /// Error parked by a [`RunReader`] mid-stream (device faults cannot
    /// surface through the tuple iterator); see [`DiffLog::stream_error`].
    stream_err: Rc<RefCell<Option<Error>>>,
}

impl DiffLog {
    /// A log buffering up to `mem_pages` pages of tuples (the paper's `Z`),
    /// spilling runs packed at `tuples_per_run_page` (working files pack
    /// fully: `⌊P/T⌋`).
    pub fn new(
        disk: &Disk,
        cost: &Cost,
        mem_pages: usize,
        tuples_per_run_page: usize,
        hashed_key: bool,
        key_of: impl Fn(&BaseTuple) -> SortKey + 'static,
    ) -> Self {
        let per_page = tuples_per_run_page.max(1);
        DiffLog {
            disk: disk.clone(),
            cost: cost.clone(),
            key_of: std::rc::Rc::new(key_of),
            hashed_key,
            buf: Vec::new(),
            buf_cap: (mem_pages.max(1)) * per_page,
            tuples_per_run_page: per_page,
            runs: Vec::new(),
            total: 0,
            sealed: false,
            stream_err: Rc::new(RefCell::new(None)),
        }
    }

    /// Log one tuple (one `move` into the buffer, per C1.1).
    pub fn add(&mut self, t: BaseTuple) -> Result<()> {
        debug_assert!(!self.sealed, "log already sealed");
        self.cost.mov(1);
        self.buf.push(t);
        self.total += 1;
        if self.buf.len() >= self.buf_cap {
            self.spill()?;
        }
        Ok(())
    }

    /// Sort the buffer and write it out as one run (C1.3 sorting charges +
    /// C1.1 write charges; one I/O per full-packed page).
    fn spill(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        if self.hashed_key {
            // The sort key hashes the join attribute; keys are computed
            // once per tuple (the paper's CPU_s-with-hashing charges two
            // hashes per comparison — our engine memoizes, which is simply
            // a better constant).
            self.cost.hash(self.buf.len() as u64);
        }
        let key = self.key_of.clone();
        counted_sort_by(&mut self.buf, |t| key(t), &self.cost);
        let mut writer = trijoin_storage::heap::HeapWriter::create(&self.disk);
        let mut scratch = Vec::new();
        for t in self.buf.drain(..) {
            scratch.clear();
            t.write_bytes(&mut scratch);
            writer.add_with_cap(&scratch, self.tuples_per_run_page)?;
        }
        self.runs.push(writer.finish()?);
        Ok(())
    }

    /// Flush the remaining buffer. After sealing, [`DiffLog::merged`] can
    /// stream the log back; `add` is no longer allowed.
    pub fn seal(&mut self) -> Result<()> {
        if !self.sealed {
            self.spill()?;
            self.sealed = true;
            // One sample per query cycle: how large the differential log
            // grew before being consumed.
            let metrics = self.disk.metrics();
            metrics.observe("diff.log_tuples", self.total);
            metrics.observe("diff.log_pages", self.pages());
        }
        Ok(())
    }

    /// Number of runs on disk (the paper's `N1`).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Tuples logged.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Total pages across all runs (`|iR|`).
    pub fn pages(&self) -> u64 {
        self.runs.iter().map(|r| r.num_pages() as u64).sum()
    }

    /// Merge the sealed runs back in key order (C1.2 read charges as pages
    /// stream in, C1.4 merge charges per emitted tuple).
    pub fn merged(&self) -> Result<KWayMerge<BaseTuple, SortKey, RunReader>> {
        debug_assert!(self.sealed, "seal() before merged()");
        *self.stream_err.borrow_mut() = None;
        let sources: Vec<RunReader> = self
            .runs
            .iter()
            .map(|r| {
                RunReader::new(
                    r.clone(),
                    self.cost.clone(),
                    self.disk.metrics().clone(),
                    self.stream_err.clone(),
                )
            })
            .collect();
        let key = self.key_of.clone();
        Ok(KWayMerge::new(sources, move |t| key(t), self.cost.clone()))
    }

    /// Collect an error parked by a [`RunReader`] while the merged stream
    /// was being drained. Executors must call this at batch boundaries and
    /// treat a parked error exactly like a failed read — a parked error
    /// also means the stream ended early, so the batch is incomplete.
    pub fn stream_error(&self) -> Result<()> {
        match self.stream_err.borrow_mut().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Drop all run files (after a query has consumed the log).
    pub fn destroy(self) {
        for r in self.runs {
            r.destroy();
        }
    }
}

/// Streams tuples out of one sorted run (one read I/O per page).
///
/// Transient device faults heal with bounded retry (re-read I/O charged
/// under the `diff.retry` section). Anything else ends the stream early
/// and parks the error for [`DiffLog::stream_error`] — the iterator
/// contract has no error channel, and panicking would rob the strategies
/// of their recovery path.
pub struct RunReader {
    heap: HeapFile,
    cost: Cost,
    metrics: Metrics,
    next_page: u32,
    total_pages: u32,
    current: Vec<BaseTuple>,
    at: usize,
    err: Rc<RefCell<Option<Error>>>,
}

impl RunReader {
    fn new(heap: HeapFile, cost: Cost, metrics: Metrics, err: Rc<RefCell<Option<Error>>>) -> Self {
        let total_pages = heap.num_pages();
        RunReader {
            heap,
            cost,
            metrics,
            next_page: 0,
            total_pages,
            current: Vec::new(),
            at: 0,
            err,
        }
    }

    fn park(&mut self, e: Error) {
        *self.err.borrow_mut() = Some(e);
        self.next_page = self.total_pages;
        self.current.clear();
        self.at = 0;
    }
}

impl Iterator for RunReader {
    type Item = BaseTuple;

    fn next(&mut self) -> Option<BaseTuple> {
        loop {
            if self.at < self.current.len() {
                // Move the tuple out instead of cloning: the drained slot is
                // dead until the next refill clears the buffer. The dummy's
                // empty boxed slice does not allocate.
                let slot = &mut self.current[self.at];
                let t = std::mem::replace(
                    slot,
                    BaseTuple { sur: Surrogate(0), key: 0, payload: Box::default() },
                );
                self.at += 1;
                return Some(t);
            }
            if self.next_page >= self.total_pages {
                return None;
            }
            let page = self.next_page;
            let mut attempt = 0u32;
            // Decode straight off the borrowed page view — one I/O, no
            // per-record byte copies. Decode errors are non-retryable, so
            // `with_retry` propagates them immediately (same observable
            // behavior as decoding after the read).
            let current = &mut self.current;
            let heap = &self.heap;
            let read = crate::recovery::with_retry(|| {
                attempt += 1;
                if attempt > 1 {
                    self.metrics.incr("diff.retries");
                }
                let _g = (attempt > 1).then(|| self.cost.section("diff.retry"));
                current.clear();
                let mut decode_err: Option<Error> = None;
                heap.for_each_page_record(page, |_, b| {
                    if decode_err.is_none() {
                        match BaseTuple::from_bytes(b) {
                            Ok(t) => current.push(t),
                            Err(e) => decode_err = Some(e),
                        }
                    }
                })?;
                match decode_err {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            });
            match read {
                Ok(()) => {
                    self.next_page += 1;
                    self.at = 0;
                }
                Err(e) => {
                    self.park(e);
                    return None;
                }
            }
        }
    }
}

/// A net differential item after cancellation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Net {
    /// Present in the insertion stream only.
    Ins(BaseTuple),
    /// Present in the deletion stream only.
    Del(BaseTuple),
}

/// Merge the insertion and deletion streams (both sorted by `key_of`) into
/// one key-ordered stream, cancelling pairs that are equivalent under
/// `cancel_eq` on both sides (intermediate states of multiply-updated
/// tuples).
///
/// The right equivalence depends on the consumer: the materialized view
/// logs *every* update, so its chains are contiguous and byte-identity is
/// exact; the join index logs only join-attribute updates, so an unlogged
/// payload-only update can interpose between two logged states — its
/// cancellation must compare `(surrogate, join key)` only (the index
/// derives nothing from payloads, and output fetches `R` fresh).
///
/// Within one key group, deletions are emitted before insertions.
pub fn net_differentials<I, D>(
    ins: I,
    del: D,
    key_of: impl Fn(&BaseTuple) -> SortKey + 'static,
    cancel_eq: impl Fn(&BaseTuple, &BaseTuple) -> bool + 'static,
    cost: &Cost,
) -> NetMerge<I, D>
where
    I: Iterator<Item = BaseTuple>,
    D: Iterator<Item = BaseTuple>,
{
    NetMerge {
        ins: ins.peekable(),
        del: del.peekable(),
        key_of: Box::new(key_of),
        cancel_eq: Box::new(cancel_eq),
        cost: cost.clone(),
        pending: std::collections::VecDeque::new(),
    }
}

/// Iterator returned by [`net_differentials`].
pub struct NetMerge<I, D>
where
    I: Iterator<Item = BaseTuple>,
    D: Iterator<Item = BaseTuple>,
{
    ins: std::iter::Peekable<I>,
    del: std::iter::Peekable<D>,
    key_of: Box<dyn Fn(&BaseTuple) -> SortKey>,
    cancel_eq: CancelEq,
    cost: Cost,
    pending: std::collections::VecDeque<Net>,
}

/// The cancellation-equivalence predicate of a [`NetMerge`].
type CancelEq = Box<dyn Fn(&BaseTuple, &BaseTuple) -> bool>;

impl<I, D> Iterator for NetMerge<I, D>
where
    I: Iterator<Item = BaseTuple>,
    D: Iterator<Item = BaseTuple>,
{
    type Item = Net;

    fn next(&mut self) -> Option<Net> {
        loop {
            if let Some(item) = self.pending.pop_front() {
                return Some(item);
            }
            let ik = self.ins.peek().map(|t| (self.key_of)(t));
            let dk = self.del.peek().map(|t| (self.key_of)(t));
            let group_key = match (ik, dk) {
                (None, None) => return None,
                (Some(k), None) => k,
                (None, Some(k)) => k,
                (Some(a), Some(b)) => {
                    self.cost.comp(1);
                    a.min(b)
                }
            };
            // Collect the whole key group from both sides (groups share
            // bucket+hash+surrogate, so they are tiny).
            let mut gi: Vec<BaseTuple> = Vec::new();
            while self.ins.peek().map(|t| (self.key_of)(t)) == Some(group_key) {
                gi.push(self.ins.next().unwrap());
            }
            let mut gd: Vec<BaseTuple> = Vec::new();
            while self.del.peek().map(|t| (self.key_of)(t)) == Some(group_key) {
                gd.push(self.del.next().unwrap());
            }
            // Cancel equivalent pairs (multiset difference).
            let mut comps = 0u64;
            let mut keep_d: Vec<BaseTuple> = Vec::new();
            'outer: for d in gd {
                for (i, ins) in gi.iter().enumerate() {
                    comps += 1;
                    if (self.cancel_eq)(ins, &d) {
                        gi.remove(i);
                        continue 'outer;
                    }
                }
                keep_d.push(d);
            }
            self.cost.comp(comps);
            for d in keep_d {
                self.pending.push_back(Net::Del(d));
            }
            for i in gi {
                self.pending.push_back(Net::Ins(i));
            }
            // Loop: the group may have fully cancelled.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_common::{types::hash_key, Surrogate, SystemParams};
    use trijoin_storage::SimDisk;

    fn setup() -> (Disk, Cost) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 256, ..SystemParams::paper_defaults() };
        (SimDisk::new(&params, cost.clone()), cost)
    }

    fn tup(sur: u32, key: u64) -> BaseTuple {
        BaseTuple::padded(Surrogate(sur), key, 32)
    }

    #[test]
    fn spills_and_merges_in_key_order() {
        let (disk, cost) = setup();
        // 2 pages of buffer, 7 tuples per run page -> spills every 14 adds.
        let mut log = DiffLog::new(&disk, &cost, 2, 7, false, |t| ji_sort_key(t.sur.0));
        for i in (0..50u32).rev() {
            log.add(tup(i, i as u64)).unwrap();
        }
        log.seal().unwrap();
        assert_eq!(log.len(), 50);
        assert!(log.num_runs() >= 3, "50 tuples / 14-cap buffer spills several runs");
        assert!(log.pages() > 0);
        let got: Vec<u32> = log.merged().unwrap().map(|t| t.sur.0).collect();
        assert_eq!(got, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_and_single_run_logs() {
        let (disk, cost) = setup();
        let mut log = DiffLog::new(&disk, &cost, 2, 7, false, |t| ji_sort_key(t.sur.0));
        log.seal().unwrap();
        assert!(log.is_empty());
        assert_eq!(log.num_runs(), 0);
        assert_eq!(log.merged().unwrap().count(), 0);

        let mut log = DiffLog::new(&disk, &cost, 4, 7, false, |t| ji_sort_key(t.sur.0));
        for i in 0..5u32 {
            log.add(tup(i, 0)).unwrap();
        }
        log.seal().unwrap();
        assert_eq!(log.num_runs(), 1);
        assert_eq!(log.merged().unwrap().count(), 5);
    }

    #[test]
    fn hashed_key_charges_hashes() {
        let (disk, cost) = setup();
        let mut log =
            DiffLog::new(&disk, &cost, 1, 7, true, |t| mv_sort_key(0, hash_key(t.key), t.sur.0));
        for i in 0..20u32 {
            log.add(tup(i, i as u64)).unwrap();
        }
        log.seal().unwrap();
        assert!(cost.total().hashes >= 20, "one hash per spilled tuple");
        // Stream must come back ordered by the hashed key.
        let keys: Vec<u128> =
            log.merged().unwrap().map(|t| mv_sort_key(0, hash_key(t.key), t.sur.0)).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn log_charges_moves_and_ios() {
        let (disk, cost) = setup();
        let mut log = DiffLog::new(&disk, &cost, 1, 7, false, |t| ji_sort_key(t.sur.0));
        for i in 0..21u32 {
            log.add(tup(i, 0)).unwrap();
        }
        log.seal().unwrap();
        let t = cost.total();
        assert!(t.moves >= 21, "one move per logged tuple");
        assert_eq!(t.ios, log.pages(), "one write per run page so far");
        let _ = log.merged().unwrap().count();
        assert_eq!(cost.total().ios, 2 * log.pages(), "reading back re-charges");
    }

    #[test]
    fn netting_cancels_intermediate_states() {
        let (_disk, cost) = setup();
        // Tuple 5 updated twice: old0 -> new1 -> new2. The log holds
        // d = [old0, new1], i = [new1, new2]; new1 must cancel.
        let old0 = tup(5, 10);
        let new1 = BaseTuple::with_payload(Surrogate(5), 11, b"v1", 32).unwrap();
        let new2 = BaseTuple::with_payload(Surrogate(5), 12, b"v2", 32).unwrap();
        let key = |t: &BaseTuple| ji_sort_key(t.sur.0);
        let ins = vec![new1.clone(), new2.clone()];
        let del = vec![old0.clone(), new1.clone()];
        let net: Vec<Net> =
            net_differentials(ins.into_iter(), del.into_iter(), key, |a, b| a == b, &cost)
                .collect();
        assert_eq!(net, vec![Net::Del(old0), Net::Ins(new2)]);
    }

    #[test]
    fn netting_cancels_full_roundtrip() {
        let (_disk, cost) = setup();
        // a -> b -> a: everything cancels except the old/new boundary, and
        // since old == final, the whole group vanishes.
        let a = tup(7, 1);
        let b = BaseTuple::padded(Surrogate(7), 2, 32);
        let key = |t: &BaseTuple| ji_sort_key(t.sur.0);
        let ins = vec![b.clone(), a.clone()];
        let del = vec![a.clone(), b.clone()];
        let net: Vec<Net> =
            net_differentials(ins.into_iter(), del.into_iter(), key, |a, b| a == b, &cost)
                .collect();
        assert!(net.is_empty(), "round-trip updates cancel entirely, got {net:?}");
    }

    #[test]
    fn netting_passes_disjoint_streams_through() {
        let (_disk, cost) = setup();
        let key = |t: &BaseTuple| ji_sort_key(t.sur.0);
        let ins = vec![tup(2, 0), tup(4, 0)];
        let del = vec![tup(1, 0), tup(3, 0)];
        let net: Vec<Net> = net_differentials(
            ins.clone().into_iter(),
            del.clone().into_iter(),
            key,
            |a, b| a == b,
            &cost,
        )
        .collect();
        assert_eq!(
            net,
            vec![
                Net::Del(del[0].clone()),
                Net::Ins(ins[0].clone()),
                Net::Del(del[1].clone()),
                Net::Ins(ins[1].clone()),
            ]
        );
    }

    #[test]
    fn netting_dels_before_inss_within_group() {
        let (_disk, cost) = setup();
        // Same surrogate, different payloads (A changed then changed again
        // with different content): both survive, Del first.
        let d = BaseTuple::with_payload(Surrogate(9), 1, b"old", 32).unwrap();
        let i = BaseTuple::with_payload(Surrogate(9), 2, b"new", 32).unwrap();
        let key = |t: &BaseTuple| ji_sort_key(t.sur.0);
        let net: Vec<Net> = net_differentials(
            vec![i.clone()].into_iter(),
            vec![d.clone()].into_iter(),
            key,
            |a, b| a == b,
            &cost,
        )
        .collect();
        assert_eq!(net, vec![Net::Del(d), Net::Ins(i)]);
    }
}
