//! Three-way joins through a cached two-way view — the paper's §5 future
//! work: "the entire analysis should be generalized to investigate the
//! feasibility of maintaining precomputed results for queries involving
//! ... joins of more than two relations."
//!
//! The composition implemented here answers `R ⋈_A S ⋈_B T`: the inner
//! `R ⋈_A S` comes from any maintained [`JoinStrategy`] (so all of the
//! paper's machinery — deferred logs, on-the-fly merges — keeps working),
//! and its stream is hash-joined on a *second* attribute `B` against a
//! third relation `T`. `B` is extracted from the view tuple by a caller
//! provided function (the engine's payloads are opaque; in the tests `B`
//! lives in the first 8 payload bytes of the `S` side).
//!
//! When the `T`-side build table exceeds memory the stream is partitioned
//! to disk, hybrid-style: partition 0 joins on the fly while the rest
//! spill and join pairwise — i.e. the second hop is itself a faithful
//! §3.4 hybrid-hash join whose build input is `T` and whose probe input
//! is the maintained view's output stream.

use std::collections::HashMap;

use trijoin_common::{types::hash_key, BaseTuple, Cost, JoinKey, Result, SystemParams, ViewTuple};
use trijoin_storage::{Disk, HeapFile};

use crate::hybridhash::{first_pass_fraction, spilled_partitions};
use crate::relation::StoredRelation;
use crate::strategy::JoinStrategy;

/// One row of a three-way join: the inner view tuple plus the matched `T`
/// tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreeWayTuple {
    /// The `R ⋈ S` component.
    pub inner: ViewTuple,
    /// The `T` component.
    pub t: BaseTuple,
}

/// Extracts the second join attribute `B` from an inner view tuple.
pub type Key2Fn = fn(&ViewTuple) -> JoinKey;

/// The default `B` extractor used by the workloads here: the first 8 bytes
/// of the `S`-side payload, little-endian (0 if too short).
pub fn key2_from_s_payload(v: &ViewTuple) -> JoinKey {
    v.s_payload.get(..8).map(|b| u64::from_le_bytes(b.try_into().unwrap())).unwrap_or(0)
}

/// Execute `strategy ⋈_B T`, feeding rows to `sink`; returns the count.
///
/// (The argument list mirrors the physical inputs of a two-hop plan —
/// device, parameters, ledger, the maintained inner strategy, its two base
/// relations, the third relation, the B extractor, and the output sink.)
#[allow(clippy::too_many_arguments)]
///
/// The inner strategy runs exactly as in the two-way case (deferred
/// maintenance included); its emitted stream is consumed tuple-at-a-time.
pub fn three_way_execute(
    disk: &Disk,
    params: &SystemParams,
    cost: &Cost,
    strategy: &mut dyn JoinStrategy,
    r: &StoredRelation,
    s: &StoredRelation,
    t: &StoredRelation,
    key2: Key2Fn,
    sink: &mut dyn FnMut(ThreeWayTuple),
) -> Result<u64> {
    let b = spilled_partitions(t.data_pages(), params);
    let q = first_pass_fraction(t.data_pages(), params);
    let part_of = |key: JoinKey| -> u64 {
        let h = hash_key(key);
        let x = (h >> 11) as f64 / (1u64 << 53) as f64;
        if x < q || b == 0 {
            0
        } else {
            let rest = ((x - q) / (1.0 - q).max(f64::MIN_POSITIVE)).clamp(0.0, 0.999_999);
            1 + (rest * b as f64) as u64
        }
    };

    // Build T's partition 0 in memory, spill the rest (one scan of T).
    let mut table: HashMap<JoinKey, Vec<BaseTuple>> = HashMap::new();
    let mut t_writers: Vec<trijoin_storage::heap::HeapWriter> =
        (0..b).map(|_| trijoin_storage::heap::HeapWriter::create(disk)).collect();
    let mut scan_err = None;
    t.scan(|tt| {
        if scan_err.is_some() {
            return;
        }
        cost.hash(1);
        let p = part_of(tt.key);
        if p == 0 {
            table.entry(tt.key).or_default().push(tt);
        } else {
            cost.mov(1);
            if let Err(e) = t_writers[(p - 1) as usize].add(&tt.to_bytes()) {
                scan_err = Some(e);
            }
        }
    })?;
    if let Some(e) = scan_err {
        return Err(e);
    }
    let t_runs: Vec<HeapFile> = t_writers.into_iter().map(|w| w.finish()).collect::<Result<_>>()?;

    // Run the inner strategy; probe partition 0 on the fly, spill the rest
    // of the view stream by partition.
    let mut emitted = 0u64;
    let mut v_writers: Vec<trijoin_storage::heap::HeapWriter> =
        (0..b).map(|_| trijoin_storage::heap::HeapWriter::create(disk)).collect();
    let mut stream_err: Option<trijoin_common::Error> = None;
    strategy.execute(r, s, &mut |v| {
        if stream_err.is_some() {
            return;
        }
        let k2 = key2(&v);
        cost.hash(1);
        let p = part_of(k2);
        if p == 0 {
            if let Some(matches) = table.get(&k2) {
                cost.comp(matches.len() as u64);
                for tt in matches {
                    cost.mov(1);
                    sink(ThreeWayTuple { inner: v.clone(), t: tt.clone() });
                    emitted += 1;
                }
            } else {
                cost.comp(1);
            }
        } else {
            cost.mov(1);
            if let Err(e) = v_writers[(p - 1) as usize].add(&v.to_bytes()) {
                stream_err = Some(e);
            }
        }
    })?;
    if let Some(e) = stream_err {
        return Err(e);
    }
    drop(table);
    let v_runs: Vec<HeapFile> = v_writers.into_iter().map(|w| w.finish()).collect::<Result<_>>()?;

    // Join the spilled partition pairs.
    for (t_run, v_run) in t_runs.into_iter().zip(v_runs) {
        let mut sub: HashMap<JoinKey, Vec<BaseTuple>> = HashMap::new();
        for rec in t_run.scan() {
            let (_, bytes) = rec?;
            let tt = BaseTuple::from_bytes(&bytes)?;
            cost.hash(1);
            sub.entry(tt.key).or_default().push(tt);
        }
        for rec in v_run.scan() {
            let (_, bytes) = rec?;
            let v = ViewTuple::from_bytes(&bytes)?;
            let k2 = key2(&v);
            cost.hash(1);
            if let Some(matches) = sub.get(&k2) {
                cost.comp(matches.len() as u64);
                for tt in matches {
                    cost.mov(1);
                    sink(ThreeWayTuple { inner: v.clone(), t: tt.clone() });
                    emitted += 1;
                }
            } else {
                cost.comp(1);
            }
        }
        t_run.destroy();
        v_run.destroy();
    }
    Ok(emitted)
}

/// Ground-truth three-way join over plain tuple vectors (no charges).
pub fn three_way_oracle(
    r: &[BaseTuple],
    s: &[BaseTuple],
    t: &[BaseTuple],
    key2: Key2Fn,
) -> Vec<ThreeWayTuple> {
    let inner = crate::oracle::join_tuples(r, s);
    let mut by_key: HashMap<JoinKey, Vec<&BaseTuple>> = HashMap::new();
    for tt in t {
        by_key.entry(tt.key).or_default().push(tt);
    }
    let mut out = Vec::new();
    for v in inner {
        if let Some(matches) = by_key.get(&key2(&v)) {
            for tt in matches {
                out.push(ThreeWayTuple { inner: v.clone(), t: (*tt).clone() });
            }
        }
    }
    out
}

/// Canonical sort + exact comparison of three-way results.
pub fn assert_same_three_way(
    label: &str,
    mut got: Vec<ThreeWayTuple>,
    mut want: Vec<ThreeWayTuple>,
) {
    let key = |x: &ThreeWayTuple| (x.inner.r_sur, x.inner.s_sur, x.t.sur);
    got.sort_by_key(key);
    want.sort_by_key(key);
    assert_eq!(got.len(), want.len(), "{label}: cardinality {} vs {}", got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g, w, "{label}: row mismatch");
    }
}
