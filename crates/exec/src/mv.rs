//! Materialized view with deferred, on-the-fly maintenance (§3.2).
//!
//! The view `V = R ⋈ S` lives in a linear hash file keyed on `hash(A)`
//! (Table 5). Updates to `R` are logged as differential sets `iR`/`dR`
//! sorted by `hash(A)` (step 1, Figure 1). At query time:
//!
//! 1. the `N1` sorted runs of each set are merged back (C1.2/C1.4) and
//!    *netted* (intermediate states of multiply-updated tuples cancel);
//! 2. batches of `|W_R|` pages of insertions are joined against `S`
//!    through its inverted index (step 2, Figure 2) — each batch is sorted
//!    on `A`, probed, and its result re-sorted by `hash(A)`, so the
//!    concatenation of batch outputs is globally hash-ordered;
//! 3. the view is read once, bucket by bucket; deletions are applied by
//!    *not keeping* tuples whose `R`-surrogate matches a net deletion, the
//!    freshly joined insertions are merged in, changed pages are written
//!    back, and every surviving tuple is emitted as the query answer —
//!    the paper's trick of folding step (3) into step (4) "thus saving the
//!    cost of reading V once".
//!
//! Bucket addressing is frozen while a merge is in flight: the logs sort by
//! the addressing snapshot taken when the log epoch opened, and the file is
//! rebalanced (splits applied) only after the merge completes, so sort
//! order and scan order always agree.

use std::collections::VecDeque;

use trijoin_common::{
    types::hash_key, BaseTuple, Cost, EventKind, FxHashMap, FxHashSet, Result, Surrogate,
    SystemParams, ViewTuple,
};
use trijoin_linearhash::{Addressing, LinearHash};
use trijoin_storage::{Disk, FileId};

use crate::diff::{mv_sort_key, net_differentials, DiffLog, Net, SortKey};
use crate::relation::StoredRelation;
use crate::sort::counted_sort_by;
use crate::strategy::{JoinStrategy, Mutation};
use crate::viewdef::ViewDef;

/// Serialized size of a view tuple built from `r_bytes`/`s_bytes` tuples.
pub fn view_tuple_bytes(r_bytes: usize, s_bytes: usize) -> usize {
    // Each base tuple contributes its payload (T − header); the view adds
    // its own header.
    ViewTuple::HEADER_BYTES
        + (r_bytes - BaseTuple::HEADER_BYTES)
        + (s_bytes - BaseTuple::HEADER_BYTES)
}

/// The materialized-view strategy.
pub struct MaterializedView {
    disk: Disk,
    params: SystemParams,
    cost: Cost,
    v: LinearHash,
    addressing: Addressing,
    ins_log: DiffLog,
    del_log: DiffLog,
    r_tuple_bytes: usize,
    s_tuple_bytes: usize,
    def: ViewDef,
}

impl MaterializedView {
    /// Initially materialize `V = R ⋈ S` (setup; callers normally reset the
    /// cost ledger afterwards — the paper does not price initial loading).
    pub fn build(
        disk: &Disk,
        params: &SystemParams,
        cost: &Cost,
        r: &StoredRelation,
        s: &StoredRelation,
    ) -> Result<Self> {
        Self::build_with(disk, params, cost, r, s, ViewDef::full())
    }

    /// Materialize a select-project view `V = π(σ_p(R) ⋈ σ_q(S))` — the
    /// paper's §5 extension (selections + projectivity of the join).
    pub fn build_with(
        disk: &Disk,
        params: &SystemParams,
        cost: &Cost,
        r: &StoredRelation,
        s: &StoredRelation,
        def: ViewDef,
    ) -> Result<Self> {
        // Full join via an in-memory build of S (setup only).
        let mut s_tuples: Vec<BaseTuple> = Vec::with_capacity(s.len() as usize);
        s.scan(|t| {
            if def.s_pred.eval(&t) {
                s_tuples.push(t);
            }
        })?;
        let mut by_key: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, st) in s_tuples.iter().enumerate() {
            by_key.entry(st.key).or_default().push(i);
        }
        let mut view: Vec<(u64, Vec<u8>)> = Vec::new();
        r.scan(|rt| {
            if !def.r_pred.eval(&rt) {
                return;
            }
            if let Some(matches) = by_key.get(&rt.key) {
                for &i in matches {
                    let vt = def.make_view_tuple(&rt, &s_tuples[i]);
                    view.push((hash_key(vt.key), vt.to_bytes()));
                }
            }
        })?;
        let count = view.len() as u64;
        let tv = def.view_tuple_bytes(r.tuple_bytes(), s.tuple_bytes());
        let v = LinearHash::build(disk, params, view, count, tv)?;
        let addressing = v.addressing();
        let (ins_log, del_log) = Self::fresh_logs(disk, cost, params, r.tuple_bytes(), addressing);
        Ok(MaterializedView {
            disk: disk.clone(),
            params: params.clone(),
            cost: cost.clone(),
            v,
            addressing,
            ins_log,
            del_log,
            r_tuple_bytes: r.tuple_bytes(),
            s_tuple_bytes: s.tuple_bytes(),
            def,
        })
    }

    /// The paper's `Z` (Figure 1): half the memory for insertions, half for
    /// deletions, minus quicksort overhead (negligible at real page sizes).
    pub fn z_pages(params: &SystemParams) -> usize {
        ((params.mem_pages.saturating_sub(1)) / 2).max(1)
    }

    fn fresh_logs(
        disk: &Disk,
        cost: &Cost,
        params: &SystemParams,
        r_tuple_bytes: usize,
        addressing: Addressing,
    ) -> (DiffLog, DiffLog) {
        let z = Self::z_pages(params);
        let per_page = params.tuples_per_full_page(r_tuple_bytes);
        let key = move |t: &BaseTuple| -> SortKey {
            let h = hash_key(t.key);
            mv_sort_key(addressing.addr(h), h, t.sur.0)
        };
        let ins = DiffLog::new(disk, cost, z, per_page, true, key);
        let del = DiffLog::new(disk, cost, z, per_page, true, key);
        (ins, del)
    }

    /// The paper's `|W_R|` (Figure 2): how many pages of merged insertions
    /// to collect per join pass, leaving room for the batch's `W_R ⋈ S`
    /// output, the `2·N1` run input buffers, three fixed buffers, and
    /// sort/merge overhead.
    fn wr_pages(&self, n1: usize, partners_per_r: f64) -> usize {
        let m = self.params.mem_pages as f64;
        let avail = m - 2.0 * n1 as f64 - 3.0;
        if avail < 2.0 {
            return 1;
        }
        let n_ir = self.params.tuples_per_full_page(self.r_tuple_bytes) as f64;
        let tv = self.def.view_tuple_bytes(self.r_tuple_bytes, self.s_tuple_bytes) as f64;
        let p = self.params.page_size as f64;
        let mrg_space = 2.0 * n1 as f64 * (self.r_tuple_bytes as f64 + self.params.sptr as f64) / p;
        let sort_space = 1.0;
        let mut w = 1usize;
        loop {
            let wf = (w + 1) as f64;
            let need = wf + (wf * n_ir * partners_per_r * tv / p).ceil() + mrg_space + sort_space;
            if need > avail {
                return w;
            }
            w += 1;
        }
    }

    /// Number of view tuples currently cached.
    pub fn view_len(&self) -> u64 {
        self.v.len()
    }

    /// The view's backing file (fault-injection targeting).
    pub fn view_file(&self) -> FileId {
        self.v.file_id()
    }

    /// Pages of the view file (≈ the paper's `F·|V|`).
    pub fn view_pages(&self) -> u64 {
        self.v.num_pages()
    }

    /// Pending logged updates (tuples in `iR`; `dR` has the same count).
    pub fn pending_updates(&self) -> u64 {
        self.ins_log.len().max(self.del_log.len())
    }

    /// Point lookup: every cached join tuple with the given join-attribute
    /// value, at hash-file point cost (one bucket chain, typically 1-2
    /// I/Os) — the paper's active-database motivation, where "the
    /// completion of many of the actions ... may be time-constrained in
    /// the order of a few milliseconds".
    ///
    /// Requires a *clean* view (no deferred updates pending): point access
    /// cannot see the unmerged differential logs. Run
    /// [`JoinStrategy::execute`] first, or keep the view clean with
    /// [`crate::EagerView`].
    pub fn lookup_key(&self, key: u64) -> Result<Vec<ViewTuple>> {
        if self.pending_updates() > 0 {
            return Err(trijoin_common::Error::Infeasible(format!(
                "{} deferred updates pending; execute() before point lookups",
                self.pending_updates()
            )));
        }
        let _g = self.cost.section("mv.point_lookup");
        let h = hash_key(key);
        self.cost.hash(1);
        let bucket = self.addressing.addr(h);
        let rows = self.v.scan_bucket(bucket)?;
        self.cost.comp(rows.len() as u64);
        rows.into_iter()
            .filter(|(rh, _)| *rh == h)
            .map(|(_, bytes)| ViewTuple::from_bytes(&bytes))
            .filter(|r| r.as_ref().map(|vt| vt.key == key).unwrap_or(true))
            .collect()
    }

    /// Join one batch of insertion tuples with `S` through the inverted
    /// index (step 2). Returns view tuples sorted by `(bucket, hash(A))`.
    fn join_batch(&self, s: &StoredRelation, mut batch: Vec<BaseTuple>) -> Result<Vec<ViewTuple>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let _g = self.cost.section("mv.join_ins");
        // 2.1: sort W_R by the join attribute A.
        counted_sort_by(&mut batch, |t| t.key, &self.cost);
        // 2.2: probe S's inverted index with the distinct keys...
        let mut keys: Vec<u64> = batch.iter().map(|t| t.key).collect();
        keys.dedup();
        // BTreeMap: iteration order feeds op-counted sorts, so it must be
        // deterministic for reproducible cost ledgers.
        let mut postings: std::collections::BTreeMap<u64, Vec<Surrogate>> =
            std::collections::BTreeMap::new();
        s.probe_inverted(&keys, |k, sur| postings.entry(k).or_default().push(sur))?;
        // ...then fetch the matching S tuples in surrogate order (scheduled
        // access — each page at most once).
        let mut surs: Vec<Surrogate> = postings.values().flatten().copied().collect();
        counted_sort_by(&mut surs, |s| s.0, &self.cost);
        let mut s_tuples: FxHashMap<Surrogate, BaseTuple> = FxHashMap::default();
        s.fetch_by_surrogates(&surs, |t| {
            s_tuples.insert(t.sur, t);
        })?;
        // Form W_R ⋈ σ_q(S) (one move per result tuple, per C2.2). The
        // inverted index is on the full S, so fetched tuples are tested
        // against the view's S-side selection here (one comp each).
        let mut out: Vec<ViewTuple> = Vec::new();
        for rt in &batch {
            if let Some(ss) = postings.get(&rt.key) {
                for sur in ss {
                    let st = s_tuples.get(sur).ok_or_else(|| {
                        trijoin_common::Error::Invariant(format!(
                            "inverted posting {sur} has no S tuple"
                        ))
                    })?;
                    self.cost.comp(1);
                    if !self.def.s_pred.eval(st) {
                        continue;
                    }
                    out.push(self.def.make_view_tuple(rt, st));
                    self.cost.mov(1);
                }
            }
        }
        // 2.3: sort the batch result by hash(A) (CPU_s with hashing).
        self.cost.hash(out.len() as u64);
        let addressing = self.addressing;
        counted_sort_by(
            &mut out,
            |v| {
                let h = hash_key(v.key);
                mv_sort_key(addressing.addr(h), h, v.r_sur.0)
            },
            &self.cost,
        );
        Ok(out)
    }

    /// Device-fault fallback: the cached view (or a differential run) is
    /// damaged, so answer the query by recomputing `R ⋈ S` directly from
    /// the base relations, validate against the oracle, and rebuild `V`
    /// into fresh pages — all charged under the `mv.recover` section.
    fn recover(
        &mut self,
        r: &StoredRelation,
        s: &StoredRelation,
        out: &mut Vec<ViewTuple>,
    ) -> Result<u64> {
        self.disk.metrics().incr("mv.recoveries");
        self.disk.events().emit(
            EventKind::RecoveryTriggered,
            "materialized-view: recompute from base relations",
            self.cost.total(),
        );
        let _g = self.cost.section("mv.recover");
        let (answer, r_filt, s_filt) =
            crate::recovery::recompute_join(r, s, &self.def, &self.cost)?;
        crate::recovery::validate_against_oracle(
            "materialized-view",
            &answer,
            &r_filt,
            &s_filt,
            &self.def,
        )?;
        // Rebuild the view into a fresh file; the damaged one is abandoned
        // (a fresh file carries no torn/poisoned marks).
        let records: Vec<(u64, Vec<u8>)> =
            answer.iter().map(|vt| (hash_key(vt.key), vt.to_bytes())).collect();
        let count = answer.len() as u64;
        let tv = self.def.view_tuple_bytes(self.r_tuple_bytes, self.s_tuple_bytes);
        let new_v = LinearHash::build(&self.disk, &self.params, records, count, tv)?;
        std::mem::replace(&mut self.v, new_v).destroy();
        self.addressing = self.v.addressing();
        // The recomputation already reflects every logged mutation (the
        // base relations do), so pending differentials are superseded.
        let (ins, del) = Self::fresh_logs(
            &self.disk,
            &self.cost,
            &self.params,
            self.r_tuple_bytes,
            self.addressing,
        );
        std::mem::replace(&mut self.ins_log, ins).destroy();
        std::mem::replace(&mut self.del_log, del).destroy();
        out.extend(answer);
        Ok(count)
    }

    // === Incremental-migration surface ==================================
    // Online strategy migration builds the *new* cached structure from the
    // *old* one plus its pending differential logs — never from a
    // base-relation rescan. The old structure exposes a chunked snapshot
    // (per hash bucket here, per index page for the join index) and a
    // from-rows constructor; the serving layer drives the state machine.

    /// Buckets in the cached view file — the snapshot chunk count.
    pub fn num_view_buckets(&self) -> u64 {
        self.v.num_buckets()
    }

    /// Decode one bucket of the cached view (one chunk of a migration
    /// snapshot). Requires a *clean* view: snapshots are taken right
    /// after a query, when the differential logs have just been folded.
    pub fn snapshot_bucket(&self, bucket: u64) -> Result<Vec<ViewTuple>> {
        if self.pending_updates() > 0 {
            return Err(trijoin_common::Error::Infeasible(format!(
                "{} deferred updates pending; snapshot only a clean view",
                self.pending_updates()
            )));
        }
        let rows = self.v.scan_bucket(bucket)?;
        let mut out = Vec::with_capacity(rows.len());
        for (_hash, bytes) in rows {
            out.push(ViewTuple::from_bytes(&bytes)?);
        }
        Ok(out)
    }

    /// Build a full view directly from already-joined tuples — the
    /// receiving end of a migration hand-off. All I/O lands in the
    /// caller's open ledger section (the serving layer wraps this in its
    /// `migrate.build` span).
    pub fn build_from_tuples(
        disk: &Disk,
        params: &SystemParams,
        cost: &Cost,
        tuples: &[ViewTuple],
        r_tuple_bytes: usize,
        s_tuple_bytes: usize,
    ) -> Result<Self> {
        let records: Vec<(u64, Vec<u8>)> =
            tuples.iter().map(|vt| (hash_key(vt.key), vt.to_bytes())).collect();
        let count = records.len() as u64;
        let def = ViewDef::full();
        let tv = def.view_tuple_bytes(r_tuple_bytes, s_tuple_bytes);
        let v = LinearHash::build(disk, params, records, count, tv)?;
        let addressing = v.addressing();
        let (ins_log, del_log) = Self::fresh_logs(disk, cost, params, r_tuple_bytes, addressing);
        Ok(MaterializedView {
            disk: disk.clone(),
            params: params.clone(),
            cost: cost.clone(),
            v,
            addressing,
            ins_log,
            del_log,
            r_tuple_bytes,
            s_tuple_bytes,
            def,
        })
    }

    /// Delete the view file and both log files — the superseded side of a
    /// completed migration (fault-recovery paths replace-and-destroy
    /// internally instead).
    pub fn destroy(self) {
        self.v.destroy();
        self.ins_log.destroy();
        self.del_log.destroy();
    }
}

impl JoinStrategy for MaterializedView {
    fn name(&self) -> &'static str {
        "materialized-view"
    }

    fn on_mutation(&mut self, m: &Mutation) -> Result<()> {
        self.disk.metrics().incr("mv.mutations_logged");
        let _g = self.cost.section("mv.log");
        // Every mutation of a full view matters (unlike the join index,
        // which filters by Pr_A); a select view additionally drops the
        // sides that fail its selection — *irrelevant* mutations (both
        // sides fail) cost nothing at all.
        let (del, ins) = self.def.translate_r(m);
        if let Some(t) = del {
            self.del_log.add(t)?;
        }
        if let Some(t) = ins {
            self.ins_log.add(t)?;
        }
        Ok(())
    }

    fn execute(
        &mut self,
        r: &StoredRelation,
        s: &StoredRelation,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64> {
        // Buffer emissions: a mid-merge device fault must not leak a
        // partial answer into the sink before recovery re-derives the
        // exact one.
        let mut buffered: Vec<ViewTuple> = Vec::new();
        let emitted = match self.merge_execute(r, s, &mut |vt| buffered.push(vt)) {
            Ok(n) => n,
            Err(e) if e.is_device_fault() => {
                buffered.clear();
                self.recover(r, s, &mut buffered)?
            }
            Err(e) => return Err(e),
        };
        self.disk.metrics().counter_add("mv.tuples_emitted", buffered.len() as u64);
        for vt in buffered {
            sink(vt);
        }
        Ok(emitted)
    }
}

impl MaterializedView {
    /// The §3.2 merge pipeline (the paper's steps 1–4), fallible on any
    /// injected device fault; [`JoinStrategy::execute`] wraps it with the
    /// recovery fallback.
    fn merge_execute(
        &mut self,
        r: &StoredRelation,
        s: &StoredRelation,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64> {
        self.ins_log.seal()?;
        self.del_log.seal()?;
        let n1 = self.ins_log.num_runs().max(self.del_log.num_runs());
        // Expected S partners per R tuple: ‖V‖/‖R‖ = JS·‖S‖ (self-estimated
        // from the cached view, like a real system's statistics).
        let partners = if r.is_empty() { 1.0 } else { self.v.len() as f64 / r.len() as f64 };
        let wr_tuples = self.wr_pages(n1, partners.max(0.1))
            * self.params.tuples_per_full_page(self.r_tuple_bytes);

        let addressing = self.addressing;
        let key_of = move |t: &BaseTuple| -> SortKey {
            let h = hash_key(t.key);
            mv_sort_key(addressing.addr(h), h, t.sur.0)
        };
        let ins_stream = {
            let _g = self.cost.section("mv.read_diffs");
            self.ins_log.merged()?
        };
        let del_stream = self.del_log.merged()?;
        // The MV log sees every update, so chains are contiguous and
        // byte-identity is the exact cancellation equivalence.
        let mut net =
            net_differentials(ins_stream, del_stream, key_of, |a, b| a == b, &self.cost).peekable();

        let bucket_of_key = move |k: SortKey| -> u64 { (k >> 96) as u64 };

        let mut del_q: VecDeque<(u64, Surrogate)> = VecDeque::new();
        let mut emitted = 0u64;
        let mut next_bucket = 0u64;
        let total_buckets = self.v.num_buckets();

        loop {
            // Pull a batch of net insertions (deletions encountered on the
            // way queue up for the scan below).
            let mut batch: Vec<BaseTuple> = Vec::new();
            {
                let _g = self.cost.section("mv.read_diffs");
                while let Some(item) = net.peek() {
                    let key = match item {
                        Net::Ins(t) | Net::Del(t) => key_of(t),
                    };
                    let bucket = bucket_of_key(key);
                    if batch.len() >= wr_tuples {
                        // Extend only to the current bucket boundary.
                        let last_bucket =
                            batch.last().map(|t| bucket_of_key(key_of(t))).unwrap_or(bucket);
                        if bucket > last_bucket {
                            break;
                        }
                    }
                    match net.next().unwrap() {
                        Net::Ins(t) => batch.push(t),
                        Net::Del(t) => del_q.push_back((bucket, t.sur)),
                    }
                }
            }
            // A parked run-read error means the differential stream ended
            // early and the batch is incomplete: fail the merge (recovery
            // takes over in the execute wrapper).
            self.ins_log.stream_error()?;
            self.del_log.stream_error()?;
            let batch_empty = batch.is_empty();
            // The scan below may process up to the batch's last bucket; if
            // the stream is exhausted, finish the whole file.
            let hi_bucket = if net.peek().is_none() {
                total_buckets.saturating_sub(1)
            } else {
                batch
                    .iter()
                    .map(|t| bucket_of_key(key_of(t)))
                    .max()
                    .or_else(|| del_q.back().map(|&(b, _)| b))
                    .unwrap_or(next_bucket)
            };
            let mut joined: VecDeque<ViewTuple> = self.join_batch(s, batch)?.into();

            // Step 3/4: read V bucket by bucket, apply deletions by not
            // keeping matching tuples, merge insertions, emit everything,
            // write back changed pages.
            let scan_done = net.peek().is_none() && batch_empty && joined.is_empty();
            let last = if scan_done {
                total_buckets.saturating_sub(1)
            } else {
                hi_bucket.min(total_buckets.saturating_sub(1))
            };
            for b in next_bucket..=last {
                let old = {
                    let _g = self.cost.section("mv.scan_view");
                    self.v.scan_bucket(b)?
                };
                let mut dels: FxHashSet<Surrogate> = FxHashSet::default();
                while del_q.front().map(|&(db, _)| db == b).unwrap_or(false) {
                    dels.insert(del_q.pop_front().unwrap().1);
                }
                let mut changed = false;
                let mut new: Vec<(u64, Vec<u8>)> = Vec::with_capacity(old.len());
                // Keep survivors.
                for (h, bytes) in old {
                    let vt = ViewTuple::from_bytes(&bytes)?;
                    self.cost.comp(1); // tested against the deletion set
                    if dels.contains(&vt.r_sur) {
                        changed = true;
                    } else {
                        sink(vt);
                        emitted += 1;
                        new.push((h, bytes));
                    }
                }
                // Merge this bucket's freshly joined insertions.
                while joined
                    .front()
                    .map(|v| self.addressing.addr(hash_key(v.key)) == b)
                    .unwrap_or(false)
                {
                    let vt = joined.pop_front().unwrap();
                    self.cost.mov(1); // merged into the bucket (C3.3)
                                      // Serialize before handing the tuple to the sink so it
                                      // moves instead of cloning its payloads.
                    new.push((hash_key(vt.key), vt.to_bytes()));
                    sink(vt);
                    emitted += 1;
                    changed = true;
                }
                if changed {
                    let _g = self.cost.section("mv.write_view");
                    // Rewriting a bucket moves its tuples (C3.3's n_V moves
                    // per changed page).
                    self.cost.mov(new.len() as u64);
                    self.v.rewrite_bucket(b, new)?;
                }
            }
            next_bucket = last + 1;
            if scan_done || next_bucket >= total_buckets {
                debug_assert!(
                    net.peek().is_none() && joined.is_empty(),
                    "differential stream outlived the view scan"
                );
                break;
            }
        }

        // Post-merge housekeeping: apply deferred splits and open a fresh
        // log epoch under the (possibly new) addressing.
        {
            let _g = self.cost.section("mv.rebalance");
            self.v.rebalance()?;
        }
        self.addressing = self.v.addressing();
        let (ins, del) = Self::fresh_logs(
            &self.disk,
            &self.cost,
            &self.params,
            self.r_tuple_bytes,
            self.addressing,
        );
        std::mem::replace(&mut self.ins_log, ins).destroy();
        std::mem::replace(&mut self.del_log, del).destroy();
        Ok(emitted)
    }
}
