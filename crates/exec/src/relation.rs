//! Stored base relations, organized per Table 5 of the paper.
//!
//! A [`StoredRelation`] is a clustered B⁺-tree on the surrogate (leaves hold
//! full tuples at `n_R = ⌊P·PO/T_R⌋` per page) plus, optionally, a
//! non-clustered ("inverted") B⁺-tree on the join attribute whose leaf
//! values are surrogates. Relation `S` carries the inverted index; relation
//! `R` does not (only `S` is probed by join attribute in the paper's
//! algorithms).

use trijoin_btree::{BTree, BTreeConfig, BTreeMeta};
use trijoin_common::{BaseTuple, Cost, Error, Json, Result, Surrogate, SystemParams};
use trijoin_storage::Disk;

/// Serialize one tree's [`BTreeMeta`] as a catalog object.
fn tree_json(meta: &BTreeMeta) -> Json {
    Json::obj()
        .set("file", meta.file as u64)
        .set("root_page", meta.root_page as u64)
        .set("height", meta.height as u64)
        .set("entries", meta.entries)
        .set("leaves", meta.leaves)
}

/// Decode one tree's catalog object back into a [`BTreeMeta`].
fn tree_meta(j: &Json) -> Result<BTreeMeta> {
    let field = |k: &str| {
        j.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| Error::Corrupt(format!("catalog tree entry missing field {k}")))
    };
    Ok(BTreeMeta {
        file: field("file")? as u32,
        root_page: field("root_page")? as u32,
        height: field("height")? as usize,
        entries: field("entries")?,
        leaves: field("leaves")?,
    })
}

/// A base relation stored per Table 5.
pub struct StoredRelation {
    name: String,
    clustered: BTree,
    inverted: Option<BTree>,
    tuple_bytes: usize,
    count: u64,
}

impl StoredRelation {
    /// Build a relation from tuples (any order). One write I/O per page of
    /// each index; callers typically reset the cost ledger after setup, as
    /// the paper does not price initial loading.
    pub fn build(
        disk: &Disk,
        params: &SystemParams,
        name: &str,
        mut tuples: Vec<BaseTuple>,
        with_inverted: bool,
    ) -> Result<Self> {
        let tuple_bytes = tuples.first().map(|t| t.serialized_len()).unwrap_or(64);
        if let Some(bad) = tuples.iter().find(|t| t.serialized_len() != tuple_bytes) {
            return Err(Error::Invariant(format!(
                "relation {name}: mixed tuple sizes ({} vs {})",
                bad.serialized_len(),
                tuple_bytes
            )));
        }
        tuples.sort_by_key(|t| t.sur);
        if tuples.windows(2).any(|w| w[0].sur == w[1].sur) {
            return Err(Error::Invariant(format!("relation {name}: duplicate surrogate")));
        }
        let count = tuples.len() as u64;
        let clustered = BTree::bulk_load(
            disk,
            BTreeConfig::clustered(params, tuple_bytes),
            tuples.iter().map(|t| (t.sur.0 as u64, t.to_bytes())),
        )?;
        let inverted = if with_inverted {
            let mut entries: Vec<(u64, Vec<u8>)> =
                tuples.iter().map(|t| (t.key, t.sur.0.to_le_bytes().to_vec())).collect();
            entries.sort();
            Some(BTree::bulk_load(disk, BTreeConfig::inverted(params), entries)?)
        } else {
            None
        };
        Ok(StoredRelation { name: name.to_string(), clustered, inverted, tuple_bytes, count })
    }

    /// Serialize this relation's catalog entry: name, tuple shape, count,
    /// and the persisted shape of each index tree. Together with the pages
    /// already on the durable backend this is everything
    /// [`StoredRelation::open`] needs after a restart.
    pub fn catalog_json(&self) -> Json {
        let mut j = Json::obj()
            .set("name", self.name.as_str())
            .set("tuple_bytes", self.tuple_bytes)
            .set("count", self.count)
            .set("clustered", tree_json(&self.clustered.meta()));
        if let Some(inv) = &self.inverted {
            j = j.set("inverted", tree_json(&inv.meta()));
        }
        j
    }

    /// Reattach to a persisted relation from its catalog entry. Free of
    /// I/O charge (only the memory-resident roots are reloaded); tuple
    /// pages are read lazily, charged, on first access as usual.
    pub fn open(disk: &Disk, params: &SystemParams, j: &Json) -> Result<Self> {
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| Error::Corrupt("catalog relation missing name".into()))?
            .to_string();
        let tuple_bytes = j
            .get("tuple_bytes")
            .and_then(Json::as_u64)
            .ok_or_else(|| Error::Corrupt(format!("catalog {name}: missing tuple_bytes")))?
            as usize;
        let count = j
            .get("count")
            .and_then(Json::as_u64)
            .ok_or_else(|| Error::Corrupt(format!("catalog {name}: missing count")))?;
        let clustered_meta = tree_meta(
            j.get("clustered")
                .ok_or_else(|| Error::Corrupt(format!("catalog {name}: missing clustered")))?,
        )?;
        let clustered =
            BTree::open(disk, BTreeConfig::clustered(params, tuple_bytes), &clustered_meta)?;
        let inverted = match j.get("inverted") {
            Some(inv) => Some(BTree::open(disk, BTreeConfig::inverted(params), &tree_meta(inv)?)?),
            None => None,
        };
        Ok(StoredRelation { name, clustered, inverted, tuple_bytes, count })
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tuple count (`‖R‖`).
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Data pages (`|R|` — the clustered tree's leaf level).
    pub fn data_pages(&self) -> u64 {
        self.clustered.leaf_pages()
    }

    /// Serialized tuple size (`T_R`).
    pub fn tuple_bytes(&self) -> usize {
        self.tuple_bytes
    }

    /// Whether this relation carries the inverted index on the join
    /// attribute.
    pub fn has_inverted(&self) -> bool {
        self.inverted.is_some()
    }

    /// Point-fetch one tuple by surrogate.
    pub fn get(&self, sur: Surrogate) -> Result<Option<BaseTuple>> {
        let hits = self.clustered.lookup(sur.0 as u64)?;
        match hits.as_slice() {
            [] => Ok(None),
            [one] => Ok(Some(BaseTuple::from_bytes(one)?)),
            _ => Err(Error::Invariant(format!("duplicate surrogate {sur} in {}", self.name))),
        }
    }

    /// Batched fetch by *sorted* surrogates: each touched page is charged at
    /// most once (the Yao-style scheduled access of the paper's algorithms).
    pub fn fetch_by_surrogates(
        &self,
        sorted_surs: &[Surrogate],
        mut f: impl FnMut(BaseTuple),
    ) -> Result<()> {
        let keys: Vec<u64> = sorted_surs.iter().map(|s| s.0 as u64).collect();
        let mut err = None;
        self.clustered.fetch_many(&keys, |_, bytes| {
            if err.is_none() {
                match BaseTuple::from_bytes(bytes) {
                    Ok(t) => f(t),
                    Err(e) => err = Some(e),
                }
            }
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Batched inverted-index probe by *sorted* join-key values: calls
    /// `f(key, surrogate)` for every posting. Errors if the relation has no
    /// inverted index.
    pub fn probe_inverted(
        &self,
        sorted_keys: &[u64],
        mut f: impl FnMut(u64, Surrogate),
    ) -> Result<()> {
        let inv = self.inverted.as_ref().ok_or_else(|| {
            Error::Invariant(format!("relation {} has no inverted index", self.name))
        })?;
        let mut err = None;
        inv.fetch_many(sorted_keys, |k, bytes| {
            if err.is_none() {
                if bytes.len() == 4 {
                    f(k, Surrogate(u32::from_le_bytes(bytes.try_into().unwrap())));
                } else {
                    err = Some(Error::Corrupt("inverted posting wrong width".into()));
                }
            }
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Full scan in surrogate order (one read I/O per leaf page).
    pub fn scan(&self, mut f: impl FnMut(BaseTuple)) -> Result<()> {
        self.scan_refs(|t| f(t.to_tuple()))
    }

    /// Full scan in surrogate order handing out *borrowed* tuple views —
    /// identical I/O charges and decode validation to [`StoredRelation::scan`],
    /// but no per-tuple payload allocation. The vectorized operators build
    /// columnar batches from this.
    pub fn scan_refs(&self, mut f: impl FnMut(crate::batch::TupleRef<'_>)) -> Result<()> {
        let mut err = None;
        self.clustered.for_each(|_, bytes| match crate::batch::TupleRef::decode(bytes) {
            Ok(t) => {
                f(t);
                true
            }
            Err(e) => {
                err = Some(e);
                false
            }
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Full scan handing out borrowed tuple views *plus* the shared page
    /// image each view borrows from (`None` when the tuple lives in the
    /// memory-resident root leaf). Charge-identical to
    /// [`StoredRelation::scan_refs`]; the image handle lets the vectorized
    /// operators pin pages into a [`crate::batch::RowBatch`] instead of
    /// copying payloads out.
    pub fn scan_pinned(
        &self,
        mut f: impl FnMut(crate::batch::TupleRef<'_>, Option<&std::rc::Rc<Vec<u8>>>),
    ) -> Result<()> {
        let mut err = None;
        self.clustered.for_each_pinned(|_, bytes, page| {
            match crate::batch::TupleRef::decode(bytes) {
                Ok(t) => {
                    f(t, page);
                    true
                }
                Err(e) => {
                    err = Some(e);
                    false
                }
            }
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Insert a brand-new tuple (surrogate must be unused). Maintains both
    /// indexes.
    pub fn insert(&mut self, t: &BaseTuple) -> Result<()> {
        if t.serialized_len() != self.tuple_bytes {
            return Err(Error::Invariant("insert changes tuple size".into()));
        }
        if !self.clustered.lookup(t.sur.0 as u64)?.is_empty() {
            return Err(Error::Invariant(format!(
                "surrogate {} already exists in {}",
                t.sur, self.name
            )));
        }
        self.clustered.insert(t.sur.0 as u64, t.to_bytes())?;
        if let Some(inv) = self.inverted.as_mut() {
            inv.insert(t.key, t.sur.0.to_le_bytes().to_vec())?;
        }
        self.count += 1;
        Ok(())
    }

    /// Delete an existing tuple. Maintains both indexes.
    pub fn delete(&mut self, t: &BaseTuple) -> Result<()> {
        if !self.clustered.remove_where(t.sur.0 as u64, |_| true)? {
            return Err(Error::KeyNotFound(t.sur.0 as u64));
        }
        if let Some(inv) = self.inverted.as_mut() {
            if !inv.remove_exact(t.key, &t.sur.0.to_le_bytes())? {
                return Err(Error::Invariant("inverted posting missing on delete".into()));
            }
        }
        self.count -= 1;
        Ok(())
    }

    /// Apply one mutation ([`crate::strategy::Mutation`]).
    pub fn apply_mutation(&mut self, m: &crate::strategy::Mutation) -> Result<()> {
        use crate::strategy::Mutation;
        match m {
            Mutation::Update(u) => self.apply_update(&u.old, &u.new),
            Mutation::Insert(t) => self.insert(t),
            Mutation::Delete(t) => self.delete(t),
        }
    }

    /// Apply one update (the paper's model: a deletion of `old` followed by
    /// an insertion of `new`, same surrogate). Maintains both indexes.
    pub fn apply_update(&mut self, old: &BaseTuple, new: &BaseTuple) -> Result<()> {
        if old.sur != new.sur {
            return Err(Error::Invariant("update must keep the surrogate".into()));
        }
        if new.serialized_len() != self.tuple_bytes {
            return Err(Error::Invariant("update changes tuple size".into()));
        }
        let removed = self.clustered.remove_where(old.sur.0 as u64, |_| true)?;
        if !removed {
            return Err(Error::KeyNotFound(old.sur.0 as u64));
        }
        self.clustered.insert(new.sur.0 as u64, new.to_bytes())?;
        if let Some(inv) = self.inverted.as_mut() {
            if old.key != new.key {
                let sur_bytes = old.sur.0.to_le_bytes();
                if !inv.remove_exact(old.key, &sur_bytes)? {
                    return Err(Error::Invariant("inverted posting missing on update".into()));
                }
                inv.insert(new.key, sur_bytes.to_vec())?;
            }
        }
        Ok(())
    }

    /// Recompute the relation's contents without charging I/O (test oracle).
    pub fn snapshot_free(&self, cost: &Cost) -> Result<Vec<BaseTuple>> {
        let before = cost.total();
        let mut out = Vec::with_capacity(self.count as usize);
        self.scan(|t| out.push(t))?;
        // scan() charged; refund is impossible, so this helper is only for
        // tests that reset the ledger afterwards. Cheap alternative kept
        // deliberately simple; see tests.
        let _ = before;
        Ok(out)
    }
}

impl std::fmt::Debug for StoredRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredRelation")
            .field("name", &self.name)
            .field("tuples", &self.count)
            .field("pages", &self.data_pages())
            .field("inverted", &self.inverted.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trijoin_storage::SimDisk;

    fn tuples(n: u32, key_of: impl Fn(u32) -> u64) -> Vec<BaseTuple> {
        (0..n).map(|i| BaseTuple::padded(Surrogate(i), key_of(i), 64)).collect()
    }

    fn setup(n: u32, inverted: bool) -> (Disk, Cost, StoredRelation) {
        let cost = Cost::new();
        let params = SystemParams { page_size: 512, ..SystemParams::paper_defaults() };
        let disk = SimDisk::new(&params, cost.clone());
        let rel =
            StoredRelation::build(&disk, &params, "T", tuples(n, |i| (i % 10) as u64), inverted)
                .unwrap();
        (disk, cost, rel)
    }

    #[test]
    fn build_and_point_lookup() {
        let (_d, _c, rel) = setup(100, true);
        assert_eq!(rel.len(), 100);
        assert!(!rel.is_empty());
        let t = rel.get(Surrogate(42)).unwrap().unwrap();
        assert_eq!(t.sur, Surrogate(42));
        assert_eq!(t.key, 2);
        assert!(rel.get(Surrogate(500)).unwrap().is_none());
    }

    #[test]
    fn build_rejects_duplicates_and_mixed_sizes() {
        let cost = Cost::new();
        let params = SystemParams { page_size: 512, ..SystemParams::paper_defaults() };
        let disk = SimDisk::new(&params, cost);
        let mut dup = tuples(5, |_| 0);
        dup.push(BaseTuple::padded(Surrogate(0), 7, 64));
        assert!(StoredRelation::build(&disk, &params, "D", dup, false).is_err());
        let mixed =
            vec![BaseTuple::padded(Surrogate(0), 0, 64), BaseTuple::padded(Surrogate(1), 0, 80)];
        assert!(StoredRelation::build(&disk, &params, "M", mixed, false).is_err());
    }

    #[test]
    fn scan_in_surrogate_order() {
        let (_d, _c, rel) = setup(60, false);
        let mut surs = Vec::new();
        rel.scan(|t| surs.push(t.sur.0)).unwrap();
        assert_eq!(surs, (0..60).collect::<Vec<u32>>());
    }

    #[test]
    fn inverted_probe_finds_all_postings() {
        let (_d, _c, rel) = setup(100, true);
        // Keys are i % 10: key 3 has 10 postings.
        let mut hits = Vec::new();
        rel.probe_inverted(&[3], |k, s| hits.push((k, s.0))).unwrap();
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|&(k, s)| k == 3 && s % 10 == 3));
        // Missing key yields nothing; multiple keys work sorted.
        let mut hits2 = Vec::new();
        rel.probe_inverted(&[3, 7, 99], |_, s| hits2.push(s.0)).unwrap();
        assert_eq!(hits2.len(), 20);
    }

    #[test]
    fn probe_without_inverted_errors() {
        let (_d, _c, rel) = setup(10, false);
        assert!(rel.probe_inverted(&[1], |_, _| {}).is_err());
        assert!(!rel.has_inverted());
    }

    #[test]
    fn fetch_by_surrogates_batch() {
        let (_d, cost, rel) = setup(200, false);
        cost.reset();
        let surs: Vec<Surrogate> = (0..200).step_by(2).map(Surrogate).collect();
        let mut got = Vec::new();
        rel.fetch_by_surrogates(&surs, |t| got.push(t.sur.0)).unwrap();
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        // Every data page is touched (stride 2 hits all pages) but charged
        // at most once.
        assert!(cost.total().ios <= rel.data_pages() + 8);
    }

    #[test]
    fn update_maintains_both_indexes() {
        let (_d, _c, mut rel) = setup(50, true);
        let old = rel.get(Surrogate(7)).unwrap().unwrap();
        assert_eq!(old.key, 7);
        let new = BaseTuple::padded(Surrogate(7), 3, 64);
        rel.apply_update(&old, &new).unwrap();
        assert_eq!(rel.get(Surrogate(7)).unwrap().unwrap().key, 3);
        assert_eq!(rel.len(), 50);
        // Inverted index: key 7 lost a posting, key 3 gained one.
        let mut key7 = Vec::new();
        rel.probe_inverted(&[7], |_, s| key7.push(s.0)).unwrap();
        assert!(!key7.contains(&7));
        assert_eq!(key7.len(), 4);
        let mut key3 = Vec::new();
        rel.probe_inverted(&[3], |_, s| key3.push(s.0)).unwrap();
        assert_eq!(key3.len(), 6);
        assert!(key3.contains(&7));
    }

    #[test]
    fn update_with_same_key_skips_inverted_work() {
        let (_d, _c, mut rel) = setup(20, true);
        let old = rel.get(Surrogate(5)).unwrap().unwrap();
        let new = BaseTuple::with_payload(Surrogate(5), old.key, b"fresh", 64).unwrap();
        rel.apply_update(&old, &new).unwrap();
        let got = rel.get(Surrogate(5)).unwrap().unwrap();
        assert_eq!(&got.payload[..5], b"fresh");
        let mut key5 = Vec::new();
        rel.probe_inverted(&[5], |_, s| key5.push(s.0)).unwrap();
        assert_eq!(key5.len(), 2); // surrogates 5 and 15
    }

    #[test]
    fn update_errors_are_safe() {
        let (_d, _c, mut rel) = setup(10, true);
        let old = rel.get(Surrogate(1)).unwrap().unwrap();
        let wrong_sur = BaseTuple::padded(Surrogate(2), 0, 64);
        assert!(rel.apply_update(&old, &wrong_sur).is_err());
        let wrong_size = BaseTuple::padded(Surrogate(1), 0, 80);
        assert!(rel.apply_update(&old, &wrong_size).is_err());
        let ghost = BaseTuple::padded(Surrogate(99), 0, 64);
        assert!(rel.apply_update(&ghost, &ghost).is_err());
        // Relation still intact.
        assert_eq!(rel.len(), 10);
        assert!(rel.get(Surrogate(1)).unwrap().is_some());
    }

    #[test]
    fn paper_packing_shape() {
        let cost = Cost::new();
        let params = SystemParams::paper_defaults();
        let disk = SimDisk::new(&params, cost);
        let tuples: Vec<BaseTuple> =
            (0..2000).map(|i| BaseTuple::padded(Surrogate(i), i as u64, 200)).collect();
        let rel = StoredRelation::build(&disk, &params, "R", tuples, false).unwrap();
        // n_R = 14 -> ceil(2000/14) = 143 data pages.
        assert_eq!(rel.data_pages(), 143);
        assert_eq!(rel.tuple_bytes(), 200);
    }
}
