//! Execution engine: the paper's three join strategies as real operators.
//!
//! Everything here runs for real against the simulated storage stack —
//! tuples are sorted, spilled, merged, probed and joined — while every
//! primitive operation (random page I/O, key comparison, hash, tuple move)
//! is charged into the shared [`Cost`](trijoin_common::Cost) ledger at the
//! paper's Table 7 device constants. The analytical model in
//! `trijoin-model` predicts these charges; the engine measures them.
//!
//! * [`relation::StoredRelation`] — base relations per Table 5;
//! * [`diff`] — differential logging with spill runs and net-merge;
//! * [`mv::MaterializedView`] — §3.2, deferred on-the-fly view maintenance;
//! * [`joinindex::JoinIndexStrategy`] — §3.3, incremental join-index
//!   maintenance (the paper's byproduct contribution);
//! * [`hybridhash::HybridHash`] — §3.4, full re-evaluation;
//! * [`oracle`] — trivially-auditable reference joins for testing;
//! * [`recovery`] — bounded retry and oracle-validated rebuild of cached
//!   state after injected device faults;
//! * [`sort`] — operation-counted quicksort and k-way merging;
//! * [`batch`] — columnar row batches backing the vectorized probe loops
//!   (a wall-clock representation; charges stay in the operators).

pub mod batch;
pub mod bilateral;
pub mod diff;
pub mod eager;
pub mod hybridhash;
pub mod joinindex;
pub mod mv;
pub mod oracle;
pub mod recovery;
pub mod relation;
pub mod sort;
pub mod strategy;
pub mod threeway;
pub mod viewdef;

pub use batch::{RowBatch, TupleRef};
pub use bilateral::BilateralView;
pub use eager::EagerView;
pub use hybridhash::HybridHash;
pub use joinindex::JoinIndexStrategy;
pub use mv::MaterializedView;
pub use relation::StoredRelation;
pub use strategy::{execute_collect, JoinStrategy, Mutation, Update};
pub use viewdef::{Predicate, ViewDef};
