//! Hybrid-hash join (§3.4) — full re-evaluation, no cached state.
//!
//! DeWitt et al.'s algorithm: compute `B = ⌈(|R|·F − |M|)/(|M| − 1)⌉`
//! partitions beyond partition 0; while reading `R`, tuples of partition 0
//! are built into an in-memory hash table (using the memory the other
//! partitions don't need for output buffering) and the remaining `B`
//! partitions spill; `S` then streams through, probing partition 0
//! immediately and spilling the rest; finally each spilled pair
//! `(R_i, S_i)` is joined in memory. A fraction `q = |R0|/|R|` of the data
//! never touches disk twice — the "hybrid" advantage over Grace hash.
//!
//! Skewed partitions that still exceed memory are recursively
//! repartitioned (a standard hardening the paper's uniform-hash analysis
//! does not need).

use std::rc::Rc;

use trijoin_common::{
    types::hash_key, Cost, EventKind, FxHashMap, JoinKey, Result, SystemParams, ViewTuple,
};
use trijoin_storage::{Disk, HeapFile};

use crate::batch::{RowBatch, TupleRef};
use crate::relation::StoredRelation;
use crate::strategy::{JoinStrategy, Mutation};

/// A reloaded spill run: all record bytes in one flat shared arena, with
/// `(offset, len)` spans marking record boundaries. Replaces the old
/// `Vec<Vec<u8>>` (one heap allocation per record) on the reload path; the
/// arena is an `Rc` so a [`RowBatch`] can pin build-side payloads in place
/// instead of copying them out.
#[derive(Default)]
struct RunBytes {
    data: Rc<Vec<u8>>,
    spans: Vec<(u32, u32)>,
}

impl RunBytes {
    fn push(&mut self, rec: &[u8]) {
        let data = Rc::get_mut(&mut self.data).expect("run arena shared while loading");
        self.spans.push((data.len() as u32, rec.len() as u32));
        data.extend_from_slice(rec);
    }

    fn iter(&self) -> impl Iterator<Item = &[u8]> {
        self.spans.iter().map(|&(at, len)| &self.data[at as usize..(at + len) as usize])
    }
}

/// Per-loop accumulator for the paper's CPU primitives: the hot loops count
/// locally and flush once per loop (and before any error return), turning
/// thousands of ledger borrows into a handful. Span totals are unchanged —
/// each loop runs entirely inside one open cost section.
#[derive(Default)]
struct BatchedOps {
    hashes: u64,
    comps: u64,
    moves: u64,
}

impl BatchedOps {
    fn flush(&mut self, cost: &Cost) {
        if self.hashes > 0 {
            cost.hash(self.hashes);
        }
        if self.comps > 0 {
            cost.comp(self.comps);
        }
        if self.moves > 0 {
            cost.mov(self.moves);
        }
        *self = BatchedOps::default();
    }
}

/// The in-memory build table of pass 0 and the run joins: join key → rows
/// of the build-side [`RowBatch`], stored as an intrusive chain (`prev` is
/// indexed by row) so inserting allocates nothing per key — the old
/// `FxHashMap<JoinKey, Vec<u32>>` paid one heap allocation per distinct
/// key per query, which dominated the build phase at serving scale.
/// [`BuildTable::matches`] restores insertion (scan) order, so emission
/// order — and with it every downstream answer — is unchanged.
#[derive(Default)]
struct BuildTable {
    /// Key → most recently inserted row with that key.
    heads: FxHashMap<JoinKey, u32>,
    /// Row → previously inserted row with the same key (`NONE` ends the
    /// chain). Indexed by build-batch row id, so rows must be inserted in
    /// batch order.
    prev: Vec<u32>,
    /// Reused per probe to hand chains back in insertion order.
    scratch: Vec<u32>,
}

impl BuildTable {
    const NONE: u32 = u32::MAX;

    fn with_capacity(n: usize) -> Self {
        BuildTable {
            heads: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            prev: Vec::with_capacity(n),
            ..Default::default()
        }
    }

    /// Chain `row` (which must be the next build-batch row id) under `key`.
    fn insert(&mut self, key: JoinKey, row: u32) {
        debug_assert_eq!(row as usize, self.prev.len(), "rows must arrive in batch order");
        let head = self.heads.entry(key).or_insert(Self::NONE);
        self.prev.push(*head);
        *head = row;
    }

    /// The build rows matching `key`, in insertion order (empty slice when
    /// the key is absent). The returned slice borrows internal scratch —
    /// finish with it before the next probe.
    fn matches(&mut self, key: JoinKey) -> &[u32] {
        self.scratch.clear();
        if let Some(&head) = self.heads.get(&key) {
            let mut row = head;
            while row != Self::NONE {
                self.scratch.push(row);
                row = self.prev[row as usize];
            }
            self.scratch.reverse();
        }
        &self.scratch
    }
}

/// The hybrid-hash join strategy. Stateless between queries.
pub struct HybridHash {
    disk: Disk,
    params: SystemParams,
    cost: Cost,
    /// Set when Grace-hash mode is forced (pass 0 spills too) — used by the
    /// `ablation_grace` bench to quantify the hybrid advantage `q`.
    grace_mode: bool,
}

/// Number of spilled partitions, per §3.4:
/// `B = max(0, ⌈(|R|·F − |M|)/(|M| − 1)⌉)`.
///
/// The paper's formula assumes `|M| ≥ 2`; with a single memory page the
/// denominator vanishes, so that case degenerates to one spilled partition
/// per page of hashed input (nothing stays resident).
pub fn spilled_partitions(r_pages: u64, params: &SystemParams) -> u64 {
    let scaled = r_pages as f64 * params.hash_overhead;
    let hashed_pages = scaled.ceil().max(0.0) as u64;
    let m = params.mem_pages as f64;
    if params.mem_pages <= 1 {
        return hashed_pages;
    }
    let b = ((scaled - m) / (m - 1.0)).ceil();
    if !b.is_finite() || b <= 0.0 {
        return 0;
    }
    // A partition needs at least one page of input; B can never usefully
    // exceed the hashed page count.
    (b as u64).min(hashed_pages)
}

/// Fraction of `R` joined during the first pass: `q = |R0|/|R|` with
/// `|R0| = (|M| − B)/F`.
pub fn first_pass_fraction(r_pages: u64, params: &SystemParams) -> f64 {
    if r_pages == 0 {
        return 1.0;
    }
    let b = spilled_partitions(r_pages, params) as f64;
    let r0 = ((params.mem_pages as f64 - b) / params.hash_overhead).max(0.0);
    (r0 / r_pages as f64).min(1.0)
}

impl HybridHash {
    /// A hybrid-hash strategy over the given disk/parameters.
    pub fn new(disk: &Disk, params: &SystemParams, cost: &Cost) -> Self {
        HybridHash {
            disk: disk.clone(),
            params: params.clone(),
            cost: cost.clone(),
            grace_mode: false,
        }
    }

    /// Force Grace-hash behaviour: every partition spills (q = 0).
    pub fn grace(disk: &Disk, params: &SystemParams, cost: &Cost) -> Self {
        HybridHash { grace_mode: true, ..Self::new(disk, params, cost) }
    }

    /// Partition id for a key: partition 0 owns the first `q` of the hash
    /// space; the rest is divided evenly among partitions `1..=B`. Charges
    /// nothing — callers batch one `hash` charge per partitioned tuple.
    fn partition_of(&self, key: JoinKey, q: f64, b: u64) -> u64 {
        let h = hash_key(key);
        let x = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform in [0,1)
        if x < q || b == 0 {
            0
        } else {
            let rest = ((x - q) / (1.0 - q).max(f64::MIN_POSITIVE)).clamp(0.0, 0.999_999);
            1 + (rest * b as f64) as u64
        }
    }

    /// Read a spilled run's records front to back, retrying transient
    /// device faults with bounded backoff ([`crate::recovery::MAX_ATTEMPTS`]);
    /// re-read I/O is charged under the `hh.retry` section. Reading the run
    /// whole before building/probing means a retried scan never double-emits.
    ///
    /// The whole run arrives through one batched [`Disk::read_run`] call and
    /// lands in a flat byte arena (record spans index into it) — no
    /// per-record allocation. Charge-identical to the page-at-a-time scan:
    /// same fault gates, one I/O per page, and a retry restarts from page 0
    /// exactly as the old whole-scan retry did.
    fn read_run(&self, run: &HeapFile) -> Result<RunBytes> {
        let mut attempt = 0u32;
        let page_size = self.disk.page_size();
        crate::recovery::with_retry(|| {
            attempt += 1;
            if attempt > 1 {
                self.disk.metrics().incr("hh.retries");
            }
            let _g = (attempt > 1).then(|| self.cost.section("hh.retry"));
            let mut raw = Vec::new();
            self.disk.read_run(run.file_id(), 0, run.num_pages(), &mut raw)?;
            let mut out = RunBytes::default();
            for page in raw.chunks_exact(page_size) {
                trijoin_storage::page::for_each_record(page, |_, rec| out.push(rec))?;
            }
            Ok(out)
        })
    }

    /// Join two spilled runs entirely in memory (with recursive
    /// repartitioning if the build side exceeds the memory budget).
    fn join_runs(
        &self,
        r_run: HeapFile,
        s_run: HeapFile,
        depth: u32,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64> {
        let r_pages = r_run.num_pages() as u64;
        let fits = (r_pages as f64 * self.params.hash_overhead)
            <= (self.params.mem_pages.saturating_sub(2)) as f64;
        let r_records = self.read_run(&r_run)?;
        let s_records = self.read_run(&s_run)?;
        r_run.destroy();
        s_run.destroy();
        if fits || depth >= 8 {
            // Build a columnar batch plus a row-index table (one hash per
            // build tuple, charged in one batch after the loop — identical
            // span totals, one ledger borrow instead of thousands; a decode
            // error still flushes the charges accrued before it) ...
            let mut batch = RowBatch::new();
            let mut table = BuildTable::with_capacity(r_records.spans.len());
            let mut ops = BatchedOps::default();
            let build = (|| -> Result<()> {
                for bytes in r_records.iter() {
                    let t = TupleRef::decode(bytes)?;
                    ops.hashes += 1;
                    let row = batch.push_pinned(&t, &r_records.data);
                    table.insert(t.key, row);
                }
                Ok(())
            })();
            ops.flush(&self.cost);
            build?;
            // ... probe, batching charges the same way.
            let mut emitted = 0u64;
            let probe = (|| -> Result<()> {
                for bytes in s_records.iter() {
                    let st = TupleRef::decode(bytes)?;
                    ops.hashes += 1;
                    let matches = table.matches(st.key);
                    if matches.is_empty() {
                        ops.comps += 1;
                    } else {
                        ops.comps += matches.len() as u64;
                        ops.moves += matches.len() as u64;
                        for &row in matches {
                            sink(batch.join_row(row, &st));
                            emitted += 1;
                        }
                    }
                }
                Ok(())
            })();
            ops.flush(&self.cost);
            probe?;
            return Ok(emitted);
        }
        // Recursive repartition of an oversized bucket.
        let sub = spilled_partitions(r_pages, &self.params).max(2);
        let mut r_writers: Vec<trijoin_storage::heap::HeapWriter> =
            (0..sub).map(|_| trijoin_storage::heap::HeapWriter::create(&self.disk)).collect();
        let mut s_writers: Vec<trijoin_storage::heap::HeapWriter> =
            (0..sub).map(|_| trijoin_storage::heap::HeapWriter::create(&self.disk)).collect();
        // Salt the hash by depth so the re-split actually separates keys.
        let split =
            |key: JoinKey| -> usize { (hash_key(key.rotate_left(depth * 13 + 7)) % sub) as usize };
        let mut ops = BatchedOps::default();
        let repart = (|| -> Result<()> {
            for bytes in r_records.iter() {
                let t = TupleRef::decode(bytes)?;
                ops.hashes += 1;
                ops.moves += 1;
                r_writers[split(t.key)].add(bytes)?;
            }
            for bytes in s_records.iter() {
                let t = TupleRef::decode(bytes)?;
                ops.hashes += 1;
                ops.moves += 1;
                s_writers[split(t.key)].add(bytes)?;
            }
            Ok(())
        })();
        ops.flush(&self.cost);
        repart?;
        let mut emitted = 0u64;
        for (rw, sw) in r_writers.into_iter().zip(s_writers) {
            emitted += self.join_runs(rw.finish()?, sw.finish()?, depth + 1, sink)?;
        }
        Ok(emitted)
    }
}

impl JoinStrategy for HybridHash {
    fn name(&self) -> &'static str {
        if self.grace_mode {
            "grace-hash"
        } else {
            "hybrid-hash"
        }
    }

    fn on_mutation(&mut self, _m: &Mutation) -> Result<()> {
        // "This algorithm has the advantages of not requiring any permanent
        // auxiliary relations and being unaffected by updates."
        Ok(())
    }

    fn execute(
        &mut self,
        r: &StoredRelation,
        s: &StoredRelation,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64> {
        // Buffer emissions: a device fault mid-join must not leak a partial
        // answer into the sink. The strategy is stateless, so past the
        // bounded per-run retries ([`Self::read_run`]) recovery is a bounded
        // number of full restarts charged under `hh.recover` — each planned
        // fault fires exactly once, so a multi-fault plan drains across
        // restarts unless it poisoned a base-relation page (unrecoverable by
        // design; the typed error then surfaces).
        let mut buffered: Vec<ViewTuple> = Vec::new();
        let mut restarts = 0u32;
        let emitted = loop {
            let section = if restarts == 0 { "hh.execute" } else { "hh.recover" };
            match self.join_once(r, s, section, &mut |vt| buffered.push(vt)) {
                Ok(n) => break n,
                Err(e) if e.is_device_fault() && restarts < crate::recovery::MAX_ATTEMPTS => {
                    buffered.clear();
                    restarts += 1;
                    self.disk.metrics().incr("hh.restarts");
                    self.disk.events().emit(
                        EventKind::RecoveryTriggered,
                        format!("{}: restart {restarts} after {e}", self.name()),
                        self.cost.total(),
                    );
                }
                Err(e) => return Err(e),
            }
        };
        self.disk.metrics().counter_add("hh.tuples_emitted", buffered.len() as u64);
        for vt in buffered {
            sink(vt);
        }
        Ok(emitted)
    }
}

impl HybridHash {
    /// One full §3.4 join (pass 0 plus spilled passes), fallible on any
    /// injected device fault; [`JoinStrategy::execute`] wraps it with the
    /// restart fallback (which re-runs under the `hh.recover` section).
    fn join_once(
        &mut self,
        r: &StoredRelation,
        s: &StoredRelation,
        section: &str,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64> {
        let _g = self.cost.section(section);
        let b = spilled_partitions(r.data_pages(), &self.params).max(u64::from(self.grace_mode));
        self.disk.metrics().gauge_set("hh.spilled_partitions", b as f64);
        let q =
            if self.grace_mode { 0.0 } else { first_pass_fraction(r.data_pages(), &self.params) };

        // Pass 0 over R: build partition 0 into a columnar batch (the hash
        // table maps join key -> row indices), spill 1..=B. A spilled
        // record is the scanned record verbatim — the clustered leaves
        // store `BaseTuple::to_bytes`, so no re-serialization is needed.
        let mut batch = RowBatch::new();
        let mut table = BuildTable::with_capacity((q * r.len() as f64) as usize + 16);
        let mut r_writers: Vec<trijoin_storage::heap::HeapWriter> =
            (0..b).map(|_| trijoin_storage::heap::HeapWriter::create(&self.disk)).collect();
        let mut scan_err = None;
        let mut ops = BatchedOps::default();
        let scanned = r.scan_pinned(|t, page| {
            if scan_err.is_some() {
                return;
            }
            ops.hashes += 1;
            let p = self.partition_of(t.key, q, b);
            if p == 0 {
                let row = match page {
                    Some(page) => batch.push_pinned(&t, page),
                    None => batch.push_ref(&t),
                };
                table.insert(t.key, row);
            } else {
                ops.moves += 1;
                if let Err(e) = r_writers[(p - 1) as usize].add(t.raw) {
                    scan_err = Some(e);
                }
            }
        });
        ops.flush(&self.cost);
        scanned?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        let r_runs: Vec<HeapFile> =
            r_writers.into_iter().map(|w| w.finish()).collect::<Result<_>>()?;

        // Pass 0 over S: probe partition 0 immediately, spill the rest.
        let mut emitted = 0u64;
        let mut s_writers: Vec<trijoin_storage::heap::HeapWriter> =
            (0..b).map(|_| trijoin_storage::heap::HeapWriter::create(&self.disk)).collect();
        let mut scan_err = None;
        let mut ops = BatchedOps::default();
        let scanned = s.scan_refs(|st| {
            if scan_err.is_some() {
                return;
            }
            ops.hashes += 1;
            let p = self.partition_of(st.key, q, b);
            if p == 0 {
                let matches = table.matches(st.key);
                if matches.is_empty() {
                    ops.comps += 1;
                } else {
                    ops.comps += matches.len() as u64;
                    ops.moves += matches.len() as u64;
                    for &row in matches {
                        sink(batch.join_row(row, &st));
                        emitted += 1;
                    }
                }
            } else {
                ops.moves += 1;
                if let Err(e) = s_writers[(p - 1) as usize].add(st.raw) {
                    scan_err = Some(e);
                }
            }
        });
        ops.flush(&self.cost);
        scanned?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        let s_runs: Vec<HeapFile> =
            s_writers.into_iter().map(|w| w.finish()).collect::<Result<_>>()?;
        drop(table);
        drop(batch);

        // Passes 1..=B.
        for (r_run, s_run) in r_runs.into_iter().zip(s_runs) {
            emitted += self.join_runs(r_run, s_run, 1, sink)?;
        }
        Ok(emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_count_formula_matches_paper() {
        let p = SystemParams::paper_defaults();
        // |R| = 14286 pages, F = 1.2, |M| = 1000:
        // B = ceil((17143.2 - 1000)/999) = ceil(16.16) = 17.
        assert_eq!(spilled_partitions(14_286, &p), 17);
        // Everything fits: B = 0, q = 1.
        assert_eq!(spilled_partitions(100, &p), 0);
        assert!((first_pass_fraction(100, &p) - 1.0).abs() < 1e-9);
        // Paper-scale q: |R0| = (1000-17)/1.2 = 819 pages -> q ≈ 0.0573.
        let q = first_pass_fraction(14_286, &p);
        assert!((q - 0.0573).abs() < 0.001, "q = {q}");
    }

    fn params_with_mem(mem_pages: usize) -> SystemParams {
        SystemParams { mem_pages, ..SystemParams::paper_defaults() }
    }

    #[test]
    fn partition_count_degenerate_memory() {
        // |M| = 1: the paper's denominator (|M| - 1) vanishes. Everything
        // spills — one partition per hashed page — and q collapses to 0.
        let p1 = params_with_mem(1);
        assert_eq!(spilled_partitions(0, &p1), 0);
        assert_eq!(spilled_partitions(10, &p1), (10.0f64 * p1.hash_overhead).ceil() as u64);
        let q = first_pass_fraction(10, &p1);
        assert!(q.is_finite() && q == 0.0, "q = {q}");

        // |M| = 2: denominator 1, B = ceil(|R|·F − 2), capped at the hashed
        // page count; q stays a finite value in [0, 1].
        let p2 = params_with_mem(2);
        let b2 = spilled_partitions(10, &p2);
        let hashed = (10.0f64 * p2.hash_overhead).ceil() as u64;
        assert!(b2 >= 1 && b2 <= hashed, "b2 = {b2}");
        let q2 = first_pass_fraction(10, &p2);
        assert!(q2.is_finite() && (0.0..=1.0).contains(&q2), "q2 = {q2}");

        // |M| = 3: same invariants one step up.
        let p3 = params_with_mem(3);
        let b3 = spilled_partitions(10, &p3);
        assert!(b3 <= b2, "B must not grow with more memory: {b3} > {b2}");
        let q3 = first_pass_fraction(10, &p3);
        assert!(q3.is_finite() && (0.0..=1.0).contains(&q3), "q3 = {q3}");
        assert!(q3 >= q2, "q must not shrink with more memory: {q3} < {q2}");
    }

    #[test]
    fn partition_count_empty_relation() {
        // |R| = 0 never spills and the first pass covers "everything".
        for mem in [1, 2, 3, 1000] {
            let p = params_with_mem(mem);
            assert_eq!(spilled_partitions(0, &p), 0, "mem = {mem}");
            let q = first_pass_fraction(0, &p);
            assert!((q - 1.0).abs() < 1e-12, "mem = {mem}, q = {q}");
        }
    }

    #[test]
    fn partition_count_never_truncates_to_garbage() {
        // Huge |R| with tiny |M| must neither panic nor wrap to u64::MAX
        // (the old `b.max(0.0) as u64` sent +inf there).
        for mem in [1usize, 2, 3] {
            let p = params_with_mem(mem);
            let b = spilled_partitions(u32::MAX as u64, &p);
            let hashed = (u32::MAX as u64 as f64 * p.hash_overhead).ceil() as u64;
            assert!(b <= hashed, "mem = {mem}, b = {b}");
            let q = first_pass_fraction(u32::MAX as u64, &p);
            assert!(q.is_finite() && (0.0..=1.0).contains(&q), "mem = {mem}, q = {q}");
        }
    }
}
