//! Hybrid-hash join (§3.4) — full re-evaluation, no cached state.
//!
//! DeWitt et al.'s algorithm: compute `B = ⌈(|R|·F − |M|)/(|M| − 1)⌉`
//! partitions beyond partition 0; while reading `R`, tuples of partition 0
//! are built into an in-memory hash table (using the memory the other
//! partitions don't need for output buffering) and the remaining `B`
//! partitions spill; `S` then streams through, probing partition 0
//! immediately and spilling the rest; finally each spilled pair
//! `(R_i, S_i)` is joined in memory. A fraction `q = |R0|/|R|` of the data
//! never touches disk twice — the "hybrid" advantage over Grace hash.
//!
//! Skewed partitions that still exceed memory are recursively
//! repartitioned (a standard hardening the paper's uniform-hash analysis
//! does not need).

use std::collections::HashMap;

use trijoin_common::{
    types::hash_key, BaseTuple, Cost, JoinKey, Result, SystemParams, ViewTuple,
};
use trijoin_storage::{Disk, HeapFile};

use crate::relation::StoredRelation;
use crate::strategy::{JoinStrategy, Mutation};

/// The hybrid-hash join strategy. Stateless between queries.
pub struct HybridHash {
    disk: Disk,
    params: SystemParams,
    cost: Cost,
    /// Set when Grace-hash mode is forced (pass 0 spills too) — used by the
    /// `ablation_grace` bench to quantify the hybrid advantage `q`.
    grace_mode: bool,
}

/// Number of spilled partitions, per §3.4:
/// `B = max(0, ⌈(|R|·F − |M|)/(|M| − 1)⌉)`.
pub fn spilled_partitions(r_pages: u64, params: &SystemParams) -> u64 {
    let m = params.mem_pages as f64;
    let b = ((r_pages as f64 * params.hash_overhead - m) / (m - 1.0)).ceil();
    b.max(0.0) as u64
}

/// Fraction of `R` joined during the first pass: `q = |R0|/|R|` with
/// `|R0| = (|M| − B)/F`.
pub fn first_pass_fraction(r_pages: u64, params: &SystemParams) -> f64 {
    if r_pages == 0 {
        return 1.0;
    }
    let b = spilled_partitions(r_pages, params) as f64;
    let r0 = ((params.mem_pages as f64 - b) / params.hash_overhead).max(0.0);
    (r0 / r_pages as f64).min(1.0)
}

impl HybridHash {
    /// A hybrid-hash strategy over the given disk/parameters.
    pub fn new(disk: &Disk, params: &SystemParams, cost: &Cost) -> Self {
        HybridHash {
            disk: disk.clone(),
            params: params.clone(),
            cost: cost.clone(),
            grace_mode: false,
        }
    }

    /// Force Grace-hash behaviour: every partition spills (q = 0).
    pub fn grace(disk: &Disk, params: &SystemParams, cost: &Cost) -> Self {
        HybridHash { grace_mode: true, ..Self::new(disk, params, cost) }
    }

    /// Partition id for a key: partition 0 owns the first `q` of the hash
    /// space; the rest is divided evenly among partitions `1..=B`.
    fn partition_of(&self, key: JoinKey, q: f64, b: u64) -> u64 {
        self.cost.hash(1);
        let h = hash_key(key);
        let x = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform in [0,1)
        if x < q || b == 0 {
            0
        } else {
            let rest = ((x - q) / (1.0 - q).max(f64::MIN_POSITIVE)).clamp(0.0, 0.999_999);
            1 + (rest * b as f64) as u64
        }
    }

    /// Join two spilled runs entirely in memory (with recursive
    /// repartitioning if the build side exceeds the memory budget).
    fn join_runs(
        &self,
        r_run: HeapFile,
        s_run: HeapFile,
        depth: u32,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64> {
        let r_pages = r_run.num_pages() as u64;
        let fits = (r_pages as f64 * self.params.hash_overhead)
            <= (self.params.mem_pages.saturating_sub(2)) as f64;
        if fits || depth >= 8 {
            // Build (charge one hash per build tuple) ...
            let mut table: HashMap<JoinKey, Vec<BaseTuple>> = HashMap::new();
            for rec in r_run.scan() {
                let (_, bytes) = rec?;
                let t = BaseTuple::from_bytes(&bytes)?;
                self.cost.hash(1);
                table.entry(t.key).or_default().push(t);
            }
            // ... probe.
            let mut emitted = 0u64;
            for rec in s_run.scan() {
                let (_, bytes) = rec?;
                let st = BaseTuple::from_bytes(&bytes)?;
                self.cost.hash(1);
                if let Some(matches) = table.get(&st.key) {
                    self.cost.comp(matches.len() as u64);
                    for rt in matches {
                        self.cost.mov(1);
                        sink(ViewTuple::join(rt, &st));
                        emitted += 1;
                    }
                } else {
                    self.cost.comp(1);
                }
            }
            r_run.destroy();
            s_run.destroy();
            return Ok(emitted);
        }
        // Recursive repartition of an oversized bucket.
        let sub = spilled_partitions(r_pages, &self.params).max(2);
        let mut r_writers: Vec<trijoin_storage::heap::HeapWriter> =
            (0..sub).map(|_| trijoin_storage::heap::HeapWriter::create(&self.disk)).collect();
        let mut s_writers: Vec<trijoin_storage::heap::HeapWriter> =
            (0..sub).map(|_| trijoin_storage::heap::HeapWriter::create(&self.disk)).collect();
        // Salt the hash by depth so the re-split actually separates keys.
        let split = |key: JoinKey| -> usize {
            (hash_key(key.rotate_left(depth * 13 + 7)) % sub) as usize
        };
        for rec in r_run.scan() {
            let (_, bytes) = rec?;
            let t = BaseTuple::from_bytes(&bytes)?;
            self.cost.hash(1);
            self.cost.mov(1);
            r_writers[split(t.key)].add(&bytes)?;
        }
        for rec in s_run.scan() {
            let (_, bytes) = rec?;
            let t = BaseTuple::from_bytes(&bytes)?;
            self.cost.hash(1);
            self.cost.mov(1);
            s_writers[split(t.key)].add(&bytes)?;
        }
        r_run.destroy();
        s_run.destroy();
        let mut emitted = 0u64;
        for (rw, sw) in r_writers.into_iter().zip(s_writers) {
            emitted += self.join_runs(rw.finish()?, sw.finish()?, depth + 1, sink)?;
        }
        Ok(emitted)
    }
}

impl JoinStrategy for HybridHash {
    fn name(&self) -> &'static str {
        if self.grace_mode {
            "grace-hash"
        } else {
            "hybrid-hash"
        }
    }

    fn on_mutation(&mut self, _m: &Mutation) -> Result<()> {
        // "This algorithm has the advantages of not requiring any permanent
        // auxiliary relations and being unaffected by updates."
        Ok(())
    }

    fn execute(
        &mut self,
        r: &StoredRelation,
        s: &StoredRelation,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64> {
        let _g = self.cost.section("hh.execute");
        let b = spilled_partitions(r.data_pages(), &self.params).max(u64::from(self.grace_mode));
        let q = if self.grace_mode { 0.0 } else { first_pass_fraction(r.data_pages(), &self.params) };

        // Pass 0 over R: build partition 0 in memory, spill 1..=B.
        let mut table: HashMap<JoinKey, Vec<BaseTuple>> = HashMap::new();
        let mut r_writers: Vec<trijoin_storage::heap::HeapWriter> =
            (0..b).map(|_| trijoin_storage::heap::HeapWriter::create(&self.disk)).collect();
        let mut scan_err = None;
        r.scan(|t| {
            if scan_err.is_some() {
                return;
            }
            let p = self.partition_of(t.key, q, b);
            if p == 0 {
                table.entry(t.key).or_default().push(t);
            } else {
                self.cost.mov(1);
                if let Err(e) = r_writers[(p - 1) as usize].add(&t.to_bytes()) {
                    scan_err = Some(e);
                }
            }
        })?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        let r_runs: Vec<HeapFile> =
            r_writers.into_iter().map(|w| w.finish()).collect::<Result<_>>()?;

        // Pass 0 over S: probe partition 0 immediately, spill the rest.
        let mut emitted = 0u64;
        let mut s_writers: Vec<trijoin_storage::heap::HeapWriter> =
            (0..b).map(|_| trijoin_storage::heap::HeapWriter::create(&self.disk)).collect();
        let mut scan_err = None;
        s.scan(|st| {
            if scan_err.is_some() {
                return;
            }
            let p = self.partition_of(st.key, q, b);
            if p == 0 {
                if let Some(matches) = table.get(&st.key) {
                    self.cost.comp(matches.len() as u64);
                    for rt in matches {
                        self.cost.mov(1);
                        sink(ViewTuple::join(rt, &st));
                        emitted += 1;
                    }
                } else {
                    self.cost.comp(1);
                }
            } else {
                self.cost.mov(1);
                if let Err(e) = s_writers[(p - 1) as usize].add(&st.to_bytes()) {
                    scan_err = Some(e);
                }
            }
        })?;
        if let Some(e) = scan_err {
            return Err(e);
        }
        let s_runs: Vec<HeapFile> =
            s_writers.into_iter().map(|w| w.finish()).collect::<Result<_>>()?;
        drop(table);

        // Passes 1..=B.
        for (r_run, s_run) in r_runs.into_iter().zip(s_runs) {
            emitted += self.join_runs(r_run, s_run, 1, sink)?;
        }
        Ok(emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_count_formula_matches_paper() {
        let p = SystemParams::paper_defaults();
        // |R| = 14286 pages, F = 1.2, |M| = 1000:
        // B = ceil((17143.2 - 1000)/999) = ceil(16.16) = 17.
        assert_eq!(spilled_partitions(14_286, &p), 17);
        // Everything fits: B = 0, q = 1.
        assert_eq!(spilled_partitions(100, &p), 0);
        assert!((first_pass_fraction(100, &p) - 1.0).abs() < 1e-9);
        // Paper-scale q: |R0| = (1000-17)/1.2 = 819 pages -> q ≈ 0.0573.
        let q = first_pass_fraction(14_286, &p);
        assert!((q - 0.0573).abs() < 0.001, "q = {q}");
    }
}
