//! Operation-counted in-memory sorting and k-way run merging.
//!
//! The paper prices internal sorting with Knuth's average-case quicksort
//! analysis (`CPU_s`) and merging with a heap analysis (`CPU_mrg`). The
//! engine does the real thing — a median-of-three quicksort with an
//! insertion-sort tail, and a streaming k-way merge — and charges the
//! *actual* comparisons and tuple moves it performs into the [`Cost`]
//! ledger. At realistic sizes the actual counts track the Knuth formulas
//! closely (verified by tests in the model crate).

use trijoin_common::Cost;

/// Sort `items` by a precomputed key, charging every comparison (`comp`)
/// and every element move (`move`, two per swap) to `cost`.
///
/// Keys should be precomputed by the caller (who charges `hash` for hashed
/// keys); this routine charges only comparisons and moves.
pub fn counted_sort_by<T, K: Ord + Copy>(items: &mut [T], key_of: impl Fn(&T) -> K, cost: &Cost) {
    let mut keys: Vec<K> = items.iter().map(&key_of).collect();
    let mut comps = 0u64;
    let mut moves = 0u64;
    let len = items.len();
    quicksort(items, &mut keys, 0, len, &mut comps, &mut moves, 0);
    cost.comp(comps);
    cost.mov(moves);
    debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
}

const INSERTION_CUTOFF: usize = 12;

#[allow(clippy::too_many_arguments)]
fn quicksort<T, K: Ord + Copy>(
    items: &mut [T],
    keys: &mut [K],
    lo: usize,
    hi: usize,
    comps: &mut u64,
    moves: &mut u64,
    depth: u32,
) {
    let n = hi - lo;
    if n <= 1 {
        return;
    }
    if n <= INSERTION_CUTOFF || depth > 96 {
        // Insertion sort (also the depth-limit fallback; with median-of-3
        // pivots the limit is effectively unreachable).
        for i in lo + 1..hi {
            let mut j = i;
            while j > lo {
                *comps += 1;
                if keys[j - 1] <= keys[j] {
                    break;
                }
                keys.swap(j - 1, j);
                items.swap(j - 1, j);
                *moves += 2;
                j -= 1;
            }
        }
        return;
    }
    // Median-of-three pivot selection.
    let mid = lo + n / 2;
    *comps += 3;
    let (a, b, c) = (keys[lo], keys[mid], keys[hi - 1]);
    let pivot_idx = if (a <= b) == (b <= c) {
        mid
    } else if (a <= b) == (a <= c) {
        hi - 1
    } else {
        lo
    };
    keys.swap(pivot_idx, hi - 1);
    items.swap(pivot_idx, hi - 1);
    *moves += 2;
    let pivot = keys[hi - 1];
    // Lomuto partition.
    let mut store = lo;
    for i in lo..hi - 1 {
        *comps += 1;
        if keys[i] < pivot {
            if i != store {
                keys.swap(i, store);
                items.swap(i, store);
                *moves += 2;
            }
            store += 1;
        }
    }
    keys.swap(store, hi - 1);
    items.swap(store, hi - 1);
    *moves += 2;
    quicksort(items, keys, lo, store, comps, moves, depth + 1);
    quicksort(items, keys, store + 1, hi, comps, moves, depth + 1);
}

/// Streaming k-way merge of pre-sorted sources by `key`, charging the
/// actual comparisons (linear minimum scan over the k heads — the paper's
/// heap would be `lg k`; with the small `N1`-sized fan-ins of the
/// differential pipelines the difference is nanoseconds against a 25 ms
/// I/O) and one `move` per emitted item.
pub struct KWayMerge<T, K, I>
where
    I: Iterator<Item = T>,
    K: Ord + Copy,
{
    sources: Vec<std::iter::Peekable<I>>,
    key_of: Box<dyn Fn(&T) -> K>,
    cost: Cost,
}

impl<T, K, I> KWayMerge<T, K, I>
where
    I: Iterator<Item = T>,
    K: Ord + Copy,
{
    /// Merge `sources` (each already sorted by `key_of`).
    pub fn new(sources: Vec<I>, key_of: impl Fn(&T) -> K + 'static, cost: Cost) -> Self {
        KWayMerge {
            sources: sources.into_iter().map(|s| s.peekable()).collect(),
            key_of: Box::new(key_of),
            cost,
        }
    }
}

impl<T, K, I> Iterator for KWayMerge<T, K, I>
where
    I: Iterator<Item = T>,
    K: Ord + Copy,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let mut best: Option<(usize, K)> = None;
        let mut comps = 0u64;
        for (i, src) in self.sources.iter_mut().enumerate() {
            if let Some(item) = src.peek() {
                let k = (self.key_of)(item);
                match best {
                    None => best = Some((i, k)),
                    Some((_, bk)) => {
                        comps += 1;
                        if k < bk {
                            best = Some((i, k));
                        }
                    }
                }
            }
        }
        self.cost.comp(comps);
        let (i, _) = best?;
        self.cost.mov(1);
        self.sources[i].next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_correctly_and_charges() {
        let cost = Cost::new();
        let mut v: Vec<u32> = (0..500).map(|i| (i * 7919) % 500).collect();
        counted_sort_by(&mut v, |x| *x, &cost);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        let t = cost.total();
        assert!(t.comps > 0 && t.moves > 0);
        // Sanity: n lg n ballpark (500·9 ≈ 4500); actual should be within
        // a small factor.
        assert!(t.comps > 2_000 && t.comps < 40_000, "comps = {}", t.comps);
    }

    #[test]
    fn sort_handles_degenerate_inputs() {
        let cost = Cost::new();
        let mut empty: Vec<u8> = vec![];
        counted_sort_by(&mut empty, |x| *x, &cost);
        let mut single = vec![9u8];
        counted_sort_by(&mut single, |x| *x, &cost);
        assert_eq!(single, vec![9]);
        let mut same = vec![5u8; 100];
        counted_sort_by(&mut same, |x| *x, &cost);
        assert_eq!(same, vec![5u8; 100]);
        let mut sorted: Vec<u32> = (0..200).collect();
        counted_sort_by(&mut sorted, |x| *x, &cost);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let mut reversed: Vec<u32> = (0..200).rev().collect();
        counted_sort_by(&mut reversed, |x| *x, &cost);
        assert!(reversed.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sort_is_by_key_not_value() {
        let cost = Cost::new();
        let mut v = vec![(3, "c"), (1, "a"), (2, "b")];
        counted_sort_by(&mut v, |(k, _)| std::cmp::Reverse(*k), &cost);
        assert_eq!(v, vec![(3, "c"), (2, "b"), (1, "a")]);
    }

    #[test]
    fn kway_merge_merges() {
        let cost = Cost::new();
        let a = vec![1u64, 4, 7];
        let b = vec![2u64, 5, 8];
        let c = vec![0u64, 3, 6, 9];
        let merged: Vec<u64> =
            KWayMerge::new(vec![a.into_iter(), b.into_iter(), c.into_iter()], |x| *x, cost.clone())
                .collect();
        assert_eq!(merged, (0..10).collect::<Vec<u64>>());
        assert_eq!(cost.total().moves, 10, "one move per emitted item");
        assert!(cost.total().comps >= 10);
    }

    #[test]
    fn kway_merge_empty_source_list_yields_nothing() {
        let cost = Cost::new();
        let sources: Vec<std::vec::IntoIter<u64>> = vec![];
        let merged: Vec<u64> = KWayMerge::new(sources, |x| *x, cost.clone()).collect();
        assert!(merged.is_empty());
        let t = cost.total();
        assert_eq!((t.comps, t.moves), (0, 0), "no sources, no charges");
    }

    #[test]
    fn kway_merge_duplicates_across_runs_preserve_multiplicity() {
        let cost = Cost::new();
        // Every run contains the same keys; all copies must survive the
        // merge in sorted order (differential pipelines rely on this —
        // duplicates across runs are distinct tuples, not dedup targets).
        let runs: Vec<Vec<u64>> = vec![vec![1, 2, 3], vec![1, 2, 3], vec![1, 2, 3]];
        let merged: Vec<u64> =
            KWayMerge::new(runs.into_iter().map(|r| r.into_iter()).collect(), |x| *x, cost.clone())
                .collect();
        assert_eq!(merged, vec![1, 1, 1, 2, 2, 2, 3, 3, 3]);
        assert_eq!(cost.total().moves, 9, "one move per emitted copy");
    }

    #[test]
    fn kway_merge_duplicates_and_empty_sources() {
        let cost = Cost::new();
        let a = vec![1u64, 1, 2];
        let b: Vec<u64> = vec![];
        let c = vec![1u64, 2];
        let merged: Vec<u64> =
            KWayMerge::new(vec![a.into_iter(), b.into_iter(), c.into_iter()], |x| *x, cost)
                .collect();
        assert_eq!(merged, vec![1, 1, 1, 2, 2]);
    }

    #[test]
    fn kway_merge_single_source_is_identity() {
        let cost = Cost::new();
        let a = vec![3u64, 5, 9];
        let merged: Vec<u64> =
            KWayMerge::new(vec![a.clone().into_iter()], |x| *x, cost.clone()).collect();
        assert_eq!(merged, a);
        assert_eq!(cost.total().comps, 0, "single source needs no comparisons");
    }
}
