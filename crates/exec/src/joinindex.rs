//! Join index with deferred, incremental, on-the-fly maintenance (§3.3).
//!
//! The join index `JI` caches only the surrogate pairs `(r, s)` of joining
//! tuples (Valduriez \[25\]; the paper's Table 4). Because it is a "partially
//! materialized view", only updates that modify the join attribute — a
//! `Pr_A` fraction — are logged, sorted by surrogate `r` (§3.3 step 1).
//!
//! At query time the index is processed in one or more passes of `|JI_k|`
//! pages (Figure 3). Per pass: the pass's pages are read (C2.1); merged net
//! deletions *mark* dead entries (C2.2); the pass's net insertions are
//! sorted on `A`, joined against `S` through the inverted index, and turned
//! into new `(r, s)` pairs (C3.1/C2.3); the pass's `R` fragment is
//! semijoin-fetched through the clustered index (C3.2); surviving entries
//! are sorted on `s` and `S` is fetched through its clustered index to
//! assemble the join output (C3.3/C3.4); finally changed index pages are
//! written back in place (C2.4), splitting a page only if its slack
//! (nominal occupancy 0.7 leaves ~30% headroom — the paper assumes no
//! insert group overflows a page) is exhausted.
//!
//! Engine refinement over the paper: output tuples for *inserted* pairs
//! fetch the `R` side fresh (the pass is already fetching that `r`-range),
//! so the answer is exact even when a tuple receives a join-attribute
//! update followed by payload-only updates the `Pr_A` filter never sees.
//!
//! Table 5 also lists a non-clustered B⁺-tree on `JI.s`; the §3.3 algorithm
//! never traverses it (it sorts each memory-resident `JI_k` on `s`
//! instead), so this implementation follows the algorithm and omits it.

use std::cell::RefCell;
use std::collections::HashMap;

use trijoin_common::{
    BaseTuple, Cost, Error, EventKind, FxHashMap, FxHashSet, JiEntry, Result, Surrogate,
    SystemParams, ViewTuple,
};
use trijoin_storage::{Disk, FileId, PageId};

use crate::diff::{ji_sort_key, net_differentials, DiffLog, Net};
use crate::mv::view_tuple_bytes;
use crate::relation::StoredRelation;
use crate::sort::counted_sort_by;
use crate::strategy::{JoinStrategy, Mutation};

// ---------------------------------------------------------------------
// JiFile: the clustered-on-r paged storage of the join index.
// ---------------------------------------------------------------------

/// Page layout: `count:u16` then `count` 8-byte entries, zero padding.
/// Encodes into `out` (cleared first) so hot write paths reuse one buffer.
/// Count distinct `r` surrogates in a slice already sorted by `r`
/// (boundary count — no hash-set allocation on the write-back path).
fn distinct_r_count(entries: &[JiEntry]) -> u64 {
    if entries.is_empty() {
        return 0;
    }
    1 + entries.windows(2).filter(|w| w[0].r != w[1].r).count() as u64
}

fn encode_ji_page_into(entries: &[JiEntry], page_size: usize, out: &mut Vec<u8>) {
    debug_assert!(2 + entries.len() * JiEntry::BYTES <= page_size);
    out.clear();
    out.reserve(page_size);
    out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&e.to_bytes());
    }
    out.resize(page_size, 0);
}

fn decode_ji_page(bytes: &[u8]) -> Result<Vec<JiEntry>> {
    if bytes.len() < 2 {
        return Err(Error::Corrupt("join-index page truncated".into()));
    }
    let count = u16::from_le_bytes(bytes[0..2].try_into().unwrap()) as usize;
    if 2 + count * JiEntry::BYTES > bytes.len() {
        return Err(Error::Corrupt("join-index page count overflows page".into()));
    }
    (0..count).map(|i| JiEntry::from_bytes(&bytes[2 + i * JiEntry::BYTES..])).collect()
}

#[derive(Debug, Clone, Copy)]
struct JiPageMeta {
    page_no: u32,
    /// `r` of the first entry when last written (stale-but-safe lower bound
    /// for empty pages).
    min_r: u32,
}

/// The join index stored clustered on `r`: a sequence of pages in `r`
/// order, nominally packed at `n_JI = ⌊P·PO/(2·ssur)⌋` entries per page.
pub struct JiFile {
    disk: Disk,
    file: FileId,
    pages: Vec<JiPageMeta>,
    count: u64,
    nominal_cap: usize,
    max_cap: usize,
    /// Reusable page-encoding buffer for the write-back hot path.
    scratch: RefCell<Vec<u8>>,
}

/// Pack sorted entries into pages of at most `nominal` entries, never
/// splitting an `r` group across pages unless the group alone exceeds
/// `max` (pages grow past `nominal` up to `max` to keep a group whole).
/// Group-aligned pages keep the query passes' r-ranges disjoint, so the
/// pass-extension safety net (below) almost never fires.
fn pack_group_aligned(entries: &[JiEntry], nominal: usize, max: usize) -> Vec<Vec<JiEntry>> {
    let mut pages: Vec<Vec<JiEntry>> = Vec::new();
    let mut cur: Vec<JiEntry> = Vec::new();
    for &e in entries {
        let full_at_boundary =
            cur.len() >= nominal && cur.last().map(|l| l.r != e.r).unwrap_or(false);
        let forced = cur.len() >= max;
        if full_at_boundary || forced {
            pages.push(std::mem::take(&mut cur));
        }
        cur.push(e);
    }
    if !cur.is_empty() || pages.is_empty() {
        pages.push(cur);
    }
    pages
}

impl JiFile {
    /// Bulk-build from entries sorted by `(r, s)` (one write I/O per page).
    pub fn build(disk: &Disk, params: &SystemParams, entries: &[JiEntry]) -> Result<Self> {
        debug_assert!(entries.windows(2).all(|w| w[0] <= w[1]), "JI build input unsorted");
        let nominal_cap = params.tuples_per_page(JiEntry::BYTES).max(1);
        let max_cap = (disk.page_size() - 2) / JiEntry::BYTES;
        let mut ji = JiFile {
            disk: disk.clone(),
            file: disk.create_file(),
            pages: Vec::new(),
            count: entries.len() as u64,
            nominal_cap,
            max_cap,
            scratch: RefCell::new(Vec::new()),
        };
        let mut buf = Vec::new();
        for chunk in pack_group_aligned(entries, nominal_cap, max_cap) {
            encode_ji_page_into(&chunk, disk.page_size(), &mut buf);
            let pid = disk.append_page(ji.file, &buf)?;
            ji.pages.push(JiPageMeta {
                page_no: pid.page,
                min_r: chunk.first().map(|e| e.r.0).unwrap_or(0),
            });
        }
        Ok(ji)
    }

    /// Entry count (`‖JI‖`).
    pub fn len(&self) -> u64 {
        self.count
    }

    /// The backing file (fault-injection targeting and space accounting).
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Release the backing file (used when a damaged index is rebuilt into
    /// a fresh file and the old one is abandoned).
    pub fn destroy(self) {
        self.disk.delete_file(self.file);
    }

    /// True when the index holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Page count (`|JI|`).
    pub fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Read page `idx` (one I/O), decoding straight off the borrowed page
    /// view — no intermediate page-byte copy.
    pub fn read_page(&self, idx: usize) -> Result<Vec<JiEntry>> {
        let meta = self.pages.get(idx).ok_or(Error::Invariant("JI page out of range".into()))?;
        self.disk.read_page_with(PageId::new(self.file, meta.page_no), decode_ji_page)
    }

    fn write_page(&mut self, idx: usize, entries: &[JiEntry]) -> Result<()> {
        if entries.len() > self.max_cap {
            return Err(Error::PageOverflow {
                needed: entries.len() * JiEntry::BYTES,
                available: self.max_cap * JiEntry::BYTES,
            });
        }
        let meta = &mut self.pages[idx];
        if let Some(first) = entries.first() {
            meta.min_r = first.r.0;
        }
        let mut buf = self.scratch.borrow_mut();
        encode_ji_page_into(entries, self.disk.page_size(), &mut buf);
        self.disk.write_page(PageId::new(self.file, meta.page_no), &buf)
    }

    fn insert_page_after(&mut self, idx: usize, entries: &[JiEntry]) -> Result<()> {
        let pid = {
            let mut buf = self.scratch.borrow_mut();
            encode_ji_page_into(entries, self.disk.page_size(), &mut buf);
            self.disk.append_page(self.file, &buf)?
        };
        self.pages.insert(
            idx + 1,
            JiPageMeta { page_no: pid.page, min_r: entries.first().map(|e| e.r.0).unwrap_or(0) },
        );
        Ok(())
    }

    /// All entries, in `(r, s)` order, free of I/O charge (test helper).
    pub fn snapshot_free(&self) -> Result<Vec<JiEntry>> {
        let mut out = Vec::with_capacity(self.count as usize);
        for meta in &self.pages {
            out.extend(decode_ji_page(
                &self.disk.read_page_free(PageId::new(self.file, meta.page_no))?,
            )?);
        }
        Ok(out)
    }

    /// Structural invariants: entries globally sorted, count consistent,
    /// no page over capacity (test helper; free reads).
    pub fn check_invariants(&self) -> Result<()> {
        let mut count = 0u64;
        let mut last: Option<JiEntry> = None;
        for meta in &self.pages {
            let entries =
                decode_ji_page(&self.disk.read_page_free(PageId::new(self.file, meta.page_no))?)?;
            if entries.len() > self.max_cap {
                return Err(Error::Invariant("JI page over capacity".into()));
            }
            for e in entries {
                if let Some(prev) = last {
                    if prev > e {
                        return Err(Error::Invariant(format!(
                            "JI entries out of order at ({}, {})",
                            e.r, e.s
                        )));
                    }
                }
                last = Some(e);
                count += 1;
            }
        }
        if count != self.count {
            return Err(Error::Invariant(format!(
                "JI count mismatch: stored {count}, tracked {}",
                self.count
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The strategy.
// ---------------------------------------------------------------------

/// The join-index strategy with deferred incremental maintenance.
pub struct JoinIndexStrategy {
    disk: Disk,
    params: SystemParams,
    cost: Cost,
    ji: JiFile,
    ins_log: DiffLog,
    del_log: DiffLog,
    r_tuple_bytes: usize,
    s_tuple_bytes: usize,
    /// Distinct `r` surrogates present in the index (for pass-budget
    /// estimation: `SR ≈ distinct_r/‖R‖`, partners ≈ `‖JI‖/distinct_r`).
    distinct_r: u64,
}

impl JoinIndexStrategy {
    /// Initially build the join index from the current `R ⋈ S` (setup;
    /// callers normally reset the cost ledger afterwards).
    pub fn build(
        disk: &Disk,
        params: &SystemParams,
        cost: &Cost,
        r: &StoredRelation,
        s: &StoredRelation,
    ) -> Result<Self> {
        let mut s_by_key: HashMap<u64, Vec<Surrogate>> = HashMap::new();
        s.scan(|t| {
            s_by_key.entry(t.key).or_default().push(t.sur);
        })?;
        let mut entries: Vec<JiEntry> = Vec::new();
        let mut distinct_r = 0u64;
        r.scan(|t| {
            if let Some(matches) = s_by_key.get(&t.key) {
                distinct_r += 1;
                for &sur in matches {
                    entries.push(JiEntry { r: t.sur, s: sur });
                }
            }
        })?;
        entries.sort();
        let ji = JiFile::build(disk, params, &entries)?;
        let (ins_log, del_log) = Self::fresh_logs(disk, cost, params, r.tuple_bytes());
        Ok(JoinIndexStrategy {
            disk: disk.clone(),
            params: params.clone(),
            cost: cost.clone(),
            ji,
            ins_log,
            del_log,
            r_tuple_bytes: r.tuple_bytes(),
            s_tuple_bytes: s.tuple_bytes(),
            distinct_r,
        })
    }

    fn fresh_logs(
        disk: &Disk,
        cost: &Cost,
        params: &SystemParams,
        r_tuple_bytes: usize,
    ) -> (DiffLog, DiffLog) {
        // Same Figure 1 memory layout as the MV log, but sorted on `r`
        // with no hashing ("since iR and dR are ordered by r, no hashing
        // needs to be done").
        let z = crate::mv::MaterializedView::z_pages(params);
        let per_page = params.tuples_per_full_page(r_tuple_bytes);
        let key = |t: &BaseTuple| ji_sort_key(t.sur.0);
        (
            DiffLog::new(disk, cost, z, per_page, false, key),
            DiffLog::new(disk, cost, z, per_page, false, key),
        )
    }

    /// Entries currently cached (`‖JI‖`).
    pub fn index_len(&self) -> u64 {
        self.ji.len()
    }

    /// Index pages (`|JI|`).
    pub fn index_pages(&self) -> u64 {
        self.ji.num_pages()
    }

    /// Pending logged (join-attribute-changing) updates.
    pub fn pending_updates(&self) -> u64 {
        self.ins_log.len()
    }

    /// Immutable access to the underlying index file (inspection/tests).
    pub fn index(&self) -> &JiFile {
        &self.ji
    }

    // === Incremental-migration surface ==================================
    // Mirror of `MaterializedView`'s migration hooks: a chunked snapshot
    // of the cached structure (one index page per chunk) and a
    // constructor from already-known join pairs, so an online strategy
    // switch never rescans the base relations.

    /// Decode one page of the index (one chunk of a migration snapshot).
    /// Requires a *clean* index: snapshots are taken right after a query,
    /// when the differential logs have just been folded in.
    pub fn snapshot_page(&self, page: usize) -> Result<Vec<JiEntry>> {
        if self.pending_updates() > 0 || !self.del_log.is_empty() {
            return Err(trijoin_common::Error::Infeasible(format!(
                "{} deferred updates pending; snapshot only a clean index",
                self.pending_updates().max(self.del_log.len())
            )));
        }
        self.ji.read_page(page)
    }

    /// Build a join index directly from already-known join pairs — the
    /// receiving end of a migration hand-off. All I/O lands in the
    /// caller's open ledger section.
    pub fn build_from_entries(
        disk: &Disk,
        params: &SystemParams,
        cost: &Cost,
        mut entries: Vec<JiEntry>,
        r_tuple_bytes: usize,
        s_tuple_bytes: usize,
    ) -> Result<Self> {
        entries.sort();
        let distinct_r = distinct_r_count(&entries);
        let ji = JiFile::build(disk, params, &entries)?;
        let (ins_log, del_log) = Self::fresh_logs(disk, cost, params, r_tuple_bytes);
        Ok(JoinIndexStrategy {
            disk: disk.clone(),
            params: params.clone(),
            cost: cost.clone(),
            ji,
            ins_log,
            del_log,
            r_tuple_bytes,
            s_tuple_bytes,
            distinct_r,
        })
    }

    /// Delete the index file and both log files — the superseded side of
    /// a completed migration.
    pub fn destroy(self) {
        self.ji.destroy();
        self.ins_log.destroy();
        self.del_log.destroy();
    }

    /// The index's backing file (fault-injection targeting).
    pub fn index_file(&self) -> FileId {
        self.ji.file_id()
    }

    /// Device-fault fallback: the cached index (or a differential run) is
    /// damaged, so answer the query by recomputing `R ⋈ S` directly from
    /// the base relations, validate against the oracle, and rebuild the
    /// index into fresh pages — all charged under the `ji.recover` section.
    fn recover(
        &mut self,
        r: &StoredRelation,
        s: &StoredRelation,
        out: &mut Vec<ViewTuple>,
    ) -> Result<u64> {
        self.disk.metrics().incr("ji.recoveries");
        self.disk.events().emit(
            EventKind::RecoveryTriggered,
            "join-index: recompute from base relations",
            self.cost.total(),
        );
        let _g = self.cost.section("ji.recover");
        let def = crate::viewdef::ViewDef::full();
        let (answer, r_filt, s_filt) = crate::recovery::recompute_join(r, s, &def, &self.cost)?;
        crate::recovery::validate_against_oracle("join-index", &answer, &r_filt, &s_filt, &def)?;
        let mut entries: Vec<JiEntry> =
            answer.iter().map(|v| JiEntry { r: v.r_sur, s: v.s_sur }).collect();
        entries.sort();
        let distinct_r = distinct_r_count(&entries);
        // Rebuild into a fresh file; the damaged one is abandoned (a fresh
        // file carries no torn/poisoned marks).
        let new_ji = JiFile::build(&self.disk, &self.params, &entries)?;
        std::mem::replace(&mut self.ji, new_ji).destroy();
        self.distinct_r = distinct_r;
        // The recomputation already reflects every logged mutation (the
        // base relations do), so pending differentials are superseded.
        let (ins, del) = Self::fresh_logs(&self.disk, &self.cost, &self.params, self.r_tuple_bytes);
        std::mem::replace(&mut self.ins_log, ins).destroy();
        std::mem::replace(&mut self.del_log, del).destroy();
        let n = answer.len() as u64;
        out.extend(answer);
        Ok(n)
    }

    /// Point lookup: the S-surrogates joined with R-tuple `r`, straight
    /// from the clustered index pages (binary search over the in-memory
    /// page directory, then 1-2 page reads). Requires a clean index (no
    /// deferred updates pending).
    pub fn partners_of_r(&self, r: Surrogate) -> Result<Vec<Surrogate>> {
        if self.pending_updates() > 0 {
            return Err(Error::Infeasible(format!(
                "{} deferred updates pending; execute() before point lookups",
                self.pending_updates()
            )));
        }
        let _g = self.cost.section("ji.point_lookup");
        if self.ji.pages.is_empty() {
            return Ok(Vec::new());
        }
        // First page of r's group: the first page with min_r == r when the
        // group is page-aligned, else the last page with min_r < r (the
        // group sits inside it).
        let first_ge = self.ji.pages.partition_point(|m| m.min_r < r.0);
        let mut idx = if self.ji.pages.get(first_ge).map(|m| m.min_r == r.0).unwrap_or(false) {
            first_ge
        } else {
            first_ge.saturating_sub(1)
        };
        self.cost.comp((self.ji.pages.len().max(2)).ilog2() as u64 + 1);
        let mut out = Vec::new();
        // A group is page-aligned except when it alone exceeds a page:
        // walk forward while pages can still contain r.
        while idx < self.ji.pages.len() {
            let entries = self.ji.read_page(idx)?;
            self.cost.comp(entries.len() as u64);
            let mut beyond = false;
            for e in &entries {
                match e.r.cmp(&r) {
                    std::cmp::Ordering::Equal => out.push(e.s),
                    std::cmp::Ordering::Greater => {
                        beyond = true;
                        break;
                    }
                    std::cmp::Ordering::Less => {}
                }
            }
            if beyond || entries.last().map(|e| e.r > r).unwrap_or(false) {
                break;
            }
            idx += 1;
            if self.ji.pages.get(idx).map(|m| m.min_r > r.0).unwrap_or(true) {
                break;
            }
        }
        Ok(out)
    }

    /// The paper's `|JI_k|` (Figure 3): pages of JI processed per pass,
    /// leaving room for the pass's `R` fragment with pointers, its pending
    /// insertions, the memory-resident `iR_k ⋈ S`, the `2·N1` run input
    /// buffers, five fixed buffers, and sort/merge overhead.
    /// The pass budget |JI_k| in pages (exposed for inspection/benches).
    pub fn jik_pages(&self, n1: usize, r_len: u64) -> usize {
        let m = self.params.mem_pages as f64;
        let avail = m - 2.0 * n1 as f64 - 5.0;
        if avail < 3.0 {
            return 1;
        }
        let p = self.params.page_size as f64;
        let n_ji = self.params.tuples_per_page(JiEntry::BYTES) as f64;
        let total_pages = self.ji.num_pages().max(1) as f64;
        let distinct = self.distinct_r.max(1) as f64;
        let partners = self.ji.len().max(1) as f64 / distinct; // s per matching r
        let _ = (r_len, distinct, partners);
        let tv = view_tuple_bytes(self.r_tuple_bytes, self.s_tuple_bytes) as f64;
        // The R ⋈ JI_k working area is budgeted per *entry* (one R-tuple
        // slot per JI entry) — the same Figure 3 interpretation the
        // analytical model uses, so engine and model agree on pass counts.
        let rk_per_page = n_ji * self.r_tuple_bytes as f64 / p;
        let ik_pages_per_page = self.ins_log.pages() as f64 / total_pages;
        let ik_tuples_per_page = self.ins_log.len() as f64 / total_pages;
        let ikjoin_per_page = ik_tuples_per_page * partners * tv / p;
        let mrg = 2.0 * n1 as f64 * (self.r_tuple_bytes as f64 + self.params.sptr as f64) / p;
        let sort_space = 1.0;
        let mut k = 1usize;
        loop {
            let kf = (k + 1) as f64;
            let need = 1.5 * kf
                + kf * rk_per_page
                + kf * ik_pages_per_page
                + kf * ikjoin_per_page
                + mrg
                + sort_space;
            if need > avail || k + 1 > self.ji.num_pages().max(1) as usize {
                return k;
            }
            k += 1;
        }
    }
}

impl JoinStrategy for JoinIndexStrategy {
    fn name(&self) -> &'static str {
        "join-index"
    }

    fn on_mutation(&mut self, m: &Mutation) -> Result<()> {
        // Pr_A filtering: only join-attribute updates affect a join index.
        // Inserts and deletes always do — a new tuple may join, a removed
        // tuple's pairs must go.
        if !m.affects_join_index() {
            self.disk.metrics().incr("ji.mutations_filtered");
            return Ok(());
        }
        self.disk.metrics().incr("ji.mutations_logged");
        let _g = self.cost.section("ji.log");
        match m {
            Mutation::Update(u) => {
                self.del_log.add(u.old.clone())?;
                self.ins_log.add(u.new.clone())?;
            }
            Mutation::Insert(t) => self.ins_log.add(t.clone())?,
            Mutation::Delete(t) => self.del_log.add(t.clone())?,
        }
        Ok(())
    }

    fn execute(
        &mut self,
        r: &StoredRelation,
        s: &StoredRelation,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64> {
        // Buffer emissions: a mid-pass device fault must not leak a
        // partial answer into the sink before recovery re-derives the
        // exact one.
        let mut buffered: Vec<ViewTuple> = Vec::new();
        let emitted = match self.passes_execute(r, s, &mut |vt| buffered.push(vt)) {
            Ok(n) => n,
            Err(e) if e.is_device_fault() => {
                buffered.clear();
                self.recover(r, s, &mut buffered)?
            }
            Err(e) => return Err(e),
        };
        self.disk.metrics().counter_add("ji.tuples_emitted", buffered.len() as u64);
        for vt in buffered {
            sink(vt);
        }
        Ok(emitted)
    }
}

impl JoinIndexStrategy {
    /// The §3.3 pass pipeline (Figure 3), fallible on any injected device
    /// fault; [`JoinStrategy::execute`] wraps it with the recovery
    /// fallback.
    fn passes_execute(
        &mut self,
        r: &StoredRelation,
        s: &StoredRelation,
        sink: &mut dyn FnMut(ViewTuple),
    ) -> Result<u64> {
        self.ins_log.seal()?;
        self.del_log.seal()?;
        let n1 = self.ins_log.num_runs().max(self.del_log.num_runs());
        let jik = self.jik_pages(n1, r.len());

        let ins_stream = {
            let _g = self.cost.section("ji.read_diffs");
            self.ins_log.merged()?
        };
        let del_stream = self.del_log.merged()?;
        // The Pr_A filter hides payload-only updates from this log, so a
        // logged chain may be interrupted by unlogged states: cancellation
        // must compare (surrogate, join key) — all the index derives pairs
        // from — rather than full bytes.
        let mut net = net_differentials(
            ins_stream,
            del_stream,
            |t| ji_sort_key(t.sur.0),
            |a, b| a.sur == b.sur && a.key == b.key,
            &self.cost,
        )
        .peekable();

        let mut emitted = 0u64;
        let mut new_count = 0u64;
        let mut new_distinct_r = 0u64;
        let mut pass_start = 0usize;

        while pass_start < self.ji.pages.len() {
            // ---- read this pass's JI pages (C2.1) -----------------------
            let read_guard = self.cost.section("ji.read_index");
            let mut pass_end = (pass_start + jik).min(self.ji.pages.len());
            let mut pages: Vec<(usize, Vec<JiEntry>)> = Vec::new();
            for idx in pass_start..pass_end {
                pages.push((idx, self.ji.read_page(idx)?));
            }
            // Extend the pass so an `r` group never straddles a pass
            // boundary (deletion marking must see the whole group).
            let mut last_r = pages.iter().rev().find_map(|(_, e)| e.last()).map(|e| e.r.0);
            while pass_end < self.ji.pages.len()
                && last_r.is_some()
                && self.ji.pages[pass_end].min_r <= last_r.unwrap()
            {
                let entries = self.ji.read_page(pass_end)?;
                if let Some(e) = entries.last() {
                    last_r = Some(e.r.0.max(last_r.unwrap()));
                }
                pages.push((pass_end, entries));
                pass_end += 1;
            }
            drop(read_guard);
            let final_pass = pass_end == self.ji.pages.len();
            // Items with r < the next pass's min_r belong to this pass.
            let r_hi: u64 = if final_pass {
                u64::from(u32::MAX)
            } else {
                u64::from(self.ji.pages[pass_end].min_r).saturating_sub(1)
            };

            // ---- pull this pass's net differentials ---------------------
            let mut dels: Vec<BaseTuple> = Vec::new();
            let mut inss: Vec<BaseTuple> = Vec::new();
            while let Some(item) = net.peek() {
                let sur = match item {
                    Net::Ins(t) | Net::Del(t) => t.sur.0 as u64,
                };
                if sur > r_hi {
                    break;
                }
                match net.next().unwrap() {
                    Net::Ins(t) => inss.push(t),
                    Net::Del(t) => dels.push(t),
                }
            }
            // A parked run-read error means the differential stream ended
            // early and this pass's sets are incomplete: fail the pass
            // (recovery takes over in the execute wrapper).
            self.ins_log.stream_error()?;
            self.del_log.stream_error()?;

            // ---- mark deletions (C2.2) ----------------------------------
            let del_surs: FxHashSet<Surrogate> = dels.iter().map(|t| t.sur).collect();
            let entry_total: usize = pages.iter().map(|(_, e)| e.len()).sum();
            self.cost.comp(entry_total as u64 + dels.len() as u64);
            let mut survivors: Vec<JiEntry> = Vec::with_capacity(entry_total);
            for (_, entries) in &pages {
                survivors.extend(entries.iter().filter(|e| !del_surs.contains(&e.r)));
            }

            // ---- join the pass's insertions with S (C3.1) ---------------
            let ins_guard = self.cost.section("ji.join_ins");
            counted_sort_by(&mut inss, |t| t.key, &self.cost);
            let mut keys: Vec<u64> = inss.iter().map(|t| t.key).collect();
            keys.dedup();
            // Deterministic iteration order (feeds op-counted sorts).
            let mut postings: std::collections::BTreeMap<u64, Vec<Surrogate>> =
                std::collections::BTreeMap::new();
            s.probe_inverted(&keys, |k, sur| postings.entry(k).or_default().push(sur))?;
            let mut posting_surs: Vec<Surrogate> = postings.values().flatten().copied().collect();
            counted_sort_by(&mut posting_surs, |x| x.0, &self.cost);
            let mut s_from_postings: FxHashMap<Surrogate, BaseTuple> = Default::default();
            s.fetch_by_surrogates(&posting_surs, |t| {
                s_from_postings.insert(t.sur, t);
            })?;
            let mut new_pairs: Vec<JiEntry> = Vec::new();
            for t in &inss {
                if let Some(ss) = postings.get(&t.key) {
                    for &sur in ss {
                        self.cost.mov(1); // merge into the result/JI area (C2.3)
                        new_pairs.push(JiEntry { r: t.sur, s: sur });
                    }
                }
            }

            drop(ins_guard);

            // ---- semijoin-fetch the pass's R fragment (C3.2) ------------
            let fetch_r_guard = self.cost.section("ji.fetch_r");
            let mut rs: Vec<Surrogate> = survivors.iter().map(|e| e.r).collect();
            rs.extend(new_pairs.iter().map(|e| e.r));
            rs.sort_unstable();
            rs.dedup();
            let mut rmap: FxHashMap<Surrogate, BaseTuple> = Default::default();
            r.fetch_by_surrogates(&rs, |t| {
                self.cost.mov(1); // move into the R_k area
                rmap.insert(t.sur, t);
            })?;

            drop(fetch_r_guard);

            // ---- sort survivors on s, stream S, emit (C3.3/C3.4) --------
            let fetch_s_guard = self.cost.section("ji.fetch_s");
            // S tuples are *streamed*: survivors sorted by s probe the
            // clustered index in order (Figure 3 reserves only one input
            // page for S), emitting each joined tuple as its S page
            // arrives — no memory-resident S map. fetch_by_surrogates calls
            // back once per probe in probe order, so the k-th callback
            // corresponds to survivors[k] (every surrogate exists in S).
            counted_sort_by(&mut survivors, |e| (e.s, e.r), &self.cost);
            let survivor_s: Vec<Surrogate> = survivors.iter().map(|e| e.s).collect();
            {
                let mut at = 0usize;
                let mut stream_err: Option<Error> = None;
                s.fetch_by_surrogates(&survivor_s, |st| {
                    if stream_err.is_some() {
                        return;
                    }
                    let e = &survivors[at];
                    at += 1;
                    debug_assert_eq!(st.sur, e.s, "S stream out of lockstep");
                    match rmap.get(&e.r) {
                        Some(rt) => {
                            self.cost.mov(1);
                            sink(ViewTuple::join(rt, &st));
                            emitted += 1;
                        }
                        None => {
                            stream_err = Some(Error::Invariant(format!(
                                "JI entry ({}, {}) has no R tuple",
                                e.r, e.s
                            )));
                        }
                    }
                })?;
                if let Some(e) = stream_err {
                    return Err(e);
                }
                if at != survivors.len() {
                    return Err(Error::Invariant(format!(
                        "JI entry references missing S tuple (matched {at} of {})",
                        survivors.len()
                    )));
                }
            }
            // Emit the inserted pairs (R side fetched fresh above).
            for e in &new_pairs {
                let rt = rmap.get(&e.r).ok_or_else(|| {
                    Error::Invariant(format!("inserted pair ({}, {}) lost its R tuple", e.r, e.s))
                })?;
                let st = s_from_postings.get(&e.s).ok_or_else(|| {
                    Error::Invariant(format!("inserted pair ({}, {}) lost its S tuple", e.r, e.s))
                })?;
                self.cost.mov(1);
                sink(ViewTuple::join(rt, st));
                emitted += 1;
            }

            drop(fetch_s_guard);

            // ---- write back changed JI pages (C2.4) ---------------------
            let _wb_guard = self.cost.section("ji.writeback");
            let mut merged: Vec<JiEntry> = survivors;
            merged.extend(new_pairs.iter().copied());
            counted_sort_by(&mut merged, |e| (e.r, e.s), &self.cost);
            new_count += merged.len() as u64;
            new_distinct_r += distinct_r_count(&merged);

            // Redistribute by the pass pages' r-boundaries.
            let mut inserted_pages = 0usize;
            let n_pass_pages = pages.len();
            let mut cursor = 0usize;
            for (i, (orig_idx, old_entries)) in pages.iter().enumerate() {
                let upper: Option<u32> = pages.get(i + 1).map(|(idx, _)| self.ji.pages[*idx].min_r);
                let end = match upper {
                    Some(bound) => merged[cursor..].partition_point(|e| e.r.0 < bound) + cursor,
                    None => merged.len(),
                };
                let slice = &merged[cursor..end];
                cursor = end;
                let idx_now = orig_idx + inserted_pages;
                if slice.len() <= self.ji.max_cap {
                    if slice != old_entries.as_slice() {
                        self.ji.write_page(idx_now, slice)?;
                    }
                } else {
                    // Page overflow: repack this range at nominal occupancy,
                    // keeping r groups page-aligned.
                    let chunks = pack_group_aligned(slice, self.ji.nominal_cap, self.ji.max_cap);
                    self.ji.write_page(idx_now, &chunks[0])?;
                    for (j, chunk) in chunks[1..].iter().enumerate() {
                        self.ji.insert_page_after(idx_now + j, chunk)?;
                        inserted_pages += 1;
                    }
                }
            }
            debug_assert_eq!(cursor, merged.len(), "JI redistribution lost entries");
            pass_start = pass_start + n_pass_pages + inserted_pages;
        }
        debug_assert!(net.peek().is_none(), "net differentials outlived the JI scan");

        self.ji.count = new_count;
        self.distinct_r = new_distinct_r;
        let (ins, del) = Self::fresh_logs(&self.disk, &self.cost, &self.params, self.r_tuple_bytes);
        std::mem::replace(&mut self.ins_log, ins).destroy();
        std::mem::replace(&mut self.del_log, del).destroy();
        Ok(emitted)
    }
}
