//! Fuzz-style round-trip properties for the serialization surfaces: the
//! self-describing row codec ([`codec::encode_row`]/[`codec::decode_row`])
//! and the fixed-layout tuple formats ([`BaseTuple`], [`ViewTuple`],
//! [`JiEntry`]). Two claims, checked from both directions:
//!
//! - every value a writer can produce decodes back to exactly itself,
//!   including the edges (empty rows, empty fields, `u16::MAX`-length
//!   strings, zero-length payloads); and
//! - no byte sequence — arbitrary garbage or a truncation of a valid
//!   encoding — makes a decoder panic or allocate unboundedly: malformed
//!   input must come back as `Err`, never as a crash.

use proptest::prelude::*;

use trijoin_common::codec::{decode_row, encode_row, Value};
use trijoin_common::{BaseTuple, JiEntry, Surrogate, ViewTuple};

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Strings include the empty string and multi-byte characters;
        // lengths stay modest here, the u16::MAX edge has its own
        // deterministic test below.
        prop::collection::vec(
            prop_oneof![Just('a'), Just('Z'), Just('0'), Just(' '), Just('µ'), Just('→')],
            0..40,
        )
        .prop_map(|cs| Value::Str(cs.into_iter().collect())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Writer → reader is the identity, empty rows and fields included.
    #[test]
    fn row_codec_round_trips(row in prop::collection::vec(value(), 0..12)) {
        let bytes = encode_row(&row);
        prop_assert_eq!(decode_row(&bytes).unwrap(), row);
    }

    /// Fixed-size tuples zero-pad their payloads; the decoder must ignore
    /// exactly that padding.
    #[test]
    fn row_codec_ignores_trailing_padding(
        row in prop::collection::vec(value(), 0..8),
        pad in 0usize..32,
    ) {
        let mut bytes = encode_row(&row);
        bytes.extend(std::iter::repeat_n(0u8, pad));
        prop_assert_eq!(decode_row(&bytes).unwrap(), row);
    }

    /// Any strict prefix of an encoding cuts into the count header or a
    /// value body, so it must be rejected — and rejected with `Err`, not
    /// a panic or an out-of-bounds read.
    #[test]
    fn row_codec_rejects_truncations(row in prop::collection::vec(value(), 1..8)) {
        let bytes = encode_row(&row);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_row(&bytes[..cut]).is_err(),
                "prefix of {} / {} bytes decoded", cut, bytes.len()
            );
        }
    }

    /// Arbitrary bytes never panic the row decoder. (The interesting
    /// adversarial shapes — huge length prefixes, unknown tags, non-UTF-8
    /// strings — all occur in random bytes at these sizes.)
    #[test]
    fn row_codec_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_row(&bytes);
    }

    /// `BaseTuple`: `write_bytes` ≡ `to_bytes`, `from_bytes` inverts both,
    /// and truncation anywhere — header or payload — is an `Err`.
    #[test]
    fn base_tuple_round_trips(
        sur in any::<u32>(),
        key in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..96),
    ) {
        let tuple_bytes = BaseTuple::HEADER_BYTES + payload.len();
        let t = BaseTuple::with_payload(Surrogate(sur), key, &payload, tuple_bytes).unwrap();
        let bytes = t.to_bytes();
        prop_assert_eq!(bytes.len(), t.serialized_len());

        // The buffer-reuse path appends the identical bytes.
        let mut appended = vec![0xAA, 0xBB];
        t.write_bytes(&mut appended);
        prop_assert_eq!(&appended[2..], &bytes[..]);

        prop_assert_eq!(BaseTuple::from_bytes(&bytes).unwrap(), t);
        // Extra trailing bytes are tolerated (tuples are sliced out of pages)…
        let mut padded = bytes.clone();
        padded.push(0);
        prop_assert_eq!(BaseTuple::from_bytes(&padded).unwrap(), t);
        // …but any truncation is corruption.
        for cut in 0..bytes.len() {
            prop_assert!(BaseTuple::from_bytes(&bytes[..cut]).is_err(), "cut {}", cut);
        }
    }

    /// `ViewTuple` mirrors `BaseTuple`, with two independent payloads; a
    /// view tuple built by `join` carries both sides' bytes verbatim.
    #[test]
    fn view_tuple_round_trips(
        r_sur in any::<u32>(),
        s_sur in any::<u32>(),
        key in any::<u64>(),
        r_payload in prop::collection::vec(any::<u8>(), 0..64),
        s_payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let r = BaseTuple::with_payload(
            Surrogate(r_sur), key, &r_payload, BaseTuple::HEADER_BYTES + r_payload.len(),
        ).unwrap();
        let s = BaseTuple::with_payload(
            Surrogate(s_sur), key, &s_payload, BaseTuple::HEADER_BYTES + s_payload.len(),
        ).unwrap();
        let v = ViewTuple::join(&r, &s);
        prop_assert_eq!(&v.r_payload[..], &r_payload[..]);
        prop_assert_eq!(&v.s_payload[..], &s_payload[..]);

        let bytes = v.to_bytes();
        prop_assert_eq!(bytes.len(), v.serialized_len());
        let back = ViewTuple::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &v);
        prop_assert_eq!(back.ji_entry(), JiEntry { r: Surrogate(r_sur), s: Surrogate(s_sur) });
        for cut in 0..bytes.len() {
            prop_assert!(ViewTuple::from_bytes(&bytes[..cut]).is_err(), "cut {}", cut);
        }
    }

    /// Garbage never panics the tuple decoders either (a random header can
    /// claim any payload length up to `u16::MAX`; the bounds checks must
    /// hold it to the buffer).
    #[test]
    fn tuple_decoders_survive_garbage(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = BaseTuple::from_bytes(&bytes);
        let _ = ViewTuple::from_bytes(&bytes);
        let _ = JiEntry::from_bytes(&bytes);
    }

    /// `JiEntry` is a fixed 8-byte record: round-trips exactly, rejects
    /// every shorter input.
    #[test]
    fn ji_entry_round_trips(r in any::<u32>(), s in any::<u32>()) {
        let e = JiEntry { r: Surrogate(r), s: Surrogate(s) };
        let bytes = e.to_bytes();
        prop_assert_eq!(bytes.len(), JiEntry::BYTES);
        prop_assert_eq!(JiEntry::from_bytes(&bytes).unwrap(), e);
        for cut in 0..bytes.len() {
            prop_assert!(JiEntry::from_bytes(&bytes[..cut]).is_err(), "cut {}", cut);
        }
    }
}

/// The length prefix is a `u16`: a string of exactly `u16::MAX` bytes is
/// the largest legal field and must round-trip.
#[test]
fn max_length_string_round_trips() {
    let row = vec![Value::Str("x".repeat(u16::MAX as usize)), Value::Int(i64::MIN)];
    let bytes = encode_row(&row);
    assert_eq!(decode_row(&bytes).unwrap(), row);
}

/// Non-UTF-8 string bytes are corruption, not a panic.
#[test]
fn invalid_utf8_in_string_field_is_rejected() {
    let mut bytes = encode_row(&[Value::Str("ab".to_string())]);
    // Clobber the string body (count:2 + tag:1 + len:2 = offset 5) with an
    // invalid UTF-8 sequence.
    bytes[5] = 0xFF;
    bytes[6] = 0xFE;
    let err = decode_row(&bytes).unwrap_err();
    assert!(err.to_string().contains("UTF-8"), "{err}");
}

/// An unknown value tag names itself in the error.
#[test]
fn unknown_tag_is_rejected() {
    let mut bytes = encode_row(&[Value::Int(7)]);
    bytes[2] = 0x7F; // the tag byte of the first value
    let err = decode_row(&bytes).unwrap_err();
    assert!(err.to_string().contains("0x7f"), "{err}");
}

/// A length prefix pointing past the buffer is caught by the bounds check
/// even when the claimed length is maximal.
#[test]
fn oversized_length_prefix_is_rejected() {
    let mut bytes = encode_row(&[Value::Str("hi".to_string())]);
    let len_at = 3; // count:2 + tag:1
    bytes[len_at..len_at + 2].copy_from_slice(&u16::MAX.to_le_bytes());
    assert!(decode_row(&bytes).is_err());
}
