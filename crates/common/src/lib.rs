//! Core types shared by every crate in the trijoin workspace.
//!
//! This crate holds what the paper's Table 6 calls the *system dependent*
//! and *system performance dependent* parameters ([`params::SystemParams`]),
//! the simulated-cost accounting machinery ([`cost::Cost`]) that charges the
//! paper's device constants (`IO`, `comp`, `hash`, `move`) to every primitive
//! operation the execution engine performs, and the tuple/record types shared
//! by the storage, index, and execution crates.
//!
//! Nothing in this workspace ever sleeps or measures wall-clock time to model
//! a 1989 disk: the "disk" is a [`cost::Cost`] ledger, which is what makes
//! engine-versus-analytical-model comparisons deterministic and exact.

pub mod codec;
pub mod cost;
pub mod error;
pub mod events;
pub mod fx;
pub mod json;
pub mod metrics;
pub mod params;
pub mod rng;
pub mod script;
pub mod sketch;
pub mod telemetry;
pub mod trace;
pub mod types;

pub use cost::{Cost, CostTracker, OpCounts, SpanRecord};
pub use error::{Error, FaultKind, FaultOp, Result};
pub use events::{Event, EventKind, EventLog};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet};
pub use json::Json;
pub use metrics::{CounterId, Histogram, Metrics, MetricsSnapshot};
pub use params::SystemParams;
pub use script::{Adversary, AdversaryShape, Script, ScriptOp, ScriptSpec};
pub use sketch::{KeyCount, TopKSketch};
pub use telemetry::{DriftAlert, SeriesSnapshot, Telemetry, TelemetryConfig};
pub use trace::{ModelDelta, RunReport, ShardedRunReport};
pub use types::{shard_of_key, BaseTuple, JiEntry, JoinKey, Surrogate, ViewTuple};
