//! Space-saving top-k frequency sketch for per-shard skew tracking.
//!
//! The adaptive serving layer needs to know whether a shard's update
//! stream is hitting a few hot join keys (a skewed differential keeps the
//! same view buckets dirty, which favours cached structures with cheap
//! log appends) or spraying uniformly. Exact counting is off the table —
//! the key domain is unbounded — so each shard keeps a bounded
//! [`TopKSketch`] in its rolling window: the classic space-saving
//! algorithm of Metwally et al., which guarantees for every key
//!
//! ```text
//! estimate(k) - error(k)  ≤  true_count(k)  ≤  estimate(k)
//! ```
//!
//! and bounds every error by `N / capacity` over `N` observed items. Keys
//! absent from the sketch have a true count of at most the smallest
//! retained estimate.
//!
//! Three operations cover the serving use:
//!
//! - [`TopKSketch::observe`] — one key occurrence (a routed mutation);
//! - [`TopKSketch::merge`] — combine window sketches (commutative up to
//!   the deterministic truncation order, so rollups do not depend on
//!   shard enumeration order);
//! - [`TopKSketch::decay`] — halve every counter at a window boundary,
//!   aging out stale hot keys the way the telemetry windows age ticks.

/// One retained counter: the key, its overestimate, and the maximum
/// amount by which the estimate may exceed the true count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyCount {
    /// The tracked join-key value.
    pub key: u64,
    /// Count estimate (never an underestimate).
    pub count: u64,
    /// Overestimation bound: `count - error ≤ true ≤ count`.
    pub error: u64,
}

/// Bounded space-saving frequency sketch (see module docs).
#[derive(Debug, Clone)]
pub struct TopKSketch {
    /// Maximum number of counters retained.
    capacity: usize,
    /// Retained counters, unordered.
    slots: Vec<KeyCount>,
    /// Total observations folded in (including merged ones).
    observed: u64,
}

impl TopKSketch {
    /// An empty sketch retaining at most `capacity` keys (min 1).
    pub fn new(capacity: usize) -> TopKSketch {
        let capacity = capacity.max(1);
        TopKSketch { capacity, slots: Vec::with_capacity(capacity), observed: 0 }
    }

    /// Number of counters retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total observations folded into this sketch.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Record one occurrence of `key`.
    pub fn observe(&mut self, key: u64) {
        self.observed += 1;
        if let Some(slot) = self.slots.iter_mut().find(|s| s.key == key) {
            slot.count += 1;
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push(KeyCount { key, count: 1, error: 0 });
            return;
        }
        // Evict the smallest counter: the newcomer inherits its estimate
        // as error (it may have occurred up to that many times unseen).
        let min = self
            .slots
            .iter_mut()
            .min_by_key(|s| (s.count, s.key))
            .expect("capacity ≥ 1 and the sketch is full");
        *min = KeyCount { key, count: min.count + 1, error: min.count };
    }

    /// Count estimate for `key`: `Some((count, error))` when retained.
    /// Absent keys have a true count of at most [`TopKSketch::floor`].
    pub fn estimate(&self, key: u64) -> Option<(u64, u64)> {
        self.slots.iter().find(|s| s.key == key).map(|s| (s.count, s.error))
    }

    /// Upper bound on the true count of any key *not* retained (the
    /// smallest retained estimate; 0 while the sketch has spare slots).
    pub fn floor(&self) -> u64 {
        if self.slots.len() < self.capacity {
            return 0;
        }
        self.slots.iter().map(|s| s.count).min().unwrap_or(0)
    }

    /// Retained counters, hottest first (ties broken by key for a
    /// deterministic order independent of insertion history).
    pub fn top(&self) -> Vec<KeyCount> {
        let mut out = self.slots.clone();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        out
    }

    /// Fraction of all observations attributable to the hottest `n` keys
    /// (an upper-bound mass: estimates overcount). 0.0 when empty.
    pub fn top_mass(&self, n: usize) -> f64 {
        if self.observed == 0 {
            return 0.0;
        }
        let hot: u64 = self.top().iter().take(n).map(|s| s.count).sum();
        (hot as f64 / self.observed as f64).min(1.0)
    }

    /// Fold `other` into `self`. Counts of shared keys add; a key held by
    /// only one side additionally absorbs the other side's [`floor`] into
    /// both count and error (it may have occurred that often unseen
    /// there), preserving the space-saving bound. The result is then
    /// truncated back to capacity by `(count desc, key)`, so merging is
    /// commutative: `a.merge(&b)` equals `b.merge(&a)` slot for slot.
    ///
    /// [`floor`]: TopKSketch::floor
    pub fn merge(&mut self, other: &TopKSketch) {
        let mine = std::mem::take(&mut self.slots);
        let my_floor = if mine.len() < self.capacity {
            0
        } else {
            mine.iter().map(|s| s.count).min().unwrap_or(0)
        };
        let their_floor = other.floor();
        let mut merged: Vec<KeyCount> = Vec::with_capacity(mine.len() + other.slots.len());
        for s in &mine {
            let (c, e) = match other.estimate(s.key) {
                Some((oc, oe)) => (s.count + oc, s.error + oe),
                None => (s.count + their_floor, s.error + their_floor),
            };
            merged.push(KeyCount { key: s.key, count: c, error: e });
        }
        for s in &other.slots {
            if mine.iter().any(|m| m.key == s.key) {
                continue;
            }
            merged.push(KeyCount {
                key: s.key,
                count: s.count + my_floor,
                error: s.error + my_floor,
            });
        }
        merged.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        merged.truncate(self.capacity);
        self.slots = merged;
        self.observed += other.observed;
    }

    /// Halve every counter (rounding down) and drop emptied slots — the
    /// window-boundary aging step. The observation total halves too, so
    /// [`TopKSketch::top_mass`] keeps measuring the *recent* mix.
    pub fn decay(&mut self) {
        for s in &mut self.slots {
            s.count /= 2;
            s.error /= 2;
        }
        self.slots.retain(|s| s.count > 0);
        self.observed /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn exact(stream: &[u64]) -> BTreeMap<u64, u64> {
        let mut m = BTreeMap::new();
        for &k in stream {
            *m.entry(k).or_insert(0u64) += 1;
        }
        m
    }

    #[test]
    fn exact_below_capacity() {
        let mut sk = TopKSketch::new(8);
        for k in [1u64, 2, 1, 3, 1, 2] {
            sk.observe(k);
        }
        assert_eq!(sk.estimate(1), Some((3, 0)));
        assert_eq!(sk.estimate(2), Some((2, 0)));
        assert_eq!(sk.estimate(3), Some((1, 0)));
        assert_eq!(sk.estimate(9), None);
        assert_eq!(sk.floor(), 0, "spare slots: absent keys truly have count 0");
        assert_eq!(sk.top()[0], KeyCount { key: 1, count: 3, error: 0 });
    }

    #[test]
    fn hot_keys_survive_eviction_pressure() {
        let mut sk = TopKSketch::new(4);
        // 100 occurrences of the hot key drowned in 64 singletons.
        for i in 0..100u64 {
            sk.observe(7);
            if i < 64 {
                sk.observe(1000 + i);
            }
        }
        let (count, error) = sk.estimate(7).expect("hot key retained");
        assert!(count >= 100, "estimate never undercounts: {count}");
        assert!(count - error <= 100, "count - error lower-bounds truth");
        assert!(sk.top_mass(1) > 0.5, "one key carries most of the mass");
    }

    #[test]
    fn decay_halves_and_drops() {
        let mut sk = TopKSketch::new(4);
        for _ in 0..5 {
            sk.observe(1);
        }
        sk.observe(2);
        sk.decay();
        assert_eq!(sk.estimate(1), Some((2, 0)));
        assert_eq!(sk.estimate(2), None, "a halved singleton ages out");
        assert_eq!(sk.observed(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Space-saving bound: for every retained key,
        /// `count - error ≤ true ≤ count`; for absent keys `true ≤ floor`;
        /// every error is at most `N / capacity`.
        #[test]
        fn estimates_bracket_exact_counts(
            stream in prop::collection::vec(0u64..32, 0..400),
            capacity in 1usize..12,
        ) {
            let truth = exact(&stream);
            let mut sk = TopKSketch::new(capacity);
            for &k in &stream {
                sk.observe(k);
            }
            prop_assert_eq!(sk.observed(), stream.len() as u64);
            let bound = stream.len() as u64 / capacity as u64;
            for (&k, &t) in &truth {
                match sk.estimate(k) {
                    Some((count, error)) => {
                        prop_assert!(count >= t, "key {} overestimates: {} < {}", k, count, t);
                        prop_assert!(
                            count - error <= t,
                            "key {}: lower bound {} exceeds truth {}",
                            k, count - error, t
                        );
                        prop_assert!(error <= bound, "error {} beyond N/k {}", error, bound);
                    }
                    None => prop_assert!(
                        t <= sk.floor(),
                        "absent key {} has count {} above floor {}",
                        k, t, sk.floor()
                    ),
                }
            }
        }

        /// Merging is commutative: both orders yield the same retained
        /// slots, and merged estimates still never undercount.
        #[test]
        fn merge_commutes_and_keeps_the_bound(
            left in prop::collection::vec(0u64..24, 0..200),
            right in prop::collection::vec(0u64..24, 0..200),
            capacity in 1usize..10,
        ) {
            let mut a = TopKSketch::new(capacity);
            let mut b = TopKSketch::new(capacity);
            for &k in &left { a.observe(k); }
            for &k in &right { b.observe(k); }

            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab.top(), ba.top());
            prop_assert_eq!(ab.observed(), (left.len() + right.len()) as u64);

            let mut both = left.clone();
            both.extend_from_slice(&right);
            let truth = exact(&both);
            for (&k, &t) in &truth {
                if let Some((count, _)) = ab.estimate(k) {
                    prop_assert!(count >= t, "merged key {} undercounts: {} < {}", k, count, t);
                }
            }
        }

        /// Decay preserves the over-estimate invariant relative to a
        /// stream where every occurrence count is halved.
        #[test]
        fn decay_never_creates_undercounts_of_the_halved_stream(
            stream in prop::collection::vec(0u64..16, 0..200),
            capacity in 1usize..8,
        ) {
            let truth = exact(&stream);
            let mut sk = TopKSketch::new(capacity);
            for &k in &stream { sk.observe(k); }
            sk.decay();
            for (&k, &t) in &truth {
                if let Some((count, _)) = sk.estimate(k) {
                    prop_assert!(
                        count >= t / 2,
                        "halved key {}: {} < {}",
                        k, count, t / 2
                    );
                }
            }
        }
    }
}
