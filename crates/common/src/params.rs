//! System parameters — Tables 6 and 7 of the paper.
//!
//! The *system dependent* parameters (|M|, F, P, PO, FO, ssur, sptr) and the
//! *system performance dependent* parameters (IO, comp, hash, move) are
//! bundled in [`SystemParams`]. [`SystemParams::paper_defaults`] reproduces
//! Table 7 exactly; both the execution engine and the analytical model take
//! the same struct, which is what makes their costs comparable.

/// System and device parameters (Tables 6 and 7).
///
/// Times are expressed in microseconds of *simulated* time. The paper's
/// defaults: `IO` = 25 ms, `comp` = 3 µs, `hash` = 9 µs, `move` = 20 µs.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemParams {
    /// `|M|` — number of usable pages of main memory.
    pub mem_pages: usize,
    /// `F` — space-overhead factor for hashing (hybrid-hash tables and the
    /// linear hash file storing the materialized view).
    pub hash_overhead: f64,
    /// `P` — page size in bytes.
    pub page_size: usize,
    /// `PO` — average page occupancy factor for base relations and indexes.
    pub page_occupancy: f64,
    /// `FO` — average fan-out of an index node in a B⁺-tree.
    pub fan_out: usize,
    /// `ssur` — surrogate size in bytes.
    pub ssur: usize,
    /// `sptr` — pointer size in bytes.
    pub sptr: usize,
    /// `IO` — time for one random I/O operation, in µs.
    pub io_us: f64,
    /// `comp` — time to compare two keys in memory, in µs.
    pub comp_us: f64,
    /// `hash` — time to hash a key, in µs.
    pub hash_us: f64,
    /// `move` — time to move a tuple (of any size) in memory, in µs.
    pub move_us: f64,
}

impl SystemParams {
    /// The Table 7 defaults: |M| = 1000 pages, P = 4000 bytes, PO = 0.7,
    /// FO = 400, ssur = sptr = 4 bytes, F = 1.2, IO = 25 ms, comp = 3 µs,
    /// hash = 9 µs, move = 20 µs.
    pub fn paper_defaults() -> Self {
        SystemParams {
            mem_pages: 1000,
            hash_overhead: 1.2,
            page_size: 4000,
            page_occupancy: 0.7,
            fan_out: 400,
            ssur: 4,
            sptr: 4,
            io_us: 25_000.0,
            comp_us: 3.0,
            hash_us: 9.0,
            move_us: 20.0,
        }
    }

    /// A smaller configuration for fast unit/integration tests: the same
    /// device constants but a small memory budget so multi-pass behaviour is
    /// exercised at test scale.
    pub fn test_small() -> Self {
        SystemParams { mem_pages: 64, ..Self::paper_defaults() }
    }

    /// Number of tuples of `tuple_bytes` bytes that fit on one page at the
    /// configured occupancy (`n_R`-style quantities in Table 6).
    ///
    /// The paper's packing: `n = ⌊P · PO / T⌋`, at least 1.
    pub fn tuples_per_page(&self, tuple_bytes: usize) -> usize {
        let n = ((self.page_size as f64 * self.page_occupancy) / tuple_bytes as f64).floor();
        (n as usize).max(1)
    }

    /// Tuples per page for *working areas* (sort buffers, spill files), which
    /// the paper packs fully (no occupancy slack): `⌊P / T⌋`, at least 1.
    pub fn tuples_per_full_page(&self, tuple_bytes: usize) -> usize {
        (self.page_size / tuple_bytes.max(1)).max(1)
    }

    /// Pages needed for `n_tuples` tuples of `tuple_bytes` bytes at the
    /// configured occupancy (`|R|`-style quantities).
    pub fn pages_for(&self, n_tuples: u64, tuple_bytes: usize) -> u64 {
        if n_tuples == 0 {
            return 0;
        }
        let per = self.tuples_per_page(tuple_bytes) as u64;
        n_tuples.div_ceil(per)
    }

    /// Pages needed at full packing (spill/working files).
    pub fn full_pages_for(&self, n_tuples: u64, tuple_bytes: usize) -> u64 {
        if n_tuples == 0 {
            return 0;
        }
        let per = self.tuples_per_full_page(tuple_bytes) as u64;
        n_tuples.div_ceil(per)
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_defaults() {
        let p = SystemParams::paper_defaults();
        assert_eq!(p.mem_pages, 1000);
        assert_eq!(p.page_size, 4000);
        assert_eq!(p.fan_out, 400);
        assert_eq!(p.ssur, 4);
        assert_eq!(p.sptr, 4);
        assert!((p.hash_overhead - 1.2).abs() < 1e-12);
        assert!((p.page_occupancy - 0.7).abs() < 1e-12);
        assert!((p.io_us - 25_000.0).abs() < 1e-12);
        assert!((p.comp_us - 3.0).abs() < 1e-12);
        assert!((p.hash_us - 9.0).abs() < 1e-12);
        assert!((p.move_us - 20.0).abs() < 1e-12);
    }

    #[test]
    fn paper_derived_packing() {
        let p = SystemParams::paper_defaults();
        // Tr = Ts = 200 bytes -> n_R = floor(4000 * 0.7 / 200) = 14.
        assert_eq!(p.tuples_per_page(200), 14);
        // |R| for 200 000 tuples = ceil(200000 / 14) = 14286 pages.
        assert_eq!(p.pages_for(200_000, 200), 14_286);
        // JI entry: two 4-byte surrogates = 8 bytes -> n_JI = 350.
        assert_eq!(p.tuples_per_page(8), 350);
        // View tuple Tr + Ts = 400 bytes -> n_V = 7.
        assert_eq!(p.tuples_per_page(400), 7);
    }

    #[test]
    fn full_packing_vs_occupancy() {
        let p = SystemParams::paper_defaults();
        assert_eq!(p.tuples_per_full_page(200), 20);
        assert_eq!(p.full_pages_for(200, 200), 10);
        assert_eq!(p.pages_for(0, 200), 0);
        assert_eq!(p.full_pages_for(0, 200), 0);
    }

    #[test]
    fn tiny_tuples_and_oversized_tuples() {
        let p = SystemParams::paper_defaults();
        // At least one tuple per page, even when the tuple exceeds the page.
        assert_eq!(p.tuples_per_page(1_000_000), 1);
        assert_eq!(p.tuples_per_full_page(1_000_000), 1);
        assert_eq!(p.pages_for(3, 1_000_000), 3);
    }
}
