//! Windowed time-series telemetry and the predicted-vs-actual cost audit.
//!
//! A [`Telemetry`] instance samples a [`Metrics`] registry into
//! fixed-capacity ring of [`SeriesWindow`]s: per-window counter deltas,
//! point-in-time gauges, and histogram quantiles computed over just the
//! samples recorded inside the window. Time is a *logical tick*, not a
//! wall clock — engines tick on primitive-op totals, the serving
//! scheduler ticks on flushed batches — so two identical runs produce
//! bit-identical series and the golden ledgers stay safe: sampling reads
//! observability state and charges nothing to the simulated [`crate::Cost`]
//! ledger.
//!
//! The same instance carries the cost-model audit: callers record the
//! analytical model's predicted cost next to the actual ledger charge for
//! each strategy operation ([`Telemetry::record_audit`]), per-window
//! accumulators compute the log2 error per section, and closing a window
//! returns [`DriftAlert`]s for every *query-cycle* section whose error
//! exceeds the configured threshold — the hook an online strategy
//! switcher consumes. Sections that are not `cycle.*` (differential
//! applies, spills, recovery) are recorded and serialized but never
//! alert: their predictions carry known structural bias (amortized log
//! writes vs. point btree updates) that is stable in log space but not
//! meaningful to alarm on.

use crate::json::Json;
use crate::metrics::{Histogram, Metrics, HISTOGRAM_BUCKETS};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// `n / d`, degraded to `0.0` whenever the quotient is not finite (zero
/// denominator, overflow, NaN operands). Series math and derived rates go
/// through this so idle instruments serialize as `0`, never `NaN`.
pub fn safe_div(n: f64, d: f64) -> f64 {
    let q = n / d;
    if q.is_finite() {
        q
    } else {
        0.0
    }
}

/// `log2(actual / predicted)` when both sides are positive and finite,
/// else `0.0` — a zero prediction (e.g. recovery work the model never
/// prices) reads as "no drift" rather than infinite drift.
pub fn safe_log2_ratio(actual: f64, predicted: f64) -> f64 {
    if actual > 0.0 && predicted > 0.0 {
        let r = (actual / predicted).log2();
        if r.is_finite() {
            r
        } else {
            0.0
        }
    } else {
        0.0
    }
}

/// Sampling parameters of one [`Telemetry`] instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Logical ticks per window. Engines tick once per primitive ledger
    /// op (ios + comps + hashes + moves); the serving scheduler ticks
    /// once per flushed batch.
    pub window_ticks: u64,
    /// Windows retained (oldest evicted first; evictions are counted).
    pub capacity: usize,
    /// `|log2(actual/predicted)|` above which a window's `cycle.*` audit
    /// section raises a [`DriftAlert`].
    pub drift_threshold: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        // 4096 primitive ops per window keeps even small serving shards
        // closing several windows per sustained run; the drift threshold
        // (log2 units: 3.0 = 8x) sits well above the measured stock-model
        // agreement band (see DESIGN.md section 14) while a deliberately
        // miscalibrated model still trips it immediately.
        TelemetryConfig { window_ticks: 4096, capacity: 64, drift_threshold: 3.0 }
    }
}

impl TelemetryConfig {
    /// The serving scheduler's batch-domain variant: windows span a few
    /// flushed batches instead of thousands of primitive ops.
    pub fn serve(self) -> Self {
        TelemetryConfig { window_ticks: 4, ..self }
    }
}

/// One audited section's accumulated predicted-vs-actual costs (per
/// window, or lifetime totals in [`SeriesSnapshot::audit`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEntry {
    /// What was audited (`"cycle.materialized-view"`, `"apply"`,
    /// `"spill.hybrid-hash"`, `"recovery"`).
    pub section: String,
    /// Summed analytical prediction, simulated microseconds.
    pub predicted_us: f64,
    /// Summed ledger charge, simulated microseconds.
    pub actual_us: f64,
    /// Operations folded into this entry.
    pub samples: u64,
    /// `log2(actual/predicted)` of the sums (0.0 when either side is 0).
    pub log2_ratio: f64,
}

impl AuditEntry {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("section", self.section.as_str())
            .set("predicted_us", self.predicted_us)
            .set("actual_us", self.actual_us)
            .set("samples", self.samples)
            .set("log2_ratio", self.log2_ratio)
    }

    fn from_json(json: &Json) -> Result<AuditEntry, String> {
        let num = |f: &str| {
            json.get(f).and_then(Json::as_f64).ok_or_else(|| format!("audit: missing {f:?}"))
        };
        Ok(AuditEntry {
            section: json
                .get("section")
                .and_then(Json::as_str)
                .ok_or_else(|| "audit: missing section".to_string())?
                .to_string(),
            predicted_us: num("predicted_us")?,
            actual_us: num("actual_us")?,
            samples: json
                .get("samples")
                .and_then(Json::as_u64)
                .ok_or_else(|| "audit: missing samples".to_string())?,
            log2_ratio: num("log2_ratio")?,
        })
    }

    fn absorb(&mut self, other: &AuditEntry) {
        self.predicted_us += other.predicted_us;
        self.actual_us += other.actual_us;
        self.samples += other.samples;
        self.log2_ratio = safe_log2_ratio(self.actual_us, self.predicted_us);
    }
}

/// Windowed quantiles of one histogram, computed over the samples the
/// window added (bucket-wise delta against the previous window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantiles {
    /// Samples recorded inside the window.
    pub count: u64,
    /// Approximate 50th percentile (exact within a power-of-two bucket).
    pub p50: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

/// One closed telemetry window.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesWindow {
    /// Monotone window index (survives ring eviction).
    pub index: u64,
    /// Tick at which the window opened.
    pub start_tick: u64,
    /// Tick at which it closed (`end_tick - start_tick >= window_ticks`
    /// except for a final forced close).
    pub end_tick: u64,
    /// Counter deltas over the window, non-zero entries only, sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values at close (point-in-time), sorted.
    pub gauges: Vec<(String, f64)>,
    /// Per-histogram windowed quantiles, sorted by name.
    pub quantiles: Vec<(String, Quantiles)>,
    /// Cost-audit sections that recorded inside the window.
    pub audit: Vec<AuditEntry>,
}

impl SeriesWindow {
    fn to_json(&self) -> Json {
        let counters = self.counters.iter().fold(Json::obj(), |acc, (k, v)| acc.set(k, *v));
        let gauges = self.gauges.iter().fold(Json::obj(), |acc, (k, v)| acc.set(k, *v));
        let quantiles = self.quantiles.iter().fold(Json::obj(), |acc, (k, q)| {
            acc.set(k, Json::obj().set("count", q.count).set("p50", q.p50).set("p99", q.p99))
        });
        Json::obj()
            .set("index", self.index)
            .set("start_tick", self.start_tick)
            .set("end_tick", self.end_tick)
            .set("counters", counters)
            .set("gauges", gauges)
            .set("quantiles", quantiles)
            .set("audit", Json::Arr(self.audit.iter().map(AuditEntry::to_json).collect()))
    }

    fn from_json(json: &Json) -> Result<SeriesWindow, String> {
        let uint = |f: &str| {
            json.get(f).and_then(Json::as_u64).ok_or_else(|| format!("window: missing {f:?}"))
        };
        let pairs = |key: &str| -> Result<Vec<(String, Json)>, String> {
            match json.get(key) {
                Some(Json::Obj(members)) => Ok(members.clone()),
                _ => Err(format!("window: missing object {key:?}")),
            }
        };
        let counters = pairs("counters")?
            .into_iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("window: counter {k:?} not a u64"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let gauges = pairs("gauges")?
            .into_iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("window: gauge {k:?} not a number"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let quantiles = pairs("quantiles")?
            .into_iter()
            .map(|(k, v)| -> Result<(String, Quantiles), String> {
                let field = |f: &str| {
                    v.get(f)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("window: quantile {k:?} missing {f:?}"))
                };
                Ok((
                    k.clone(),
                    Quantiles { count: field("count")?, p50: field("p50")?, p99: field("p99")? },
                ))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let audit = json
            .get("audit")
            .and_then(Json::as_arr)
            .ok_or_else(|| "window: missing audit array".to_string())?
            .iter()
            .map(AuditEntry::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SeriesWindow {
            index: uint("index")?,
            start_tick: uint("start_tick")?,
            end_tick: uint("end_tick")?,
            counters,
            gauges,
            quantiles,
            audit,
        })
    }

    /// Fold another shard's same-index window into this one: counters and
    /// gauges add, windowed quantile counts add with the percentile upper
    /// envelope (max), audit sections sum with their ratio recomputed.
    fn merge(&mut self, other: &SeriesWindow) {
        self.start_tick = self.start_tick.min(other.start_tick);
        self.end_tick = self.end_tick.max(other.end_tick);
        fn fold<V: Clone>(
            mine: &mut Vec<(String, V)>,
            theirs: &[(String, V)],
            add: impl Fn(&mut V, &V),
        ) {
            for (name, value) in theirs {
                match mine.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
                    Ok(i) => add(&mut mine[i].1, value),
                    Err(i) => mine.insert(i, (name.clone(), value.clone())),
                }
            }
        }
        fold(&mut self.counters, &other.counters, |a, b| *a += *b);
        fold(&mut self.gauges, &other.gauges, |a, b| *a += *b);
        fold(&mut self.quantiles, &other.quantiles, |a, b| {
            a.count += b.count;
            a.p50 = a.p50.max(b.p50);
            a.p99 = a.p99.max(b.p99);
        });
        for entry in &other.audit {
            match self.audit.iter_mut().find(|e| e.section == entry.section) {
                Some(e) => e.absorb(entry),
                None => self.audit.push(entry.clone()),
            }
        }
        self.audit.sort_by(|a, b| a.section.cmp(&b.section));
    }
}

/// A serializable snapshot of one telemetry instance: its retained
/// windows plus the lifetime audit totals. Embedded in
/// `RunReport { series }` and merged across shards in rollups.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Which instance (`"engine"` per shard, `"serve"` for the scheduler).
    pub name: String,
    /// Tick domain (`"ops"` or `"batches"`).
    pub domain: String,
    /// Window width in ticks.
    pub window_ticks: u64,
    /// Windows evicted from the ring (the series kept counting).
    pub dropped: u64,
    /// Retained windows, oldest first.
    pub windows: Vec<SeriesWindow>,
    /// Lifetime per-section audit totals (across all windows, including
    /// evicted ones).
    pub audit: Vec<AuditEntry>,
}

impl SeriesSnapshot {
    /// Serialize for embedding in a run report.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("name", self.name.as_str())
            .set("domain", self.domain.as_str())
            .set("window_ticks", self.window_ticks)
            .set("dropped", self.dropped)
            .set("windows", Json::Arr(self.windows.iter().map(SeriesWindow::to_json).collect()))
            .set("audit", Json::Arr(self.audit.iter().map(AuditEntry::to_json).collect()))
    }

    /// Inverse of [`SeriesSnapshot::to_json`].
    pub fn from_json(json: &Json) -> Result<SeriesSnapshot, String> {
        let text = |f: &str| {
            json.get(f)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("series: missing {f:?}"))
        };
        let uint = |f: &str| {
            json.get(f).and_then(Json::as_u64).ok_or_else(|| format!("series: missing {f:?}"))
        };
        let arr = |f: &str| {
            json.get(f).and_then(Json::as_arr).ok_or_else(|| format!("series: missing array {f:?}"))
        };
        Ok(SeriesSnapshot {
            name: text("name")?,
            domain: text("domain")?,
            window_ticks: uint("window_ticks")?,
            dropped: uint("dropped")?,
            windows: arr("windows")?
                .iter()
                .map(SeriesWindow::from_json)
                .collect::<Result<_, _>>()?,
            audit: arr("audit")?.iter().map(AuditEntry::from_json).collect::<Result<_, _>>()?,
        })
    }

    /// Fold another shard's series into this one, aligning windows by
    /// their monotone index (shards tick independently but index their
    /// windows identically from 0).
    pub fn merge(&mut self, other: &SeriesSnapshot) {
        self.dropped += other.dropped;
        for w in &other.windows {
            match self.windows.iter_mut().find(|m| m.index == w.index) {
                Some(m) => m.merge(w),
                None => {
                    let at = self.windows.partition_point(|m| m.index < w.index);
                    self.windows.insert(at, w.clone());
                }
            }
        }
        for entry in &other.audit {
            match self.audit.iter_mut().find(|e| e.section == entry.section) {
                Some(e) => e.absorb(entry),
                None => self.audit.push(entry.clone()),
            }
        }
        self.audit.sort_by(|a, b| a.section.cmp(&b.section));
    }

    /// Lifetime audit totals for one section, if it ever recorded.
    pub fn audit_section(&self, section: &str) -> Option<&AuditEntry> {
        self.audit.iter().find(|e| e.section == section)
    }
}

/// A window's `cycle.*` audit section exceeded the drift threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftAlert {
    /// The drifting section (`"cycle.join-index"`, ...).
    pub section: String,
    /// Index of the window that tripped.
    pub window: u64,
    /// The window's summed prediction, microseconds.
    pub predicted_us: f64,
    /// The window's summed ledger charge, microseconds.
    pub actual_us: f64,
    /// `log2(actual/predicted)` of the window.
    pub log2_ratio: f64,
}

impl DriftAlert {
    /// Deterministic event-detail rendering (`{:.3}` keeps two identical
    /// runs byte-identical).
    pub fn detail(&self) -> String {
        format!(
            "section={} window={} predicted_us={:.1} actual_us={:.1} log2={:.3}",
            self.section, self.window, self.predicted_us, self.actual_us, self.log2_ratio
        )
    }
}

#[derive(Debug, Default)]
struct Acc {
    predicted_us: f64,
    actual_us: f64,
    samples: u64,
}

#[derive(Debug)]
struct State {
    config: TelemetryConfig,
    name: String,
    domain: String,
    started: bool,
    open_tick: u64,
    /// Counter values at the last window edge, indexed by the registry's
    /// stable counter-slot id — no names, no sort, no clone.
    baseline_counters: Vec<u64>,
    /// Histograms at the last window edge, sorted by name. Entries are
    /// overwritten in place (`clone_from` reuses the bucket allocation).
    baseline_histograms: Vec<(String, Histogram)>,
    windows: VecDeque<SeriesWindow>,
    next_index: u64,
    dropped: u64,
    window_audit: BTreeMap<String, Acc>,
    total_audit: BTreeMap<String, Acc>,
}

impl State {
    /// (Re)arm the delta baselines at the registry's current values.
    fn arm_baseline(&mut self, metrics: &Metrics) {
        let bc = &mut self.baseline_counters;
        bc.clear();
        metrics.visit_counters(|id, _, value| {
            if id >= bc.len() {
                bc.resize(id + 1, 0);
            }
            bc[id] = value;
        });
        let bh = &mut self.baseline_histograms;
        bh.clear();
        metrics.visit_histograms(|name, h| bh.push((name.to_string(), h.clone())));
    }

    fn close_window(&mut self, now: u64, metrics: &Metrics) -> Vec<DriftAlert> {
        // This path runs on every due tick — a heavy query can span many
        // windows — so deltas are computed against slot-indexed baselines
        // updated in place rather than a full `Metrics::snapshot` (which
        // clones every name and bucket vector in the registry).
        let mut counters = Vec::new();
        let bc = &mut self.baseline_counters;
        metrics.visit_counters(|id, name, value| {
            if id >= bc.len() {
                bc.resize(id + 1, 0);
            }
            let delta = value.saturating_sub(bc[id]);
            if delta > 0 {
                counters.push((name.to_string(), delta));
            }
            bc[id] = value;
        });
        // Slot order is first-touch order; windows serialize name-sorted.
        counters.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        let mut gauges = Vec::new();
        metrics.visit_gauges(|name, value| gauges.push((name.to_string(), value)));
        let mut quantiles = Vec::new();
        let bh = &mut self.baseline_histograms;
        metrics.visit_histograms(|name, h| {
            let delta = match bh.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
                Ok(i) => {
                    let delta = delta_histogram(h, Some(&bh[i].1));
                    bh[i].1.clone_from(h);
                    delta
                }
                Err(i) => {
                    bh.insert(i, (name.to_string(), h.clone()));
                    delta_histogram(h, None)
                }
            };
            if delta.count > 0 {
                quantiles.push((
                    name.to_string(),
                    Quantiles {
                        count: delta.count,
                        p50: delta.quantile(0.50),
                        p99: delta.quantile(0.99),
                    },
                ));
            }
        });
        let index = self.next_index;
        let mut audit = Vec::new();
        let mut alerts = Vec::new();
        for (section, acc) in std::mem::take(&mut self.window_audit) {
            let log2_ratio = safe_log2_ratio(acc.actual_us, acc.predicted_us);
            if section.starts_with("cycle.") && log2_ratio.abs() > self.config.drift_threshold {
                alerts.push(DriftAlert {
                    section: section.clone(),
                    window: index,
                    predicted_us: acc.predicted_us,
                    actual_us: acc.actual_us,
                    log2_ratio,
                });
            }
            audit.push(AuditEntry {
                section,
                predicted_us: acc.predicted_us,
                actual_us: acc.actual_us,
                samples: acc.samples,
                log2_ratio,
            });
        }
        let window = SeriesWindow {
            index,
            start_tick: self.open_tick,
            end_tick: now,
            counters,
            gauges,
            quantiles,
            audit,
        };
        if self.windows.len() == self.config.capacity.max(1) {
            self.windows.pop_front();
            self.dropped += 1;
        }
        self.windows.push_back(window);
        self.next_index += 1;
        self.open_tick = now;
        alerts
    }
}

/// Approximate the histogram of just-this-window samples: bucket counts,
/// count, and sum subtract exactly; min/max are bounded by the occupied
/// delta buckets (and the lifetime max), which is what makes the derived
/// quantiles exact for single-sample and same-bucket-heavy windows.
fn delta_histogram(cur: &Histogram, prev: Option<&Histogram>) -> Histogram {
    let Some(prev) = prev else { return cur.clone() };
    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
    for (i, slot) in buckets.iter_mut().enumerate() {
        *slot = cur.buckets[i].saturating_sub(prev.buckets[i]);
    }
    let count = cur.count.saturating_sub(prev.count);
    let sum = cur.sum.saturating_sub(prev.sum);
    let min = buckets
        .iter()
        .position(|&c| c != 0)
        // Window samples are a subset of the lifetime samples, so the
        // lifetime min is a valid lower bound that sharpens bucket 0.
        .map(|i| {
            let lower = if i == 0 { 0 } else { 1u64 << i };
            lower.max(cur.min)
        })
        .unwrap_or(0);
    let max = buckets
        .iter()
        .rposition(|&c| c != 0)
        .map(|i| {
            let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            upper.min(cur.max)
        })
        .unwrap_or(0);
    Histogram { count, sum, min, max, buckets }
}

/// Shared handle to one telemetry sampler. Clones alias the same state
/// (the workspace-wide `Rc<RefCell<..>>` idiom).
#[derive(Debug, Clone)]
pub struct Telemetry(Rc<RefCell<State>>);

impl Telemetry {
    /// A fresh sampler. `name` labels the series (`"engine"`, `"serve"`);
    /// `domain` names the tick unit (`"ops"`, `"batches"`).
    pub fn new(
        config: TelemetryConfig,
        name: impl Into<String>,
        domain: impl Into<String>,
    ) -> Self {
        Telemetry(Rc::new(RefCell::new(State {
            config,
            name: name.into(),
            domain: domain.into(),
            started: false,
            open_tick: 0,
            baseline_counters: Vec::new(),
            baseline_histograms: Vec::new(),
            windows: VecDeque::new(),
            next_index: 0,
            dropped: 0,
            window_audit: BTreeMap::new(),
            total_audit: BTreeMap::new(),
        })))
    }

    /// The configuration in force.
    pub fn config(&self) -> TelemetryConfig {
        self.0.borrow().config
    }

    /// Advance the logical clock. The first tick arms the baseline; any
    /// later tick at least `window_ticks` past the open edge closes one
    /// window spanning `[open_tick, now]` and returns its drift alerts.
    pub fn tick(&self, now: u64, metrics: &Metrics) -> Vec<DriftAlert> {
        let mut st = self.0.borrow_mut();
        if !st.started {
            st.started = true;
            st.open_tick = now;
            st.arm_baseline(metrics);
            return Vec::new();
        }
        if now.saturating_sub(st.open_tick) < st.config.window_ticks {
            return Vec::new();
        }
        st.close_window(now, metrics)
    }

    /// True when the next [`Telemetry::tick`] at `now` would close a
    /// window — callers that stamp gauges lazily (latency percentiles)
    /// refresh them just before a due close.
    pub fn due(&self, now: u64) -> bool {
        let st = self.0.borrow();
        st.started && now.saturating_sub(st.open_tick) >= st.config.window_ticks
    }

    /// Close the currently open window even if it is short — run reports
    /// call this so a run shorter than one window still serializes ≥ 1
    /// window. A no-op when nothing happened since the last close.
    pub fn force_close(&self, now: u64, metrics: &Metrics) -> Vec<DriftAlert> {
        let mut st = self.0.borrow_mut();
        if !st.started {
            st.started = true;
            st.open_tick = now;
            st.arm_baseline(metrics);
        }
        if now == st.open_tick && st.window_audit.is_empty() && st.next_index > 0 {
            return Vec::new();
        }
        st.close_window(now, metrics)
    }

    /// Record one audited operation: the model's prediction next to the
    /// ledger's actual charge, both in simulated microseconds.
    pub fn record_audit(&self, section: &str, predicted_us: f64, actual_us: f64) {
        let st = &mut *self.0.borrow_mut();
        // Sections repeat every operation: allocate the owned key only
        // the first time a map sees one.
        for map in [&mut st.window_audit, &mut st.total_audit] {
            match map.get_mut(section) {
                Some(acc) => {
                    acc.predicted_us += predicted_us;
                    acc.actual_us += actual_us;
                    acc.samples += 1;
                }
                None => {
                    map.insert(section.to_string(), Acc { predicted_us, actual_us, samples: 1 });
                }
            }
        }
    }

    /// Snapshot the retained windows and lifetime audit totals.
    pub fn series(&self) -> SeriesSnapshot {
        let st = self.0.borrow();
        SeriesSnapshot {
            name: st.name.clone(),
            domain: st.domain.clone(),
            window_ticks: st.config.window_ticks,
            dropped: st.dropped,
            windows: st.windows.iter().cloned().collect(),
            audit: st
                .total_audit
                .iter()
                .map(|(section, acc)| AuditEntry {
                    section: section.clone(),
                    predicted_us: acc.predicted_us,
                    actual_us: acc.actual_us,
                    samples: acc.samples,
                    log2_ratio: safe_log2_ratio(acc.actual_us, acc.predicted_us),
                })
                .collect(),
        }
    }

    /// Drop every window and audit accumulator and disarm the clock (the
    /// next tick re-baselines). Configuration survives — the measurement-
    /// boundary analogue of `Metrics::reset`.
    pub fn reset(&self) {
        let mut st = self.0.borrow_mut();
        st.started = false;
        st.open_tick = 0;
        st.baseline_counters.clear();
        st.baseline_histograms.clear();
        st.windows.clear();
        st.next_index = 0;
        st.dropped = 0;
        st.window_audit.clear();
        st.total_audit.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler(window: u64, capacity: usize) -> (Telemetry, Metrics) {
        let cfg = TelemetryConfig { window_ticks: window, capacity, drift_threshold: 3.0 };
        (Telemetry::new(cfg, "engine", "ops"), Metrics::new())
    }

    #[test]
    fn windows_hold_counter_deltas_not_totals() {
        let (tel, m) = sampler(10, 8);
        assert!(tel.tick(0, &m).is_empty(), "first tick only arms the baseline");
        m.counter_add("db.queries", 3);
        tel.tick(10, &m);
        m.counter_add("db.queries", 2);
        m.incr("other");
        tel.tick(25, &m);
        let s = tel.series();
        assert_eq!(s.windows.len(), 2);
        assert_eq!(s.windows[0].counters, vec![("db.queries".to_string(), 3)]);
        assert_eq!(s.windows[0].start_tick, 0);
        assert_eq!(s.windows[0].end_tick, 10);
        assert_eq!(
            s.windows[1].counters,
            vec![("db.queries".to_string(), 2), ("other".to_string(), 1)]
        );
        assert_eq!(s.windows[1].index, 1);
    }

    #[test]
    fn short_ticks_do_not_close_windows() {
        let (tel, m) = sampler(100, 8);
        tel.tick(0, &m);
        m.incr("c");
        for now in [10, 50, 99] {
            assert!(tel.tick(now, &m).is_empty());
        }
        assert!(tel.series().windows.is_empty());
        tel.tick(100, &m);
        assert_eq!(tel.series().windows.len(), 1);
    }

    #[test]
    fn ring_evicts_and_counts_dropped_windows() {
        let (tel, m) = sampler(1, 4);
        tel.tick(0, &m);
        for now in 1..=9u64 {
            m.incr("c");
            tel.tick(now, &m);
        }
        let s = tel.series();
        assert_eq!(s.windows.len(), 4);
        assert_eq!(s.dropped, 5);
        assert_eq!(s.windows.first().unwrap().index, 5, "oldest retained window");
        assert_eq!(s.windows.last().unwrap().index, 8);
    }

    #[test]
    fn windowed_quantiles_cover_only_the_window() {
        let (tel, m) = sampler(10, 8);
        tel.tick(0, &m);
        for _ in 0..100 {
            m.observe("query.us", 1);
        }
        tel.tick(10, &m);
        // Second window holds only large samples; its quantiles must not
        // be dragged down by the first window's 100 tiny ones.
        for _ in 0..10 {
            m.observe("query.us", 4096);
        }
        tel.tick(20, &m);
        let s = tel.series();
        let (_, q0) = s.windows[0].quantiles[0].clone();
        let (_, q1) = s.windows[1].quantiles[0].clone();
        assert_eq!((q0.count, q0.p50, q0.p99), (100, 1, 1));
        assert_eq!(q1.count, 10);
        assert_eq!(q1.p50, 4096, "duplicate-heavy window is exact");
        assert_eq!(q1.p99, 4096);
    }

    #[test]
    fn audit_accumulates_per_window_and_lifetime() {
        let (tel, m) = sampler(10, 8);
        tel.tick(0, &m);
        tel.record_audit("cycle.join-index", 100.0, 200.0);
        tel.record_audit("cycle.join-index", 100.0, 200.0);
        tel.tick(10, &m);
        tel.record_audit("cycle.join-index", 50.0, 50.0);
        tel.tick(20, &m);
        let s = tel.series();
        let w0 = &s.windows[0].audit[0];
        assert_eq!(w0.samples, 2);
        assert!((w0.log2_ratio - 1.0).abs() < 1e-12, "2x off = 1 in log2");
        let total = s.audit_section("cycle.join-index").unwrap();
        assert_eq!(total.samples, 3);
        assert!((total.predicted_us - 250.0).abs() < 1e-9);
        assert!((total.actual_us - 450.0).abs() < 1e-9);
    }

    #[test]
    fn drift_alerts_only_on_cycle_sections_over_threshold() {
        let (tel, m) = sampler(10, 8);
        tel.tick(0, &m);
        tel.record_audit("cycle.materialized-view", 1.0, 1000.0); // ~10 in log2
        tel.record_audit("apply", 1.0, 1000.0); // not drift-eligible
        tel.record_audit("recovery", 0.0, 1000.0); // zero prediction: no drift
        tel.record_audit("cycle.hybrid-hash", 100.0, 150.0); // under threshold
        let alerts = tel.tick(10, &m);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].section, "cycle.materialized-view");
        assert!(alerts[0].log2_ratio > 3.0);
        assert!(alerts[0].detail().contains("section=cycle.materialized-view"));
    }

    #[test]
    fn force_close_flushes_a_short_window_once() {
        let (tel, m) = sampler(1_000_000, 8);
        tel.tick(0, &m);
        m.incr("c");
        tel.record_audit("cycle.join-index", 1.0, 1.0);
        assert!(tel.force_close(5, &m).is_empty());
        assert_eq!(tel.series().windows.len(), 1);
        // Nothing new happened: a second forced close adds no window.
        tel.force_close(5, &m);
        assert_eq!(tel.series().windows.len(), 1);
    }

    #[test]
    fn series_json_round_trip() {
        let (tel, m) = sampler(10, 8);
        tel.tick(0, &m);
        m.incr("db.queries");
        m.gauge_set("pool.resident", 3.5);
        m.observe("query.us", 77);
        tel.record_audit("cycle.hybrid-hash", 120.0, 130.0);
        tel.tick(10, &m);
        let s = tel.series();
        let back = SeriesSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        // Schema drift (a window without its audit array) is rejected.
        let mut json = s.to_json();
        if let Json::Obj(members) = &mut json {
            members.retain(|(k, _)| k != "windows");
        }
        assert!(SeriesSnapshot::from_json(&json).is_err());
    }

    #[test]
    fn merge_aligns_windows_by_index_and_sums_audit() {
        let mk = |ios: u64, pred: f64, act: f64| {
            let (tel, m) = sampler(10, 8);
            tel.tick(0, &m);
            m.counter_add("disk.reads", ios);
            m.observe("query.us", ios);
            tel.record_audit("cycle.join-index", pred, act);
            tel.tick(10, &m);
            tel.series()
        };
        let mut a = mk(3, 100.0, 100.0);
        let b = mk(5, 100.0, 300.0);
        a.merge(&b);
        assert_eq!(a.windows.len(), 1);
        assert_eq!(a.windows[0].counters, vec![("disk.reads".to_string(), 8)]);
        let q = a.windows[0].quantiles[0].1;
        assert_eq!(q.count, 2);
        assert_eq!(q.p99, 5, "upper envelope across shards");
        let audit = a.audit_section("cycle.join-index").unwrap();
        assert_eq!(audit.samples, 2);
        assert!((audit.log2_ratio - 1.0).abs() < 1e-12, "400/200 summed = 2x");
    }

    #[test]
    fn reset_disarms_and_clears() {
        let (tel, m) = sampler(10, 8);
        tel.tick(0, &m);
        m.incr("c");
        tel.record_audit("apply", 1.0, 1.0);
        tel.tick(10, &m);
        tel.reset();
        let s = tel.series();
        assert!(s.windows.is_empty() && s.audit.is_empty() && s.dropped == 0);
        // Re-arms cleanly: the first tick after reset is a baseline again.
        assert!(tel.tick(500, &m).is_empty());
        m.incr("c");
        tel.tick(510, &m);
        assert_eq!(tel.series().windows.len(), 1);
        assert_eq!(tel.series().windows[0].start_tick, 500);
    }

    #[test]
    fn safe_math_never_produces_non_finite() {
        assert_eq!(safe_div(1.0, 0.0), 0.0);
        assert_eq!(safe_div(0.0, 0.0), 0.0);
        assert_eq!(safe_div(f64::NAN, 2.0), 0.0);
        assert!((safe_div(6.0, 3.0) - 2.0).abs() < 1e-12);
        assert_eq!(safe_log2_ratio(5.0, 0.0), 0.0);
        assert_eq!(safe_log2_ratio(0.0, 5.0), 0.0);
        assert_eq!(safe_log2_ratio(-1.0, 5.0), 0.0);
        assert!((safe_log2_ratio(8.0, 1.0) - 3.0).abs() < 1e-12);
    }
}
