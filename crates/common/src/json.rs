//! A minimal JSON value, writer, and parser.
//!
//! The build environment vendors no serialization crate, so the
//! observability layer ([`crate::trace::RunReport`], the bench binaries'
//! machine-readable outputs) carries its own ~RFC 8259 subset: objects
//! preserve insertion order (reports diff cleanly run-to-run), numbers are
//! `f64` (every count the engine produces fits exactly below 2^53), and
//! serialization uses Rust's shortest-round-trip float formatting so
//! `parse(dump(v)) == v` holds bit-for-bit.

use std::fmt::Write as _;

/// A JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always finite; NaN/inf degrade to 0 at build time, and
    /// the writer prints any directly-constructed non-finite `Num` as 0).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) a member; builder-style.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(members) = &mut self {
            let value = value.into();
            match members.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = value,
                None => members.push((key.to_string(), value)),
            }
        } else {
            panic!("Json::set on a non-object");
        }
        self
    }

    /// Member lookup (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (two-space indent).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must be a single value, whole input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        // JSON has no NaN/Infinity token. A non-finite value (a rate
        // computed as 0/0 upstream) degrades to 0 here rather than
        // corrupting the document — or, worse, panicking mid-report.
        Json::Num(if n.is_finite() { n } else { 0.0 })
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity token; emitting one would corrupt the
        // whole document, so non-finite values degrade to 0.
        out.push('0');
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        // Integral values print without the ".0" Rust's `{:?}` would add.
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest representation that round-trips.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit:?} at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not produced by our writer;
                        // unpaired surrogates decode to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe
                // to do bytewise: find the char boundary).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text.parse().map_err(|_| format!("bad number {text:?} at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number {text:?}"));
    }
    Ok(Json::Num(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = Json::obj()
            .set("name", "fig5")
            .set("count", 42u64)
            .set("ratio", 0.1 + 0.2) // not representable exactly: must round-trip anyway
            .set("flag", true)
            .set("none", Json::Null)
            .set(
                "rows",
                Json::Arr(vec![Json::obj().set("sr", 0.002), Json::obj().set("sr", 0.05)]),
            );
        for text in [doc.dump(), doc.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "via {text}");
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_zero() {
        // A NaN (e.g. a rate computed as 0/0) must never corrupt the
        // document: it degrades to 0 and the output still parses.
        let doc = Json::obj()
            .set("nan", f64::NAN)
            .set("inf", f64::INFINITY)
            .set("neg_inf", f64::NEG_INFINITY);
        let text = doc.dump();
        assert_eq!(text, r#"{"nan":0,"inf":0,"neg_inf":0}"#);
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn preserves_member_order() {
        let doc = Json::obj().set("z", 1u64).set("a", 2u64).set("m", 3u64);
        assert_eq!(doc.dump(), r#"{"z":1,"a":2,"m":3}"#);
        // set() replaces in place without reordering.
        let doc = doc.set("a", 9u64);
        assert_eq!(doc.dump(), r#"{"z":1,"a":9,"m":3}"#);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}π".to_string());
        let text = doc.dump();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001π\"");
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(25000.0).dump(), "25000");
        assert_eq!(Json::Num(-3.0).dump(), "-3");
        assert_eq!(Json::Num(0.5).dump(), "0.5");
        assert_eq!(Json::Num(1e300).dump(), "1e300");
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": [1, "two", null], "b": 7}"#).unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_u64), Some(7));
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_str(), Some("two"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}", "nan"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
