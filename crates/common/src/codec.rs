//! A small self-describing value codec for example programs.
//!
//! The execution engine treats non-join attributes as opaque payload bytes
//! (see [`crate::types::BaseTuple`]); examples like the paper's
//! Student/Project scenario want named, typed attributes. This module
//! encodes a row of [`Value`]s into payload bytes and back, so the worked
//! examples of Section 2 (Tables 1–4) can round-trip human-readable data
//! through the engine without the hot path knowing about strings.

use crate::error::{Error, Result};

/// A dynamically-typed attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A UTF-8 string.
    Str(String),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` honours width/alignment flags, so rows line up in tables.
        match self {
            Value::Int(i) => f.pad(&i.to_string()),
            Value::Str(s) => f.pad(s),
        }
    }
}

const TAG_INT: u8 = 0x01;
const TAG_STR: u8 = 0x02;

/// Encode a row of values. Layout: `count:u16` then per value a tag byte and
/// the payload (`i64` little-endian for ints; `len:u16` + UTF-8 for strings).
pub fn encode_row(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&(values.len() as u16).to_le_bytes());
    for v in values {
        match v {
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u16).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

/// Decode a row previously produced by [`encode_row`]. Trailing padding
/// bytes (from fixed-size tuples) are ignored.
///
/// Every field is sliced out of `bytes` by reference; the only
/// allocations are the output vector and one `String` per string-valued
/// field (the owned result itself).
pub fn decode_row(bytes: &[u8]) -> Result<Vec<Value>> {
    // Borrow `n` bytes at `at` straight out of the input — no copy.
    let take = |at: usize, n: usize| -> Result<&[u8]> {
        bytes.get(at..at + n).ok_or_else(|| Error::Corrupt("row truncated".into()))
    };
    let count = u16::from_le_bytes(take(0, 2)?.try_into().unwrap()) as usize;
    let mut at = 2;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = *bytes.get(at).ok_or_else(|| Error::Corrupt("row tag missing".into()))?;
        at += 1;
        match tag {
            TAG_INT => {
                out.push(Value::Int(i64::from_le_bytes(take(at, 8)?.try_into().unwrap())));
                at += 8;
            }
            TAG_STR => {
                let len = u16::from_le_bytes(take(at, 2)?.try_into().unwrap()) as usize;
                at += 2;
                let s = std::str::from_utf8(take(at, len)?)
                    .map_err(|_| Error::Corrupt("row string not UTF-8".into()))?;
                out.push(Value::Str(s.to_string()));
                at += len;
            }
            other => return Err(Error::Corrupt(format!("unknown value tag {other:#x}"))),
        }
    }
    Ok(out)
}

/// Stable 64-bit key for a string attribute, so string-valued join columns
/// (e.g. `Country = NativeCountry` in the paper's example) can be joined by
/// the engine's `u64` keys. FNV-1a.
pub fn string_key(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pass-through allocator that tallies allocations per thread, so the
    /// zero-copy claim below is asserted, not assumed. Counting is
    /// per-thread because the test harness runs tests concurrently.
    struct CountingAlloc;

    thread_local! {
        static ALLOCS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            std::alloc::System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
            std::alloc::System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
        let before = ALLOCS.with(|c| c.get());
        let out = f();
        (out, ALLOCS.with(|c| c.get()) - before)
    }

    #[test]
    fn decode_makes_no_intermediate_allocations() {
        // The only allocations decoding may make are the ones the *result*
        // owns: one `Vec<Value>` plus one `String` per string field. The
        // old `take` helper copied every field into a scratch `Vec<u8>`
        // first (4 extra allocations for this row).
        let row = vec![
            Value::Int(1),
            Value::Str("Bando".into()),
            Value::Int(-7),
            Value::Str("Music".into()),
        ];
        let enc = encode_row(&row);
        let (decoded, allocs) = allocs_during(|| decode_row(&enc).unwrap());
        assert_eq!(decoded, row);
        assert_eq!(allocs, 3, "1 Vec + 2 Strings; anything more is an intermediate copy");

        let (decoded, allocs) =
            allocs_during(|| decode_row(&encode_row(&[Value::Int(9)])).unwrap());
        assert_eq!(decoded, vec![Value::Int(9)]);
        assert_eq!(allocs, 2, "encode's Vec + decode's Vec; int fields allocate nothing");
    }

    #[test]
    fn roundtrip_mixed_row() {
        let row = vec![Value::Str("S. Bando".into()), Value::Str("Music".into()), Value::Int(-42)];
        let enc = encode_row(&row);
        assert_eq!(decode_row(&enc).unwrap(), row);
    }

    #[test]
    fn roundtrip_survives_padding() {
        let row = vec![Value::Int(7)];
        let mut enc = encode_row(&row);
        enc.extend_from_slice(&[0u8; 50]); // fixed-size tuple padding
        assert_eq!(decode_row(&enc).unwrap(), row);
    }

    #[test]
    fn empty_row() {
        let enc = encode_row(&[]);
        assert_eq!(decode_row(&enc).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode_row(&[]).is_err());
        assert!(decode_row(&[2, 0, 0xFF]).is_err()); // bad tag
        let enc = encode_row(&[Value::Str("abcdef".into())]);
        assert!(decode_row(&enc[..enc.len() - 2]).is_err()); // truncated
    }

    #[test]
    fn string_keys_collide_only_on_equal_strings() {
        assert_eq!(string_key("Mexico"), string_key("Mexico"));
        assert_ne!(string_key("Mexico"), string_key("Italy"));
        assert_ne!(string_key("USA"), string_key("Peru"));
        assert_ne!(string_key(""), string_key(" "));
    }

    #[test]
    fn display_values() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Str("Coba".into()).to_string(), "Coba");
    }
}
