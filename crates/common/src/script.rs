//! Workload *scripts* for the deterministic simulation harness.
//!
//! A script is a typed, replayable description of one simulated run: the
//! initial-relation spec, the serving-layer shard counts to exercise, and
//! an op sequence of R/S inserts, deletes, join-attribute and payload
//! modifies, query checkpoints, fault injections, and serve-layer batch
//! boundaries. Scripts are the harness's *only* currency — the generator
//! emits them, the driver replays them, the shrinker edits them, and repro
//! files serialize them — so the grammar lives here in `trijoin-common`
//! where every layer can speak it without dependency cycles.
//!
//! Two properties make scripts robust under delta-debugging:
//!
//! - **Pick-based addressing.** Ops never name a tuple that must exist:
//!   deletes and modifies carry a `pick` that the driver reduces modulo
//!   the relation's live count at replay time. Removing any subset of ops
//!   leaves a well-formed script — exactly what a shrinker needs.
//! - **Explicit surrogates with skip-on-conflict.** Inserts carry their
//!   surrogate; the driver skips an insert whose surrogate is already
//!   live. Deleting an earlier op can therefore never make a later one
//!   invalid, only (deterministically) inert.
//!
//! The JSON codec round-trips scripts exactly. Seeds are serialized as
//! hex *strings* because they are full-range `u64` values and JSON
//! numbers are `f64` (53 bits of integer precision).

use crate::json::Json;

/// The adversarial traffic shapes the check generator can emit (schema
/// v3). Each shape stresses a different axis of the adaptive serving
/// layer's strategy selection; see `trijoin_check::gen` for the op-level
/// semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryShape {
    /// Dense update trains separated by query-heavy lulls.
    Bursty,
    /// Zipf-distributed hot-key skew with a tunable exponent.
    Zipf,
    /// Alternating query-dominant and update-dominant regimes.
    Phase,
    /// Per-shard key-range bias: one shard's partition soaks the churn.
    Imbalance,
}

impl AdversaryShape {
    /// Stable wire name (also the CLI `--adversary` spelling).
    pub fn as_str(&self) -> &'static str {
        match self {
            AdversaryShape::Bursty => "bursty",
            AdversaryShape::Zipf => "zipf",
            AdversaryShape::Phase => "phase",
            AdversaryShape::Imbalance => "imbalance",
        }
    }

    /// Inverse of [`AdversaryShape::as_str`].
    pub fn from_wire(name: &str) -> Option<AdversaryShape> {
        Some(match name {
            "bursty" => AdversaryShape::Bursty,
            "zipf" => AdversaryShape::Zipf,
            "phase" => AdversaryShape::Phase,
            "imbalance" => AdversaryShape::Imbalance,
            _ => return None,
        })
    }

    /// Every shape, in wire-name order.
    pub fn all() -> [AdversaryShape; 4] {
        [
            AdversaryShape::Bursty,
            AdversaryShape::Zipf,
            AdversaryShape::Phase,
            AdversaryShape::Imbalance,
        ]
    }
}

/// Adversarial-generator configuration carried by a v3 script spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Adversary {
    /// Traffic shape.
    pub shape: AdversaryShape,
    /// Skew exponent (`zipf` only; the others ignore it). Serialized for
    /// every shape so scripts stay self-describing.
    pub exponent: f64,
}

impl Adversary {
    /// The given shape with the default skew exponent (1.2).
    pub fn new(shape: AdversaryShape) -> Adversary {
        Adversary { shape, exponent: 1.2 }
    }
}

/// Initial-relation specification embedded in every script. Mirrors the
/// core crate's `WorkloadSpec` (the driver converts; `trijoin-common`
/// cannot depend on it) with the update-model fields omitted — a script's
/// op sequence *is* the update model.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptSpec {
    /// `‖R‖` at generation time.
    pub r_tuples: u32,
    /// `‖S‖` at generation time.
    pub s_tuples: u32,
    /// Serialized tuple size for both relations.
    pub tuple_bytes: usize,
    /// Target semijoin selectivity of the initial relations.
    pub sr: f64,
    /// Join partners per matching tuple.
    pub group_size: u32,
    /// Seed of the initial-relation generator.
    pub seed: u64,
    /// Adversarial traffic shape the op stream was generated under
    /// (schema v3; `None` on every older script and on uniform traffic).
    pub adversary: Option<Adversary>,
    /// Replay the serving layers in adaptive mode (schema v3): shards
    /// start on one strategy and migrate online as the traffic shifts.
    pub adaptive: bool,
}

/// One step of a script.
///
/// `pick` fields address a live tuple as `pick % live_count` over the
/// surrogate-ordered mirror; `tag` fields deterministically derive the
/// new payload bytes; `key` fields are explicit join-key values.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptOp {
    /// Insert a fresh tuple into R (skipped if `sur` is already live).
    InsertR {
        /// Explicit surrogate of the new tuple.
        sur: u32,
        /// Join-key value.
        key: u64,
        /// Payload tag.
        tag: u64,
    },
    /// Insert a fresh tuple into S (skipped if `sur` is already live).
    InsertS {
        /// Explicit surrogate of the new tuple.
        sur: u32,
        /// Join-key value.
        key: u64,
        /// Payload tag.
        tag: u64,
    },
    /// Delete a live R tuple (skipped when ≤ 1 tuple remains).
    DeleteR {
        /// Victim selector (`pick % live_count`).
        pick: u64,
    },
    /// Delete a live S tuple (skipped when ≤ 1 tuple remains).
    DeleteS {
        /// Victim selector.
        pick: u64,
    },
    /// Update an R tuple's join attribute (the paper's `Pr_A` event).
    ModifyJoinR {
        /// Victim selector.
        pick: u64,
        /// New join-key value.
        key: u64,
        /// New payload tag.
        tag: u64,
    },
    /// Update an S tuple's join attribute.
    ModifyJoinS {
        /// Victim selector.
        pick: u64,
        /// New join-key value.
        key: u64,
        /// New payload tag.
        tag: u64,
    },
    /// Update an R tuple's payload only (join attribute unchanged).
    ModifyPayloadR {
        /// Victim selector.
        pick: u64,
        /// New payload tag.
        tag: u64,
    },
    /// Update an S tuple's payload only.
    ModifyPayloadS {
        /// Victim selector.
        pick: u64,
        /// New payload tag.
        tag: u64,
    },
    /// Query every engine and server, assert MV ≡ JI ≡ HH ≡ oracle ≡
    /// sharded-serve, and run the cost-model metamorphic checks.
    Checkpoint,
    /// Arm a seeded fault plan; the driver installs it at the next
    /// checkpoint, immediately before query execution (§8 recovery must
    /// make the answers equal anyway).
    Fault {
        /// Seed of the fault-plan derivation.
        seed: u64,
    },
    /// Serve-layer batch boundary: flush every server's pending updates.
    /// In durable mode this is also a commit barrier (engines commit,
    /// servers drive their shard-commit barrier).
    Batch,
    /// Durable-mode crash: kill every engine and server mid-run at this
    /// point — *without* committing — then reopen from disk, replaying
    /// each WAL. `seed` deterministically picks the sabotage flavour of
    /// the preceding in-flight commit (overlay dropped cold, torn log
    /// tail, or sealed-but-unapplied log; see
    /// `trijoin_storage::CommitSabotage`). On the in-memory backend the
    /// op is inert: there is nothing to reopen from, so the driver treats
    /// it as a no-op and the equivalence checks simply continue.
    Crash {
        /// Seed of the sabotage-flavour derivation.
        seed: u64,
    },
}

impl ScriptOp {
    /// The op's JSON discriminator string.
    pub fn kind(&self) -> &'static str {
        match self {
            ScriptOp::InsertR { .. } => "insert_r",
            ScriptOp::InsertS { .. } => "insert_s",
            ScriptOp::DeleteR { .. } => "delete_r",
            ScriptOp::DeleteS { .. } => "delete_s",
            ScriptOp::ModifyJoinR { .. } => "modify_join_r",
            ScriptOp::ModifyJoinS { .. } => "modify_join_s",
            ScriptOp::ModifyPayloadR { .. } => "modify_payload_r",
            ScriptOp::ModifyPayloadS { .. } => "modify_payload_s",
            ScriptOp::Checkpoint => "checkpoint",
            ScriptOp::Fault { .. } => "fault",
            ScriptOp::Batch => "batch",
            ScriptOp::Crash { .. } => "crash",
        }
    }

    /// Whether the op mutates a base relation (vs. control flow).
    pub fn is_mutation(&self) -> bool {
        !matches!(
            self,
            ScriptOp::Checkpoint
                | ScriptOp::Fault { .. }
                | ScriptOp::Batch
                | ScriptOp::Crash { .. }
        )
    }
}

/// Newest script schema version this build writes and reads. Version 2
/// added the `crash` op; version 3 added the adversarial-generator spec
/// extensions (`adversary`, `adaptive`). Readers accept
/// [`SCRIPT_VERSION_MIN`]`..=SCRIPT_VERSION` so older corpus files stay
/// replayable forever, and writers stamp the *oldest* version that can
/// carry the script ([`Script::version`]) so pre-v3 scripts keep
/// serializing byte-identically.
pub const SCRIPT_VERSION: u64 = 3;

/// Oldest script schema version this build still reads.
pub const SCRIPT_VERSION_MIN: u64 = 1;

/// A complete replayable simulation script.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// Human-readable provenance (e.g. `"seed-7"` or `"shrunk(seed-7)"`).
    pub name: String,
    /// Initial-relation spec.
    pub spec: ScriptSpec,
    /// Serving-layer shard counts to run alongside the single-node
    /// engines (e.g. `[1, 2, 4]`).
    pub shard_counts: Vec<usize>,
    /// Admission batch size for every server.
    pub batch: usize,
    /// The op sequence.
    pub ops: Vec<ScriptOp>,
}

/// Serialize a full-range `u64` seed losslessly (JSON numbers are `f64`).
fn seed_json(seed: u64) -> Json {
    Json::Str(format!("{seed:#x}"))
}

/// Parse a seed serialized by [`seed_json`]; plain decimal also accepted
/// for hand-written scripts.
fn seed_from(j: &Json, what: &str) -> Result<u64, String> {
    match j {
        Json::Str(s) => {
            let parsed = match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse::<u64>(),
            };
            parsed.map_err(|_| format!("script: {what}: bad seed literal {s:?}"))
        }
        Json::Num(_) => j.as_u64().ok_or_else(|| format!("script: {what}: seed not a u64")),
        _ => Err(format!("script: {what}: seed must be a hex string or number")),
    }
}

fn field<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("script: {what}: missing field {key:?}"))
}

fn num_u64(obj: &Json, key: &str, what: &str) -> Result<u64, String> {
    field(obj, key, what)?
        .as_u64()
        .ok_or_else(|| format!("script: {what}: field {key:?} must be a non-negative integer"))
}

fn num_f64(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    field(obj, key, what)?
        .as_f64()
        .ok_or_else(|| format!("script: {what}: field {key:?} must be a number"))
}

impl ScriptSpec {
    /// Whether this spec uses any schema-v3 extension. Version stamping
    /// keys off this so pre-adversary scripts re-serialize byte-for-byte
    /// as version 2 (the committed corpus and `--emit` regeneration are
    /// pinned on that).
    pub fn uses_v3(&self) -> bool {
        self.adversary.is_some() || self.adaptive
    }

    fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .set("r_tuples", self.r_tuples as u64)
            .set("s_tuples", self.s_tuples as u64)
            .set("tuple_bytes", self.tuple_bytes as u64)
            .set("sr", self.sr)
            .set("group_size", self.group_size as u64)
            .set("seed", seed_json(self.seed));
        if let Some(adv) = &self.adversary {
            j = j.set(
                "adversary",
                Json::obj().set("shape", adv.shape.as_str()).set("exponent", adv.exponent),
            );
        }
        if self.adaptive {
            j = j.set("adaptive", true);
        }
        j
    }

    fn from_json(j: &Json) -> Result<ScriptSpec, String> {
        let adversary = match j.get("adversary") {
            None => None,
            Some(a) => {
                let shape = field(a, "shape", "adversary")?
                    .as_str()
                    .and_then(AdversaryShape::from_wire)
                    .ok_or_else(|| "script: adversary: unknown shape".to_string())?;
                let exponent = num_f64(a, "exponent", "adversary")?;
                if !(exponent.is_finite() && exponent >= 0.0) {
                    return Err(format!("script: adversary: bad exponent {exponent}"));
                }
                Some(Adversary { shape, exponent })
            }
        };
        let adaptive = match j.get("adaptive") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("script: spec: field \"adaptive\" must be a bool".into()),
        };
        let spec = ScriptSpec {
            r_tuples: num_u64(j, "r_tuples", "spec")? as u32,
            s_tuples: num_u64(j, "s_tuples", "spec")? as u32,
            tuple_bytes: num_u64(j, "tuple_bytes", "spec")? as usize,
            sr: num_f64(j, "sr", "spec")?,
            group_size: num_u64(j, "group_size", "spec")? as u32,
            seed: seed_from(field(j, "seed", "spec")?, "spec")?,
            adversary,
            adaptive,
        };
        if spec.r_tuples == 0 || spec.s_tuples == 0 {
            return Err("script: spec: relations must be non-empty".into());
        }
        if !(0.0..=1.0).contains(&spec.sr) {
            return Err(format!("script: spec: sr {} out of [0, 1]", spec.sr));
        }
        Ok(spec)
    }
}

impl ScriptOp {
    fn to_json(&self) -> Json {
        let j = Json::obj().set("op", self.kind());
        match *self {
            ScriptOp::InsertR { sur, key, tag } | ScriptOp::InsertS { sur, key, tag } => {
                j.set("sur", sur as u64).set("key", key).set("tag", tag)
            }
            ScriptOp::DeleteR { pick } | ScriptOp::DeleteS { pick } => j.set("pick", pick),
            ScriptOp::ModifyJoinR { pick, key, tag } | ScriptOp::ModifyJoinS { pick, key, tag } => {
                j.set("pick", pick).set("key", key).set("tag", tag)
            }
            ScriptOp::ModifyPayloadR { pick, tag } | ScriptOp::ModifyPayloadS { pick, tag } => {
                j.set("pick", pick).set("tag", tag)
            }
            ScriptOp::Checkpoint | ScriptOp::Batch => j,
            ScriptOp::Fault { seed } | ScriptOp::Crash { seed } => j.set("seed", seed_json(seed)),
        }
    }

    fn from_json(j: &Json) -> Result<ScriptOp, String> {
        let kind = field(j, "op", "op")?
            .as_str()
            .ok_or_else(|| "script: op: field \"op\" must be a string".to_string())?;
        let op = match kind {
            "insert_r" | "insert_s" => {
                let sur = num_u64(j, "sur", kind)? as u32;
                let key = num_u64(j, "key", kind)?;
                let tag = num_u64(j, "tag", kind)?;
                if kind == "insert_r" {
                    ScriptOp::InsertR { sur, key, tag }
                } else {
                    ScriptOp::InsertS { sur, key, tag }
                }
            }
            "delete_r" => ScriptOp::DeleteR { pick: num_u64(j, "pick", kind)? },
            "delete_s" => ScriptOp::DeleteS { pick: num_u64(j, "pick", kind)? },
            "modify_join_r" | "modify_join_s" => {
                let pick = num_u64(j, "pick", kind)?;
                let key = num_u64(j, "key", kind)?;
                let tag = num_u64(j, "tag", kind)?;
                if kind == "modify_join_r" {
                    ScriptOp::ModifyJoinR { pick, key, tag }
                } else {
                    ScriptOp::ModifyJoinS { pick, key, tag }
                }
            }
            "modify_payload_r" => ScriptOp::ModifyPayloadR {
                pick: num_u64(j, "pick", kind)?,
                tag: num_u64(j, "tag", kind)?,
            },
            "modify_payload_s" => ScriptOp::ModifyPayloadS {
                pick: num_u64(j, "pick", kind)?,
                tag: num_u64(j, "tag", kind)?,
            },
            "checkpoint" => ScriptOp::Checkpoint,
            "fault" => ScriptOp::Fault { seed: seed_from(field(j, "seed", kind)?, kind)? },
            "batch" => ScriptOp::Batch,
            "crash" => ScriptOp::Crash { seed: seed_from(field(j, "seed", kind)?, kind)? },
            other => return Err(format!("script: unknown op kind {other:?}")),
        };
        Ok(op)
    }
}

impl Script {
    /// The schema version this script serializes under: the oldest
    /// version whose grammar carries it (v3 only when a spec extension is
    /// in play), so adding extensions never perturbed older scripts'
    /// bytes.
    pub fn version(&self) -> u64 {
        if self.spec.uses_v3() {
            3
        } else {
            2
        }
    }

    /// Serialize to the versioned JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("version", self.version())
            .set("name", self.name.as_str())
            .set("spec", self.spec.to_json())
            .set(
                "shard_counts",
                Json::Arr(self.shard_counts.iter().map(|&n| Json::from(n as u64)).collect()),
            )
            .set("batch", self.batch as u64)
            .set("ops", Json::Arr(self.ops.iter().map(ScriptOp::to_json).collect()))
    }

    /// Parse the JSON form, validating the schema version and every op.
    pub fn from_json(j: &Json) -> Result<Script, String> {
        let version = num_u64(j, "version", "script")?;
        if !(SCRIPT_VERSION_MIN..=SCRIPT_VERSION).contains(&version) {
            return Err(format!(
                "script: unsupported version {version} \
                 (this build reads {SCRIPT_VERSION_MIN}..={SCRIPT_VERSION})"
            ));
        }
        let name = field(j, "name", "script")?
            .as_str()
            .ok_or_else(|| "script: field \"name\" must be a string".to_string())?
            .to_string();
        let spec = ScriptSpec::from_json(field(j, "spec", "script")?)?;
        let counts = field(j, "shard_counts", "script")?
            .as_arr()
            .ok_or_else(|| "script: field \"shard_counts\" must be an array".to_string())?;
        let mut shard_counts = Vec::with_capacity(counts.len());
        for c in counts {
            let n = c.as_u64().ok_or_else(|| "script: bad shard count".to_string())? as usize;
            if n == 0 {
                return Err("script: shard count must be positive".into());
            }
            shard_counts.push(n);
        }
        let batch = num_u64(j, "batch", "script")? as usize;
        if batch == 0 {
            return Err("script: batch must be positive".into());
        }
        let ops_json = field(j, "ops", "script")?
            .as_arr()
            .ok_or_else(|| "script: field \"ops\" must be an array".to_string())?;
        let mut ops = Vec::with_capacity(ops_json.len());
        for (i, op) in ops_json.iter().enumerate() {
            ops.push(ScriptOp::from_json(op).map_err(|e| format!("{e} (ops[{i}])"))?);
        }
        Ok(Script { name, spec, shard_counts, batch, ops })
    }

    /// Serialize to a pretty-printed JSON string (the repro-file format).
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Parse a JSON string produced by [`Script::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<Script, String> {
        Script::from_json(&Json::parse(text)?)
    }

    /// Number of checkpoints in the op sequence.
    pub fn checkpoints(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, ScriptOp::Checkpoint)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Script {
        Script {
            name: "seed-7".into(),
            spec: ScriptSpec {
                r_tuples: 96,
                s_tuples: 80,
                tuple_bytes: 64,
                sr: 0.25,
                group_size: 4,
                seed: 0xdead_beef_cafe_f00d, // > 2^53: exercises hex encoding
                adversary: None,
                adaptive: false,
            },
            shard_counts: vec![1, 2, 4],
            batch: 8,
            ops: vec![
                ScriptOp::InsertR { sur: 200, key: 3, tag: 17 },
                ScriptOp::InsertS { sur: 201, key: 1 << 41, tag: 18 },
                ScriptOp::DeleteR { pick: 5 },
                ScriptOp::DeleteS { pick: 11 },
                ScriptOp::ModifyJoinR { pick: 2, key: 1, tag: 19 },
                ScriptOp::ModifyJoinS { pick: 9, key: 0, tag: 20 },
                ScriptOp::ModifyPayloadR { pick: 0, tag: 21 },
                ScriptOp::ModifyPayloadS { pick: 4, tag: 22 },
                ScriptOp::Batch,
                ScriptOp::Fault { seed: u64::MAX },
                ScriptOp::Crash { seed: 0x0123_4567_89ab_cdef },
                ScriptOp::Checkpoint,
            ],
        }
    }

    #[test]
    fn roundtrip_every_op_kind() {
        let script = sample();
        let text = script.to_json_string();
        let back = Script::from_json_str(&text).unwrap();
        assert_eq!(back, script);
        // The JSON itself is stable under a re-dump (insertion order).
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn seeds_roundtrip_beyond_f64_precision() {
        // 2^53 + 1 is the first integer JSON numbers cannot carry.
        let mut script = sample();
        script.spec.seed = (1 << 53) + 1;
        script.ops = vec![ScriptOp::Fault { seed: (1 << 60) + 3 }, ScriptOp::Checkpoint];
        let back = Script::from_json_str(&script.to_json_string()).unwrap();
        assert_eq!(back.spec.seed, (1 << 53) + 1);
        assert_eq!(back.ops[0], ScriptOp::Fault { seed: (1 << 60) + 3 });
    }

    #[test]
    fn rejects_malformed_scripts() {
        let good = sample().to_json();
        // Wrong version.
        let bad = good.clone().set("version", 99u64);
        assert!(Script::from_json(&bad).unwrap_err().contains("version"));
        // Unknown op kind.
        let bad = good.clone().set("ops", Json::Arr(vec![Json::obj().set("op", "explode")]));
        assert!(Script::from_json(&bad).unwrap_err().contains("unknown op"));
        // Missing field inside an op, with its index in the message.
        let bad = good.clone().set("ops", Json::Arr(vec![Json::obj().set("op", "delete_r")]));
        let err = Script::from_json(&bad).unwrap_err();
        assert!(err.contains("pick") && err.contains("ops[0]"), "{err}");
        // Zero shard count.
        let bad = good.clone().set("shard_counts", Json::Arr(vec![Json::from(0u64)]));
        assert!(Script::from_json(&bad).is_err());
        // sr out of range.
        let bad_spec = sample().spec.to_json().set("sr", 1.5);
        let bad = good.clone().set("spec", bad_spec);
        assert!(Script::from_json(&bad).unwrap_err().contains("sr"));
        // Not even JSON.
        assert!(Script::from_json_str("{nope").is_err());
    }

    #[test]
    fn version_1_scripts_still_parse() {
        // Version 1 predates the `crash` op; everything else is identical,
        // so a v1 file is just a v2 file with the old stamp and no crashes.
        let mut script = sample();
        script.ops.retain(|op| !matches!(op, ScriptOp::Crash { .. }));
        let j = script.to_json().set("version", SCRIPT_VERSION_MIN);
        assert_eq!(Script::from_json(&j).unwrap(), script);
    }

    #[test]
    fn pre_adversary_scripts_still_stamp_version_2() {
        // The committed corpus and `--emit` regeneration are pinned on
        // this: a spec without v3 extensions serializes exactly as before
        // the extensions existed — version 2, no extra spec fields.
        let script = sample();
        let j = script.to_json();
        assert_eq!(j.get("version").and_then(Json::as_u64), Some(2));
        assert!(j.get("spec").unwrap().get("adversary").is_none());
        assert!(j.get("spec").unwrap().get("adaptive").is_none());
    }

    #[test]
    fn adversary_specs_round_trip_as_version_3() {
        for shape in AdversaryShape::all() {
            let mut script = sample();
            script.spec.adversary = Some(Adversary { shape, exponent: 1.5 });
            script.spec.adaptive = true;
            let j = script.to_json();
            assert_eq!(j.get("version").and_then(Json::as_u64), Some(3));
            let back = Script::from_json(&j).unwrap();
            assert_eq!(back, script);
            // And the text form is stable under a re-dump.
            let text = script.to_json_string();
            assert_eq!(Script::from_json_str(&text).unwrap().to_json_string(), text);
        }
        // `adaptive` alone is enough to force v3.
        let mut script = sample();
        script.spec.adaptive = true;
        assert_eq!(script.version(), 3);
        assert_eq!(Script::from_json(&script.to_json()).unwrap(), script);
    }

    #[test]
    fn malformed_adversary_specs_are_rejected() {
        let good = sample().to_json();
        let spec = sample().spec.to_json();
        // Unknown shape.
        let bad_spec =
            spec.clone().set("adversary", Json::obj().set("shape", "chaotic").set("exponent", 1.0));
        let err = Script::from_json(&good.clone().set("spec", bad_spec)).unwrap_err();
        assert!(err.contains("shape"), "{err}");
        // Negative exponent (NaN/Infinity degrade to 0 at the Json layer).
        let bad_spec = spec
            .clone()
            .set("adversary", Json::obj().set("shape", "zipf").set("exponent", Json::Num(-1.0)));
        assert!(Script::from_json(&good.clone().set("spec", bad_spec)).is_err());
        // Non-bool adaptive flag.
        let bad_spec = spec.set("adaptive", 1u64);
        let err = Script::from_json(&good.set("spec", bad_spec)).unwrap_err();
        assert!(err.contains("adaptive"), "{err}");
    }

    #[test]
    fn decimal_seeds_accepted_for_handwritten_scripts() {
        let j = sample().to_json();
        let spec = sample().spec.to_json().set("seed", Json::Str("12345".into()));
        let script = Script::from_json(&j.set("spec", spec)).unwrap();
        assert_eq!(script.spec.seed, 12345);
    }

    #[test]
    fn op_kind_labels_are_distinct() {
        let script = sample();
        let mut kinds: Vec<&str> = script.ops.iter().map(|o| o.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), script.ops.len(), "sample covers every kind once");
        assert!(!ScriptOp::Checkpoint.is_mutation());
        assert!(ScriptOp::DeleteR { pick: 0 }.is_mutation());
    }
}
