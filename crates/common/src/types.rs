//! Tuple types of the paper's data model.
//!
//! The paper's relations `R` and `S` carry a unique *surrogate* plus
//! attributes; the join is an equi-join on a common attribute `A`. The
//! execution engine represents a base tuple as surrogate + 64-bit join key +
//! opaque payload bytes (the remaining attributes), padded by the workload
//! generator so the serialized size equals the paper's `T_R`/`T_S`.
//!
//! Surrogates are 32-bit to match the paper's `ssur = 4` bytes, which in turn
//! makes the join-index entry exactly 8 bytes and `n_JI = 350` at Table 7
//! defaults — the same packing the analytical model assumes.

use crate::error::{Error, Result};

/// A tuple's unique, immutable identifier (`ssur` = 4 bytes per Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Surrogate(pub u32);

impl std::fmt::Display for Surrogate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:03}", self.0)
    }
}

/// The join attribute's domain. 64-bit so workload generators can embed
/// structure (group ids) and examples can store hashed strings.
pub type JoinKey = u64;

/// Deterministic 64-bit mixer used wherever the paper says `hash(A)`:
/// linear-hash bucket addressing, hybrid-hash partitioning, and the
/// sort-by-`hash(A)` of the materialized-view differential pipeline.
///
/// SplitMix64 finalizer — high quality, dependency-free, and stable across
/// runs (the whole simulator is deterministic).
#[inline]
pub fn hash_key(k: JoinKey) -> u64 {
    let mut z = k.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which of `shards` partitions a join key belongs to. The serving layer
/// hash-partitions both `R` and `S` on the join attribute with this one
/// function, which is what makes per-shard joins exhaustive and disjoint:
/// every joining pair shares a key, hence a shard, so
/// `R ⋈ S = ⋃ᵢ Rᵢ ⋈ Sᵢ` with no cross-shard pairs and no duplicates.
///
/// Uses the upper bits of [`hash_key`] so it stays decorrelated from the
/// low-bit bucket addressing of the linear-hash and hybrid-hash layers
/// (a shard-local hash table must not see all its keys collide).
#[inline]
pub fn shard_of_key(k: JoinKey, shards: usize) -> usize {
    assert!(shards > 0, "shard_of_key: shard count must be positive");
    // Multiply-shift range reduction on the high 32 bits: unbiased enough
    // for partitioning and avoids the modulo's low-bit sensitivity.
    (((hash_key(k) >> 32) * shards as u64) >> 32) as usize
}

/// A base-relation tuple: surrogate, join attribute, opaque payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BaseTuple {
    /// Unique identifier within the relation.
    pub sur: Surrogate,
    /// Value of the join attribute `A`.
    pub key: JoinKey,
    /// Remaining attributes, padded to the configured tuple size.
    pub payload: Box<[u8]>,
}

impl BaseTuple {
    /// Fixed serialization overhead: surrogate (4) + key (8) + length (2).
    pub const HEADER_BYTES: usize = 14;

    /// Build a tuple whose serialized size is exactly `tuple_bytes`
    /// (payload zero-padded). Panics if `tuple_bytes < HEADER_BYTES`.
    pub fn padded(sur: Surrogate, key: JoinKey, tuple_bytes: usize) -> Self {
        assert!(
            tuple_bytes >= Self::HEADER_BYTES,
            "tuple size {tuple_bytes} smaller than header {}",
            Self::HEADER_BYTES
        );
        BaseTuple {
            sur,
            key,
            payload: vec![0u8; tuple_bytes - Self::HEADER_BYTES].into_boxed_slice(),
        }
    }

    /// Like [`BaseTuple::padded`] but with caller-supplied payload bytes,
    /// zero-padded (or rejected if too long).
    pub fn with_payload(
        sur: Surrogate,
        key: JoinKey,
        payload: &[u8],
        tuple_bytes: usize,
    ) -> Result<Self> {
        let cap = tuple_bytes
            .checked_sub(Self::HEADER_BYTES)
            .ok_or_else(|| Error::Invariant("tuple size below header".into()))?;
        if payload.len() > cap {
            return Err(Error::PageOverflow { needed: payload.len(), available: cap });
        }
        let mut buf = vec![0u8; cap];
        buf[..payload.len()].copy_from_slice(payload);
        Ok(BaseTuple { sur, key, payload: buf.into_boxed_slice() })
    }

    /// Serialized size in bytes.
    pub fn serialized_len(&self) -> usize {
        Self::HEADER_BYTES + self.payload.len()
    }

    /// Serialize to bytes (layout: `sur | key | payload_len | payload`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        self.write_bytes(&mut out);
        out
    }

    /// Append the serialized form to `out` — the buffer-reuse path hot
    /// loops use to serialize many tuples without one `Vec` each.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.reserve(self.serialized_len());
        out.extend_from_slice(&self.sur.0.to_le_bytes());
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// Deserialize from bytes produced by [`BaseTuple::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let (sur, key, payload) = Self::parts_from_bytes(bytes)?;
        Ok(BaseTuple { sur, key, payload: payload.to_vec().into_boxed_slice() })
    }

    /// Decode the serialized form without materializing the payload: same
    /// validation and errors as [`BaseTuple::from_bytes`], but the payload
    /// stays a borrow into `bytes`. This is the scan-path decode — columnar
    /// batches copy the payload at most once, into an arena, instead of
    /// one boxed slice per visited tuple.
    pub fn parts_from_bytes(bytes: &[u8]) -> Result<(Surrogate, JoinKey, &[u8])> {
        if bytes.len() < Self::HEADER_BYTES {
            return Err(Error::Corrupt(format!(
                "base tuple needs >= {} bytes, got {}",
                Self::HEADER_BYTES,
                bytes.len()
            )));
        }
        let sur = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        let key = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
        let plen = u16::from_le_bytes(bytes[12..14].try_into().unwrap()) as usize;
        if bytes.len() < Self::HEADER_BYTES + plen {
            return Err(Error::Corrupt(format!(
                "base tuple payload truncated: want {plen}, have {}",
                bytes.len() - Self::HEADER_BYTES
            )));
        }
        Ok((Surrogate(sur), key, &bytes[14..14 + plen]))
    }
}

/// A materialized-view tuple: the concatenation of a joining `R` tuple and
/// `S` tuple (the paper's `V = R ⋈ S`, full projection).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewTuple {
    /// Surrogate of the contributing `R` tuple.
    pub r_sur: Surrogate,
    /// Surrogate of the contributing `S` tuple.
    pub s_sur: Surrogate,
    /// The (shared) join-attribute value.
    pub key: JoinKey,
    /// Payload of the `R` side.
    pub r_payload: Box<[u8]>,
    /// Payload of the `S` side.
    pub s_payload: Box<[u8]>,
}

impl ViewTuple {
    /// Fixed serialization overhead: 2 surrogates (8) + key (8) + 2 lengths (4).
    pub const HEADER_BYTES: usize = 20;

    /// Combine an `R` tuple and an `S` tuple that join on the same key.
    pub fn join(r: &BaseTuple, s: &BaseTuple) -> Self {
        debug_assert_eq!(r.key, s.key, "view tuple from non-joining pair");
        Self::from_parts(r.sur, s.sur, r.key, &r.payload, &s.payload)
    }

    /// Combine decoded halves without intermediate [`BaseTuple`]s — the
    /// columnar probe loops emit matches straight from borrowed payloads.
    pub fn from_parts(
        r_sur: Surrogate,
        s_sur: Surrogate,
        key: JoinKey,
        r_payload: &[u8],
        s_payload: &[u8],
    ) -> Self {
        ViewTuple { r_sur, s_sur, key, r_payload: r_payload.into(), s_payload: s_payload.into() }
    }

    /// Serialized size in bytes (the paper's `T_V ≈ T_R + T_S`).
    pub fn serialized_len(&self) -> usize {
        Self::HEADER_BYTES + self.r_payload.len() + self.s_payload.len()
    }

    /// Serialize (layout: `r_sur | s_sur | key | rlen | slen | r | s`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        self.write_bytes(&mut out);
        out
    }

    /// Append the serialized form to `out` (buffer-reuse path).
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.reserve(self.serialized_len());
        out.extend_from_slice(&self.r_sur.0.to_le_bytes());
        out.extend_from_slice(&self.s_sur.0.to_le_bytes());
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&(self.r_payload.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.s_payload.len() as u16).to_le_bytes());
        out.extend_from_slice(&self.r_payload);
        out.extend_from_slice(&self.s_payload);
    }

    /// Deserialize from bytes produced by [`ViewTuple::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < Self::HEADER_BYTES {
            return Err(Error::Corrupt("view tuple header truncated".into()));
        }
        let r_sur = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        let s_sur = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let key = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let rlen = u16::from_le_bytes(bytes[16..18].try_into().unwrap()) as usize;
        let slen = u16::from_le_bytes(bytes[18..20].try_into().unwrap()) as usize;
        if bytes.len() < Self::HEADER_BYTES + rlen + slen {
            return Err(Error::Corrupt("view tuple payload truncated".into()));
        }
        Ok(ViewTuple {
            r_sur: Surrogate(r_sur),
            s_sur: Surrogate(s_sur),
            key,
            r_payload: bytes[20..20 + rlen].to_vec().into_boxed_slice(),
            s_payload: bytes[20 + rlen..20 + rlen + slen].to_vec().into_boxed_slice(),
        })
    }

    /// The (r, s) surrogate pair this view tuple derives from — exactly a
    /// join-index entry, which is how correctness of the three strategies is
    /// compared.
    pub fn ji_entry(&self) -> JiEntry {
        JiEntry { r: self.r_sur, s: self.s_sur }
    }
}

/// A join-index entry: the surrogate pair of a joining tuple pair
/// (Valduriez's join index; the paper's Table 4). Exactly `2·ssur` = 8 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JiEntry {
    /// Surrogate of the `R` tuple.
    pub r: Surrogate,
    /// Surrogate of the `S` tuple.
    pub s: Surrogate,
}

impl JiEntry {
    /// Serialized size: two 4-byte surrogates.
    pub const BYTES: usize = 8;

    /// Serialize to exactly [`JiEntry::BYTES`] bytes.
    pub fn to_bytes(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[0..4].copy_from_slice(&self.r.0.to_le_bytes());
        out[4..8].copy_from_slice(&self.s.0.to_le_bytes());
        out
    }

    /// Deserialize from exactly 8 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 8 {
            return Err(Error::Corrupt("join-index entry truncated".into()));
        }
        Ok(JiEntry {
            r: Surrogate(u32::from_le_bytes(bytes[0..4].try_into().unwrap())),
            s: Surrogate(u32::from_le_bytes(bytes[4..8].try_into().unwrap())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_tuple_roundtrip() {
        let t = BaseTuple::with_payload(Surrogate(17), 0xDEAD_BEEF, b"hello", 64).unwrap();
        assert_eq!(t.serialized_len(), 64);
        let bytes = t.to_bytes();
        assert_eq!(bytes.len(), 64);
        let back = BaseTuple::from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
        assert_eq!(&back.payload[..5], b"hello");
        assert!(back.payload[5..].iter().all(|&b| b == 0));
    }

    #[test]
    fn base_tuple_padded_exact_size() {
        let t = BaseTuple::padded(Surrogate(1), 42, 200);
        assert_eq!(t.serialized_len(), 200);
        assert_eq!(t.to_bytes().len(), 200);
    }

    #[test]
    fn base_tuple_rejects_oversized_payload() {
        let err = BaseTuple::with_payload(Surrogate(0), 0, &[1u8; 100], 50).unwrap_err();
        assert!(matches!(err, Error::PageOverflow { .. }));
    }

    #[test]
    fn base_tuple_rejects_truncation() {
        let t = BaseTuple::padded(Surrogate(9), 7, 40);
        let bytes = t.to_bytes();
        assert!(BaseTuple::from_bytes(&bytes[..10]).is_err());
        assert!(BaseTuple::from_bytes(&bytes[..20]).is_err());
    }

    #[test]
    fn view_tuple_roundtrip_and_size() {
        let r = BaseTuple::padded(Surrogate(13), 99, 200);
        let s = BaseTuple::padded(Surrogate(30), 99, 200);
        let v = ViewTuple::join(&r, &s);
        // T_V = 20 + 186 + 186 = 392 ≈ T_R + T_S = 400.
        assert_eq!(v.serialized_len(), 392);
        let back = ViewTuple::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.ji_entry(), JiEntry { r: Surrogate(13), s: Surrogate(30) });
    }

    #[test]
    fn ji_entry_roundtrip_and_size() {
        let e = JiEntry { r: Surrogate(30), s: Surrogate(13) };
        let bytes = e.to_bytes();
        assert_eq!(bytes.len(), JiEntry::BYTES);
        assert_eq!(JiEntry::from_bytes(&bytes).unwrap(), e);
        assert!(JiEntry::from_bytes(&bytes[..7]).is_err());
    }

    #[test]
    fn hash_key_is_deterministic_and_spreads() {
        assert_eq!(hash_key(42), hash_key(42));
        assert_ne!(hash_key(0), hash_key(1));
        // Low bits of consecutive keys should differ (bucket addressing
        // relies on this).
        let mut low_bits = std::collections::HashSet::new();
        for k in 0..64u64 {
            low_bits.insert(hash_key(k) & 0xFF);
        }
        assert!(low_bits.len() > 32, "hash low bits too clustered");
    }

    #[test]
    fn shard_of_key_is_total_and_balanced() {
        for shards in [1usize, 2, 3, 4, 8] {
            let mut counts = vec![0u32; shards];
            for k in 0..4096u64 {
                let s = shard_of_key(k, shards);
                assert!(s < shards);
                counts[s] += 1;
            }
            let expect = 4096 / shards as u32;
            for (i, &c) in counts.iter().enumerate() {
                assert!(
                    c > expect / 2 && c < expect * 2,
                    "shard {i}/{shards} got {c} of 4096 keys"
                );
            }
        }
        // Single shard degenerates to the unsharded engine.
        assert_eq!(shard_of_key(0xDEAD_BEEF, 1), 0);
    }

    #[test]
    fn surrogate_ordering_matches_u32() {
        assert!(Surrogate(1) < Surrogate(2));
        assert_eq!(Surrogate(7).to_string(), "007");
    }
}
