//! Deterministic randomness helpers.
//!
//! Every randomized component in the workspace (workload generation, update
//! streams, property tests' fixtures) takes an explicit `u64` seed and goes
//! through this module, so any experiment is reproducible from its seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded [`StdRng`]. The same seed always yields the same stream.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream label, so independent
/// components of one experiment don't share a stream.
pub fn derive(seed: u64, label: &str) -> u64 {
    let mut h = seed ^ 0x51_7c_c1_b7_27_22_0a_95;
    for &b in label.as_bytes() {
        h = h.rotate_left(5) ^ (b as u64);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Derive a seed for the `index`-th member of a labelled family of streams
/// (shard 0..N, client 0..C, ...). Every per-shard and per-client stream in
/// the serving layer goes through this, so one root seed reproduces an
/// entire multi-threaded run — no ad-hoc per-component constants.
pub fn derive_indexed(seed: u64, label: &str, index: u64) -> u64 {
    derive(derive(seed, label), &index.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn derived_seeds_depend_on_label() {
        assert_eq!(derive(7, "updates"), derive(7, "updates"));
        assert_ne!(derive(7, "updates"), derive(7, "keys"));
        assert_ne!(derive(7, "updates"), derive(8, "updates"));
    }

    #[test]
    fn indexed_streams_are_stable_and_distinct() {
        assert_eq!(derive_indexed(7, "shard", 3), derive_indexed(7, "shard", 3));
        let mut seen = std::collections::HashSet::new();
        for label in ["shard", "client"] {
            for i in 0..16u64 {
                assert!(seen.insert(derive_indexed(7, label, i)), "collision at {label}/{i}");
            }
        }
        // Index is not just concatenated into the label's stream: "shard" 12
        // must differ from what "shard1" 2 would give.
        assert_ne!(derive_indexed(7, "shard", 12), derive_indexed(7, "shard1", 2));
    }
}
