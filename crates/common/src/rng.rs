//! Deterministic randomness helpers.
//!
//! Every randomized component in the workspace (workload generation, update
//! streams, property tests' fixtures) takes an explicit `u64` seed and goes
//! through this module, so any experiment is reproducible from its seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded [`StdRng`]. The same seed always yields the same stream.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream label, so independent
/// components of one experiment don't share a stream.
pub fn derive(seed: u64, label: &str) -> u64 {
    let mut h = seed ^ 0x51_7c_c1_b7_27_22_0a_95;
    for &b in label.as_bytes() {
        h = h.rotate_left(5) ^ (b as u64);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn derived_seeds_depend_on_label() {
        assert_eq!(derive(7, "updates"), derive(7, "updates"));
        assert_ne!(derive(7, "updates"), derive(7, "keys"));
        assert_ne!(derive(7, "updates"), derive(8, "updates"));
    }
}
